package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
)

// Codec names, as spoken in the negotiation handshake (Request.Codecs /
// Response.Codec). "json" is the seed wire format; "bin1" is the
// length-prefixed binary format introduced behind the version gate.
const (
	CodecJSON = "json"
	CodecBin1 = "bin1"
)

// ErrCodecMismatch reports a frame whose payload belongs to a different
// codec than the reader negotiated — a binary frame under a JSON
// reader, or vice versa. It is typed so operators and tests can tell a
// codec skew apart from garbage on the wire.
var ErrCodecMismatch = errors.New("wire: codec mismatch")

// Codec is the pluggable frame encoding: the seam the first-frame
// negotiation switches over, and the seam future codecs (compression,
// checksums) plug into. All three methods speak whole frames — the
// 4-byte big-endian length header followed by the codec's payload — so
// MaxFrame and the DoS checks are uniform across codecs.
//
// AppendFrame appends one frame to buf in place (so a batch of frames
// flushes with a single Write); on error buf is restored to its prior
// length. Encode frames and writes one message through a pooled buffer
// (one syscall, one TLS record). Decode reads exactly one frame into
// out, which must be *Request or *Response for the binary codec.
type Codec interface {
	Name() string
	AppendFrame(buf *bytes.Buffer, msg any) error
	Encode(w io.Writer, msg any) error
	Decode(r io.Reader, out any) error
}

// JSON is the seed codec: frames carry a JSON object. Its output is
// byte-identical to the pre-codec wire format.
var JSON Codec = jsonCodec{}

// Bin1 is the binary codec: frames carry a fixed-layout header (magic,
// flags, id, op index or string, optional deadline/trace/negotiation
// fields) and an opaque body, with no per-field JSON cost.
var Bin1 Codec = binCodec{}

// CodecByName resolves a negotiated codec name.
func CodecByName(name string) (Codec, bool) {
	switch name {
	case CodecJSON:
		return JSON, true
	case CodecBin1:
		return Bin1, true
	}
	return nil, false
}

// NegotiateCodec picks the first offered codec that the receiver
// supports, mirroring the client's preference order. Returns false when
// nothing matches (the connection then stays on the seed JSON codec).
func NegotiateCodec(offered, supported []string) (Codec, bool) {
	for _, name := range offered {
		c, ok := CodecByName(name)
		if !ok {
			continue
		}
		for _, s := range supported {
			if s == name {
				return c, true
			}
		}
	}
	return nil, false
}

// ---------------------------------------------------------------------
// JSON codec (seed format)
// ---------------------------------------------------------------------

type jsonCodec struct{}

func (jsonCodec) Name() string { return CodecJSON }

// AppendFrame appends the 4-byte length header and the JSON payload,
// produced in place. The bytes are identical to the seed protocol's.
func (jsonCodec) AppendFrame(buf *bytes.Buffer, msg any) error {
	start := buf.Len()
	buf.Write([]byte{0, 0, 0, 0}) // header placeholder, patched below
	enc := json.NewEncoder(buf)
	if err := enc.Encode(msg); err != nil {
		buf.Truncate(start)
		return fmt.Errorf("wire: encode: %w", err)
	}
	// Encoder appends a newline Marshal would not; strip it to keep the
	// frame bytes identical to the seed protocol's.
	if b := buf.Bytes(); len(b) > start+4 && b[len(b)-1] == '\n' {
		buf.Truncate(len(b) - 1)
	}
	n := buf.Len() - start - 4
	if n > MaxFrame {
		buf.Truncate(start)
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	binary.BigEndian.PutUint32(buf.Bytes()[start:start+4], uint32(n))
	return nil
}

func (c jsonCodec) Encode(w io.Writer, msg any) error { return encodeFrame(c, w, msg) }

func (jsonCodec) Decode(r io.Reader, out any) error {
	return readFramePayload(r, func(payload []byte) error {
		if payload[0] == binMagicRequest || payload[0] == binMagicResponse {
			return fmt.Errorf("%w: bin1 frame read by json codec", ErrCodecMismatch)
		}
		if err := json.Unmarshal(payload, out); err != nil {
			return fmt.Errorf("%w: %v", ErrBadFrame, err)
		}
		return nil
	})
}

// encodeFrame frames msg through c into a pooled buffer and writes it
// with a single Write. Shared by both codecs' Encode.
func encodeFrame(c Codec, w io.Writer, msg any) error {
	buf := encPool.Get().(*bytes.Buffer)
	buf.Reset()
	err := c.AppendFrame(buf, msg)
	if err == nil {
		_, err = w.Write(buf.Bytes())
	}
	if buf.Cap() <= pooledMax {
		encPool.Put(buf)
	}
	return err
}

// readFramePayload reads one length-prefixed frame into a pooled buffer
// and hands the payload to parse. The payload is only valid during the
// call: parse must copy everything it keeps.
func readFramePayload(r io.Reader, parse func(payload []byte) error) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err // io.EOF passes through for clean shutdown detection
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	if n == 0 {
		return fmt.Errorf("%w: zero-length frame", ErrBadFrame)
	}
	bp := readPool.Get().(*[]byte)
	if uint32(cap(*bp)) < n {
		*bp = make([]byte, n)
	}
	buf := (*bp)[:n]
	defer func() {
		if cap(*bp) <= pooledMax {
			readPool.Put(bp)
		}
	}()
	if _, err := io.ReadFull(r, buf); err != nil {
		return fmt.Errorf("%w: truncated body: %v", ErrBadFrame, err)
	}
	return parse(buf)
}

// ---------------------------------------------------------------------
// bin1 codec
// ---------------------------------------------------------------------

// bin1 frame payload layout (after the shared 4-byte length header):
//
//	request:  0xB1 flags:u8 id:u64
//	          op    — u16 table index, or (flag) u16 len + string
//	          [deadline_ms:i64] [trace:u16-str]
//	          [codecs: count:u8 × (u8-str)]
//	          body  — u32 len + raw bytes (len 0 ⇒ no body)
//	response: 0xB2 flags:u8 id:u64
//	          [error:u16-str] [code:u16-str] [codec:u8-str]
//	          body  — u32 len + raw bytes (len 0 ⇒ no body)
//
// All integers are big-endian, matching the frame header. The magic
// bytes can never open a JSON payload ('{' is 0x7B), which is what
// makes a codec mismatch detectable and typed on both sides.
const (
	binMagicRequest  = 0xB1
	binMagicResponse = 0xB2
)

// Request flag bits.
const (
	reqFlagDeadline = 1 << 0
	reqFlagTrace    = 1 << 1
	reqFlagCodecs   = 1 << 2
	reqFlagOpString = 1 << 3 // op carried as a string, not a table index
)

// Response flag bits.
const (
	respFlagOK    = 1 << 0
	respFlagError = 1 << 1
	respFlagCode  = 1 << 2
	respFlagCodec = 1 << 3
)

// binOps is the frozen operation table of the bin1 codec: the u16 op
// index on the wire is an offset into this slice. The codec name pins
// the table — any reordering or removal is a new codec name, never an
// edit. Ops outside the table (custom RegisterOp handlers) travel in
// the op-string form, losing only the few bytes the index saves.
var binOps = []string{
	"Ping",
	"CreateAccount",
	"AccountDetails",
	"UpdateAccount",
	"AccountStatement",
	"CheckFunds",
	"DirectTransfer",
	"RequestCheque",
	"RedeemCheque",
	"RequestChain",
	"RedeemChain",
	"ReleaseCheque",
	"ReleaseChain",
	"Admin.Deposit",
	"Admin.Withdraw",
	"Admin.ChangeCreditLimit",
	"Admin.CancelTransfer",
	"Admin.CloseAccount",
	"Admin.ListAccounts",
	"Replica.Status",
	"Shard.Map",
	"Metrics.Snapshot",
	"Usage.Submit",
	"Usage.Status",
	"Usage.Drain",
	"Micropay.Submit",
	"Micropay.Status",
	"Micropay.Drain",
	"Repl.Hello",
}

var binOpIndex = func() map[string]uint16 {
	m := make(map[string]uint16, len(binOps))
	for i, op := range binOps {
		m[op] = uint16(i)
	}
	return m
}()

type binCodec struct{}

func (binCodec) Name() string { return CodecBin1 }

func (binCodec) AppendFrame(buf *bytes.Buffer, msg any) error {
	start := buf.Len()
	buf.Write([]byte{0, 0, 0, 0}) // length header, patched below
	var err error
	switch m := msg.(type) {
	case *Request:
		err = appendBinRequest(buf, m)
	case *Response:
		err = appendBinResponse(buf, m)
	default:
		err = fmt.Errorf("wire: bin1 cannot encode %T", msg)
	}
	if err != nil {
		buf.Truncate(start)
		return err
	}
	n := buf.Len() - start - 4
	if n > MaxFrame {
		buf.Truncate(start)
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	binary.BigEndian.PutUint32(buf.Bytes()[start:start+4], uint32(n))
	return nil
}

func (c binCodec) Encode(w io.Writer, msg any) error { return encodeFrame(c, w, msg) }

func (binCodec) Decode(r io.Reader, out any) error {
	return readFramePayload(r, func(payload []byte) error {
		switch o := out.(type) {
		case *Request:
			return decodeBinRequest(payload, o)
		case *Response:
			return decodeBinResponse(payload, o)
		default:
			return fmt.Errorf("wire: bin1 cannot decode into %T", out)
		}
	})
}

func appendBinRequest(buf *bytes.Buffer, req *Request) error {
	var flags byte
	opIdx, opIndexed := binOpIndex[req.Op]
	if !opIndexed {
		flags |= reqFlagOpString
	}
	if req.DeadlineMS != 0 {
		flags |= reqFlagDeadline
	}
	if req.Trace != "" {
		flags |= reqFlagTrace
	}
	if len(req.Codecs) != 0 {
		flags |= reqFlagCodecs
	}
	buf.WriteByte(binMagicRequest)
	buf.WriteByte(flags)
	AppendU64(buf, req.ID)
	if opIndexed {
		AppendU16(buf, opIdx)
	} else if err := AppendStr16(buf, req.Op); err != nil {
		return err
	}
	if flags&reqFlagDeadline != 0 {
		AppendU64(buf, uint64(req.DeadlineMS))
	}
	if flags&reqFlagTrace != 0 {
		if err := AppendStr16(buf, req.Trace); err != nil {
			return err
		}
	}
	if flags&reqFlagCodecs != 0 {
		if len(req.Codecs) > math.MaxUint8 {
			return fmt.Errorf("wire: bin1: %d codecs offered", len(req.Codecs))
		}
		buf.WriteByte(byte(len(req.Codecs)))
		for _, name := range req.Codecs {
			if err := AppendStr8(buf, name); err != nil {
				return err
			}
		}
	}
	return AppendBlob32(buf, req.Body)
}

func decodeBinRequest(payload []byte, req *Request) error {
	r := NewBinReader(payload)
	if magic := r.U8(); magic != binMagicRequest {
		if magic == '{' {
			return fmt.Errorf("%w: json frame read by bin1 codec", ErrCodecMismatch)
		}
		return fmt.Errorf("%w: bad bin1 request magic 0x%02x", ErrBadFrame, magic)
	}
	flags := r.U8()
	*req = Request{ID: r.U64()}
	if flags&reqFlagOpString != 0 {
		req.Op = r.Str16()
	} else {
		idx := r.U16()
		if int(idx) < len(binOps) {
			req.Op = binOps[idx]
		} else if r.Err() == nil {
			return fmt.Errorf("%w: bin1 op index %d out of table", ErrBadFrame, idx)
		}
	}
	if flags&reqFlagDeadline != 0 {
		req.DeadlineMS = int64(r.U64())
	}
	if flags&reqFlagTrace != 0 {
		req.Trace = r.Str16()
	}
	if flags&reqFlagCodecs != 0 {
		n := int(r.U8())
		for i := 0; i < n && r.Err() == nil; i++ {
			req.Codecs = append(req.Codecs, r.Str8())
		}
	}
	req.Body = r.Blob32()
	return r.Close()
}

func appendBinResponse(buf *bytes.Buffer, resp *Response) error {
	var flags byte
	if resp.OK {
		flags |= respFlagOK
	}
	if resp.Error != "" {
		flags |= respFlagError
	}
	if resp.Code != "" {
		flags |= respFlagCode
	}
	if resp.Codec != "" {
		flags |= respFlagCodec
	}
	buf.WriteByte(binMagicResponse)
	buf.WriteByte(flags)
	AppendU64(buf, resp.ID)
	if flags&respFlagError != 0 {
		if err := AppendStr16(buf, resp.Error); err != nil {
			return err
		}
	}
	if flags&respFlagCode != 0 {
		if err := AppendStr16(buf, resp.Code); err != nil {
			return err
		}
	}
	if flags&respFlagCodec != 0 {
		if err := AppendStr8(buf, resp.Codec); err != nil {
			return err
		}
	}
	return AppendBlob32(buf, resp.Body)
}

func decodeBinResponse(payload []byte, resp *Response) error {
	r := NewBinReader(payload)
	if magic := r.U8(); magic != binMagicResponse {
		if magic == '{' {
			return fmt.Errorf("%w: json frame read by bin1 codec", ErrCodecMismatch)
		}
		return fmt.Errorf("%w: bad bin1 response magic 0x%02x", ErrBadFrame, magic)
	}
	flags := r.U8()
	*resp = Response{ID: r.U64(), OK: flags&respFlagOK != 0}
	if flags&respFlagError != 0 {
		resp.Error = r.Str16()
	}
	if flags&respFlagCode != 0 {
		resp.Code = r.Str16()
	}
	if flags&respFlagCodec != 0 {
		resp.Codec = r.Str8()
	}
	resp.Body = r.Blob32()
	return r.Close()
}

// ---------------------------------------------------------------------
// binary primitives
// ---------------------------------------------------------------------

// The Append* helpers below are the writing half of the binary
// toolkit; BinReader is the reading half. They back the bin1 frame
// codec here and the binary body/journal encoders in core, replica
// and db, so every hand-rolled layout shares one set of conventions
// (big-endian, length-prefixed, len-0 blob = nil).

// AppendU16 appends a big-endian uint16.
func AppendU16(buf *bytes.Buffer, v uint16) {
	var b [2]byte
	binary.BigEndian.PutUint16(b[:], v)
	buf.Write(b[:])
}

// AppendU32 appends a big-endian uint32.
func AppendU32(buf *bytes.Buffer, v uint32) {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	buf.Write(b[:])
}

// AppendU64 appends a big-endian uint64.
func AppendU64(buf *bytes.Buffer, v uint64) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	buf.Write(b[:])
}

// AppendStr8 appends a u8-length-prefixed string.
func AppendStr8(buf *bytes.Buffer, s string) error {
	if len(s) > math.MaxUint8 {
		return fmt.Errorf("wire: binary string field exceeds %d bytes", math.MaxUint8)
	}
	buf.WriteByte(byte(len(s)))
	buf.WriteString(s)
	return nil
}

// AppendStr16 appends a u16-length-prefixed string.
func AppendStr16(buf *bytes.Buffer, s string) error {
	if len(s) > math.MaxUint16 {
		return fmt.Errorf("wire: binary string field exceeds %d bytes", math.MaxUint16)
	}
	AppendU16(buf, uint16(len(s)))
	buf.WriteString(s)
	return nil
}

// AppendBlob32 appends a u32-length-prefixed byte blob. Length zero
// doubles as "absent": BinReader.Blob32 decodes it to nil, the same
// way omitempty drops an empty field from a JSON frame.
func AppendBlob32(buf *bytes.Buffer, b []byte) error {
	if uint64(len(b)) > math.MaxUint32 {
		return fmt.Errorf("wire: %d-byte blob exceeds u32 length", len(b))
	}
	AppendU32(buf, uint32(len(b)))
	buf.Write(b)
	return nil
}

// BinReader is a cursor over a binary payload with a sticky error: the
// accessors return zero values after the first short read, and Close
// reports it (or trailing garbage) once at the end. It backs the bin1
// frame decoder and the binary body/journal codecs in core and db.
// Byte-slice accessors copy out of the payload, which is pooled scratch
// on every read path.
type BinReader struct {
	b   []byte
	err error
}

// NewBinReader wraps a payload.
func NewBinReader(b []byte) *BinReader { return &BinReader{b: b} }

func (r *BinReader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("%w: truncated binary payload", ErrBadFrame)
	}
}

// U8 consumes one byte.
func (r *BinReader) U8() byte {
	if r.err != nil || len(r.b) < 1 {
		r.fail()
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

// U16 consumes a big-endian uint16.
func (r *BinReader) U16() uint16 {
	if r.err != nil || len(r.b) < 2 {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint16(r.b)
	r.b = r.b[2:]
	return v
}

// U32 consumes a big-endian uint32.
func (r *BinReader) U32() uint32 {
	if r.err != nil || len(r.b) < 4 {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(r.b)
	r.b = r.b[4:]
	return v
}

// U64 consumes a big-endian uint64.
func (r *BinReader) U64() uint64 {
	if r.err != nil || len(r.b) < 8 {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v
}

func (r *BinReader) take(n int) []byte {
	if r.err != nil || len(r.b) < n {
		r.fail()
		return nil
	}
	v := r.b[:n]
	r.b = r.b[n:]
	return v
}

// Str8 consumes a u8-length-prefixed string.
func (r *BinReader) Str8() string { return string(r.take(int(r.U8()))) }

// Str16 consumes a u16-length-prefixed string.
func (r *BinReader) Str16() string { return string(r.take(int(r.U16()))) }

// Blob32 consumes a u32-length-prefixed byte blob, copied out of the
// payload. Length zero yields nil (the "absent" encoding).
func (r *BinReader) Blob32() []byte {
	n := r.U32()
	if n == 0 || r.err != nil {
		return nil
	}
	if uint64(n) > uint64(len(r.b)) {
		r.fail()
		return nil
	}
	return append([]byte(nil), r.take(int(n))...)
}

// Err reports the first short read, if any.
func (r *BinReader) Err() error { return r.err }

// Rest returns the unconsumed remainder (no copy). The caller owns
// interpreting it; Close must not be used afterwards.
func (r *BinReader) Rest() []byte {
	v := r.b
	r.b = nil
	return v
}

// Close reports the first short read, or trailing garbage if the
// payload was not fully consumed.
func (r *BinReader) Close() error {
	if r.err != nil {
		return r.err
	}
	if len(r.b) != 0 {
		return fmt.Errorf("%w: %d trailing bytes in binary payload", ErrBadFrame, len(r.b))
	}
	return nil
}

// ---------------------------------------------------------------------
// binary bodies
// ---------------------------------------------------------------------

// BinBodyMagic opens a binary-encoded body payload. It is not a valid
// first byte of any JSON value, so Decode can sniff a body's codec
// without out-of-band state and the server's dispatch switch needs no
// changes for negotiated connections.
const BinBodyMagic = 0xBB

// BinaryBody is implemented by the hot-path request/response payloads
// (DirectTransfer, CheckFunds, Usage.Submit, Micropay.Submit, replica
// entry batches) that have a hand-rolled binary form. The encoded body
// is [BinBodyMagic][tag][payload]; the tag namespaces the payload so a
// mis-routed body fails typed instead of misparsing.
type BinaryBody interface {
	// BinaryBodyTag identifies the concrete type (unique per type).
	BinaryBodyTag() byte
	// AppendBinaryBody appends the payload (everything after the tag).
	AppendBinaryBody(buf *bytes.Buffer) error
	// DecodeBinaryBody parses a payload produced by AppendBinaryBody.
	// The input is pooled scratch: implementations must copy what they
	// keep (BinReader's accessors already do).
	DecodeBinaryBody(payload []byte) error
}

// EncodeWith marshals a body for a connection speaking codec c: the
// binary form for BinaryBody implementors when c is a binary codec,
// JSON otherwise. A nil or JSON codec always yields seed-identical
// JSON bytes.
func EncodeWith(c Codec, v any) (json.RawMessage, error) {
	if c != nil && c.Name() == CodecBin1 {
		if bb, ok := v.(BinaryBody); ok {
			return EncodeBinaryBody(bb)
		}
	}
	return Encode(v)
}

// EncodeBinaryBody marshals v in its binary body form.
func EncodeBinaryBody(v BinaryBody) (json.RawMessage, error) {
	var buf bytes.Buffer
	buf.WriteByte(BinBodyMagic)
	buf.WriteByte(v.BinaryBodyTag())
	if err := v.AppendBinaryBody(&buf); err != nil {
		return nil, fmt.Errorf("wire: encode binary body: %w", err)
	}
	return buf.Bytes(), nil
}
