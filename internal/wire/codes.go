package wire

// Code is a stable machine-readable error class carried in
// Response.Code. It is a type alias (not a defined type) so the
// constants assign freely anywhere a plain string is expected — the
// Response struct, switch arms, log fields — while still giving every
// scattered call-site literal one named home.
//
// The constants below are the single source of truth for the wire
// error vocabulary. The core package re-exports them (CodeDenied =
// wire.CodeDenied, …) so existing imports compile unchanged; new code
// and the RoutedClient retry/degrade policy should reference these
// directly.
type Code = string

// Wire error codes. The string values are frozen: they are part of the
// on-the-wire protocol and of operator-facing logs, and the seed
// protocol emitted exactly these bytes.
const (
	// CodeOK is the zero value: no error (omitted on the wire).
	CodeOK Code = ""
	// CodeDenied: authenticated identity lacks permission for the op.
	CodeDenied Code = "denied"
	// CodeNotFound: the referenced account/cheque/chain does not exist.
	CodeNotFound Code = "not_found"
	// CodeInsufficient: funds availability check failed.
	CodeInsufficient Code = "insufficient_funds"
	// CodeInvalid: the request was malformed or violates an invariant.
	CodeInvalid Code = "invalid_request"
	// CodeDuplicate: idempotency key or serial was already consumed.
	CodeDuplicate Code = "duplicate"
	// CodeExpired: the instrument's validity window has passed.
	CodeExpired Code = "expired"
	// CodeConflict: concurrent-modification conflict; safe to retry.
	CodeConflict Code = "conflict"
	// CodeInternal: unclassified server-side failure.
	CodeInternal Code = "internal"
	// CodeReadOnly: the endpoint is a read replica and the op mutates.
	CodeReadOnly Code = "read_only"
	// CodeUnavailable: the endpoint cannot serve the op right now
	// (draining, replica not caught up, …); try elsewhere.
	CodeUnavailable Code = "unavailable"
	// CodeWrongShard: the key routes to a different shard; refresh the
	// shard map and retry there.
	CodeWrongShard Code = "wrong_shard"
	// CodeDeadlineExceeded: the caller's deadline budget ran out before
	// the server started (or finished) the op.
	CodeDeadlineExceeded Code = "deadline_exceeded"
	// CodeOverloaded: a bounded intake queue is full; back off and retry.
	CodeOverloaded Code = "overloaded"
	// CodeStreamLost: a replication stream ended because the publisher's
	// subscription buffer overflowed; the follower must re-handshake.
	CodeStreamLost Code = "stream_lost"
)
