package gmd

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"gridbank/internal/currency"
	"gridbank/internal/rur"
)

func ad(provider string, cpuMicroPerHour int64, rating, nodes int, kw ...string) Advertisement {
	rates := map[rur.Item]currency.Rate{}
	if cpuMicroPerHour > 0 {
		rates[rur.ItemCPU] = currency.PerHour(cpuMicroPerHour)
	}
	return Advertisement{
		Provider:  provider,
		Address:   provider + ".example:9000",
		CPURating: rating,
		Nodes:     nodes,
		Rates:     rates,
		Keywords:  kw,
	}
}

func TestRegisterAndGet(t *testing.T) {
	d := New(nil)
	if err := d.Register(ad("CN=gsp1", 1000, 500, 8, "linux")); err != nil {
		t.Fatal(err)
	}
	got, err := d.Get("CN=gsp1")
	if err != nil || got.Address != "CN=gsp1.example:9000" {
		t.Fatalf("Get = %+v, %v", got, err)
	}
	if got.Updated.IsZero() {
		t.Error("Updated not stamped")
	}
	if _, err := d.Get("CN=ghost"); !errors.Is(err, ErrNotRegistered) {
		t.Errorf("missing Get err = %v", err)
	}
	if d.Len() != 1 {
		t.Errorf("Len = %d", d.Len())
	}
	// Re-register refreshes rather than duplicating.
	if err := d.Register(ad("CN=gsp1", 2000, 500, 8)); err != nil {
		t.Fatal(err)
	}
	if d.Len() != 1 {
		t.Errorf("Len after refresh = %d", d.Len())
	}
}

func TestRegisterValidation(t *testing.T) {
	d := New(nil)
	bad := []Advertisement{
		{Address: "x", CPURating: 1, Nodes: 1},                // no provider
		{Provider: "p", CPURating: 1, Nodes: 1},               // no address
		{Provider: "p", Address: "x", CPURating: 0, Nodes: 1}, // no rating
		{Provider: "p", Address: "x", CPURating: 1, Nodes: 0}, // no nodes
	}
	for i, a := range bad {
		if err := d.Register(a); !errors.Is(err, ErrBadAdvert) {
			t.Errorf("case %d: err = %v", i, err)
		}
	}
}

func TestDeregister(t *testing.T) {
	d := New(nil)
	if err := d.Register(ad("CN=gsp1", 1000, 500, 8)); err != nil {
		t.Fatal(err)
	}
	if err := d.Deregister("CN=gsp1"); err != nil {
		t.Fatal(err)
	}
	if err := d.Deregister("CN=gsp1"); !errors.Is(err, ErrNotRegistered) {
		t.Errorf("double deregister err = %v", err)
	}
	if d.Len() != 0 {
		t.Errorf("Len = %d", d.Len())
	}
}

func TestFindFiltersAndSorts(t *testing.T) {
	d := New(nil)
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(d.Register(ad("CN=cheap", 500, 300, 4, "linux")))
	must(d.Register(ad("CN=fast", 2000, 1200, 64, "linux", "mpi")))
	must(d.Register(ad("CN=mid", 1000, 600, 16, "linux")))
	must(d.Register(ad("CN=unpriced", 0, 800, 32, "gpu")))

	// No filter: sorted by posted CPU price, unpriced last.
	all := d.Find(Query{})
	want := []string{"CN=cheap", "CN=mid", "CN=fast", "CN=unpriced"}
	if len(all) != 4 {
		t.Fatalf("Find all = %d", len(all))
	}
	for i, w := range want {
		if all[i].Provider != w {
			t.Fatalf("order[%d] = %s, want %s (full: %v)", i, all[i].Provider, w, names(all))
		}
	}
	// Rating filter.
	fastEnough := d.Find(Query{MinCPURating: 700})
	if len(fastEnough) != 2 {
		t.Fatalf("MinCPURating = %v", names(fastEnough))
	}
	// Node filter.
	big := d.Find(Query{MinNodes: 20})
	if len(big) != 2 {
		t.Fatalf("MinNodes = %v", names(big))
	}
	// Price cap keeps unpriced (price discovered in negotiation).
	affordable := d.Find(Query{MaxCPUPrice: 600})
	if len(affordable) != 2 || affordable[0].Provider != "CN=cheap" || affordable[1].Provider != "CN=unpriced" {
		t.Fatalf("MaxCPUPrice = %v", names(affordable))
	}
	// Keyword.
	mpi := d.Find(Query{Keyword: "MPI"})
	if len(mpi) != 1 || mpi[0].Provider != "CN=fast" {
		t.Fatalf("Keyword = %v", names(mpi))
	}
}

func TestFindMaxAge(t *testing.T) {
	clock := time.Now()
	d := New(func() time.Time { return clock })
	if err := d.Register(ad("CN=old", 100, 100, 1)); err != nil {
		t.Fatal(err)
	}
	clock = clock.Add(time.Hour)
	if err := d.Register(ad("CN=fresh", 100, 100, 1)); err != nil {
		t.Fatal(err)
	}
	got := d.Find(Query{MaxAge: 30 * time.Minute})
	if len(got) != 1 || got[0].Provider != "CN=fresh" {
		t.Fatalf("MaxAge = %v", names(got))
	}
}

func TestDirectoryIsolation(t *testing.T) {
	d := New(nil)
	a := ad("CN=gsp", 100, 100, 1, "kw")
	if err := d.Register(a); err != nil {
		t.Fatal(err)
	}
	// Mutating the caller's advert after registration must not affect
	// the directory.
	a.Keywords[0] = "mutated"
	a.Rates[rur.ItemCPU] = currency.PerHour(999999)
	got, _ := d.Get("CN=gsp")
	if got.Keywords[0] != "kw" {
		t.Error("keywords aliased")
	}
	if got.Rates[rur.ItemCPU].MicroPerUnit != 100 {
		t.Error("rates aliased")
	}
}

func TestConcurrentRegisterFind(t *testing.T) {
	d := New(nil)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			_ = d.Register(ad(fmt.Sprintf("CN=gsp%d", i%10), int64(i+1), 100+i, 1))
		}
	}()
	for i := 0; i < 200; i++ {
		d.Find(Query{MinCPURating: 50})
	}
	<-done
	if d.Len() != 10 {
		t.Errorf("Len = %d", d.Len())
	}
}

func names(ads []Advertisement) []string {
	out := make([]string, len(ads))
	for i, a := range ads {
		out[i] = a.Provider
	}
	return out
}
