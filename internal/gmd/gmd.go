// Package gmd implements the Grid Market Directory of Figure 1: the
// discovery service where resource providers "advertise their services"
// (§1) and the Grid Resource Broker looks up candidate GSPs before
// negotiating cost with each one's Grid Trade Service (§2).
package gmd

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"gridbank/internal/currency"
	"gridbank/internal/rur"
)

// Errors.
var (
	ErrNotRegistered = errors.New("gmd: provider not registered")
	ErrBadAdvert     = errors.New("gmd: malformed advertisement")
)

// Advertisement describes one GSP's offering.
type Advertisement struct {
	// Provider is the GSP's certificate name (the identity the broker
	// will see at the far end of a negotiation).
	Provider string `json:"provider"`
	// Address is the GSP's contact string (host:port of its services).
	Address string `json:"address"`
	// HostType is a free-form architecture label (e.g. "Cray", "Linux
	// cluster") as in the RUR's resource details.
	HostType string `json:"host_type,omitempty"`
	// CPURating is the resource's per-node speed in MIPS-like units
	// (matches gridsim's resource rating).
	CPURating int `json:"cpu_rating"`
	// Nodes is the number of compute nodes.
	Nodes int `json:"nodes"`
	// Rates is the GSP's *posted* price summary. Negotiated prices may
	// differ; the directory is for shortlisting only.
	Rates map[rur.Item]currency.Rate `json:"rates,omitempty"`
	// Keywords support free-text matching ("mpi", "gpu", "storage").
	Keywords []string `json:"keywords,omitempty"`
	// Updated is maintained by the directory.
	Updated time.Time `json:"updated"`
}

// Validate checks the advertisement.
func (a *Advertisement) Validate() error {
	switch {
	case a.Provider == "":
		return fmt.Errorf("%w: missing provider", ErrBadAdvert)
	case a.Address == "":
		return fmt.Errorf("%w: missing address", ErrBadAdvert)
	case a.CPURating <= 0:
		return fmt.Errorf("%w: CPU rating must be positive", ErrBadAdvert)
	case a.Nodes <= 0:
		return fmt.Errorf("%w: node count must be positive", ErrBadAdvert)
	}
	return nil
}

// Query filters advertisements.
type Query struct {
	// MinCPURating filters out slow resources (0 = no minimum).
	MinCPURating int
	// MinNodes filters by node count (0 = no minimum).
	MinNodes int
	// MaxCPUPrice caps the posted CPU rate in micro-G$ per hour
	// (0 = no cap). Providers with no posted CPU rate pass the filter:
	// their price is discovered in negotiation.
	MaxCPUPrice int64
	// Keyword requires a keyword match (case-insensitive substring).
	Keyword string
	// MaxAge drops stale advertisements (0 = no age limit).
	MaxAge time.Duration
}

// Directory is an in-memory market directory. One per Grid (or per VO);
// providers re-register periodically to stay fresh.
type Directory struct {
	mu      sync.RWMutex
	adverts map[string]*Advertisement // by provider cert
	now     func() time.Time
}

// New creates a directory. now may be nil (defaults to time.Now).
func New(now func() time.Time) *Directory {
	if now == nil {
		now = time.Now
	}
	return &Directory{adverts: make(map[string]*Advertisement), now: now}
}

// Register inserts or refreshes a provider's advertisement.
func (d *Directory) Register(ad Advertisement) error {
	if err := ad.Validate(); err != nil {
		return err
	}
	ad.Updated = d.now()
	// Copy mutable fields so callers cannot alias directory state.
	ad.Keywords = append([]string(nil), ad.Keywords...)
	rates := make(map[rur.Item]currency.Rate, len(ad.Rates))
	for k, v := range ad.Rates {
		rates[k] = v
	}
	ad.Rates = rates
	d.mu.Lock()
	defer d.mu.Unlock()
	d.adverts[ad.Provider] = &ad
	return nil
}

// Deregister removes a provider.
func (d *Directory) Deregister(provider string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.adverts[provider]; !ok {
		return fmt.Errorf("%w: %s", ErrNotRegistered, provider)
	}
	delete(d.adverts, provider)
	return nil
}

// Get returns one provider's advertisement.
func (d *Directory) Get(provider string) (*Advertisement, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	ad, ok := d.adverts[provider]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotRegistered, provider)
	}
	cp := *ad
	return &cp, nil
}

// Find returns all advertisements matching the query, cheapest posted
// CPU rate first (unpriced providers last, then by provider name for
// determinism).
func (d *Directory) Find(q Query) []Advertisement {
	d.mu.RLock()
	defer d.mu.RUnlock()
	now := d.now()
	var out []Advertisement
	for _, ad := range d.adverts {
		if q.MinCPURating > 0 && ad.CPURating < q.MinCPURating {
			continue
		}
		if q.MinNodes > 0 && ad.Nodes < q.MinNodes {
			continue
		}
		if q.MaxAge > 0 && now.Sub(ad.Updated) > q.MaxAge {
			continue
		}
		if q.MaxCPUPrice > 0 {
			if rate, ok := ad.Rates[rur.ItemCPU]; ok && rate.MicroPerUnit > q.MaxCPUPrice {
				continue
			}
		}
		if q.Keyword != "" && !matchKeyword(ad.Keywords, q.Keyword) {
			continue
		}
		out = append(out, *ad)
	}
	sort.Slice(out, func(i, j int) bool {
		pi, iok := out[i].Rates[rur.ItemCPU]
		pj, jok := out[j].Rates[rur.ItemCPU]
		switch {
		case iok && jok && pi.MicroPerUnit != pj.MicroPerUnit:
			return pi.MicroPerUnit < pj.MicroPerUnit
		case iok != jok:
			return iok // priced before unpriced
		default:
			return out[i].Provider < out[j].Provider
		}
	})
	return out
}

// Len returns the number of registered providers.
func (d *Directory) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.adverts)
}

func matchKeyword(keywords []string, q string) bool {
	q = strings.ToLower(q)
	for _, k := range keywords {
		if strings.Contains(strings.ToLower(k), q) {
			return true
		}
	}
	return false
}
