package experiments

import (
	"errors"
	"fmt"
	"io"
	"time"

	"gridbank/internal/db"
	"gridbank/internal/diskfault"
	"gridbank/internal/wire"
)

// The diskfault experiment quantifies the storage fault-tolerance
// stack on the deterministic disk twin (internal/diskfault): how fast
// a store recovers after a torn crash depending on what it can boot
// from (full journal replay vs checkpoint + tail vs a fallback to the
// previous checkpoint generation after bit-rot), and how the fsync
// fail-stop discipline degrades under probabilistic sync faults —
// commits acked before the poison, typed refusals after it, and, in
// every cell, zero acked-but-lost and zero phantom writes after the
// crash.

// DiskfaultExpConfig parameterizes RunDiskfaultExp.
type DiskfaultExpConfig struct {
	// Seed is the base fault seed; each cell offsets it deterministically.
	Seed int64
	// Entries is the per-cell commit budget (default 30000).
	Entries int
}

// DiskfaultPoint is one measured cell.
type DiskfaultPoint struct {
	Cell       string  `json:"cell"`
	Acked      int     `json:"acked"`
	Refused    int     `json:"refused_typed"`
	BootSource string  `json:"boot_source"`
	Replayed   int     `json:"replayed_entries"`
	RecoveryMs float64 `json:"recovery_ms"`
	JournalKB  int64   `json:"journal_kb"`
	Lost       int     `json:"lost"`
	Phantom    int     `json:"phantom"`
}

// DiskfaultResult is the full sweep.
type DiskfaultResult struct {
	Points []DiskfaultPoint `json:"points"`
}

// diskfaultCell is one cell's scenario knobs.
type diskfaultCell struct {
	name string
	// checkpointAt lists commit counts at which to checkpoint (and, when
	// compact is set, drop the covered journal).
	checkpointAt []int
	compact      bool
	// rotNewest corrupts the newest checkpoint generation after the
	// crash (bit-rot), forcing the generation-1 fallback.
	rotNewest bool
	// pSyncErr enables probabilistic fsync faults (degraded mode).
	pSyncErr float64
}

// RunDiskfaultExp sweeps crash/recovery scenarios over one store on a
// deterministic fault-injecting disk. Any durability violation (an
// acked write missing after reboot, or a write present that was never
// acked) fails the experiment with the cell's seed in the error.
func RunDiskfaultExp(cfg DiskfaultExpConfig) (*DiskfaultResult, error) {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Entries <= 0 {
		cfg.Entries = 30000
	}
	n := cfg.Entries
	cells := []diskfaultCell{
		{name: "replay-full"},
		{name: "checkpoint-tail", checkpointAt: []int{n / 3, 2 * n / 3}, compact: true},
		{name: "fallback-gen1", checkpointAt: []int{n / 3, 2 * n / 3}, rotNewest: true},
		{name: "degraded-light", pSyncErr: 0.0003},
		{name: "degraded-heavy", pSyncErr: 0.001},
	}
	res := &DiskfaultResult{}
	for i, c := range cells {
		seed := cfg.Seed + int64(100*i)
		p, err := runDiskfaultCell(c, seed, n)
		if err != nil {
			return nil, fmt.Errorf("diskfault cell %s (seed %d): %w", c.name, seed, err)
		}
		res.Points = append(res.Points, *p)
	}
	return res, nil
}

func runDiskfaultCell(c diskfaultCell, seed int64, entries int) (*DiskfaultPoint, error) {
	const wal, ckpt = "/data/store.wal", "/data/store.ckpt"
	d := diskfault.New(diskfault.Config{Seed: uint64(seed), TornCrash: true, PSyncErr: c.pSyncErr})
	boot := func() (*db.Store, *db.BootInfo, db.Journal, error) {
		j, err := db.OpenFileJournalCodecFS(d, wal, true, wire.CodecBin1)
		if err != nil {
			return nil, nil, nil, err
		}
		s, info, err := db.OpenWithCheckpointFS(d, ckpt, j)
		if err != nil {
			j.Close()
			return nil, nil, nil, err
		}
		return s, info, j, nil
	}
	s, _, j, err := boot()
	if err != nil {
		return nil, fmt.Errorf("initial boot: %w", err)
	}
	if err := s.CreateTable("kv"); err != nil {
		return nil, err
	}

	// Load phase: fixed commit budget; every ack is recorded so the
	// post-crash image can be diffed against exactly what was promised.
	p := &DiskfaultPoint{Cell: c.name}
	acked := make(map[string]string, entries)
	ckptIdx := 0
	for i := 0; i < entries; i++ {
		k := fmt.Sprintf("k%07d", i)
		// Fresh allocation per commit: the store retains the value slice,
		// so a reused buffer would alias every row to its last contents.
		val := make([]byte, 96)
		for b := range val {
			val[b] = byte(i + b)
		}
		err := s.Update(func(tx *db.Tx) error { return tx.Put("kv", k, val) })
		if err == nil {
			p.Acked++
			acked[k] = string(val)
		} else if errors.Is(err, db.ErrStorageFailed) {
			p.Refused++
		} else {
			return nil, fmt.Errorf("commit %d: untyped refusal: %w", i, err)
		}
		if ckptIdx < len(c.checkpointAt) && i+1 == c.checkpointAt[ckptIdx] {
			ckptIdx++
			if _, err := s.CheckpointFS(d, ckpt); err != nil {
				return nil, fmt.Errorf("checkpoint at %d: %w", i+1, err)
			}
			if c.compact {
				if err := j.(db.CompactableJournal).Compact(); err != nil {
					return nil, fmt.Errorf("compact at %d: %w", i+1, err)
				}
			}
		}
	}
	s.Close()

	// Crash, then optional post-crash bit-rot on the newest generation.
	d.Crash()
	if b := d.Bytes(ckpt); c.rotNewest {
		if len(b) == 0 || !d.Corrupt(ckpt, int64(len(b)/2), 0xFF) {
			return nil, fmt.Errorf("bit-rot injection on %s failed", ckpt)
		}
	}
	if kb := int64(len(d.Bytes(wal))) / 1024; kb > 0 {
		p.JournalKB = kb
	}

	// Recovery phase: a degraded cell's disk would re-inject sync
	// faults into the fresh boot; recovery runs fault-free (the
	// replacement-disk scenario) so the numbers isolate replay cost.
	d2 := diskfault.New(diskfault.Config{})
	for _, path := range d.Paths() {
		d2.SetBytes(path, d.Durable(path))
	}
	d = d2
	start := time.Now()
	s2, info, _, err := boot()
	if err != nil {
		return nil, fmt.Errorf("recovery boot: %w", err)
	}
	p.RecoveryMs = float64(time.Since(start)) / float64(time.Millisecond)
	switch {
	case info.Generation < 0:
		p.BootSource = "journal replay"
	default:
		p.BootSource = fmt.Sprintf("checkpoint gen %d", info.Generation)
	}
	if c.rotNewest && info.Generation != 1 {
		return nil, fmt.Errorf("bit-rot cell booted from generation %d; want fallback to 1", info.Generation)
	}
	if last := s2.CurrentSeq(); last >= info.Seq {
		p.Replayed = int(last - info.Seq)
	}

	// Durability diff: every acked write present, nothing unacked
	// present (the fail-stop never let an unsynced write survive).
	for k, v := range acked {
		got, err := s2.Get("kv", k)
		if err != nil || string(got) != v {
			p.Lost++
		}
	}
	for i := 0; i < entries; i++ {
		k := fmt.Sprintf("k%07d", i)
		if _, ok := acked[k]; ok {
			continue
		}
		if _, err := s2.Get("kv", k); err == nil {
			p.Phantom++
		}
	}
	s2.Close()
	if p.Lost > 0 {
		return nil, fmt.Errorf("%d acked writes lost after crash", p.Lost)
	}
	if p.Phantom > 0 {
		return nil, fmt.Errorf("%d phantom writes survived the crash", p.Phantom)
	}
	return p, nil
}

// WriteDiskfaultExp renders the sweep.
func WriteDiskfaultExp(w io.Writer, r *DiskfaultResult) {
	fmt.Fprintf(w, "Storage fault sweep: crash/recovery scenarios on a deterministic\n")
	fmt.Fprintf(w, "fault-injecting disk. Every cell diffs the rebooted store against the\n")
	fmt.Fprintf(w, "exact set of acked commits: zero acked-but-lost, zero phantoms.\n")
	fmt.Fprintf(w, "Degraded cells inject probabilistic fsync faults; the first failure\n")
	fmt.Fprintf(w, "fail-stops the store and every later commit is refused typed.\n\n")
	t := &Table{Header: []string{"cell", "acked", "refused", "boot source", "replayed", "recovery ms", "wal KB", "lost", "phantom"}}
	for _, p := range r.Points {
		t.Add(p.Cell, p.Acked, p.Refused, p.BootSource, p.Replayed,
			fmt.Sprintf("%.1f", p.RecoveryMs), p.JournalKB, p.Lost, p.Phantom)
	}
	t.Write(w)
}
