package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"gridbank/internal/accounts"
	"gridbank/internal/currency"
	"gridbank/internal/db"
	"gridbank/internal/shard"
)

// The shards experiment measures the horizontally sharded ledger:
// write throughput swept over shard count × cross-shard transfer
// ratio. Same-shard transfers commit on one store; cross-shard
// transfers pay the 2PC coordinator's multi-step protocol. Every cell
// asserts conservation: account totals plus in-flight escrow equal the
// deposits, and no 2PC residue survives the quiesce.

// ShardsConfig parameterizes RunShards.
type ShardsConfig struct {
	// ShardCounts sweeps the number of shards (default 1, 2, 4).
	ShardCounts []int
	// CrossRatios sweeps the fraction of transfers that are forced
	// cross-shard (default 0, 0.5, 1). Ratios > 0 are skipped for the
	// 1-shard baseline, where every transfer is same-shard.
	CrossRatios []float64
	// Workers is the number of concurrent transfer loops (default 4).
	Workers int
	// OpsPerWorker is how many transfers each worker commits per cell
	// (default 500).
	OpsPerWorker int
	// AccountsPerShard sizes the account population (default 8).
	AccountsPerShard int
}

// ShardsPoint is one measured cell.
type ShardsPoint struct {
	Shards          int     `json:"shards"`
	CrossRatio      float64 `json:"cross_ratio"`
	Transfers       int     `json:"transfers"`
	CrossTransfers  int     `json:"cross_transfers"`
	TransfersPerSec float64 `json:"transfers_per_sec"`
}

// ShardsResult is the full sweep.
type ShardsResult struct {
	Points []ShardsPoint
}

// RunShards sweeps shard count × cross-shard ratio.
func RunShards(cfg ShardsConfig) (*ShardsResult, error) {
	if len(cfg.ShardCounts) == 0 {
		cfg.ShardCounts = []int{1, 2, 4}
	}
	if len(cfg.CrossRatios) == 0 {
		cfg.CrossRatios = []float64{0, 0.5, 1}
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.OpsPerWorker <= 0 {
		cfg.OpsPerWorker = 500
	}
	if cfg.AccountsPerShard <= 0 {
		cfg.AccountsPerShard = 8
	}
	res := &ShardsResult{}
	for _, n := range cfg.ShardCounts {
		for _, ratio := range cfg.CrossRatios {
			if n == 1 && ratio > 0 {
				continue
			}
			pt, err := runShardsCell(cfg, n, ratio)
			if err != nil {
				return nil, fmt.Errorf("shards %d ratio %.2f: %w", n, ratio, err)
			}
			res.Points = append(res.Points, *pt)
		}
	}
	return res, nil
}

func runShardsCell(cfg ShardsConfig, nShards int, ratio float64) (*ShardsPoint, error) {
	stores := make([]*db.Store, nShards)
	for i := range stores {
		stores[i] = db.MustOpenMemory()
	}
	led, err := shard.New(stores, shard.Config{})
	if err != nil {
		return nil, err
	}

	// Population: AccountsPerShard × nShards accounts, each funded,
	// bucketed by owning shard so workers can pick same-shard or
	// cross-shard pairs exactly.
	perAcct := currency.FromG(1000)
	var total currency.Amount
	byShard := make([][]accounts.ID, nShards)
	nAccts := cfg.AccountsPerShard * nShards
	for i := 0; i < nAccts; i++ {
		a, err := led.CreateAccount(fmt.Sprintf("CN=shardex-%d", i), "VO-X", "")
		if err != nil {
			return nil, err
		}
		if err := led.Deposit(a.AccountID, perAcct); err != nil {
			return nil, err
		}
		total = total.MustAdd(perAcct)
		s := led.ShardFor(a.AccountID)
		byShard[s] = append(byShard[s], a.AccountID)
	}
	for s, ids := range byShard {
		if nShards > 1 && len(ids) < 2 {
			return nil, fmt.Errorf("shard %d got only %d accounts; raise AccountsPerShard", s, len(ids))
		}
	}

	var transfers, cross atomic.Int64
	errs := make([]error, cfg.Workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)*7919 + 1))
			amount := currency.FromMicro(10)
			for op := 0; op < cfg.OpsPerWorker; op++ {
				var from, to accounts.ID
				if nShards > 1 && rng.Float64() < ratio {
					// Cross-shard: drawer and recipient from different buckets.
					si := rng.Intn(nShards)
					sj := (si + 1 + rng.Intn(nShards-1)) % nShards
					from = byShard[si][rng.Intn(len(byShard[si]))]
					to = byShard[sj][rng.Intn(len(byShard[sj]))]
					cross.Add(1)
				} else {
					si := rng.Intn(nShards)
					bucket := byShard[si]
					if len(bucket) < 2 {
						continue
					}
					i := rng.Intn(len(bucket))
					j := (i + 1 + rng.Intn(len(bucket)-1)) % len(bucket)
					from, to = bucket[i], bucket[j]
				}
				if _, err := led.Transfer(from, to, amount, accounts.TransferOptions{}); err != nil {
					errs[w] = fmt.Errorf("transfer %s -> %s: %w", from, to, err)
					return
				}
				transfers.Add(1)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Conservation: transfers move money, never mint it, and a
	// quiesced ledger holds no escrow.
	got, err := led.TotalBalance()
	if err != nil {
		return nil, err
	}
	if got != total {
		return nil, fmt.Errorf("conservation violated: total %v, deposited %v", got, total)
	}
	esc, err := led.PendingEscrow()
	if err != nil {
		return nil, err
	}
	if !esc.IsZero() {
		return nil, fmt.Errorf("quiesced ledger holds escrow %v", esc)
	}

	return &ShardsPoint{
		Shards:          nShards,
		CrossRatio:      ratio,
		Transfers:       int(transfers.Load()),
		CrossTransfers:  int(cross.Load()),
		TransfersPerSec: float64(transfers.Load()) / elapsed.Seconds(),
	}, nil
}

// WriteShards renders the sweep.
func WriteShards(w io.Writer, r *ShardsResult) {
	fmt.Fprintf(w, "Horizontally sharded ledger: transfers/sec vs shard count x cross-shard ratio\n")
	fmt.Fprintf(w, "(cross-shard transfers run the 2PC coordinator; every cell asserts conservation)\n\n")
	t := &Table{Header: []string{"shards", "cross ratio", "transfers", "cross", "transfers/sec"}}
	for _, p := range r.Points {
		t.Add(p.Shards, fmt.Sprintf("%.2f", p.CrossRatio), p.Transfers, p.CrossTransfers, fmt.Sprintf("%.0f", p.TransfersPerSec))
	}
	t.Write(w)
}
