package experiments

import (
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gridbank/internal/accounts"
	"gridbank/internal/core"
	"gridbank/internal/currency"
	"gridbank/internal/db"
	"gridbank/internal/pki"
	"gridbank/internal/replica"
)

// The replicas experiment measures the WAL-shipping read-replica
// subsystem: R read replicas mirror one primary while M reader clients
// pull balances through the read-routing client and a writer keeps the
// ledger churning. It reports read throughput per cell plus replication
// lag percentiles (in journal entries), and asserts the replication
// contract on every cell: replicas converge to the primary's exact
// sequence once writes stop, and their staleness stays within the
// routing bound.

// ReplicasConfig parameterizes RunReplicas.
type ReplicasConfig struct {
	// ReplicaCounts sweeps the number of read replicas (default 0, 1,
	// 2, 4; 0 = all reads on the primary).
	ReplicaCounts []int
	// ReaderCounts sweeps concurrent reader clients (default 1, 4).
	ReaderCounts []int
	// Window is the measurement time per cell (default 250ms).
	Window time.Duration
	// MaxStaleness is the routing bound readers use (default 2s).
	MaxStaleness time.Duration
	// WritePause throttles the background writer between ledger
	// transfers (default 200µs). An unthrottled in-process writer
	// saturates small hosts and measures CPU contention, not
	// replication.
	WritePause time.Duration
}

// ReplicasPoint is one measured cell.
type ReplicasPoint struct {
	Replicas    int           `json:"replicas"`
	Readers     int           `json:"readers"`
	Reads       int           `json:"reads"`
	ReadsPerSec float64       `json:"reads_per_sec"`
	Writes      int           `json:"writes"`
	LagP50      int           `json:"lag_p50_entries"`
	LagP95      int           `json:"lag_p95_entries"`
	LagMax      int           `json:"lag_max_entries"`
	FinalStale  time.Duration `json:"final_staleness"`
}

// ReplicasResult is the full sweep.
type ReplicasResult struct {
	Points []ReplicasPoint
}

// replicaWorld is one cell's full wire-level topology.
type replicaWorld struct {
	trust    *pki.TrustStore
	store    *db.Store
	bank     *core.Bank
	server   *core.Server
	primary  string
	pub      *replica.Publisher
	fols     []*replica.Follower
	repAddrs []string
	closers  []func()

	reader *pki.Identity
	acct   accounts.ID
	payer  accounts.ID
	payee  accounts.ID
}

func (w *replicaWorld) close() {
	for i := len(w.closers) - 1; i >= 0; i-- {
		w.closers[i]()
	}
}

func newReplicaWorld(nReplicas int) (*replicaWorld, error) {
	w := &replicaWorld{}
	ca, err := pki.NewCA("Replicas CA", "VO-REP", time.Hour)
	if err != nil {
		return nil, err
	}
	w.trust = pki.NewTrustStore(ca.Certificate())
	bankID, err := ca.Issue(pki.IssueOptions{CommonName: "gridbank", Organization: "VO-REP", IsServer: true})
	if err != nil {
		return nil, err
	}
	w.store = db.MustOpenMemory()
	const admin = "CN=replicas-admin"
	w.bank, err = core.NewBank(w.store, core.BankConfig{Identity: bankID, Trust: w.trust, Admins: []string{admin}})
	if err != nil {
		return nil, err
	}

	// One reader identity/account (what the clients poll) and a writer
	// pair the load generator churns.
	w.reader, err = ca.Issue(pki.IssueOptions{CommonName: "reader", Organization: "VO-REP"})
	if err != nil {
		return nil, err
	}
	resp, err := w.bank.CreateAccount(w.reader.SubjectName(), &core.CreateAccountRequest{OrganizationName: "VO-REP"})
	if err != nil {
		return nil, err
	}
	w.acct = resp.Account.AccountID
	if _, err := w.bank.AdminDeposit(admin, &core.AdminAmountRequest{AccountID: w.acct, Amount: currency.FromG(100)}); err != nil {
		return nil, err
	}
	mgr := w.bank.Manager()
	payer, err := mgr.CreateAccount("CN=writer-payer", "VO-REP", "")
	if err != nil {
		return nil, err
	}
	payee, err := mgr.CreateAccount("CN=writer-payee", "VO-REP", "")
	if err != nil {
		return nil, err
	}
	if err := mgr.Admin().Deposit(payer.AccountID, currency.FromG(10_000_000)); err != nil {
		return nil, err
	}
	w.payer, w.payee = payer.AccountID, payee.AccountID

	// Primary API server.
	srv, err := core.NewServer(w.bank, bankID)
	if err != nil {
		return nil, err
	}
	srv.Logf = func(string, ...any) {}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go srv.Serve(ln)
	w.server = srv
	w.primary = ln.Addr().String()
	w.closers = append(w.closers, func() { srv.Close() })

	if nReplicas == 0 {
		return w, nil
	}

	// Publisher + replicas.
	pub, err := replica.NewPublisher(replica.PublisherConfig{
		Store:       w.store,
		Identity:    bankID,
		Trust:       w.trust,
		PrimaryAddr: w.primary,
		Heartbeat:   50 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	pln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go pub.Serve(pln)
	w.pub = pub
	w.closers = append(w.closers, func() { pub.Close() })

	for i := 0; i < nReplicas; i++ {
		repID, err := ca.Issue(pki.IssueOptions{CommonName: fmt.Sprintf("replica-%d", i), Organization: "VO-REP", IsServer: true})
		if err != nil {
			return nil, err
		}
		fol, err := replica.StartFollower(replica.FollowerConfig{
			PublisherAddr: pln.Addr().String(),
			Identity:      repID,
			Trust:         w.trust,
			RetryInterval: 50 * time.Millisecond,
		})
		if err != nil {
			return nil, err
		}
		w.closers = append(w.closers, func() { fol.Close() })
		if err := fol.WaitReady(10 * time.Second); err != nil {
			return nil, err
		}
		rb, err := core.NewReadOnlyBank(fol, core.ReadOnlyBankConfig{Identity: repID, Trust: w.trust})
		if err != nil {
			return nil, err
		}
		rsrv, err := core.NewReadOnlyServer(rb, repID)
		if err != nil {
			return nil, err
		}
		rsrv.Logf = func(string, ...any) {}
		rln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		go rsrv.Serve(rln)
		w.closers = append(w.closers, func() { rsrv.Close() })
		w.fols = append(w.fols, fol)
		w.repAddrs = append(w.repAddrs, rln.Addr().String())
	}
	return w, nil
}

// RunReplicas sweeps readers × replicas, measuring routed read
// throughput and replication lag.
func RunReplicas(cfg ReplicasConfig) (*ReplicasResult, error) {
	if len(cfg.ReplicaCounts) == 0 {
		cfg.ReplicaCounts = []int{0, 1, 2, 4}
	}
	if len(cfg.ReaderCounts) == 0 {
		cfg.ReaderCounts = []int{1, 4}
	}
	if cfg.Window <= 0 {
		cfg.Window = 250 * time.Millisecond
	}
	if cfg.MaxStaleness <= 0 {
		cfg.MaxStaleness = 2 * time.Second
	}
	if cfg.WritePause <= 0 {
		cfg.WritePause = 200 * time.Microsecond
	}
	res := &ReplicasResult{}
	for _, nRep := range cfg.ReplicaCounts {
		for _, nRead := range cfg.ReaderCounts {
			pt, err := runReplicasCell(cfg, nRep, nRead)
			if err != nil {
				return nil, fmt.Errorf("replicas %d/%d readers: %w", nRep, nRead, err)
			}
			res.Points = append(res.Points, *pt)
		}
	}
	return res, nil
}

func runReplicasCell(cfg ReplicasConfig, nReplicas, nReaders int) (*ReplicasPoint, error) {
	w, err := newReplicaWorld(nReplicas)
	if err != nil {
		return nil, err
	}
	defer w.close()

	// Routed clients, one per reader.
	clients := make([]*core.RoutedClient, nReaders)
	for i := range clients {
		primary, err := core.Dial(w.primary, w.reader, w.trust)
		if err != nil {
			return nil, err
		}
		var reps []*core.Client
		for _, addr := range w.repAddrs {
			c, err := core.Dial(addr, w.reader, w.trust)
			if err != nil {
				return nil, err
			}
			reps = append(reps, c)
		}
		rc, err := core.NewRoutedClient(primary, reps, core.RouteOptions{MaxStaleness: cfg.MaxStaleness})
		if err != nil {
			return nil, err
		}
		defer rc.Close()
		clients[i] = rc
	}

	stop := make(chan struct{})
	var writes atomic.Int64
	var writeErr error
	var wwg sync.WaitGroup
	wwg.Add(1)
	go func() {
		defer wwg.Done()
		mgr := w.bank.Manager()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := mgr.Transfer(w.payer, w.payee, currency.FromMicro(1), accounts.TransferOptions{}); err != nil {
				writeErr = err
				return
			}
			writes.Add(1)
			time.Sleep(cfg.WritePause)
		}
	}()

	// Lag sampler: primary head vs. each follower's applied seq.
	var lagMu sync.Mutex
	var lags []int
	var swg sync.WaitGroup
	if len(w.fols) > 0 {
		swg.Add(1)
		go func() {
			defer swg.Done()
			tick := time.NewTicker(5 * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					head := w.store.CurrentSeq()
					for _, fol := range w.fols {
						lag := int(int64(head) - int64(fol.AppliedSeq()))
						if lag < 0 {
							lag = 0
						}
						lagMu.Lock()
						lags = append(lags, lag)
						lagMu.Unlock()
					}
				}
			}
		}()
	}

	// Readers hammer the routed query path for the window.
	var reads atomic.Int64
	readErrs := make([]error, nReaders)
	var rwg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(cfg.Window)
	for i, rc := range clients {
		rwg.Add(1)
		go func(i int, rc *core.RoutedClient) {
			defer rwg.Done()
			for time.Now().Before(deadline) {
				if _, err := rc.AccountDetails(w.acct); err != nil {
					readErrs[i] = err
					return
				}
				reads.Add(1)
			}
		}(i, rc)
	}
	rwg.Wait()
	elapsed := time.Since(start)
	close(stop)
	wwg.Wait()
	swg.Wait()
	if writeErr != nil {
		return nil, writeErr
	}
	for _, err := range readErrs {
		if err != nil {
			return nil, err
		}
	}

	// Staleness assertions: with writes quiesced, every replica must
	// converge to the primary's exact sequence, and report staleness
	// within the routing bound.
	var finalStale time.Duration
	head := w.store.CurrentSeq()
	for _, fol := range w.fols {
		if err := fol.WaitForSeq(head, 10*time.Second); err != nil {
			return nil, fmt.Errorf("replica did not converge: %w", err)
		}
		applied, _, stale, err := fol.Progress()
		if err != nil {
			return nil, err
		}
		if applied != head {
			return nil, fmt.Errorf("replica applied %d, primary head %d", applied, head)
		}
		if stale > cfg.MaxStaleness {
			return nil, fmt.Errorf("converged replica reports staleness %v beyond bound %v", stale, cfg.MaxStaleness)
		}
		if stale > finalStale {
			finalStale = stale
		}
	}
	// And a routed read must see the quiesced primary state exactly.
	details, err := clients[0].AccountDetails(w.acct)
	if err != nil {
		return nil, err
	}
	if details.AvailableBalance != currency.FromG(100) {
		return nil, fmt.Errorf("routed read of quiesced account = %v, want 100 G$", details.AvailableBalance)
	}

	p50, p95, max := lagPercentiles(lags)
	return &ReplicasPoint{
		Replicas:    nReplicas,
		Readers:     nReaders,
		Reads:       int(reads.Load()),
		ReadsPerSec: float64(reads.Load()) / elapsed.Seconds(),
		Writes:      int(writes.Load()),
		LagP50:      p50,
		LagP95:      p95,
		LagMax:      max,
		FinalStale:  finalStale,
	}, nil
}

func lagPercentiles(lags []int) (p50, p95, max int) {
	if len(lags) == 0 {
		return 0, 0, 0
	}
	sort.Ints(lags)
	p50 = lags[len(lags)/2]
	p95 = lags[len(lags)*95/100]
	max = lags[len(lags)-1]
	return
}

// WriteReplicas renders the sweep.
func WriteReplicas(w io.Writer, r *ReplicasResult) {
	fmt.Fprintf(w, "WAL-shipping read replicas: routed reads vs. replica count\n")
	fmt.Fprintf(w, "(lag in journal entries, sampled during sustained writes)\n\n")
	t := &Table{Header: []string{"replicas", "readers", "reads", "reads/sec", "writes", "lag p50", "lag p95", "lag max"}}
	for _, p := range r.Points {
		t.Add(p.Replicas, p.Readers, p.Reads, fmt.Sprintf("%.0f", p.ReadsPerSec), p.Writes, p.LagP50, p.LagP95, p.LagMax)
	}
	t.Write(w)
}
