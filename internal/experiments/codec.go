package experiments

import (
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"sync"
	"time"

	"gridbank/internal/accounts"
	"gridbank/internal/core"
	"gridbank/internal/currency"
	"gridbank/internal/db"
	"gridbank/internal/pki"
	"gridbank/internal/replica"
	"gridbank/internal/wire"
)

// The codec experiment A/Bs the negotiated bin1 formats against the
// seed JSON formats, interleaved in the same time window so host drift
// cancels out:
//
//   - frames: two clients on the same live bank — one offerless (seed
//     JSON frames) and one negotiated to bin1 — alternate identical
//     workloads over one TLS connection each;
//   - journal: the same transfer history is written under each WAL
//     generation, then replayed cold (db.Open is GridBank's startup);
//   - catch-up: a fresh replica bootstraps the same primary history
//     over a JSON-negotiated and a bin1-negotiated stream.
//
// Every cell asserts conservation — summed balances equal deposits —
// through the codec under test, so a decoder bug can't score.

// CodecExpConfig parameterizes RunCodecExp.
type CodecExpConfig struct {
	// Concurrency sweeps callers per client in the frame cells
	// (default 1, 16).
	Concurrency []int
	// OpsPerCaller is the per-caller op count per frame round
	// (default 120).
	OpsPerCaller int
	// Rounds is how many interleaved A/B rounds to average (default 2).
	Rounds int
	// JournalTransfers is the transfer count behind the replay and
	// catch-up cells (default 2000).
	JournalTransfers int
	// Dir holds journal files; defaults to a fresh temp directory.
	Dir string
}

// CodecFramePoint is one frame-throughput cell.
type CodecFramePoint struct {
	Workload    string  `json:"workload"`
	Concurrency int     `json:"concurrency"`
	Ops         int     `json:"ops_per_codec_round"`
	JSONOps     float64 `json:"json_ops_per_sec"`
	BinOps      float64 `json:"bin1_ops_per_sec"`
	Speedup     float64 `json:"speedup"`
}

// CodecJournalPoint is one WAL replay cell.
type CodecJournalPoint struct {
	Entries     uint64  `json:"journal_entries"`
	JSONReplay  float64 `json:"json_replay_ms"`
	BinReplay   float64 `json:"bin1_replay_ms"`
	JSONBytes   int64   `json:"json_bytes"`
	BinBytes    int64   `json:"bin1_bytes"`
	Speedup     float64 `json:"replay_speedup"`
	SizeRatio   float64 `json:"size_ratio"`
	JSONWriteMS float64 `json:"json_write_ms"`
	BinWriteMS  float64 `json:"bin1_write_ms"`
}

// CodecCatchupPoint is one replica catch-up cell.
type CodecCatchupPoint struct {
	Entries uint64  `json:"journal_entries"`
	JSONMS  float64 `json:"json_catchup_ms"`
	BinMS   float64 `json:"bin1_catchup_ms"`
	Speedup float64 `json:"speedup"`
}

// CodecResult is the full sweep.
type CodecResult struct {
	Frames  []CodecFramePoint   `json:"frames"`
	Journal []CodecJournalPoint `json:"journal"`
	Catchup []CodecCatchupPoint `json:"catchup"`
}

// codecClients dials one offerless (seed JSON) and one bin1-negotiated
// client against the world's server.
func codecClients(w *wireWorld) (jsonC, binC *core.Client, err error) {
	jsonC, err = core.Dial(w.addr, w.adminID, w.trust)
	if err != nil {
		return nil, nil, err
	}
	binC, err = core.Dial(w.addr, w.adminID, w.trust)
	if err != nil {
		jsonC.Close()
		return nil, nil, err
	}
	binC.OfferCodecs = []string{wire.CodecBin1, wire.CodecJSON}
	return jsonC, binC, nil
}

// runCodecRound drives concurrency workers for ops calls each through
// one client (one codec).
func runCodecRound(w *wireWorld, c *core.Client, workload string, concurrency, ops int) (float64, error) {
	call := func(worker int) error {
		switch workload {
		case "checkfunds":
			return c.CheckFunds(w.payers[worker], currency.FromMicro(1))
		case "transfer":
			_, err := c.DirectTransfer(w.payers[worker], w.payees[worker], currency.FromMicro(1), "")
			return err
		default: // "details": the JSON long-tail under binary frames
			_, err := c.AccountDetails(w.payers[worker])
			return err
		}
	}
	errs := make([]error, concurrency)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < concurrency; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for n := 0; n < ops; n++ {
				if err := call(i); err != nil {
					errs[i] = fmt.Errorf("%s worker %d: %w", workload, i, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return float64(concurrency*ops) / elapsed.Seconds(), nil
}

// runCodecFrames sweeps workload × concurrency with interleaved
// json/bin1 rounds on the same world.
func runCodecFrames(cfg CodecExpConfig, res *CodecResult) error {
	maxConc := 0
	for _, c := range cfg.Concurrency {
		if c > maxConc {
			maxConc = c
		}
	}
	w, err := newWireWorld(nil, maxConc)
	if err != nil {
		return err
	}
	defer w.close()
	jsonC, binC, err := codecClients(w)
	if err != nil {
		return err
	}
	defer jsonC.Close()
	defer binC.Close()

	for _, workload := range []string{"checkfunds", "transfer", "details"} {
		for _, conc := range cfg.Concurrency {
			var j, b float64
			for r := 0; r < cfg.Rounds; r++ {
				jr, err := runCodecRound(w, jsonC, workload, conc, cfg.OpsPerCaller)
				if err != nil {
					return err
				}
				br, err := runCodecRound(w, binC, workload, conc, cfg.OpsPerCaller)
				if err != nil {
					return err
				}
				j += jr
				b += br
			}
			j /= float64(cfg.Rounds)
			b /= float64(cfg.Rounds)
			res.Frames = append(res.Frames, CodecFramePoint{
				Workload:    workload,
				Concurrency: conc,
				Ops:         conc * cfg.OpsPerCaller,
				JSONOps:     j,
				BinOps:      b,
				Speedup:     b / j,
			})
		}
	}
	// Conservation through BOTH codecs: the two views must agree with
	// the deposits and with each other.
	saved := w.client
	defer func() { w.client = saved }()
	for _, c := range []*core.Client{jsonC, binC} {
		w.client = c
		if err := w.assertConservation(); err != nil {
			return err
		}
	}
	return nil
}

// buildCodecLedger writes the canonical transfer history under one WAL
// generation and returns the write duration, entry count, and funded
// total for the conservation assert.
func buildCodecLedger(path, codec string, transfers int) (time.Duration, uint64, currency.Amount, error) {
	j, err := db.OpenFileJournalCodec(path, false, codec)
	if err != nil {
		return 0, 0, 0, err
	}
	store, err := db.Open(j)
	if err != nil {
		return 0, 0, 0, err
	}
	mgr, err := accounts.NewManager(store, accounts.Config{})
	if err != nil {
		store.Close()
		return 0, 0, 0, err
	}
	payer, err := mgr.CreateAccount("CN=codec-payer", "VO-CODEC", "")
	if err != nil {
		store.Close()
		return 0, 0, 0, err
	}
	payee, err := mgr.CreateAccount("CN=codec-payee", "VO-CODEC", "")
	if err != nil {
		store.Close()
		return 0, 0, 0, err
	}
	funded := currency.FromG(1_000_000)
	if err := mgr.Admin().Deposit(payer.AccountID, funded); err != nil {
		store.Close()
		return 0, 0, 0, err
	}
	start := time.Now()
	for i := 0; i < transfers; i++ {
		if _, err := mgr.Transfer(payer.AccountID, payee.AccountID, currency.FromMicro(1), accounts.TransferOptions{}); err != nil {
			store.Close()
			return 0, 0, 0, err
		}
	}
	wrote := time.Since(start)
	entries := store.CurrentSeq()
	if err := store.Close(); err != nil {
		return 0, 0, 0, err
	}
	return wrote, entries, funded, nil
}

// replayCodecLedger reopens the journal — GridBank's startup path —
// and asserts conservation on the recovered store.
func replayCodecLedger(path, codec string, funded currency.Amount) (time.Duration, error) {
	start := time.Now()
	j, err := db.OpenFileJournalCodec(path, false, codec)
	if err != nil {
		return 0, err
	}
	store, err := db.Open(j)
	if err != nil {
		return 0, err
	}
	replayed := time.Since(start)
	defer store.Close()
	mgr, err := accounts.NewManager(store, accounts.Config{})
	if err != nil {
		return 0, err
	}
	total, err := mgr.TotalBalance()
	if err != nil {
		return 0, err
	}
	if total != funded {
		return 0, fmt.Errorf("conservation violated after %s replay: balances sum to %v, deposited %v", codec, total, funded)
	}
	return replayed, nil
}

// runCodecJournal A/Bs cold-start replay of the same history under each
// WAL generation, interleaved per round.
func runCodecJournal(cfg CodecExpConfig, res *CodecResult) error {
	pt := CodecJournalPoint{}
	for r := 0; r < cfg.Rounds; r++ {
		for _, codec := range []string{wire.CodecJSON, wire.CodecBin1} {
			path := filepath.Join(cfg.Dir, fmt.Sprintf("ledger-%s-%d.wal", codec, r))
			wrote, entries, funded, err := buildCodecLedger(path, codec, cfg.JournalTransfers)
			if err != nil {
				return err
			}
			replayed, err := replayCodecLedger(path, codec, funded)
			if err != nil {
				return err
			}
			info, err := os.Stat(path)
			if err != nil {
				return err
			}
			pt.Entries = entries
			if codec == wire.CodecJSON {
				pt.JSONReplay += float64(replayed.Milliseconds())
				pt.JSONWriteMS += float64(wrote.Milliseconds())
				pt.JSONBytes = info.Size()
			} else {
				pt.BinReplay += float64(replayed.Milliseconds())
				pt.BinWriteMS += float64(wrote.Milliseconds())
				pt.BinBytes = info.Size()
			}
		}
	}
	rounds := float64(cfg.Rounds)
	pt.JSONReplay /= rounds
	pt.BinReplay /= rounds
	pt.JSONWriteMS /= rounds
	pt.BinWriteMS /= rounds
	pt.Speedup = pt.JSONReplay / pt.BinReplay
	pt.SizeRatio = float64(pt.JSONBytes) / float64(pt.BinBytes)
	res.Journal = append(res.Journal, pt)
	return nil
}

// runCodecCatchupCell measures one codec: a follower connects to a
// fresh primary (tiny bootstrap snapshot — cold bootstrap ships state
// in the JSON hello regardless of codec, so it can't distinguish
// them), then the whole transfer history streams through the
// negotiated codec; the clock runs from the first transfer until the
// follower has applied the head.
func runCodecCatchupCell(cfg CodecExpConfig, offers []string, name string) (time.Duration, uint64, error) {
	ca, err := pki.NewCA("Codec CA", "VO-CODEC", time.Hour)
	if err != nil {
		return 0, 0, err
	}
	trust := pki.NewTrustStore(ca.Certificate())
	pubID, err := ca.Issue(pki.IssueOptions{CommonName: "gridbank", Organization: "VO-CODEC", IsServer: true})
	if err != nil {
		return 0, 0, err
	}
	store := db.MustOpenMemory()
	mgr, err := accounts.NewManager(store, accounts.Config{})
	if err != nil {
		return 0, 0, err
	}
	payer, err := mgr.CreateAccount("CN=codec-payer", "VO-CODEC", "")
	if err != nil {
		return 0, 0, err
	}
	payee, err := mgr.CreateAccount("CN=codec-payee", "VO-CODEC", "")
	if err != nil {
		return 0, 0, err
	}
	funded := currency.FromG(1_000_000)
	if err := mgr.Admin().Deposit(payer.AccountID, funded); err != nil {
		return 0, 0, err
	}

	pub, err := replica.NewPublisher(replica.PublisherConfig{
		Store:       store,
		Identity:    pubID,
		Trust:       trust,
		PrimaryAddr: "127.0.0.1:1",
		Heartbeat:   50 * time.Millisecond,
	})
	if err != nil {
		return 0, 0, err
	}
	pln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, 0, err
	}
	go pub.Serve(pln)
	defer pub.Close()

	folID, err := ca.Issue(pki.IssueOptions{CommonName: "codec-replica-" + name, Organization: "VO-CODEC", IsServer: true})
	if err != nil {
		return 0, 0, err
	}
	fol, err := replica.StartFollower(replica.FollowerConfig{
		PublisherAddr: pln.Addr().String(),
		Identity:      folID,
		Trust:         trust,
		OfferCodecs:   offers,
		RetryInterval: 50 * time.Millisecond,
	})
	if err != nil {
		return 0, 0, err
	}
	defer fol.Close()
	if err := fol.WaitReady(30 * time.Second); err != nil {
		return 0, 0, err
	}

	start := time.Now()
	for i := 0; i < 2*cfg.JournalTransfers; i++ {
		if _, err := mgr.Transfer(payer.AccountID, payee.AccountID, currency.FromMicro(1), accounts.TransferOptions{}); err != nil {
			return 0, 0, err
		}
	}
	head := store.CurrentSeq()
	if err := fol.WaitForSeq(head, 60*time.Second); err != nil {
		return 0, 0, err
	}
	caught := time.Since(start)

	fmgr, err := accounts.NewManager(fol.Store(), accounts.Config{})
	if err != nil {
		return 0, 0, err
	}
	total, err := fmgr.TotalBalance()
	if err != nil {
		return 0, 0, err
	}
	if total != funded {
		return 0, 0, fmt.Errorf("conservation violated after %s catch-up: balances sum to %v, deposited %v", name, total, funded)
	}
	return caught, head, nil
}

// runCodecCatchup A/Bs the negotiated stream codec, interleaved per
// round on identical fresh worlds.
func runCodecCatchup(cfg CodecExpConfig, res *CodecResult) error {
	pt := CodecCatchupPoint{}
	for r := 0; r < cfg.Rounds; r++ {
		j, entries, err := runCodecCatchupCell(cfg, nil, "json") // offerless hello = seed stream
		if err != nil {
			return err
		}
		b, _, err := runCodecCatchupCell(cfg, []string{wire.CodecBin1, wire.CodecJSON}, "bin1")
		if err != nil {
			return err
		}
		pt.Entries = entries
		pt.JSONMS += float64(j.Milliseconds())
		pt.BinMS += float64(b.Milliseconds())
	}
	pt.JSONMS /= float64(cfg.Rounds)
	pt.BinMS /= float64(cfg.Rounds)
	pt.Speedup = pt.JSONMS / pt.BinMS
	res.Catchup = append(res.Catchup, pt)
	return nil
}

// RunCodecExp runs the full codec A/B sweep.
func RunCodecExp(cfg CodecExpConfig) (*CodecResult, error) {
	if len(cfg.Concurrency) == 0 {
		cfg.Concurrency = []int{1, 16}
	}
	if cfg.OpsPerCaller <= 0 {
		cfg.OpsPerCaller = 120
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = 2
	}
	if cfg.JournalTransfers <= 0 {
		cfg.JournalTransfers = 2000
	}
	if cfg.Dir == "" {
		dir, err := os.MkdirTemp("", "gridbank-codec")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		cfg.Dir = dir
	}
	res := &CodecResult{}
	if err := runCodecFrames(cfg, res); err != nil {
		return nil, fmt.Errorf("codec frames: %w", err)
	}
	if err := runCodecJournal(cfg, res); err != nil {
		return nil, fmt.Errorf("codec journal: %w", err)
	}
	if err := runCodecCatchup(cfg, res); err != nil {
		return nil, fmt.Errorf("codec catch-up: %w", err)
	}
	return res, nil
}

// WriteCodecExp renders the sweep.
func WriteCodecExp(w io.Writer, r *CodecResult) {
	fmt.Fprintf(w, "Negotiated bin1 codec vs. seed JSON, interleaved A/B in the same window\n")
	fmt.Fprintf(w, "(conservation asserted through the codec under test in every cell)\n\n")
	ft := &Table{Header: []string{"workload", "callers", "json ops/s", "bin1 ops/s", "speedup"}}
	for _, p := range r.Frames {
		ft.Add(p.Workload, p.Concurrency,
			fmt.Sprintf("%.0f", p.JSONOps), fmt.Sprintf("%.0f", p.BinOps),
			fmt.Sprintf("%.2fx", p.Speedup))
	}
	ft.Write(w)
	fmt.Fprintf(w, "\nWAL cold-start replay (same history, both generations):\n\n")
	jt := &Table{Header: []string{"entries", "json replay", "bin1 replay", "speedup", "json bytes", "bin1 bytes", "size ratio"}}
	for _, p := range r.Journal {
		jt.Add(p.Entries,
			fmt.Sprintf("%.0fms", p.JSONReplay), fmt.Sprintf("%.0fms", p.BinReplay),
			fmt.Sprintf("%.2fx", p.Speedup),
			p.JSONBytes, p.BinBytes, fmt.Sprintf("%.2fx", p.SizeRatio))
	}
	jt.Write(w)
	fmt.Fprintf(w, "\nReplica catch-up through the negotiated stream (first write to applied head):\n\n")
	ct := &Table{Header: []string{"entries", "json catch-up", "bin1 catch-up", "speedup"}}
	for _, p := range r.Catchup {
		ct.Add(p.Entries,
			fmt.Sprintf("%.0fms", p.JSONMS), fmt.Sprintf("%.0fms", p.BinMS),
			fmt.Sprintf("%.2fx", p.Speedup))
	}
	ct.Write(w)
}
