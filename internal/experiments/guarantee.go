package experiments

import (
	"fmt"
	"io"
	"sync"

	"gridbank/internal/accounts"
	"gridbank/internal/core"
	"gridbank/internal/currency"
	"gridbank/internal/db"
	"gridbank/internal/payment"
)

// GuaranteeConfig parameterizes the §3.4 payment-guarantee experiment.
type GuaranteeConfig struct {
	// Cheques issued concurrently against one account (default 50).
	Cheques int
	// ChequeLimit per cheque (default 100 G$).
	ChequeLimit currency.Amount
	// Balance on the drawer account (default 1000 G$ — enough for 10
	// cheques, not 50).
	Balance currency.Amount
}

func (c *GuaranteeConfig) defaults() {
	if c.Cheques <= 0 {
		c.Cheques = 50
	}
	if c.ChequeLimit == 0 {
		c.ChequeLimit = currency.FromG(100)
	}
	if c.Balance == 0 {
		c.Balance = currency.FromG(1000)
	}
}

// GuaranteeReport compares GridBank's fund-locking guarantee against a
// naive no-locking baseline.
type GuaranteeReport struct {
	Cheques     int
	ChequeLimit currency.Amount
	Balance     currency.Amount

	// With locking (§3.4): issuance is refused once the balance is fully
	// reserved, and every issued cheque redeems in full.
	LockedIssued    int
	LockedRefused   int
	LockedUnpaid    int // redemption failures — must be 0
	LockedOverdraft bool

	// Without locking (baseline: availability check at issue, no
	// reservation): everything is issued, and providers discover at
	// redemption that the money is gone.
	NaiveIssued int
	NaiveUnpaid int // cheques that could not be (fully) honoured
}

// RunGuarantee reproduces §3.4: "when a credit card approach is taken ...
// clients can easily spend more than they have in the account. To
// guarantee payment when issuing GridCheques, GridBank will have to lock
// a certain amount of funds for the cheque to be valid."
func RunGuarantee(cfg GuaranteeConfig) (*GuaranteeReport, error) {
	cfg.defaults()
	report := &GuaranteeReport{Cheques: cfg.Cheques, ChequeLimit: cfg.ChequeLimit, Balance: cfg.Balance}

	// --- GridBank with the locking guarantee -----------------------------
	w, err := NewWorld()
	if err != nil {
		return nil, err
	}
	alice, acct, err := w.NewActor("alice", cfg.Balance)
	if err != nil {
		return nil, err
	}
	gsp, _, err := w.NewActor("gsp", 0)
	if err != nil {
		return nil, err
	}
	var mu sync.Mutex
	var issued []*payment.SignedCheque
	var wg sync.WaitGroup
	for i := 0; i < cfg.Cheques; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := w.Bank.RequestCheque(alice.SubjectName(), &core.RequestChequeRequest{
				AccountID: acct, Amount: cfg.ChequeLimit, PayeeCert: gsp.SubjectName(),
			})
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				report.LockedRefused++
				return
			}
			issued = append(issued, &resp.Cheque)
		}()
	}
	wg.Wait()
	report.LockedIssued = len(issued)
	// Every issued cheque is fully redeemable.
	for _, sc := range issued {
		if _, err := w.Bank.RedeemCheque(gsp.SubjectName(), &core.RedeemChequeRequest{
			Cheque: *sc,
			Claim:  payment.ChequeClaim{Serial: sc.Cheque.Serial, Amount: cfg.ChequeLimit},
		}); err != nil {
			report.LockedUnpaid++
		}
	}
	finalAcct, err := w.Bank.Manager().Details(acct)
	if err != nil {
		return nil, err
	}
	report.LockedOverdraft = finalAcct.AvailableBalance.IsNegative()

	// --- Naive baseline: availability check, no reservation ---------------
	// Modeled directly on the ledger: issuance succeeds while the
	// *unreserved* balance covers the limit (but nothing is reserved, so
	// every check passes while the balance is untouched); redemption is a
	// plain transfer that fails once the money is gone.
	mgr, err := accounts.NewManager(db.MustOpenMemory(), accounts.Config{})
	if err != nil {
		return nil, err
	}
	na, err := mgr.CreateAccount("CN=alice", "", "")
	if err != nil {
		return nil, err
	}
	ng, err := mgr.CreateAccount("CN=gsp", "", "")
	if err != nil {
		return nil, err
	}
	if err := mgr.Admin().Deposit(na.AccountID, cfg.Balance); err != nil {
		return nil, err
	}
	naiveIssued := 0
	for i := 0; i < cfg.Cheques; i++ {
		acctState, err := mgr.Details(na.AccountID)
		if err != nil {
			return nil, err
		}
		// The naive bank checks the balance covers *this* cheque, blind
		// to the other outstanding ones.
		if acctState.AvailableBalance.Cmp(cfg.ChequeLimit) >= 0 {
			naiveIssued++
		}
	}
	report.NaiveIssued = naiveIssued
	for i := 0; i < naiveIssued; i++ {
		if _, err := mgr.Transfer(na.AccountID, ng.AccountID, cfg.ChequeLimit, accounts.TransferOptions{}); err != nil {
			report.NaiveUnpaid++
		}
	}
	return report, nil
}

// WriteGuarantee renders the comparison.
func WriteGuarantee(w io.Writer, r *GuaranteeReport) {
	fmt.Fprintf(w, "§3.4 — payment guarantee: %d concurrent cheques of %s G$ against a %s G$ balance\n",
		r.Cheques, r.ChequeLimit, r.Balance)
	t := &Table{Header: []string{"scheme", "issued", "refused at issue", "unpaid at redemption", "overdraft"}}
	t.Add("locked funds (GridBank §3.4)", r.LockedIssued, r.LockedRefused, r.LockedUnpaid, r.LockedOverdraft)
	t.Add("naive (no reservation)", r.NaiveIssued, 0, r.NaiveUnpaid, false)
	t.Write(w)
	fmt.Fprintln(w, "\nshape: locking converts provider-side redemption failures into up-front issuance refusals.")
}
