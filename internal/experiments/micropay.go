package experiments

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"
	"time"

	"gridbank/internal/accounts"
	"gridbank/internal/core"
	"gridbank/internal/currency"
	"gridbank/internal/db"
	"gridbank/internal/micropay"
	"gridbank/internal/payment"
	"gridbank/internal/pki"
	"gridbank/internal/shard"
	"gridbank/internal/usage"
)

// The micropay experiment measures the streaming GridHash fast path on
// the durable journal path against the flow the paper's §5.2 implies
// for pay-as-you-go: one synchronous RedeemChain RPC per chain tick —
// re-verifying the chain signature and paying the full per-transaction
// fsync chain every word. The fast path batches T ticks per claim,
// verifies preimages incrementally against the session anchor, and
// coalesces many claims per (shard, drawer) into one group-committed
// redemption transaction.
//
// Methodology: baseline and pipeline rounds are interleaved (B C B C …
// with the order flipped every cell) so environmental drift — shared
// disk, CPU frequency, noisy neighbours — lands on both sides; the
// reported baseline is the median across all interleaved rounds. Every
// pipeline cell asserts exactly-once settlement (each payee holds
// exactly ticks × perWord) and exact conservation (total balances and
// 2PC escrow unchanged), then runs a crash round: more claims, the
// pipeline killed at a settle boundary, every store rebooted from its
// journal, the same batch re-submitted, and both asserts re-checked.

// MicropayExpConfig parameterizes RunMicropay.
type MicropayExpConfig struct {
	// Chains is the number of concurrent payment streams per cell
	// (default 4).
	Chains int
	// TicksPerChain is how many chain words each stream covers
	// (default 4096).
	TicksPerChain int
	// ClaimIntervals sweeps T, the ticks carried per claim (default 16, 64).
	ClaimIntervals []int
	// BatchSizes sweeps claims per redemption batch (default 64).
	BatchSizes []int
	// ShardCounts sweeps ledger shards (default 1, 2).
	ShardCounts []int
	// Workers is the pipeline's settlement worker count (default 2).
	Workers int
	// BaselineTicks sizes each interleaved naive round: that many
	// synchronous per-tick RedeemChain calls (default 128).
	BaselineTicks int
	// CrashTicks is the extra stream driven through the per-cell crash
	// round (default 48, claimed every 8 ticks).
	CrashTicks int
	// Dir holds the journals; defaults to a fresh temp directory.
	Dir string
}

// MicropayPoint is one measured pipeline cell.
type MicropayPoint struct {
	Shards        int           `json:"shards"`
	ClaimInterval int           `json:"claim_interval"`
	BatchSize     int           `json:"batch_size"`
	Chains        int           `json:"chains"`
	Ticks         int           `json:"ticks"`
	Claims        int           `json:"claims"`
	Elapsed       time.Duration `json:"elapsed"`
	TicksPerSec   float64       `json:"ticks_per_sec"`
	Batches       uint64        `json:"batches"` // redemption transactions used
	CrossShard    uint64        `json:"cross_shard"`
	Speedup       float64       `json:"speedup_vs_naive"`
}

// MicropayResult is the full sweep.
type MicropayResult struct {
	BaselineTicks  int
	BaselinePerSec float64   // median of the interleaved rounds
	BaselineRounds []float64 // every interleaved measurement
	Points         []MicropayPoint
}

// RunMicropay sweeps the streaming pipeline against interleaved naive
// baselines.
func RunMicropay(cfg MicropayExpConfig) (*MicropayResult, error) {
	if cfg.Chains <= 0 {
		cfg.Chains = 4
	}
	if cfg.TicksPerChain <= 0 {
		cfg.TicksPerChain = 4096
	}
	if len(cfg.ClaimIntervals) == 0 {
		cfg.ClaimIntervals = []int{16, 64}
	}
	if len(cfg.BatchSizes) == 0 {
		cfg.BatchSizes = []int{64}
	}
	if len(cfg.ShardCounts) == 0 {
		cfg.ShardCounts = []int{1, 2}
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.BaselineTicks <= 0 {
		cfg.BaselineTicks = 128
	}
	if cfg.CrashTicks <= 0 {
		cfg.CrashTicks = 48
	}
	if cfg.Dir == "" {
		dir, err := os.MkdirTemp("", "gridbank-micropay")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		cfg.Dir = dir
	}
	res := &MicropayResult{BaselineTicks: cfg.BaselineTicks}
	type cellKey struct{ shards, interval, batch int }
	var cells []cellKey
	for _, shards := range cfg.ShardCounts {
		for _, interval := range cfg.ClaimIntervals {
			for _, batch := range cfg.BatchSizes {
				cells = append(cells, cellKey{shards, interval, batch})
			}
		}
	}
	// Interleave: odd cells run baseline-then-pipeline, even cells
	// pipeline-then-baseline, plus one trailing baseline so both sides
	// see every phase of the run.
	for i, c := range cells {
		runBaseline := func() error {
			b, err := runMicropayBaseline(cfg, i)
			if err != nil {
				return fmt.Errorf("micropay baseline round %d: %w", i, err)
			}
			res.BaselineRounds = append(res.BaselineRounds, b)
			return nil
		}
		runCell := func() error {
			pt, err := runMicropayCell(cfg, c.shards, c.interval, c.batch, i)
			if err != nil {
				return fmt.Errorf("micropay cell shards=%d interval=%d batch=%d: %w", c.shards, c.interval, c.batch, err)
			}
			res.Points = append(res.Points, *pt)
			return nil
		}
		order := []func() error{runBaseline, runCell}
		if i%2 == 1 {
			order[0], order[1] = order[1], order[0]
		}
		for _, f := range order {
			if err := f(); err != nil {
				return nil, err
			}
		}
	}
	sorted := append([]float64(nil), res.BaselineRounds...)
	sort.Float64s(sorted)
	res.BaselinePerSec = sorted[len(sorted)/2]
	for i := range res.Points {
		res.Points[i].Speedup = res.Points[i].TicksPerSec / res.BaselinePerSec
	}
	return res, nil
}

// runMicropayBaseline measures the naive flow on the durable path: a
// full bank (trust store, signed chain issuance), then one synchronous
// RedeemChain per tick — signature verification plus an fsynced ledger
// transaction per word.
func runMicropayBaseline(cfg MicropayExpConfig, round int) (float64, error) {
	ca, err := pki.NewCA("Micropay Exp CA", "VO-X", 24*time.Hour)
	if err != nil {
		return 0, err
	}
	bankID, err := ca.Issue(pki.IssueOptions{CommonName: "gridbank", Organization: "VO-X", IsServer: true})
	if err != nil {
		return 0, err
	}
	gspID, err := ca.Issue(pki.IssueOptions{CommonName: "gsp", Organization: "VO-X"})
	if err != nil {
		return 0, err
	}
	trust := pki.NewTrustStore(ca.Certificate())
	journal, err := db.OpenFileJournal(filepath.Join(cfg.Dir, fmt.Sprintf("baseline-%02d.wal", round)), true)
	if err != nil {
		return 0, err
	}
	store, err := db.Open(journal)
	if err != nil {
		return 0, err
	}
	defer store.Close()
	const admin = "CN=micropay-admin"
	bank, err := core.NewBank(store, core.BankConfig{Identity: bankID, Trust: trust, Admins: []string{admin}})
	if err != nil {
		return 0, err
	}
	consumer, err := bank.CreateAccount("CN=consumer", &core.CreateAccountRequest{})
	if err != nil {
		return 0, err
	}
	if _, err := bank.CreateAccount(gspID.SubjectName(), &core.CreateAccountRequest{}); err != nil {
		return 0, err
	}
	if _, err := bank.AdminDeposit(admin, &core.AdminAmountRequest{
		AccountID: consumer.Account.AccountID, Amount: currency.FromG(10),
	}); err != nil {
		return 0, err
	}
	resp, err := bank.RequestChain("CN=consumer", &core.RequestChainRequest{
		AccountID: consumer.Account.AccountID,
		PayeeCert: gspID.SubjectName(),
		Length:    cfg.BaselineTicks,
		PerWord:   currency.FromMicro(100),
		TTL:       time.Hour,
	})
	if err != nil {
		return 0, err
	}
	chain := &payment.Chain{Commitment: resp.Chain.Commitment, Seed: resp.Seed}
	words := make([][]byte, cfg.BaselineTicks+1)
	for i := 1; i <= cfg.BaselineTicks; i++ {
		if words[i], err = chain.Word(i); err != nil {
			return 0, err
		}
	}
	start := time.Now()
	for i := 1; i <= cfg.BaselineTicks; i++ {
		if _, err := bank.RedeemChain(gspID.SubjectName(), &core.RedeemChainRequest{
			Chain: resp.Chain,
			Claim: payment.ChainClaim{Serial: chain.Commitment.Serial, Index: i, Word: words[i]},
		}); err != nil {
			return 0, fmt.Errorf("tick %d: %w", i, err)
		}
	}
	return float64(cfg.BaselineTicks) / time.Since(start).Seconds(), nil
}

// micropayCellWorld is one cell's durable deployment: sharded ledger,
// redeemer and pipeline, rebuildable from journals for the crash round.
type micropayCellWorld struct {
	dir     string
	shards  int
	stores  []*db.Store
	spool   *db.Store
	led     *shard.Ledger
	red     *micropay.Redeemer
	pipe    *micropay.Pipeline
	pending int

	armed atomic.Bool
	died  atomic.Bool
}

func (w *micropayCellWorld) open(workers, batch int) error {
	w.stores = make([]*db.Store, w.shards)
	for i := range w.stores {
		j, err := db.OpenFileJournal(filepath.Join(w.dir, fmt.Sprintf("shard-%d.wal", i)), true)
		if err != nil {
			return err
		}
		st, err := db.Open(j)
		if err != nil {
			return err
		}
		w.stores[i] = st
	}
	led, err := shard.New(w.stores, shard.Config{})
	if err != nil {
		return err
	}
	w.led = led
	red, err := micropay.NewRedeemer(usage.WrapSharded(led), nil)
	if err != nil {
		return err
	}
	w.red = red
	sj, err := db.OpenFileJournal(filepath.Join(w.dir, "spool.wal"), true)
	if err != nil {
		return err
	}
	spool, err := db.Open(sj)
	if err != nil {
		return err
	}
	w.spool = spool
	pipe, err := micropay.New(micropay.Config{
		Redeemer:      red,
		FindAccount:   led.FindByCertificate,
		Spool:         spool,
		BatchSize:     batch,
		Workers:       workers,
		MaxPending:    w.pending,
		RetryInterval: time.Millisecond,
		CrashHook: func(b micropay.Boundary, _ string) error {
			if !w.armed.Load() {
				return nil
			}
			if b == micropay.BoundarySettled {
				w.died.Store(true)
			}
			if w.died.Load() {
				return errors.New("injected crash")
			}
			return nil
		},
	})
	if err != nil {
		return err
	}
	w.pipe = pipe
	return nil
}

func (w *micropayCellWorld) close() {
	if w.pipe != nil {
		w.pipe.Close()
	}
	if w.spool != nil {
		w.spool.Close()
	}
	for _, st := range w.stores {
		if st != nil {
			st.Close()
		}
	}
}

func (w *micropayCellWorld) reboot(workers, batch int) error {
	w.close()
	return w.open(workers, batch)
}

// micropayStream is one issued chain with its words precomputed.
type micropayStream struct {
	chain *payment.Chain
	payee accounts.ID
	cert  string
	words [][]byte
}

// issueStream locks the chain total against the drawer and registers
// the chain row — what RequestChain does, without the signature layer
// the pipeline never re-reads.
func issueStream(w *micropayCellWorld, drawer accounts.ID, drawerCert, payeeCert string, payee accounts.ID, ticks int) (*micropayStream, error) {
	chain, err := payment.NewChain(drawer, drawerCert, payeeCert,
		ticks, currency.FromMicro(100), currency.GridDollar, time.Now(), time.Hour)
	if err != nil {
		return nil, err
	}
	total, err := chain.Commitment.Total()
	if err != nil {
		return nil, err
	}
	if err := w.led.CheckFunds(drawer, total); err != nil {
		return nil, err
	}
	if err := w.red.Put(&micropay.ChainRow{Commitment: chain.Commitment, State: micropay.StateOutstanding}); err != nil {
		return nil, err
	}
	s := &micropayStream{chain: chain, payee: payee, cert: payeeCert, words: make([][]byte, ticks+1)}
	for i := 1; i <= ticks; i++ {
		if s.words[i], err = chain.Word(i); err != nil {
			return nil, err
		}
	}
	return s, nil
}

func runMicropayCell(cfg MicropayExpConfig, shards, interval, batch, cellNo int) (*MicropayPoint, error) {
	dir := filepath.Join(cfg.Dir, fmt.Sprintf("cell-%02d", cellNo))
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return nil, err
	}
	claims := cfg.Chains * (cfg.TicksPerChain / interval)
	w := &micropayCellWorld{dir: dir, shards: shards,
		pending: claims + cfg.CrashTicks + 16}
	if err := w.open(cfg.Workers, batch); err != nil {
		return nil, err
	}
	defer w.close()

	drawer, err := w.led.CreateAccount("CN=mp-consumer", "VO-X", "")
	if err != nil {
		return nil, err
	}
	if err := w.led.Deposit(drawer.AccountID, currency.FromG(100)); err != nil {
		return nil, err
	}
	streams := make([]*micropayStream, cfg.Chains)
	for i := range streams {
		cert := fmt.Sprintf("CN=mp-gsp-%d", i)
		a, err := w.led.CreateAccount(cert, "VO-X", "")
		if err != nil {
			return nil, err
		}
		streams[i], err = issueStream(w, drawer.AccountID, "CN=mp-consumer", cert, a.AccountID, cfg.TicksPerChain)
		if err != nil {
			return nil, err
		}
	}
	before, err := w.led.TotalBalance()
	if err != nil {
		return nil, err
	}

	// The measured run: all streams tick concurrently (round-robin
	// interleave), a claim every `interval` ticks, submitted in
	// wire-sized chunks while the workers settle behind the intake.
	start := time.Now()
	chunk := make(map[int][]micropay.Claim, cfg.Chains)
	flush := func() error {
		for si, cs := range chunk {
			if len(cs) == 0 {
				continue
			}
			res, err := w.pipe.Submit(streams[si].cert, cs)
			if err != nil {
				return err
			}
			if len(res.Rejected) > 0 {
				return fmt.Errorf("unexpected rejections: %+v", res.Rejected)
			}
			chunk[si] = cs[:0]
		}
		return nil
	}
	queued := 0
	for idx := interval; idx <= cfg.TicksPerChain; idx += interval {
		for si, s := range streams {
			chunk[si] = append(chunk[si], micropay.Claim{
				Serial: s.chain.Commitment.Serial, Index: idx, Word: s.words[idx],
			})
			queued++
		}
		if queued >= 256 {
			if err := flush(); err != nil {
				return nil, err
			}
			queued = 0
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	st, err := w.pipe.Drain(5 * time.Minute)
	if err != nil {
		return nil, fmt.Errorf("drain: %v (stats %+v)", err, st)
	}
	elapsed := time.Since(start)
	wantTicks := uint64(cfg.Chains * (cfg.TicksPerChain / interval) * interval)
	if st.SettledTicks != wantTicks || st.Failed != 0 {
		return nil, fmt.Errorf("settled %d of %d ticks (failed %d)", st.SettledTicks, wantTicks, st.Failed)
	}
	batches, crossShard := st.Batches, st.CrossShard
	if err := assertMicropayCell(w, streams, before); err != nil {
		return nil, err
	}

	// Crash round: a fresh stream, killed at the first settle boundary
	// (persistent death), every store rebooted from its journal, the
	// same claims re-submitted by an at-least-once payee, recovery
	// drained, and the books re-asserted.
	crashCert := "CN=mp-gsp-crash"
	ca, err := w.led.CreateAccount(crashCert, "VO-X", "")
	if err != nil {
		return nil, err
	}
	crash, err := issueStream(w, drawer.AccountID, "CN=mp-consumer", crashCert, ca.AccountID, cfg.CrashTicks)
	if err != nil {
		return nil, err
	}
	var crashClaims []micropay.Claim
	for idx := 8; idx <= cfg.CrashTicks; idx += 8 {
		crashClaims = append(crashClaims, micropay.Claim{
			Serial: crash.chain.Commitment.Serial, Index: idx, Word: crash.words[idx],
		})
	}
	w.armed.Store(true)
	if _, err := w.pipe.Submit(crashCert, crashClaims); err != nil {
		return nil, err
	}
	deadline := time.Now().Add(10 * time.Second)
	for !w.died.Load() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if !w.died.Load() {
		return nil, errors.New("crash round never reached a settle boundary")
	}
	w.armed.Store(false)
	w.died.Store(false)
	if err := w.reboot(cfg.Workers, batch); err != nil {
		return nil, err
	}
	if _, err := w.pipe.Submit(crashCert, crashClaims); err != nil {
		return nil, err
	}
	if st, err = w.pipe.Drain(5 * time.Minute); err != nil {
		return nil, fmt.Errorf("post-crash drain: %v (stats %+v)", err, st)
	}
	if st.Failed != 0 {
		return nil, fmt.Errorf("post-crash failures: %+v", st)
	}
	crashWant := currency.FromMicro(int64(100 * (cfg.CrashTicks / 8 * 8)))
	got, err := w.led.Details(ca.AccountID)
	if err != nil {
		return nil, err
	}
	if got.AvailableBalance != crashWant {
		return nil, fmt.Errorf("crash round exactly-once violated: payee holds %s, want %s", got.AvailableBalance, crashWant)
	}
	if err := assertMicropayCell(w, streams, before); err != nil {
		return nil, fmt.Errorf("after crash recovery: %w", err)
	}

	return &MicropayPoint{
		Shards:        shards,
		ClaimInterval: interval,
		BatchSize:     batch,
		Chains:        cfg.Chains,
		Ticks:         int(wantTicks),
		Claims:        claims,
		Elapsed:       elapsed,
		TicksPerSec:   float64(wantTicks) / elapsed.Seconds(),
		Batches:       batches,
		CrossShard:    crossShard,
	}, nil
}

// assertMicropayCell checks exactly-once (each payee holds exactly its
// stream's ticks × perWord) and exact conservation (total balances and
// pending escrow unchanged by settlement).
func assertMicropayCell(w *micropayCellWorld, streams []*micropayStream, before currency.Amount) error {
	for _, s := range streams {
		a, err := w.led.Details(s.payee)
		if err != nil {
			return err
		}
		ticks := s.chain.Commitment.Length
		want := currency.FromMicro(int64(100 * ticks))
		if a.AvailableBalance != want {
			return fmt.Errorf("exactly-once violated: %s holds %s, want %s", s.cert, a.AvailableBalance, want)
		}
	}
	total, err := w.led.TotalBalance()
	if err != nil {
		return err
	}
	if total != before {
		return fmt.Errorf("conservation violated: %s -> %s", before, total)
	}
	esc, err := w.led.PendingEscrow()
	if err != nil {
		return err
	}
	if !esc.IsZero() {
		return fmt.Errorf("escrow residue %s", esc)
	}
	return nil
}

// WriteMicropay renders the sweep.
func WriteMicropay(w io.Writer, r *MicropayResult) {
	fmt.Fprintf(w, "Streaming GridHash micropayments vs naive per-tick RedeemChain (durable path)\n")
	fmt.Fprintf(w, "naive baseline: %.0f ticks/sec (median of %d interleaved rounds of %d sync redemptions; every cell asserts exactly-once + conservation, incl. after injected crash + reboot)\n\n",
		r.BaselinePerSec, len(r.BaselineRounds), r.BaselineTicks)
	t := &Table{Header: []string{"shards", "ticks/claim", "batch", "chains", "ticks", "claims", "ledger txs", "cross", "ticks/sec", "speedup"}}
	for _, p := range r.Points {
		t.Add(p.Shards, p.ClaimInterval, p.BatchSize, p.Chains, p.Ticks, p.Claims, p.Batches, p.CrossShard,
			fmt.Sprintf("%.0f", p.TicksPerSec), fmt.Sprintf("%.0fx", p.Speedup))
	}
	t.Write(w)
}
