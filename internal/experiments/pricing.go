package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"gridbank/internal/gridsim"
	"gridbank/internal/rur"
	"gridbank/internal/trade"
)

// PricingConfig parameterizes the supply/demand pricing experiment.
type PricingConfig struct {
	// Phases of the demand profile, each lasting PhaseLen virtual
	// minutes: jobs submitted per minute in each phase (default
	// quiet → rush → quiet: 2, 24, 2).
	Demand   []int
	PhaseLen int // minutes per phase (default 30)
	Seed     int64
}

func (c *PricingConfig) defaults() {
	if len(c.Demand) == 0 {
		c.Demand = []int{2, 12, 2}
	}
	if c.PhaseLen <= 0 {
		c.PhaseLen = 30
	}
	if c.Seed == 0 {
		c.Seed = 11
	}
}

// PricingPoint is one sample of the price/utilization series.
type PricingPoint struct {
	Minute      int
	Demand      int // jobs/minute in this phase
	Utilization float64
	// CPUPrice is the commodity model's current asking price in µG$ per
	// CPU-hour.
	CPUPrice int64
}

// PricingReport traces the §1 supply-and-demand regulation: "when there
// is less demand for resources, the price is lowered; when there is high
// demand, the price is raised."
type PricingReport struct {
	Series []PricingPoint
	// PeakPrice / QuietPrice summarize the regulation effect.
	PeakPrice, QuietPrice int64
}

// RunPricing drives a commodity-market GTS from a demand wave on the
// simulator: the resource's utilization feeds the pricing model; the
// posted CPU price is sampled every virtual minute.
func RunPricing(cfg PricingConfig) (*PricingReport, error) {
	cfg.defaults()
	w, err := NewWorld()
	if err != nil {
		return nil, err
	}
	gts := trade.CommodityMarket{Base: StandardRates(), Target: 0.5, Sensitivity: 1.5, Floor: 0.2}
	provider, err := w.CA.Issue(pkiIssue("gsp-commodity"))
	if err != nil {
		return nil, err
	}
	server, err := trade.NewServer(trade.ServerConfig{Identity: provider, Model: gts, Now: w.Clock.Now})
	if err != nil {
		return nil, err
	}

	sim := gridsim.New(w.Clock.Now())
	res, err := sim.AddResource(gridsim.ResourceConfig{
		Provider: provider.SubjectName(), Nodes: 8, RatingMIPS: 1000,
	})
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	report := &PricingReport{}
	minute := 0
	for phase, perMin := range cfg.Demand {
		for m := 0; m < cfg.PhaseLen; m++ {
			minute++
			// Submit this minute's arrivals: ~50-second jobs, so the
			// rush phase (12/min on 8 nodes) saturates the resource but
			// the backlog drains once demand falls.
			for j := 0; j < perMin; j++ {
				job := gridsim.Job{
					ID:       fmt.Sprintf("p%d-m%d-j%d", phase, m, j),
					Owner:    "CN=demand",
					LengthMI: 40_000 + rng.Int63n(20_000),
				}
				if err := res.Submit(job, nil); err != nil {
					return nil, err
				}
			}
			sim.RunUntil(sim.Now().Add(time.Minute))
			// The GTS reprices from the observed load.
			server.SetUtilization(res.InstantLoad())
			price := server.CurrentRates().Rates[rur.ItemCPU].MicroPerUnit
			report.Series = append(report.Series, PricingPoint{
				Minute:      minute,
				Demand:      perMin,
				Utilization: res.InstantLoad(),
				CPUPrice:    price,
			})
		}
	}
	// Summaries: mean price in the busiest vs the final quiet phase.
	phaseMean := func(phase int) int64 {
		var sum int64
		n := 0
		for i, p := range report.Series {
			if i/cfg.PhaseLen == phase {
				sum += p.CPUPrice
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return sum / int64(n)
	}
	busiest, quietest := 0, 0
	for i, d := range cfg.Demand {
		if d > cfg.Demand[busiest] {
			busiest = i
		}
		if d < cfg.Demand[quietest] {
			quietest = i
		}
	}
	report.PeakPrice = phaseMean(busiest)
	report.QuietPrice = phaseMean(quietest)
	return report, nil
}

// WritePricing renders the price/demand series (downsampled).
func WritePricing(w io.Writer, r *PricingReport) {
	fmt.Fprintln(w, "§1 — supply-and-demand price regulation (commodity-market GTS over the simulator)")
	t := &Table{Header: []string{"minute", "demand (jobs/min)", "utilization", "CPU price (µG$/h)"}}
	for i, p := range r.Series {
		if i%10 == 9 {
			t.Add(p.Minute, p.Demand, fmt.Sprintf("%.2f", p.Utilization), p.CPUPrice)
		}
	}
	t.Write(w)
	fmt.Fprintf(w, "\nmean CPU price: rush %d µG$/h vs quiet %d µG$/h — demand raises the price, idleness lowers it.\n",
		r.PeakPrice, r.QuietPrice)
}
