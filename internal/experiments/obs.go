package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"gridbank/internal/obs"
)

// The obs experiment prices the telemetry layer. Each round builds a
// FRESH pair of identical volatile worlds — one with full telemetry
// (server + client registries, per-call trace IDs, slow-op span
// accounting armed but never firing), one with everything nil — warms
// both, and times one paired A/B round, alternating which mode runs
// first. Fresh pairs matter: long-lived world pairs develop persistent
// per-world throughput asymmetries (connection and scheduler state)
// larger than the effect under measurement; pairing fresh worlds and
// taking the median ratio cancels both that and host drift. Volatile
// workloads are deliberate: with no fsync to hide behind, every atomic
// increment and histogram observation lands on the one hot core, so
// this is the worst case for relative overhead. The acceptance bar is
// <2% median throughput cost with telemetry on.

// ObsExpConfig parameterizes RunObsExp.
type ObsExpConfig struct {
	// Concurrency sweeps callers sharing each world's one connection
	// (default 1, 16).
	Concurrency []int
	// OpsPerCaller is the per-caller op count per round (default 300).
	OpsPerCaller int
	// Rounds is how many alternating off/on round pairs (default 7); medians are reported.
	Rounds int
}

// ObsPoint is one measured cell: a workload × concurrency pair with
// both modes' median throughput and the median paired ratio of telemetry.
type ObsPoint struct {
	Workload    string  `json:"workload"`
	Concurrency int     `json:"concurrency"`
	Ops         int     `json:"ops_per_mode_round"`
	OffOps      float64 `json:"off_ops_per_sec"`
	OnOps       float64 `json:"on_ops_per_sec"`
	OverheadPct float64 `json:"overhead_pct"`
}

// ObsResult is the full sweep plus evidence the instrumented world was
// actually recording.
type ObsResult struct {
	Points []ObsPoint `json:"points"`
	// AggregateOverheadPct is the headline: the median over every
	// pair's on/off ratio pooled across all cells. Pooling quadruples
	// the sample count behind the median, so it resolves finer than any
	// single cell on a noisy host.
	AggregateOverheadPct float64 `json:"aggregate_overhead_pct"`
	// Series counts the metric series live in the instrumented world's
	// registry after the sweep — proof the "on" side paid for real.
	Series int `json:"series"`
	// ServerRequests totals the instrumented servers' request counters
	// across every round; it must cover every "on" round's operations.
	ServerRequests int64 `json:"server_requests"`
}

// RunObsExp measures telemetry overhead A/B over identical worlds.
func RunObsExp(cfg ObsExpConfig) (*ObsResult, error) {
	if len(cfg.Concurrency) == 0 {
		cfg.Concurrency = []int{1, 16}
	}
	if cfg.OpsPerCaller <= 0 {
		cfg.OpsPerCaller = 300
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = 7
	}
	res := &ObsResult{}
	var allRatios []float64
	for _, workload := range []string{"transfer/volatile", "checkfunds/volatile"} {
		for _, c := range cfg.Concurrency {
			var offs, ons, ratios []float64
			for r := 0; r < cfg.Rounds; r++ {
				pair, err := newObsPair(c)
				if err != nil {
					return nil, err
				}
				a, b, err := pair.measure(workload, c, cfg.OpsPerCaller, r%2 == 1)
				if err == nil {
					err = pair.check()
				}
				res.Series = pair.series
				res.ServerRequests += pair.requests
				pair.close()
				if err != nil {
					return nil, err
				}
				offs = append(offs, a)
				ons = append(ons, b)
				ratios = append(ratios, b/a)
				allRatios = append(allRatios, b/a)
			}
			res.Points = append(res.Points, ObsPoint{
				Workload:    workload,
				Concurrency: c,
				Ops:         c * cfg.OpsPerCaller,
				OffOps:      median(offs),
				OnOps:       median(ons),
				OverheadPct: (1 - median(ratios)) * 100,
			})
		}
	}
	res.AggregateOverheadPct = (1 - median(allRatios)) * 100
	if res.ServerRequests == 0 {
		return nil, fmt.Errorf("instrumented worlds recorded no requests: telemetry was not live")
	}
	return res, nil
}

// obsPair is one round's fresh world pair: one fully instrumented, one
// with every telemetry hook nil.
type obsPair struct {
	off, on  *wireWorld
	reg      *obs.Registry
	series   int
	requests int64
}

// newObsPair builds two identical volatile worlds and turns full
// telemetry on in one: server and client registries, trace IDs stamped
// on every call, and the slow-op span machinery armed with a threshold
// nothing reaches (measuring the span accounting, not log formatting).
func newObsPair(conc int) (*obsPair, error) {
	off, err := newWireWorld(nil, conc)
	if err != nil {
		return nil, err
	}
	on, err := newWireWorld(nil, conc)
	if err != nil {
		off.close()
		return nil, err
	}
	reg := obs.NewRegistry()
	on.srv.Obs = reg
	on.srv.SlowOpLog = obs.NewLogger(io.Discard, obs.LevelInfo)
	on.srv.SlowOpThreshold = time.Hour
	on.bank.SetObs(reg)
	on.client.Obs = obs.NewRegistry()
	on.client.TraceCalls = true
	return &obsPair{off: off, on: on, reg: reg}, nil
}

// measure warms both worlds equally, then times an ABBA sequence —
// off,on,on,off (or its mirror when onFirst) — and averages each mode's
// two rounds. ABBA cancels drift that is linear over the pair's
// lifetime; fresh worlds plus the alternating mirror leave the host
// nothing systematic to favor.
func (p *obsPair) measure(workload string, conc, ops int, onFirst bool) (offOps, onOps float64, err error) {
	for _, w := range []*wireWorld{p.off, p.on} {
		if _, err := w.runRound(workload, nil, conc, ops/4+1, false); err != nil {
			return 0, 0, err
		}
	}
	a, b := p.off, p.on
	if onFirst {
		a, b = b, a
	}
	var aOps, bOps float64
	for _, w := range []*wireWorld{a, b, b, a} {
		got, err := w.runRound(workload, nil, conc, ops, false)
		if err != nil {
			return 0, 0, err
		}
		if w == a {
			aOps += got / 2
		} else {
			bOps += got / 2
		}
	}
	if onFirst {
		aOps, bOps = bOps, aOps
	}
	return aOps, bOps, nil
}

// check asserts conservation through both worlds' clients and records
// proof that the instrumented side was live.
func (p *obsPair) check() error {
	for _, w := range []*wireWorld{p.off, p.on} {
		if err := w.assertConservation(); err != nil {
			return err
		}
	}
	snap := p.reg.Snapshot()
	p.series = len(snap.Counters) + len(snap.Gauges) + len(snap.Hists)
	for _, c := range snap.Counters {
		if c.Name == "server.requests" {
			p.requests = c.Value
		}
	}
	return nil
}

func (p *obsPair) close() {
	p.off.close()
	p.on.close()
}

// median is the middle sample; on a drifting host it discards the
// rounds the machine spent on someone else's work.
func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}

// WriteObsExp renders the sweep.
func WriteObsExp(w io.Writer, r *ObsResult) {
	fmt.Fprintf(w, "Telemetry overhead: identical volatile worlds, interleaved A/B rounds\n")
	fmt.Fprintf(w, "(on = server+client registries, traced calls, slow-op spans armed;\n")
	fmt.Fprintf(w, " off = all telemetry nil; volatile workloads so nothing hides the cost)\n\n")
	t := &Table{Header: []string{"workload", "callers", "off ops/s", "on ops/s", "overhead"}}
	for _, p := range r.Points {
		t.Add(p.Workload, p.Concurrency,
			fmt.Sprintf("%.0f", p.OffOps), fmt.Sprintf("%.0f", p.OnOps),
			fmt.Sprintf("%+.1f%%", p.OverheadPct))
	}
	t.Write(w)
	fmt.Fprintf(w, "\naggregate overhead (pooled median over all pairs): %+.1f%%\n", r.AggregateOverheadPct)
	fmt.Fprintf(w, "instrumented registry per world: %d series; server.requests total=%d\n",
		r.Series, r.ServerRequests)
}
