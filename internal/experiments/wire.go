package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"gridbank/internal/accounts"
	"gridbank/internal/core"
	"gridbank/internal/currency"
	"gridbank/internal/db"
	"gridbank/internal/pki"
)

// The wire experiment measures the multiplexed transport: N concurrent
// callers sharing ONE TLS connection, swept over concurrency × payload
// size × durable/volatile work, in two modes run interleaved A/B in the
// same time window over the same world and connection:
//
//   - serialized: a mutex around each call — the seed transport's
//     lock-across-the-round-trip behavior, where a connection is a
//     half-duplex pipe;
//   - pipelined: calls issued concurrently, demuxed by request ID.
//
// The durable cells are the headline: pipelined callers reach the
// group-commit WAL together, so fsyncs amortize across the connection's
// in-flight requests. Every transfer cell asserts conservation through
// the client's own eyes (summed balances equal deposits).

// WireExpConfig parameterizes RunWireExp.
type WireExpConfig struct {
	// Concurrency sweeps callers sharing the one connection (default
	// 1, 4, 16, 32).
	Concurrency []int
	// Payloads sweeps echo-op body sizes in bytes (default 64, 4096).
	Payloads []int
	// OpsPerCaller is the per-caller op count in each round (default
	// 60 durable, 200 echo/volatile).
	OpsPerCaller int
	// Rounds is how many interleaved rounds of each mode to average
	// (default 2).
	Rounds int
	// Dir holds journal files; defaults to a fresh temp directory.
	Dir string
}

// WirePoint is one measured cell: a workload × concurrency pair with
// both modes' mean throughput and the resulting speedup.
type WirePoint struct {
	Workload      string  `json:"workload"`
	Concurrency   int     `json:"concurrency"`
	Ops           int     `json:"ops_per_mode_round"`
	SerializedOps float64 `json:"serialized_ops_per_sec"`
	PipelinedOps  float64 `json:"pipelined_ops_per_sec"`
	Speedup       float64 `json:"speedup"`
}

// WireResult is the full sweep.
type WireResult struct {
	Points []WirePoint `json:"points"`
}

// wireWorld is a live TLS bank with a funded disjoint account
// population and one shared admin client.
type wireWorld struct {
	srv     *core.Server
	client  *core.Client
	bank    *core.Bank
	addr    string
	trust   *pki.TrustStore
	adminID *pki.Identity
	payers  []accounts.ID
	payees  []accounts.ID
	funded  currency.Amount
}

func newWireWorld(journal db.Journal, pairs int) (*wireWorld, error) {
	ca, err := pki.NewCA("Wire CA", "VO-W", 24*time.Hour)
	if err != nil {
		return nil, err
	}
	trust := pki.NewTrustStore(ca.Certificate())
	bankID, err := ca.Issue(pki.IssueOptions{CommonName: "gridbank", Organization: "VO-W", IsServer: true})
	if err != nil {
		return nil, err
	}
	adminID, err := ca.Issue(pki.IssueOptions{CommonName: "wire-admin", Organization: "VO-W"})
	if err != nil {
		return nil, err
	}
	store, err := db.Open(journal)
	if err != nil {
		return nil, err
	}
	bank, err := core.NewBank(store, core.BankConfig{
		Identity: bankID, Trust: trust, Admins: []string{adminID.SubjectName()},
	})
	if err != nil {
		return nil, err
	}
	srv, err := core.NewServer(bank, bankID)
	if err != nil {
		return nil, err
	}
	srv.Logf = func(string, ...any) {}
	// Let the sweep's widest cell keep every caller in flight at once.
	srv.MaxInFlight = pairs
	if err := srv.RegisterOp("bench.echo", func(subject string, body []byte) (any, error) {
		return json.RawMessage(body), nil
	}); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go srv.Serve(ln)

	w := &wireWorld{srv: srv, bank: bank, addr: ln.Addr().String(), trust: trust, adminID: adminID}
	mgr := bank.Manager()
	perAcct := currency.FromG(1_000_000)
	for i := 0; i < pairs; i++ {
		payer, err := mgr.CreateAccount(fmt.Sprintf("CN=wire-payer-%d", i), "VO-W", "")
		if err != nil {
			srv.Close()
			return nil, err
		}
		if err := mgr.Admin().Deposit(payer.AccountID, perAcct); err != nil {
			srv.Close()
			return nil, err
		}
		w.funded = w.funded.MustAdd(perAcct)
		payee, err := mgr.CreateAccount(fmt.Sprintf("CN=wire-payee-%d", i), "VO-W", "")
		if err != nil {
			srv.Close()
			return nil, err
		}
		w.payers = append(w.payers, payer.AccountID)
		w.payees = append(w.payees, payee.AccountID)
	}
	// One admin-authenticated client: admins may drive any payer, so N
	// workers can share this single pipelined connection.
	c, err := core.Dial(ln.Addr().String(), adminID, trust)
	if err != nil {
		srv.Close()
		return nil, err
	}
	w.client = c
	return w, nil
}

func (w *wireWorld) close() {
	w.client.Close()
	w.srv.Close()
}

// runRound drives `concurrency` workers for ops calls each through the
// shared client. In serialized mode a mutex wraps every call,
// reproducing the seed transport's end-to-end serialization on one
// connection.
func (w *wireWorld) runRound(workload string, payload []byte, concurrency, ops int, serialized bool) (float64, error) {
	var serial sync.Mutex
	call := func(worker int) error {
		if serialized {
			serial.Lock()
			defer serial.Unlock()
		}
		switch {
		case payload != nil:
			var echo json.RawMessage
			return w.client.Call("bench.echo", json.RawMessage(payload), &echo)
		case strings.HasPrefix(workload, "checkfunds"):
			// §3.4 payment guarantee: a durable fund-locking mutation
			// with no receipt signature — the purest view of fsync
			// amortization over the multiplexed connection.
			return w.client.CheckFunds(w.payers[worker], currency.FromMicro(1))
		default:
			_, err := w.client.DirectTransfer(w.payers[worker], w.payees[worker], currency.FromMicro(1), "")
			return err
		}
	}
	errs := make([]error, concurrency)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < concurrency; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for n := 0; n < ops; n++ {
				if err := call(i); err != nil {
					errs[i] = fmt.Errorf("%s worker %d: %w", workload, i, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return float64(concurrency*ops) / elapsed.Seconds(), nil
}

// assertConservation sums every account's balance through the client —
// the wire's own view — and compares against the deposits.
func (w *wireWorld) assertConservation() error {
	var total currency.Amount
	for _, ids := range [][]accounts.ID{w.payers, w.payees} {
		for _, id := range ids {
			a, err := w.client.AccountDetails(id)
			if err != nil {
				return err
			}
			total = total.MustAdd(a.AvailableBalance).MustAdd(a.LockedBalance)
		}
	}
	if total != w.funded {
		return fmt.Errorf("conservation violated over the wire: balances sum to %v, deposited %v", total, w.funded)
	}
	return nil
}

// runWireCell measures one workload × concurrency cell with interleaved
// A/B rounds.
func runWireCell(w *wireWorld, workload string, payload []byte, concurrency, ops, rounds int) (*WirePoint, error) {
	var ser, pip float64
	for r := 0; r < rounds; r++ {
		s, err := w.runRound(workload, payload, concurrency, ops, true)
		if err != nil {
			return nil, err
		}
		p, err := w.runRound(workload, payload, concurrency, ops, false)
		if err != nil {
			return nil, err
		}
		ser += s
		pip += p
	}
	ser /= float64(rounds)
	pip /= float64(rounds)
	return &WirePoint{
		Workload:      workload,
		Concurrency:   concurrency,
		Ops:           concurrency * ops,
		SerializedOps: ser,
		PipelinedOps:  pip,
		Speedup:       pip / ser,
	}, nil
}

// RunWireExp sweeps the multiplexed transport.
func RunWireExp(cfg WireExpConfig) (*WireResult, error) {
	if len(cfg.Concurrency) == 0 {
		cfg.Concurrency = []int{1, 4, 16, 32}
	}
	if len(cfg.Payloads) == 0 {
		cfg.Payloads = []int{64, 4096}
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = 2
	}
	if cfg.Dir == "" {
		dir, err := os.MkdirTemp("", "gridbank-wire")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		cfg.Dir = dir
	}
	maxConc := 0
	for _, c := range cfg.Concurrency {
		if c > maxConc {
			maxConc = c
		}
	}
	res := &WireResult{}

	// Durable transfers: the fsync path, where pipelined callers share
	// group commits.
	durOps := cfg.OpsPerCaller
	if durOps <= 0 {
		durOps = 60
	}
	j, err := db.OpenFileJournal(filepath.Join(cfg.Dir, "wire.wal"), true)
	if err != nil {
		return nil, err
	}
	dw, err := newWireWorld(j, maxConc)
	if err != nil {
		return nil, err
	}
	for _, workload := range []string{"checkfunds/file-sync", "transfer/file-sync"} {
		for _, c := range cfg.Concurrency {
			pt, err := runWireCell(dw, workload, nil, c, durOps, cfg.Rounds)
			if err != nil {
				dw.close()
				return nil, err
			}
			res.Points = append(res.Points, *pt)
		}
	}
	err = dw.assertConservation()
	dw.close()
	if err != nil {
		return nil, err
	}

	// Volatile transfers and echo payload sweep: CPU/syscall-bound, no
	// fsync to amortize.
	volOps := cfg.OpsPerCaller
	if volOps <= 0 {
		volOps = 200
	}
	vw, err := newWireWorld(nil, maxConc)
	if err != nil {
		return nil, err
	}
	defer vw.close()
	for _, c := range cfg.Concurrency {
		pt, err := runWireCell(vw, "transfer/volatile", nil, c, volOps, cfg.Rounds)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, *pt)
	}
	for _, size := range cfg.Payloads {
		payload, err := json.Marshal(map[string]string{"pad": string(bytesOf(size))})
		if err != nil {
			return nil, err
		}
		for _, c := range cfg.Concurrency {
			pt, err := runWireCell(vw, fmt.Sprintf("echo/%dB", size), payload, c, volOps, cfg.Rounds)
			if err != nil {
				return nil, err
			}
			res.Points = append(res.Points, *pt)
		}
	}
	if err := vw.assertConservation(); err != nil {
		return nil, err
	}
	return res, nil
}

// bytesOf builds a printable padding string of n bytes.
func bytesOf(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = 'a' + byte(i%26)
	}
	return b
}

// WriteWireExp renders the sweep.
func WriteWireExp(w io.Writer, r *WireResult) {
	fmt.Fprintf(w, "Multiplexed wire transport: N callers sharing ONE TLS connection\n")
	fmt.Fprintf(w, "(serialized = seed's lock-across-round-trip; pipelined = concurrent dispatch,\n")
	fmt.Fprintf(w, " ID-demuxed responses; interleaved A/B rounds; conservation asserted per world)\n\n")
	t := &Table{Header: []string{"workload", "callers", "serialized ops/s", "pipelined ops/s", "speedup"}}
	for _, p := range r.Points {
		t.Add(p.Workload, p.Concurrency,
			fmt.Sprintf("%.0f", p.SerializedOps), fmt.Sprintf("%.0f", p.PipelinedOps),
			fmt.Sprintf("%.2fx", p.Speedup))
	}
	t.Write(w)
}
