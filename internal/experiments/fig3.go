package experiments

import (
	"fmt"
	"io"
	"net"
	"time"

	"gridbank/internal/core"
	"gridbank/internal/currency"
	"gridbank/internal/payment"
	"gridbank/internal/pki"
)

// Fig3Config parameterizes the server-architecture experiment.
type Fig3Config struct {
	// Payments per protocol (default 200).
	Payments int
}

func (c *Fig3Config) defaults() {
	if c.Payments <= 0 {
		c.Payments = 200
	}
}

// Fig3Line is one protocol's measurements.
type Fig3Line struct {
	Protocol   string
	Payments   int
	Wall       time.Duration
	PerPayment time.Duration
	RPCsPerPay float64
	TotalMoved currency.Amount
}

// Fig3Report compares the three payment protocols of Figure 3 through
// the full three-layer server (Security: mutual TLS; Payment Protocol:
// direct / GridCheque / GridHash; Accounts: the ledger), measuring the
// end-to-end cost of one unit payment under each policy.
type Fig3Report struct {
	Lines []Fig3Line
}

// RunFig3 stands up a real TLS server on loopback and drives each
// protocol.
func RunFig3(cfg Fig3Config) (*Fig3Report, error) {
	cfg.defaults()
	w, err := NewWorld()
	if err != nil {
		return nil, err
	}
	serverID, err := w.CA.Issue(pki.IssueOptions{CommonName: "gridbank-server", Organization: "VO-X", IsServer: true})
	if err != nil {
		return nil, err
	}
	srv, err := core.NewServer(w.Bank, serverID)
	if err != nil {
		return nil, err
	}
	srv.Logf = func(string, ...any) {}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go srv.Serve(ln)
	defer srv.Close()
	addr := ln.Addr().String()

	consumerID, consumerAcct, err := w.NewActor("consumer", currency.FromG(1_000_000))
	if err != nil {
		return nil, err
	}
	gspID, gspAcct, err := w.NewActor("gsp", 0)
	if err != nil {
		return nil, err
	}
	consumer, err := core.Dial(addr, consumerID, w.Trust)
	if err != nil {
		return nil, err
	}
	defer consumer.Close()
	gsp, err := core.Dial(addr, gspID, w.Trust)
	if err != nil {
		return nil, err
	}
	defer gsp.Close()

	unit := currency.MustParse("0.1")
	report := &Fig3Report{}
	n := cfg.Payments

	// Pay-before-use: one RPC per payment.
	start := time.Now()
	for i := 0; i < n; i++ {
		if _, err := consumer.DirectTransfer(consumerAcct, gspAcct, unit, ""); err != nil {
			return nil, fmt.Errorf("fig3 direct: %w", err)
		}
	}
	wall := time.Since(start)
	moved, _ := unit.MulInt(int64(n))
	report.Lines = append(report.Lines, Fig3Line{
		Protocol: "direct (pay-before-use)", Payments: n, Wall: wall,
		PerPayment: wall / time.Duration(n), RPCsPerPay: 1, TotalMoved: moved,
	})

	// Pay-after-use: two RPCs per payment (issue + redeem).
	start = time.Now()
	for i := 0; i < n; i++ {
		cheque, err := consumer.RequestCheque(consumerAcct, unit, gspID.SubjectName(), time.Hour)
		if err != nil {
			return nil, fmt.Errorf("fig3 cheque issue: %w", err)
		}
		if _, err := gsp.RedeemCheque(cheque, &payment.ChequeClaim{Serial: cheque.Cheque.Serial, Amount: unit}); err != nil {
			return nil, fmt.Errorf("fig3 cheque redeem: %w", err)
		}
	}
	wall = time.Since(start)
	report.Lines = append(report.Lines, Fig3Line{
		Protocol: "GridCheque (pay-after-use)", Payments: n, Wall: wall,
		PerPayment: wall / time.Duration(n), RPCsPerPay: 2, TotalMoved: moved,
	})

	// Pay-as-you-go: one issue + n local word releases/verifications +
	// one redemption for the whole chain.
	start = time.Now()
	chain, signed, err := consumer.RequestChain(consumerAcct, gspID.SubjectName(), n, unit, time.Hour)
	if err != nil {
		return nil, fmt.Errorf("fig3 chain issue: %w", err)
	}
	// GSP verifies the commitment once, then each streamed word locally
	// in O(1) against the previous word (incremental verification).
	_, cc, err := payment.VerifyChain(signed, w.Trust, gspID.SubjectName(), time.Now())
	if err != nil {
		return nil, err
	}
	var lastWord []byte
	for i := 1; i <= n; i++ {
		word, err := chain.Word(i)
		if err != nil {
			return nil, err
		}
		if err := payment.VerifyWordAfter(cc, i-1, lastWord, i, word); err != nil {
			return nil, err
		}
		lastWord = word
	}
	if _, err := gsp.RedeemChain(signed, &payment.ChainClaim{
		Serial: chain.Commitment.Serial, Index: n, Word: lastWord,
	}); err != nil {
		return nil, fmt.Errorf("fig3 chain redeem: %w", err)
	}
	wall = time.Since(start)
	report.Lines = append(report.Lines, Fig3Line{
		Protocol: "GridHash (pay-as-you-go)", Payments: n, Wall: wall,
		PerPayment: wall / time.Duration(n), RPCsPerPay: 2.0 / float64(n), TotalMoved: moved,
	})
	return report, nil
}

// WriteFig3 renders the comparison.
func WriteFig3(w io.Writer, r *Fig3Report) {
	fmt.Fprintln(w, "Figure 3 — payment protocols through the 3-layer server (mutual TLS)")
	t := &Table{Header: []string{"protocol", "payments", "wall", "per-payment", "bank RPCs/payment", "moved (G$)"}}
	for _, l := range r.Lines {
		t.Add(l.Protocol, l.Payments, l.Wall.Round(time.Millisecond), l.PerPayment.Round(time.Microsecond),
			fmt.Sprintf("%.3f", l.RPCsPerPay), l.TotalMoved)
	}
	t.Write(w)
	fmt.Fprintln(w, "\nshape: micro-payments amortize bank round trips — hash chains beat cheques beat direct transfers per payment.")
}
