package experiments

import (
	"fmt"
	"io"

	"gridbank/internal/core"
	"gridbank/internal/currency"
)

// ScalabilityConfig parameterizes the §2.3 access-scalability experiment.
type ScalabilityConfig struct {
	// ConsumerCounts are the population sizes to sweep (default
	// 10, 100, 1000, 5000).
	ConsumerCounts []int
	// PoolSize is the number of template accounts (default 16).
	PoolSize int
	// Concurrency is how many consumers are active simultaneously
	// (default = PoolSize: the pool is sized to the concurrency).
	Concurrency int
}

func (c *ScalabilityConfig) defaults() {
	if len(c.ConsumerCounts) == 0 {
		c.ConsumerCounts = []int{10, 100, 1000, 5000}
	}
	if c.PoolSize <= 0 {
		c.PoolSize = 16
	}
	if c.Concurrency <= 0 {
		c.Concurrency = c.PoolSize
	}
}

// ScalabilityRow is one sweep point.
type ScalabilityRow struct {
	Consumers int
	// LocalAccountsStatic is the §2.3 baseline: one local account per
	// registered user ("the requirement to have a local account at each
	// resource is simply not realistic").
	LocalAccountsStatic int
	// LocalAccountsPool is what the template pool actually needed.
	LocalAccountsPool int
	// PeakInUse and Rejections characterize pool pressure.
	PeakInUse  int
	Rejections uint64
	// JobsServed confirms every consumer got service.
	JobsServed int
}

// ScalabilityReport is the sweep result.
type ScalabilityReport struct {
	PoolSize int
	Rows     []ScalabilityRow
}

// RunScalability reproduces the §2.3 claim: with template accounts,
// thousands of consumers are served with a constant-size set of local
// accounts, as long as simultaneous activity stays at or below the pool
// size. The static baseline grows linearly with the user population.
func RunScalability(cfg ScalabilityConfig) (*ScalabilityReport, error) {
	cfg.defaults()
	report := &ScalabilityReport{PoolSize: cfg.PoolSize}
	for _, n := range cfg.ConsumerCounts {
		w, err := NewWorld()
		if err != nil {
			return nil, err
		}
		p, err := w.NewProvider("gsp", StandardRates(), cfg.PoolSize)
		if err != nil {
			return nil, err
		}
		agreementCard := p.GTS.CurrentRates()
		agreementCard.Consumer = "" // posted price for everyone

		row := ScalabilityRow{Consumers: n, LocalAccountsStatic: n}
		// Consumers arrive in waves of Concurrency: each admits a job
		// (acquiring a template account), "runs" it, and settles
		// (releasing the account).
		type active struct {
			jobID string
			cert  string
		}
		var wave []active
		flush := func() error {
			for _, a := range wave {
				rec := newUsageRecord(a.cert, p.Identity.SubjectName(), a.jobID, w.Clock.Now())
				if _, err := p.GBCM.SettleCheque(a.jobID, rec, agreementCard); err != nil {
					return fmt.Errorf("scalability: settle %s: %w", a.jobID, err)
				}
				row.JobsServed++
			}
			wave = wave[:0]
			return nil
		}
		for i := 0; i < n; i++ {
			id, acct, err := w.NewActor(fmt.Sprintf("user-%05d", i), currency.FromG(10))
			if err != nil {
				return nil, err
			}
			cheque, err := w.Bank.RequestCheque(id.SubjectName(), &core.RequestChequeRequest{
				AccountID: acct, Amount: currency.FromG(5), PayeeCert: p.Identity.SubjectName(),
			})
			if err != nil {
				return nil, err
			}
			jobID := fmt.Sprintf("job-%05d", i)
			if _, err := p.GBCM.AdmitCheque(jobID, &cheque.Cheque); err != nil {
				return nil, fmt.Errorf("scalability: admit %s: %w", jobID, err)
			}
			wave = append(wave, active{jobID: jobID, cert: id.SubjectName()})
			if len(wave) == cfg.Concurrency {
				if err := flush(); err != nil {
					return nil, err
				}
			}
		}
		if err := flush(); err != nil {
			return nil, err
		}
		stats := p.GBCM.Pool().Stats()
		row.LocalAccountsPool = stats.Size
		row.PeakInUse = stats.PeakInUse
		row.Rejections = stats.Rejections
		report.Rows = append(report.Rows, row)
	}
	return report, nil
}

// WriteScalability renders the sweep.
func WriteScalability(w io.Writer, r *ScalabilityReport) {
	fmt.Fprintf(w, "§2.3 — access scalability: template account pool (size %d) vs per-user local accounts\n", r.PoolSize)
	t := &Table{Header: []string{"consumers", "static local accounts", "pool local accounts", "peak in use", "rejections", "jobs served"}}
	for _, row := range r.Rows {
		t.Add(row.Consumers, row.LocalAccountsStatic, row.LocalAccountsPool, row.PeakInUse, row.Rejections, row.JobsServed)
	}
	t.Write(w)
	fmt.Fprintln(w, "\nshape: pool accounts stay constant while the static baseline grows linearly with users.")
}
