package experiments

import (
	"fmt"
	"io"

	"gridbank/internal/accounts"
	"gridbank/internal/currency"
	"gridbank/internal/db"
	"gridbank/internal/economy"
)

// EquilibriumConfig parameterizes the §4.1 price-regulation experiment.
type EquilibriumConfig struct {
	Participants int   // default 16
	Rounds       int   // default 400
	WorkMI       int64 // default 7_200_000
	Seed         int64 // default 42
}

func (c *EquilibriumConfig) defaults() {
	if c.Participants <= 0 {
		c.Participants = 16
	}
	if c.Rounds <= 0 {
		c.Rounds = 400
	}
	if c.WorkMI <= 0 {
		c.WorkMI = 7_200_000
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
}

// EquilibriumPoint is one sample of the wealth-spread series.
type EquilibriumPoint struct {
	Round       int
	Unregulated float64 // max |balance − initial| in G$
	Regulated   float64
}

// EquilibriumReport contrasts the unregulated community with one overseen
// by the pricing authority.
type EquilibriumReport struct {
	Series           []EquilibriumPoint
	FinalUnregulated float64
	FinalRegulated   float64
}

// RunEquilibrium reproduces the §4.1 claim: "to achieve price
// equilibrium, supply and demand need to be carefully regulated ...
// otherwise the whole environment will end up in a state where some
// participants have all the money while others have none. A community
// based resource valuation and pricing authority is needed."
func RunEquilibrium(cfg EquilibriumConfig) (*EquilibriumReport, error) {
	cfg.defaults()
	type world struct {
		sim *economy.CoopSim
	}
	build := func(auth *economy.PricingAuthority) (*world, error) {
		mgr, err := accounts.NewManager(db.MustOpenMemory(), accounts.Config{})
		if err != nil {
			return nil, err
		}
		parts := make([]*economy.Participant, cfg.Participants)
		for i := range parts {
			a, err := mgr.CreateAccount(fmt.Sprintf("CN=p%02d", i), "", "")
			if err != nil {
				return nil, err
			}
			// Skewed hardware: one very fast machine attracts most
			// demand.
			rating := 200 + 100*i
			if i == cfg.Participants-1 {
				rating = 6400
			}
			parts[i] = &economy.Participant{
				Name: fmt.Sprintf("p%02d", i), Account: a.AccountID,
				RatingMIPS: rating, RatePerCPUHour: currency.FromG(1),
			}
		}
		sim, err := economy.NewCoopSim(mgr, parts, currency.FromG(100), auth, cfg.Seed)
		if err != nil {
			return nil, err
		}
		return &world{sim: sim}, nil
	}
	unreg, err := build(nil)
	if err != nil {
		return nil, err
	}
	reg, err := build(&economy.PricingAuthority{Gain: 0.02})
	if err != nil {
		return nil, err
	}

	report := &EquilibriumReport{}
	sampleEvery := cfg.Rounds / 10
	if sampleEvery == 0 {
		sampleEvery = 1
	}
	for round := 1; round <= cfg.Rounds; round++ {
		if err := unreg.sim.RunRound(cfg.WorkMI); err != nil {
			return nil, err
		}
		if err := reg.sim.RunRound(cfg.WorkMI); err != nil {
			return nil, err
		}
		if round%sampleEvery == 0 || round == cfg.Rounds {
			u, err := unreg.sim.BalanceSpread()
			if err != nil {
				return nil, err
			}
			r, err := reg.sim.BalanceSpread()
			if err != nil {
				return nil, err
			}
			report.Series = append(report.Series, EquilibriumPoint{Round: round, Unregulated: u, Regulated: r})
		}
	}
	last := report.Series[len(report.Series)-1]
	report.FinalUnregulated = last.Unregulated
	report.FinalRegulated = last.Regulated
	return report, nil
}

// WriteEquilibrium renders the spread series.
func WriteEquilibrium(w io.Writer, r *EquilibriumReport) {
	fmt.Fprintln(w, "§4.1 — price equilibrium: wealth spread with and without the community pricing authority")
	t := &Table{Header: []string{"round", "unregulated spread (G$)", "regulated spread (G$)"}}
	for _, p := range r.Series {
		t.Add(p.Round, fmt.Sprintf("%.2f", p.Unregulated), fmt.Sprintf("%.2f", p.Regulated))
	}
	t.Write(w)
	fmt.Fprintf(w, "\nfinal: unregulated %.2f vs regulated %.2f — the authority bounds wealth concentration.\n",
		r.FinalUnregulated, r.FinalRegulated)
}
