package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"gridbank/internal/accounts"
	"gridbank/internal/broker"
	"gridbank/internal/core"
	"gridbank/internal/currency"
	"gridbank/internal/gmd"
	"gridbank/internal/gridsim"
	"gridbank/internal/pki"
	"gridbank/internal/rur"
)

// Fig1Config parameterizes the Figure 1 end-to-end scenario.
type Fig1Config struct {
	Consumers       int   // default 8
	JobsPerConsumer int   // default 12
	Seed            int64 // workload seed
}

func (c *Fig1Config) defaults() {
	if c.Consumers <= 0 {
		c.Consumers = 8
	}
	if c.JobsPerConsumer <= 0 {
		c.JobsPerConsumer = 12
	}
}

// Fig1Report is the outcome of the Figure 1 use case.
type Fig1Report struct {
	JobsCompleted int
	JobsPlanned   int
	TotalCharged  currency.Amount
	// PerProvider earnings, per-consumer spend.
	ProviderEarned map[string]currency.Amount
	ConsumerSpent  map[string]currency.Amount
	// MoneyConserved: total balances before == after (the ledger-level
	// invariant the whole architecture exists to provide).
	MoneyConserved bool
	Makespan       time.Duration
}

// RunFig1 reproduces the paper's Figure 1 interaction: GSPs and GSCs open
// accounts with GridBank; consumers submit QoS-constrained work to the
// broker; the broker discovers providers in the market directory,
// establishes rates with each GTS, and submits jobs with GridCheques
// purchased from the bank; each GSP's Grid Resource Meter measures usage;
// the charging module prices the RUR against the agreed rates and redeems
// the cheque, transferring funds to the GSP account.
func RunFig1(cfg Fig1Config) (*Fig1Report, error) {
	cfg.defaults()
	w, err := NewWorld()
	if err != nil {
		return nil, err
	}
	sim := gridsim.New(w.Clock.Now())

	// Four heterogeneous providers: faster hardware posts higher prices.
	type gspDef struct {
		name   string
		nodes  int
		rating int
		num    int64 // price multiplier numerator (den 2)
	}
	// Per-job cost (∝ price/rating) strictly decreases with slowness, so
	// the cost-conscious broker fills slow-cheap capacity first and
	// spills toward fast-expensive iron only as the deadline forces it —
	// the supply/demand texture of §1.
	defs := []gspDef{
		{"gsp-fast", 8, 1600, 16},
		{"gsp-mid1", 8, 800, 6},
		{"gsp-mid2", 8, 600, 4},
		{"gsp-slow", 8, 400, 2},
	}
	directory := gmd.New(w.Clock.Now)
	providers := make(map[string]*Provider, len(defs))
	resources := make(map[string]*gridsim.Resource, len(defs))
	for _, d := range defs {
		// Time-based items price proportionally to hardware speed (a job
		// costs about the same CPU-money anywhere; it just finishes
		// sooner on fast iron); network traffic is priced identically
		// everywhere.
		rates := ScaledRates(d.num, 2)
		rates[rur.ItemNetwork] = StandardRates()[rur.ItemNetwork]
		p, err := w.NewProvider(d.name, rates, 16)
		if err != nil {
			return nil, err
		}
		providers[p.Identity.SubjectName()] = p
		r, err := sim.AddResource(gridsim.ResourceConfig{
			Provider: p.Identity.SubjectName(), Host: d.name + ".grid", Nodes: d.nodes, RatingMIPS: d.rating,
		})
		if err != nil {
			return nil, err
		}
		resources[p.Identity.SubjectName()] = r
		if err := directory.Register(gmd.Advertisement{
			Provider:  p.Identity.SubjectName(),
			Address:   d.name + ".grid:9000",
			CPURating: d.rating,
			Nodes:     d.nodes,
			Rates:     p.GTS.CurrentRates().Rates,
		}); err != nil {
			return nil, err
		}
	}

	before, err := w.Bank.Manager().TotalBalance()
	if err != nil {
		return nil, err
	}

	report := &Fig1Report{
		ProviderEarned: make(map[string]currency.Amount),
		ConsumerSpent:  make(map[string]currency.Amount),
	}
	var runErr error
	fail := func(err error) {
		if runErr == nil && err != nil {
			runErr = err
		}
	}

	// Consumers enrol, discover providers in the directory and conclude a
	// rate agreement with each GTS.
	type consumer struct {
		id         *pki.Identity
		acct       accounts.ID
		agreements map[string]string // provider -> agreement ID
	}
	consumers := make(map[string]*consumer, cfg.Consumers)
	var allJobs []gridsim.Job
	ads := directory.Find(gmd.Query{MinCPURating: 1})
	var candidates []broker.Candidate
	for ci := 0; ci < cfg.Consumers; ci++ {
		name := fmt.Sprintf("consumer-%02d", ci)
		id, acct, err := w.NewActor(name, currency.FromG(500))
		if err != nil {
			return nil, err
		}
		c := &consumer{id: id, acct: acct, agreements: make(map[string]string)}
		for _, ad := range ads {
			p := providers[ad.Provider]
			ag, err := p.GTS.Agree(id.SubjectName())
			if err != nil {
				return nil, err
			}
			c.agreements[ad.Provider] = ag.ID
			if ci == 0 {
				candidates = append(candidates, broker.Candidate{
					Provider:    ad.Provider,
					Nodes:       ad.Nodes,
					RatingMIPS:  ad.CPURating,
					Rates:       &ag.Card,
					AgreementID: ag.ID,
				})
			}
		}
		consumers[id.SubjectName()] = c
		allJobs = append(allJobs, gridsim.Bag(gridsim.BagOptions{
			Owner:        id.SubjectName(),
			Application:  "param-sweep",
			N:            cfg.JobsPerConsumer,
			MeanLengthMI: 60_000,
			MemoryMB:     256,
			StorageMB:    50,
			InputMB:      10,
			OutputMB:     10,
			Seed:         cfg.Seed + int64(ci),
			IDPrefix:     name,
		})...)
	}

	// One shared broker pass schedules the whole community's workload
	// (all consumers quote the same posted rates, so the capacity view
	// is common): cost-conscious with a deadline tight enough that the
	// cheap-slow provider alone cannot absorb everything.
	plan, err := broker.Schedule(allJobs, candidates, broker.QoS{
		Deadline: 10 * time.Minute,
		Budget:   currency.FromG(400 * int64(cfg.Consumers)),
	}, broker.CostTime)
	if err != nil {
		return nil, fmt.Errorf("fig1: community plan: %w", err)
	}
	report.JobsPlanned = len(plan.Assignments)

	// Execute: per job, the owner buys a cheque (2× estimate headroom
	// against workload jitter), the GSP admits it onto a template
	// account, the simulator runs it, the meter converts the raw usage
	// and the GBCM settles against the owner's agreed rates.
	for _, a := range plan.Assignments {
		a := a
		p := providers[a.Provider]
		c := consumers[a.Job.Owner]
		budget := a.EstCost.MustAdd(a.EstCost)
		if budget.IsZero() {
			budget = currency.FromG(1)
		}
		chequeResp, err := w.Bank.RequestCheque(c.id.SubjectName(), &core.RequestChequeRequest{
			AccountID: c.acct,
			Amount:    budget,
			PayeeCert: a.Provider,
			TTL:       24 * time.Hour,
		})
		if err != nil {
			return nil, fmt.Errorf("fig1: cheque for %s: %w", a.Job.ID, err)
		}
		if _, err := p.GBCM.AdmitCheque(a.Job.ID, &chequeResp.Cheque); err != nil {
			return nil, fmt.Errorf("fig1: admit %s: %w", a.Job.ID, err)
		}
		agID := c.agreements[a.Provider]
		if err := resources[a.Provider].Submit(a.Job, func(res gridsim.JobResult) {
			w.Clock.Set(res.End)
			rec, err := p.Meter.Convert(res)
			if err != nil {
				fail(err)
				return
			}
			ag, ok := p.GTS.Lookup(agID)
			if !ok {
				fail(fmt.Errorf("fig1: lost agreement %s", agID))
				return
			}
			result, err := p.GBCM.SettleCheque(res.Job.ID, rec, &ag.Card)
			if err != nil {
				fail(fmt.Errorf("fig1: settle %s: %w", res.Job.ID, err))
				return
			}
			paid, err := currency.Parse(result.Paid)
			if err != nil {
				fail(err)
				return
			}
			report.JobsCompleted++
			report.TotalCharged = report.TotalCharged.MustAdd(paid)
			report.ProviderEarned[a.Provider] = report.ProviderEarned[a.Provider].MustAdd(paid)
			report.ConsumerSpent[rec.User.CertificateName] = report.ConsumerSpent[rec.User.CertificateName].MustAdd(paid)
		}); err != nil {
			return nil, err
		}
	}

	start := sim.Now()
	sim.Run()
	if runErr != nil {
		return nil, runErr
	}
	report.Makespan = sim.Now().Sub(start)

	after, err := w.Bank.Manager().TotalBalance()
	if err != nil {
		return nil, err
	}
	report.MoneyConserved = before.MustAdd(currency.FromG(int64(cfg.Consumers)*500)) == after
	return report, nil
}

// WriteFig1 renders the report.
func WriteFig1(w io.Writer, r *Fig1Report) {
	fmt.Fprintf(w, "Figure 1 — end-to-end Grid accounting use case\n")
	fmt.Fprintf(w, "jobs planned %d, completed %d; makespan %v; total charged %s G$; money conserved: %v\n\n",
		r.JobsPlanned, r.JobsCompleted, r.Makespan, r.TotalCharged, r.MoneyConserved)
	t := &Table{Header: []string{"provider", "earned (G$)"}}
	for _, p := range sortedKeys(r.ProviderEarned) {
		t.Add(p, r.ProviderEarned[p])
	}
	t.Write(w)
	fmt.Fprintln(w)
	t2 := &Table{Header: []string{"consumer", "spent (G$)"}}
	for _, c := range sortedKeys(r.ConsumerSpent) {
		t2.Add(c, r.ConsumerSpent[c])
	}
	t2.Write(w)
}

func sortedKeys(m map[string]currency.Amount) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
