package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"gridbank/internal/broker"
	"gridbank/internal/currency"
	"gridbank/internal/rur"
)

// The experiment tests assert the *shape* each paper claim predicts, not
// absolute numbers: who wins, what stays bounded, what is refused.

func TestFig1EndToEnd(t *testing.T) {
	r, err := RunFig1(Fig1Config{Consumers: 3, JobsPerConsumer: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.JobsCompleted != r.JobsPlanned || r.JobsCompleted != 15 {
		t.Fatalf("jobs: planned %d completed %d", r.JobsPlanned, r.JobsCompleted)
	}
	if !r.MoneyConserved {
		t.Fatal("money not conserved")
	}
	if !r.TotalCharged.IsPositive() {
		t.Fatal("nothing charged")
	}
	var earned currency.Amount
	for _, e := range r.ProviderEarned {
		earned = earned.MustAdd(e)
	}
	var spent currency.Amount
	for _, s := range r.ConsumerSpent {
		spent = spent.MustAdd(s)
	}
	if earned != spent || earned != r.TotalCharged {
		t.Fatalf("earned %s != spent %s != charged %s", earned, spent, r.TotalCharged)
	}
	var buf bytes.Buffer
	WriteFig1(&buf, r)
	if !strings.Contains(buf.String(), "money conserved: true") {
		t.Error("report rendering broken")
	}
}

func TestFig2Pipeline(t *testing.T) {
	r, err := RunFig2()
	if err != nil {
		t.Fatal(err)
	}
	if !r.StatementVerified || !r.EvidenceStored {
		t.Fatalf("verified=%v evidence=%v", r.StatementVerified, r.EvidenceStored)
	}
	// One CPU-hour at 2 G$/h dominates; total must be > 2 (plus memory
	// etc) and paid == total (cheque covered it).
	if r.Statement.Total.Cmp(currency.FromG(2)) < 0 {
		t.Fatalf("total = %s", r.Statement.Total)
	}
	if r.Paid != r.Statement.Total {
		t.Fatalf("paid %s != total %s", r.Paid, r.Statement.Total)
	}
	if len(r.Statement.Lines) != 6 {
		t.Fatalf("lines = %d", len(r.Statement.Lines))
	}
	var buf bytes.Buffer
	WriteFig2(&buf, r)
	if !strings.Contains(buf.String(), "cpu") {
		t.Error("report rendering broken")
	}
}

func TestFig3Protocols(t *testing.T) {
	r, err := RunFig3(Fig3Config{Payments: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Lines) != 3 {
		t.Fatalf("lines = %d", len(r.Lines))
	}
	// All protocols move the same total.
	for _, l := range r.Lines {
		if l.TotalMoved != r.Lines[0].TotalMoved {
			t.Fatalf("moved mismatch: %+v", r.Lines)
		}
	}
	// The shape claim: per-payment bank RPCs rank hashchain < direct <
	// cheque.
	direct, cheque, chain := r.Lines[0], r.Lines[1], r.Lines[2]
	if !(chain.RPCsPerPay < direct.RPCsPerPay && direct.RPCsPerPay < cheque.RPCsPerPay) {
		t.Fatalf("RPC ranking wrong: %v %v %v", chain.RPCsPerPay, direct.RPCsPerPay, cheque.RPCsPerPay)
	}
	// And per-payment wall time: hash chains are the cheapest.
	if chain.PerPayment >= cheque.PerPayment {
		t.Fatalf("chain %v not cheaper than cheque %v per payment", chain.PerPayment, cheque.PerPayment)
	}
	var buf bytes.Buffer
	WriteFig3(&buf, r)
	if !strings.Contains(buf.String(), "GridHash") {
		t.Error("report rendering broken")
	}
}

func TestFig4Coop(t *testing.T) {
	r, err := RunFig4(Fig4Config{Rounds: 100})
	if err != nil {
		t.Fatal(err)
	}
	if !r.MoneyConserved || !r.SlowCompensates {
		t.Fatalf("conserved=%v compensates=%v", r.MoneyConserved, r.SlowCompensates)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Consumed.IsZero() || row.Provided.IsZero() {
			t.Fatalf("%s did not both consume and provide: %+v", row.Participant, row)
		}
		// Balance identity: initial + provided − consumed == balance.
		want := currency.FromG(100).MustAdd(row.Provided).MustSub(row.Consumed)
		if row.Balance != want {
			t.Fatalf("%s balance %s, want %s", row.Participant, row.Balance, want)
		}
	}
	var buf bytes.Buffer
	WriteFig4(&buf, r)
	if !strings.Contains(buf.String(), "GSP4 (slow)") {
		t.Error("report rendering broken")
	}
}

func TestScalability(t *testing.T) {
	r, err := RunScalability(ScalabilityConfig{ConsumerCounts: []int{10, 200}, PoolSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		// The claim: pool size constant, every consumer served, no
		// rejections when concurrency ≤ pool.
		if row.LocalAccountsPool != 8 {
			t.Fatalf("pool grew: %+v", row)
		}
		if row.JobsServed != row.Consumers || row.Rejections != 0 {
			t.Fatalf("service degraded: %+v", row)
		}
		if row.PeakInUse > 8 {
			t.Fatalf("peak exceeded pool: %+v", row)
		}
	}
	// Static baseline grows with the population; pool does not.
	if r.Rows[1].LocalAccountsStatic <= r.Rows[0].LocalAccountsStatic {
		t.Fatal("baseline shape wrong")
	}
	var buf bytes.Buffer
	WriteScalability(&buf, r)
	if !strings.Contains(buf.String(), "template account pool") {
		t.Error("report rendering broken")
	}
}

func TestGuarantee(t *testing.T) {
	r, err := RunGuarantee(GuaranteeConfig{Cheques: 30})
	if err != nil {
		t.Fatal(err)
	}
	// Locked: exactly balance/limit cheques issued, zero unpaid, no
	// overdraft.
	if r.LockedIssued != 10 || r.LockedRefused != 20 {
		t.Fatalf("locked issue split = %d/%d", r.LockedIssued, r.LockedRefused)
	}
	if r.LockedUnpaid != 0 || r.LockedOverdraft {
		t.Fatalf("guarantee violated: %+v", r)
	}
	// Naive: everything issued, most unpaid.
	if r.NaiveIssued != 30 {
		t.Fatalf("naive issued = %d", r.NaiveIssued)
	}
	if r.NaiveUnpaid != 20 {
		t.Fatalf("naive unpaid = %d", r.NaiveUnpaid)
	}
	var buf bytes.Buffer
	WriteGuarantee(&buf, r)
	if !strings.Contains(buf.String(), "locked funds") {
		t.Error("report rendering broken")
	}
}

func TestPolicies(t *testing.T) {
	r, err := RunPolicies()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Lines) != 3 {
		t.Fatalf("lines = %d", len(r.Lines))
	}
	// Pay-before: provider got exactly the fixed price.
	if r.Lines[0].ProviderGot != currency.FromG(1) {
		t.Fatalf("pay-before got %s", r.Lines[0].ProviderGot)
	}
	// Pay-as-you-go: 40 words × 0.05 = 2; 60 × 0.05 = 3 refunded.
	if r.Lines[1].ProviderGot != currency.FromG(2) || r.Lines[1].ConsumerRefunded != currency.FromG(3) {
		t.Fatalf("pay-as-you-go = %+v", r.Lines[1])
	}
	// Pay-after: metered 6.75 paid, 3.25 of the 10 reservation refunded.
	if r.Lines[2].ProviderGot != currency.MustParse("6.75") || r.Lines[2].ConsumerRefunded != currency.MustParse("3.25") {
		t.Fatalf("pay-after = %+v", r.Lines[2])
	}
	var buf bytes.Buffer
	WritePolicies(&buf, r)
	if !strings.Contains(buf.String(), "pay after use") {
		t.Error("report rendering broken")
	}
}

func TestEstimate(t *testing.T) {
	r, err := RunEstimate(EstimateConfig{HistorySize: 500, Queries: 30})
	if err != nil {
		t.Fatal(err)
	}
	// With ±10% noise a usable estimator should land well under 25% mean
	// error.
	if r.MeanAbsErrPct > 25 {
		t.Fatalf("mean error %.1f%%", r.MeanAbsErrPct)
	}
	if len(r.Samples) == 0 {
		t.Fatal("no samples")
	}
	var buf bytes.Buffer
	WriteEstimate(&buf, r)
	if !strings.Contains(buf.String(), "mean absolute error") {
		t.Error("report rendering broken")
	}
}

func TestEquilibrium(t *testing.T) {
	r, err := RunEquilibrium(EquilibriumConfig{Participants: 8, Rounds: 150})
	if err != nil {
		t.Fatal(err)
	}
	if r.FinalRegulated >= r.FinalUnregulated {
		t.Fatalf("authority ineffective: regulated %.2f vs unregulated %.2f",
			r.FinalRegulated, r.FinalUnregulated)
	}
	var buf bytes.Buffer
	WriteEquilibrium(&buf, r)
	if !strings.Contains(buf.String(), "pricing authority") {
		t.Error("report rendering broken")
	}
}

func TestBranches(t *testing.T) {
	r, err := RunBranches(BranchesConfig{ChequesPerPair: 4})
	if err != nil {
		t.Fatal(err)
	}
	if r.CrossRedemptions != 24 { // 6 directed pairs × 4
		t.Fatalf("redemptions = %d", r.CrossRedemptions)
	}
	if len(r.Settlements) != 3 || !r.AllBooksBalance {
		t.Fatalf("settlements = %d, balance %v", len(r.Settlements), r.AllBooksBalance)
	}
	// With bidirectional flows, netting must have cancelled something.
	var nettedAny bool
	for _, s := range r.Settlements {
		if s.Netted.IsPositive() {
			nettedAny = true
		}
	}
	if !nettedAny {
		t.Fatal("no offsetting obligations were netted")
	}
	var buf bytes.Buffer
	WriteBranches(&buf, r)
	if !strings.Contains(buf.String(), "net payer") {
		t.Error("report rendering broken")
	}
}

func TestDBCSweep(t *testing.T) {
	r, err := RunDBC(DBCConfig{Jobs: 40})
	if err != nil {
		t.Fatal(err)
	}
	// Index rows by (strategy, deadline index).
	byStrategy := map[broker.Strategy][]DBCRow{}
	for _, row := range r.Rows {
		byStrategy[row.Strategy] = append(byStrategy[row.Strategy], row)
	}
	costRows := byStrategy[broker.CostOptimal]
	// Cost-opt: with a loose deadline the fast share shrinks and cost
	// falls relative to the tightest feasible deadline.
	var feasible []DBCRow
	for _, row := range costRows {
		if row.Feasible {
			feasible = append(feasible, row)
		}
	}
	if len(feasible) < 2 {
		t.Fatalf("too few feasible cost-opt points: %+v", costRows)
	}
	tight, loose := feasible[0], feasible[len(feasible)-1]
	if tight.Cost.Cmp(loose.Cost) < 0 {
		t.Fatalf("tight deadline (%v, %s) not costlier than loose (%v, %s)",
			tight.Deadline, tight.Cost, loose.Deadline, loose.Cost)
	}
	if tight.FastShare < loose.FastShare {
		t.Fatalf("fast share did not grow under pressure: %.2f vs %.2f", tight.FastShare, loose.FastShare)
	}
	// Time-opt always beats or equals cost-opt on makespan where both
	// feasible.
	timeRows := byStrategy[broker.TimeOptimal]
	for i, row := range costRows {
		if row.Feasible && timeRows[i].Feasible && timeRows[i].Makespan > row.Makespan {
			t.Fatalf("time-opt slower than cost-opt at %v", row.Deadline)
		}
	}
	var buf bytes.Buffer
	WriteDBC(&buf, r)
	if !strings.Contains(buf.String(), "cost-time") {
		t.Error("report rendering broken")
	}
}

func TestPricingSupplyDemand(t *testing.T) {
	r, err := RunPricing(PricingConfig{Demand: []int{2, 12, 2}, PhaseLen: 20})
	if err != nil {
		t.Fatal(err)
	}
	// The §1 claim: high demand raises the price, low demand lowers it.
	if r.PeakPrice <= r.QuietPrice {
		t.Fatalf("rush price %d not above quiet price %d", r.PeakPrice, r.QuietPrice)
	}
	// The quiet price sits below the base rate (idle discount), the rush
	// price above it.
	base := StandardRates()[rur.ItemCPU].MicroPerUnit
	if r.QuietPrice >= base {
		t.Fatalf("quiet price %d not below base %d", r.QuietPrice, base)
	}
	if r.PeakPrice <= base {
		t.Fatalf("rush price %d not above base %d", r.PeakPrice, base)
	}
	var buf bytes.Buffer
	WritePricing(&buf, r)
	if !strings.Contains(buf.String(), "demand raises the price") {
		t.Error("report rendering broken")
	}
}

func TestConcurrentLoad(t *testing.T) {
	r, err := RunConcurrentLoad(ConcurrentLoadConfig{
		ConsumerCounts:       []int{1, 8},
		TransfersPerConsumer: 20,
		Durability:           []string{DurVolatile, DurFile, DurFileSync},
		Dir:                  t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 6 {
		t.Fatalf("got %d points, want 6", len(r.Points))
	}
	for _, p := range r.Points {
		if p.Transfers != p.Consumers*20 {
			t.Fatalf("%s/%d: %d transfers", p.Durability, p.Consumers, p.Transfers)
		}
		if p.PerSec <= 0 {
			t.Fatalf("%s/%d: nonpositive throughput", p.Durability, p.Consumers)
		}
	}
	var buf bytes.Buffer
	WriteConcurrentLoad(&buf, r)
	if !strings.Contains(buf.String(), "file-sync") {
		t.Error("report rendering broken")
	}
}

func TestConcurrentLoadSharedRecipient(t *testing.T) {
	// The hotspot mode: every consumer pays the same provider account.
	// Conservation is checked inside the run; this exercises the
	// store's conflict-retry path under real contention.
	r, err := RunConcurrentLoad(ConcurrentLoadConfig{
		ConsumerCounts:       []int{8},
		TransfersPerConsumer: 25,
		Durability:           []string{DurVolatile},
		SharedRecipient:      true,
		Dir:                  t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Points[0].Transfers; got != 200 {
		t.Fatalf("transfers = %d, want 200", got)
	}
}

func TestReplicasSweep(t *testing.T) {
	// Small sweep of the full wire-level primary/replica topology. The
	// run itself asserts the replication contract per cell: replicas
	// converge to the primary's exact sequence after writes quiesce,
	// staleness stays within the routing bound, and a routed read of
	// the quiesced account returns the exact primary balance.
	r, err := RunReplicas(ReplicasConfig{
		ReplicaCounts: []int{0, 1},
		ReaderCounts:  []int{2},
		Window:        100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 2 {
		t.Fatalf("got %d points, want 2", len(r.Points))
	}
	for _, p := range r.Points {
		if p.Reads <= 0 || p.Writes <= 0 {
			t.Fatalf("cell %d/%d: reads=%d writes=%d", p.Replicas, p.Readers, p.Reads, p.Writes)
		}
		if p.Replicas == 0 && p.LagMax != 0 {
			t.Fatalf("primary-only cell reports lag %d", p.LagMax)
		}
	}
	var buf bytes.Buffer
	WriteReplicas(&buf, r)
	if !strings.Contains(buf.String(), "reads/sec") {
		t.Error("report rendering broken")
	}
}

func TestWireExpSweep(t *testing.T) {
	// Tiny sweep: the full matrix (durable + volatile + echo, both
	// modes) with conservation asserts, sized for CI.
	r, err := RunWireExp(WireExpConfig{
		Concurrency:  []int{1, 4},
		Payloads:     []int{64},
		OpsPerCaller: 10,
		Rounds:       1,
		Dir:          t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	// 4 workloads x 2 concurrency levels.
	if len(r.Points) != 8 {
		t.Fatalf("got %d points, want 8", len(r.Points))
	}
	for _, p := range r.Points {
		if p.SerializedOps <= 0 || p.PipelinedOps <= 0 {
			t.Fatalf("%s/%d: nonpositive throughput %+v", p.Workload, p.Concurrency, p)
		}
	}
	var buf bytes.Buffer
	WriteWireExp(&buf, r)
	if !strings.Contains(buf.String(), "checkfunds/file-sync") {
		t.Error("report rendering broken")
	}
}

func TestObsExpSweep(t *testing.T) {
	// Tiny sweep: fresh-pair ABBA rounds with conservation asserts and
	// the telemetry-was-live check, sized for CI; the overhead numbers
	// themselves are meaningless at this scale and not asserted.
	r, err := RunObsExp(ObsExpConfig{
		Concurrency:  []int{1, 4},
		OpsPerCaller: 10,
		Rounds:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 2 workloads x 2 concurrency levels.
	if len(r.Points) != 4 {
		t.Fatalf("got %d points, want 4", len(r.Points))
	}
	for _, p := range r.Points {
		if p.OffOps <= 0 || p.OnOps <= 0 {
			t.Fatalf("%s/%d: nonpositive throughput %+v", p.Workload, p.Concurrency, p)
		}
	}
	if r.Series == 0 || r.ServerRequests == 0 {
		t.Fatalf("instrumented side not live: %d series, %d requests", r.Series, r.ServerRequests)
	}
	var buf bytes.Buffer
	WriteObsExp(&buf, r)
	if !strings.Contains(buf.String(), "aggregate overhead") {
		t.Error("report rendering broken")
	}
}

func TestMicropayExpSweep(t *testing.T) {
	// Tiny sweep sized for CI: the exactly-once, conservation and
	// crash-recovery asserts inside every cell are the point; the
	// throughput numbers are meaningless at this scale.
	r, err := RunMicropay(MicropayExpConfig{
		Chains:         2,
		TicksPerChain:  64,
		ClaimIntervals: []int{16},
		BatchSizes:     []int{8},
		ShardCounts:    []int{1, 2},
		BaselineTicks:  8,
		CrashTicks:     16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 2 {
		t.Fatalf("got %d points, want 2", len(r.Points))
	}
	if r.BaselinePerSec <= 0 {
		t.Fatalf("baseline = %f", r.BaselinePerSec)
	}
	for _, p := range r.Points {
		if p.TicksPerSec <= 0 || p.Ticks != 2*64 {
			t.Fatalf("cell %+v", p)
		}
		if p.Shards == 1 && p.CrossShard != 0 {
			t.Fatalf("cross-shard traffic on a 1-shard cell: %+v", p)
		}
	}
	var buf bytes.Buffer
	WriteMicropay(&buf, r)
	if !strings.Contains(buf.String(), "ticks/sec") {
		t.Error("report rendering broken")
	}
}

func TestCodecExpSweep(t *testing.T) {
	// Tiny sweep sized for CI: the per-cell conservation asserts (run
	// through the codec under test) are the point; throughput numbers
	// are meaningless at this scale.
	r, err := RunCodecExp(CodecExpConfig{
		Concurrency:      []int{1, 2},
		OpsPerCaller:     10,
		Rounds:           1,
		JournalTransfers: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Frames) != 6 { // 3 workloads x 2 concurrency levels
		t.Fatalf("got %d frame points, want 6", len(r.Frames))
	}
	for _, p := range r.Frames {
		if p.JSONOps <= 0 || p.BinOps <= 0 {
			t.Fatalf("cell %+v", p)
		}
	}
	if len(r.Journal) != 1 || r.Journal[0].Entries == 0 {
		t.Fatalf("journal cells %+v", r.Journal)
	}
	if r.Journal[0].BinBytes >= r.Journal[0].JSONBytes {
		t.Fatalf("binary WAL not smaller: %+v", r.Journal[0])
	}
	if len(r.Catchup) != 1 || r.Catchup[0].Entries == 0 {
		t.Fatalf("catch-up cells %+v", r.Catchup)
	}
	var buf bytes.Buffer
	WriteCodecExp(&buf, r)
	if !strings.Contains(buf.String(), "bin1 ops/s") {
		t.Error("report rendering broken")
	}
}
