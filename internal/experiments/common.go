// Package experiments implements the reproduction harness: one runnable
// experiment per figure and per quantified claim of the GridBank paper
// (see DESIGN.md §4 for the index). Each experiment builds its own world
// — bank, PKI, providers, consumers, simulator — runs the scenario, and
// returns a printable report. cmd/experiments is the CLI front end;
// bench_test.go benchmarks the same entry points.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"

	"gridbank/internal/accounts"
	"gridbank/internal/charging"
	"gridbank/internal/core"
	"gridbank/internal/currency"
	"gridbank/internal/db"
	"gridbank/internal/meter"
	"gridbank/internal/payment"
	"gridbank/internal/pki"
	"gridbank/internal/rur"
	"gridbank/internal/trade"
)

// World is an in-process single-VO Grid: a bank plus helpers to mint
// funded identities and provider stacks. Experiments that need the wire
// (E3) add a TLS server on top.
type World struct {
	CA    *pki.CA
	Trust *pki.TrustStore
	Bank  *core.Bank
	Admin string // admin subject
	Clock *VClock
}

// VClock is a controllable clock shared by the bank and the scenario.
type VClock struct{ t time.Time }

// Now returns the current virtual time.
func (c *VClock) Now() time.Time { return c.t }

// Advance moves the clock forward.
func (c *VClock) Advance(d time.Duration) { c.t = c.t.Add(d) }

// Set jumps the clock to t (never backwards).
func (c *VClock) Set(t time.Time) {
	if t.After(c.t) {
		c.t = t
	}
}

// NewWorld builds a fresh in-process Grid world.
func NewWorld() (*World, error) {
	ca, err := pki.NewCA("Experiment CA", "VO-X", 24*time.Hour)
	if err != nil {
		return nil, err
	}
	bankID, err := ca.Issue(pki.IssueOptions{CommonName: "gridbank", Organization: "VO-X", IsServer: true})
	if err != nil {
		return nil, err
	}
	trust := pki.NewTrustStore(ca.Certificate())
	clock := &VClock{t: time.Now()}
	const admin = "CN=experiment-admin"
	bank, err := core.NewBank(db.MustOpenMemory(), core.BankConfig{
		Identity: bankID, Trust: trust, Admins: []string{admin}, Now: clock.Now,
	})
	if err != nil {
		return nil, err
	}
	return &World{CA: ca, Trust: trust, Bank: bank, Admin: admin, Clock: clock}, nil
}

// NewActor issues an identity, opens its account and funds it.
func (w *World) NewActor(name string, funds currency.Amount) (*pki.Identity, accounts.ID, error) {
	id, err := w.CA.Issue(pki.IssueOptions{CommonName: name, Organization: "VO-X"})
	if err != nil {
		return nil, "", err
	}
	resp, err := w.Bank.CreateAccount(id.SubjectName(), &core.CreateAccountRequest{OrganizationName: "VO-X"})
	if err != nil {
		return nil, "", err
	}
	if funds.IsPositive() {
		if _, err := w.Bank.AdminDeposit(w.Admin, &core.AdminAmountRequest{
			AccountID: resp.Account.AccountID, Amount: funds,
		}); err != nil {
			return nil, "", err
		}
	}
	return id, resp.Account.AccountID, nil
}

// Provider bundles one GSP's full stack: identity, account, trade server,
// meter, charging module.
type Provider struct {
	Identity *pki.Identity
	Account  accounts.ID
	GTS      *trade.Server
	Meter    *meter.Meter
	GBCM     *charging.Module
}

// bankRedeemer adapts the in-process bank to the GBCM's Redeemer.
type bankRedeemer struct {
	bank    *core.Bank
	subject string
}

func (r *bankRedeemer) RedeemCheque(c *payment.SignedCheque, cl *payment.ChequeClaim) (*core.RedeemChequeResponse, error) {
	return r.bank.RedeemCheque(r.subject, &core.RedeemChequeRequest{Cheque: *c, Claim: *cl})
}

func (r *bankRedeemer) RedeemChain(c *payment.SignedChain, cl *payment.ChainClaim) (*core.RedeemChainResponse, error) {
	return r.bank.RedeemChain(r.subject, &core.RedeemChainRequest{Chain: *c, Claim: *cl})
}

// NewProvider stands up a complete GSP stack with the given posted rates
// and template-pool size.
func (w *World) NewProvider(name string, rates map[rur.Item]currency.Rate, poolSize int) (*Provider, error) {
	id, acct, err := w.NewActor(name, 0)
	if err != nil {
		return nil, err
	}
	gts, err := trade.NewServer(trade.ServerConfig{
		Identity: id,
		Model:    trade.PostedPrice{Card: rates},
		Now:      w.Clock.Now,
	})
	if err != nil {
		return nil, err
	}
	grm, err := meter.New(id.SubjectName(), "sim-cluster")
	if err != nil {
		return nil, err
	}
	pool, err := charging.NewTemplatePool("grid", poolSize, nil)
	if err != nil {
		return nil, err
	}
	gbcm, err := charging.NewModule(charging.ModuleConfig{
		Identity: id,
		Trust:    w.Trust,
		Pool:     pool,
		Redeemer: &bankRedeemer{bank: w.Bank, subject: id.SubjectName()},
		Now:      w.Clock.Now,
	})
	if err != nil {
		return nil, err
	}
	return &Provider{Identity: id, Account: acct, GTS: gts, Meter: grm, GBCM: gbcm}, nil
}

// StandardRates is the default posted rate card used across experiments:
// 2 G$/CPU-hour, 0.1 G$/hour wall clock, 0.001 G$/MB-hour memory,
// 0.0001 G$/MB-hour storage, 0.01 G$/MB traffic, 10 G$/hour software.
func StandardRates() map[rur.Item]currency.Rate {
	return map[rur.Item]currency.Rate{
		rur.ItemCPU:       currency.PerHour(2 * currency.Scale),
		rur.ItemWallClock: currency.PerHour(currency.Scale / 10),
		rur.ItemMemory:    currency.PerMBHour(currency.Scale / 1000),
		rur.ItemStorage:   currency.PerMBHour(currency.Scale / 10000),
		rur.ItemNetwork:   currency.PerMB(currency.Scale / 100),
		rur.ItemSoftware:  currency.PerHour(10 * currency.Scale),
	}
}

// ScaledRates multiplies StandardRates by num/den (heterogeneous pricing).
func ScaledRates(num, den int64) map[rur.Item]currency.Rate {
	out := StandardRates()
	for k, v := range out {
		out[k] = v.Scale(num, den)
	}
	return out
}

// accountsID converts a stringified account ID back to the typed form.
func accountsID(s string) accounts.ID { return accounts.ID(s) }

// pkiIssue is a tiny option builder for experiment identities.
func pkiIssue(cn string) pki.IssueOptions {
	return pki.IssueOptions{CommonName: cn, Organization: "VO-X"}
}

// newUsageRecord builds a small, valid one-CPU-hour RUR for flows that
// exercise admission/settlement without a full simulation.
func newUsageRecord(consumer, provider, jobID string, now time.Time) *rur.Record {
	rec := &rur.Record{
		User:     rur.UserDetails{CertificateName: consumer},
		Job:      rur.JobDetails{JobID: jobID, Application: "bench", Start: now.Add(-time.Hour), End: now},
		Resource: rur.ResourceDetails{Host: "sim", CertificateName: provider, LocalJobID: "pid"},
	}
	rec.SetQuantity(rur.ItemCPU, 3600)
	rec.SetQuantity(rur.ItemWallClock, 3600)
	rec.SetQuantity(rur.ItemMemory, 256*3600)
	rec.SetQuantity(rur.ItemStorage, 50*3600)
	rec.SetQuantity(rur.ItemNetwork, 20)
	rec.SetQuantity(rur.ItemSoftware, 60)
	return rec
}

// Table renders aligned experiment output.
type Table struct {
	Header []string
	Rows   [][]string
}

// Add appends a row; values are stringified with %v.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprintf("%v", c)
	}
	t.Rows = append(t.Rows, row)
}

// Write renders the table with aligned columns.
func (t *Table) Write(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	seps := make([]string, len(t.Header))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	line(seps)
	for _, row := range t.Rows {
		line(row)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}
