package experiments

import (
	"fmt"
	"io"
	"time"

	"gridbank/internal/broker"
	"gridbank/internal/currency"
	"gridbank/internal/gridsim"
	"gridbank/internal/rur"
)

// DBCConfig parameterizes the broker-scheduling experiment.
type DBCConfig struct {
	Jobs int   // default 100
	Seed int64 // default 7
}

func (c *DBCConfig) defaults() {
	if c.Jobs <= 0 {
		c.Jobs = 100
	}
	if c.Seed == 0 {
		c.Seed = 7
	}
}

// DBCRow is one (strategy, deadline) cell.
type DBCRow struct {
	Strategy broker.Strategy
	Deadline time.Duration
	Feasible bool
	Makespan time.Duration
	Cost     currency.Amount
	// FastShare is the fraction of jobs on the fast/expensive resource.
	FastShare float64
}

// DBCReport sweeps the deadline for each DBC strategy over a two-tier
// testbed, exposing the cost/time trade-off and the crossover where
// tight deadlines force spending.
type DBCReport struct {
	Jobs int
	Rows []DBCRow
}

func dbcRates(provider string, gPerHour int64) *rur.RateCard {
	return &rur.RateCard{
		Provider: provider,
		Currency: currency.GridDollar,
		Rates: map[rur.Item]currency.Rate{
			rur.ItemCPU:       currency.PerHour(gPerHour * currency.Scale),
			rur.ItemWallClock: currency.ZeroRate,
			rur.ItemMemory:    currency.PerMBHour(currency.Scale / 1000),
			rur.ItemStorage:   currency.ZeroRate,
			rur.ItemNetwork:   currency.PerMB(currency.Scale / 100),
			rur.ItemSoftware:  currency.PerHour(gPerHour * currency.Scale),
		},
	}
}

// RunDBC evaluates cost-optimal, time-optimal and cost-time scheduling
// of a bag of tasks across deadlines (the Nimrod-G evaluation shape).
func RunDBC(cfg DBCConfig) (*DBCReport, error) {
	cfg.defaults()
	jobs := gridsim.Bag(gridsim.BagOptions{
		Owner: "CN=alice", Application: "sweep",
		N: cfg.Jobs, MeanLengthMI: 48_000, MemoryMB: 128, InputMB: 5, OutputMB: 5,
		Seed: cfg.Seed,
	})
	candidates := []broker.Candidate{
		{Provider: "CN=cheap-slow", Nodes: 16, RatingMIPS: 400, Rates: dbcRates("CN=cheap-slow", 1)},
		{Provider: "CN=pricey-fast", Nodes: 16, RatingMIPS: 1600, Rates: dbcRates("CN=pricey-fast", 6)},
	}
	deadlines := []time.Duration{
		3 * time.Minute, 6 * time.Minute, 12 * time.Minute, 30 * time.Minute,
	}
	budget := currency.FromG(1000)

	report := &DBCReport{Jobs: cfg.Jobs}
	for _, strategy := range []broker.Strategy{broker.CostOptimal, broker.CostTime, broker.TimeOptimal} {
		for _, dl := range deadlines {
			row := DBCRow{Strategy: strategy, Deadline: dl}
			plan, err := broker.Schedule(jobs, candidates, broker.QoS{Deadline: dl, Budget: budget}, strategy)
			if err == nil {
				row.Feasible = true
				row.Makespan = plan.Makespan
				row.Cost = plan.TotalCost
				fast := len(plan.ByProvider()["CN=pricey-fast"])
				row.FastShare = float64(fast) / float64(len(plan.Assignments))
			}
			report.Rows = append(report.Rows, row)
		}
	}
	return report, nil
}

// WriteDBC renders the sweep.
func WriteDBC(w io.Writer, r *DBCReport) {
	fmt.Fprintf(w, "Nimrod-G DBC scheduling — %d-job bag over cheap-slow (1 G$/h) and pricey-fast (6 G$/h)\n", r.Jobs)
	t := &Table{Header: []string{"strategy", "deadline", "feasible", "makespan", "cost (G$)", "fast-resource share"}}
	for _, row := range r.Rows {
		if row.Feasible {
			t.Add(row.Strategy, row.Deadline, true, row.Makespan.Round(time.Second), row.Cost, fmt.Sprintf("%.0f%%", row.FastShare*100))
		} else {
			t.Add(row.Strategy, row.Deadline, false, "-", "-", "-")
		}
	}
	t.Write(w)
	fmt.Fprintln(w, "\nshape: tighter deadlines push cost strategies onto the fast resource (cost rises); time-optimal pays for speed regardless.")
}
