package experiments

import (
	"fmt"
	"io"
	"time"

	"gridbank/internal/netsim"
	"gridbank/internal/netsim/chaos"
)

// The chaos experiment quantifies the resilience stack: a sharded,
// replicated, usage-enabled deployment is driven through a deterministic
// fault proxy while the fault profile (clean wire → lossy WAN → hostile)
// is swept against the client retry policy (off vs on). Every cell runs
// the full chaos harness, so every cell also re-proves the invariants —
// exact conservation, exactly-once application, zero escrow leakage,
// replica convergence — under its fault load; the numbers then show what
// the retry layer buys (goodput, fewer ambiguous outcomes) and what it
// costs (retry amplification, tail latency).

// ChaosExpConfig parameterizes RunChaosExp.
type ChaosExpConfig struct {
	// Seed is the base fault seed; each cell offsets it deterministically.
	Seed int64
	// Duration is the per-cell chaos window (default 2s).
	Duration time.Duration
	// Workers is the number of concurrent transfer workers (default 4).
	Workers int
}

// ChaosPoint is one measured cell of the sweep.
type ChaosPoint struct {
	Profile       string  `json:"profile"`
	Retry         string  `json:"retry"`
	AckedOps      int     `json:"acked_ops"`
	AmbiguousOps  int     `json:"ambiguous_ops"`
	Redriven      int     `json:"redriven"`
	Retries       int64   `json:"retries"`
	GoodputOps    float64 `json:"goodput_ops_per_sec"`
	P50Ms         float64 `json:"p50_ms"`
	P99Ms         float64 `json:"p99_ms"`
	Amplification float64 `json:"retry_amplification"`
}

// ChaosResult is the full sweep.
type ChaosResult struct {
	Points []ChaosPoint `json:"points"`
}

// chaosProfiles is the fault sweep, mildest first.
var chaosProfiles = []struct {
	name   string
	faults netsim.Config
}{
	{"none", netsim.Config{}},
	{"moderate", netsim.Config{
		Latency: 500 * time.Microsecond, Jitter: 2 * time.Millisecond,
		CutProb: 0.01, TearProb: 0.25, DupProb: 0.05,
	}},
	{"heavy", netsim.Config{
		Latency: time.Millisecond, Jitter: 4 * time.Millisecond,
		CutProb: 0.04, TearProb: 0.5, DupProb: 0.1,
	}},
}

// RunChaosExp sweeps fault profile × retry policy through the chaos
// harness. Any invariant violation in any cell fails the experiment
// with the cell's seed in the error.
func RunChaosExp(cfg ChaosExpConfig) (*ChaosResult, error) {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 2 * time.Second
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	res := &ChaosResult{}
	for pi, prof := range chaosProfiles {
		for ri, retryOff := range []bool{false, true} {
			r, err := chaos.Run(chaos.Config{
				Seed:          cfg.Seed + int64(100*pi+10*ri),
				Duration:      cfg.Duration,
				Workers:       cfg.Workers,
				Faults:        prof.faults,
				RetryDisabled: retryOff,
			})
			if err != nil {
				return nil, fmt.Errorf("chaos cell %s/retry=%v: %w", prof.name, !retryOff, err)
			}
			retry := "on"
			if retryOff {
				retry = "off"
			}
			amp := 0.0
			if r.AckedOps > 0 {
				amp = float64(int64(r.AckedOps)+r.Retries) / float64(r.AckedOps)
			}
			res.Points = append(res.Points, ChaosPoint{
				Profile:       prof.name,
				Retry:         retry,
				AckedOps:      r.AckedOps,
				AmbiguousOps:  r.AmbiguousOps,
				Redriven:      r.Redriven,
				Retries:       r.Retries,
				GoodputOps:    r.GoodputOps,
				P50Ms:         float64(r.P50) / float64(time.Millisecond),
				P99Ms:         float64(r.P99) / float64(time.Millisecond),
				Amplification: amp,
			})
		}
	}
	return res, nil
}

// WriteChaosExp renders the sweep.
func WriteChaosExp(w io.Writer, r *ChaosResult) {
	fmt.Fprintf(w, "Network chaos sweep: fault profile x retry policy over a sharded,\n")
	fmt.Fprintf(w, "replicated, usage-enabled deployment behind a deterministic fault proxy.\n")
	fmt.Fprintf(w, "Every cell asserts conservation, exactly-once, zero escrow leakage and\n")
	fmt.Fprintf(w, "replica convergence before reporting its numbers.\n\n")
	t := &Table{Header: []string{"faults", "retry", "acked", "ambiguous", "retries", "amplif.", "goodput ops/s", "p50 ms", "p99 ms"}}
	for _, p := range r.Points {
		t.Add(p.Profile, p.Retry, p.AckedOps, p.AmbiguousOps, p.Retries,
			fmt.Sprintf("%.2fx", p.Amplification),
			fmt.Sprintf("%.0f", p.GoodputOps),
			fmt.Sprintf("%.1f", p.P50Ms), fmt.Sprintf("%.1f", p.P99Ms))
	}
	t.Write(w)
}
