package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"gridbank/internal/accounts"
	"gridbank/internal/currency"
	"gridbank/internal/db"
)

// The concurrent-load experiment drives M goroutine consumers against
// one bank ledger and reports sustained transfers/sec, across journal
// durability modes. It quantifies the §5.1 storage hot path under the
// ROADMAP's target workload — many concurrent clients — and is the
// regression harness for the store's group-commit journal and striped
// optimistic concurrency: fsync-per-commit throughput should grow with
// concurrency (committers share flushes) instead of degrading.

// Durability modes for the concurrent-load experiment.
const (
	DurVolatile = "volatile"  // no journal
	DurFile     = "file"      // file journal, no fsync
	DurFileSync = "file-sync" // file journal, fsync per commit group
)

// ConcurrentLoadConfig parameterizes RunConcurrentLoad.
type ConcurrentLoadConfig struct {
	// ConsumerCounts lists the concurrency levels to sweep (default
	// 1, 4, 16).
	ConsumerCounts []int
	// TransfersPerConsumer is the work each consumer performs at each
	// level (default 50).
	TransfersPerConsumer int
	// Durability lists journal modes to sweep (default volatile and
	// file-sync).
	Durability []string
	// SharedRecipient directs every consumer's payments at a single
	// provider account — the worst-case write hotspot — instead of
	// disjoint per-consumer providers.
	SharedRecipient bool
	// Dir holds journal files; defaults to a fresh temp directory.
	Dir string
}

// ConcurrentLoadPoint is one measured cell of the sweep.
type ConcurrentLoadPoint struct {
	Durability string        `json:"durability"`
	Consumers  int           `json:"consumers"`
	Transfers  int           `json:"transfers"`
	Elapsed    time.Duration `json:"elapsed"`
	PerSec     float64       `json:"per_sec"`
}

// ConcurrentLoadResult is the full sweep.
type ConcurrentLoadResult struct {
	SharedRecipient bool
	Points          []ConcurrentLoadPoint
}

// RunConcurrentLoad measures ledger transfer throughput under
// concurrent consumers for each durability mode. Money conservation is
// checked after every cell; a violation fails the experiment.
func RunConcurrentLoad(cfg ConcurrentLoadConfig) (*ConcurrentLoadResult, error) {
	if len(cfg.ConsumerCounts) == 0 {
		cfg.ConsumerCounts = []int{1, 4, 16}
	}
	if cfg.TransfersPerConsumer <= 0 {
		cfg.TransfersPerConsumer = 50
	}
	if len(cfg.Durability) == 0 {
		cfg.Durability = []string{DurVolatile, DurFileSync}
	}
	if cfg.Dir == "" {
		dir, err := os.MkdirTemp("", "gridbank-conload")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		cfg.Dir = dir
	}
	res := &ConcurrentLoadResult{SharedRecipient: cfg.SharedRecipient}
	for _, mode := range cfg.Durability {
		for i, consumers := range cfg.ConsumerCounts {
			pt, err := runConcurrentCell(cfg, mode, consumers,
				filepath.Join(cfg.Dir, fmt.Sprintf("%s-%d.wal", mode, i)))
			if err != nil {
				return nil, fmt.Errorf("conload %s/%d: %w", mode, consumers, err)
			}
			res.Points = append(res.Points, *pt)
		}
	}
	return res, nil
}

func openLoadStore(mode, path string) (*db.Store, error) {
	switch mode {
	case DurVolatile:
		return db.Open(nil)
	case DurFile, DurFileSync:
		j, err := db.OpenFileJournal(path, mode == DurFileSync)
		if err != nil {
			return nil, err
		}
		return db.Open(j)
	default:
		return nil, fmt.Errorf("unknown durability mode %q", mode)
	}
}

func runConcurrentCell(cfg ConcurrentLoadConfig, mode string, consumers int, walPath string) (*ConcurrentLoadPoint, error) {
	store, err := openLoadStore(mode, walPath)
	if err != nil {
		return nil, err
	}
	defer store.Close()
	mgr, err := accounts.NewManager(store, accounts.Config{})
	if err != nil {
		return nil, err
	}
	admin := mgr.Admin()

	// One funded account per consumer, plus one provider each (or one
	// shared provider in hotspot mode).
	payers := make([]accounts.ID, consumers)
	payees := make([]accounts.ID, consumers)
	var shared accounts.ID
	if cfg.SharedRecipient {
		a, err := mgr.CreateAccount("CN=provider", "", "")
		if err != nil {
			return nil, err
		}
		shared = a.AccountID
	}
	for i := 0; i < consumers; i++ {
		payer, err := mgr.CreateAccount(fmt.Sprintf("CN=consumer%d", i), "", "")
		if err != nil {
			return nil, err
		}
		if err := admin.Deposit(payer.AccountID, currency.FromG(1_000_000)); err != nil {
			return nil, err
		}
		payers[i] = payer.AccountID
		if cfg.SharedRecipient {
			payees[i] = shared
			continue
		}
		payee, err := mgr.CreateAccount(fmt.Sprintf("CN=provider%d", i), "", "")
		if err != nil {
			return nil, err
		}
		payees[i] = payee.AccountID
	}
	before, err := mgr.TotalBalance()
	if err != nil {
		return nil, err
	}

	errs := make([]error, consumers)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < consumers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for n := 0; n < cfg.TransfersPerConsumer; n++ {
				if _, err := mgr.Transfer(payers[i], payees[i], currency.FromMicro(1), accounts.TransferOptions{}); err != nil {
					errs[i] = err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	after, err := mgr.TotalBalance()
	if err != nil {
		return nil, err
	}
	if before != after {
		return nil, fmt.Errorf("conservation violated: %s before, %s after", before, after)
	}
	total := consumers * cfg.TransfersPerConsumer
	return &ConcurrentLoadPoint{
		Durability: mode,
		Consumers:  consumers,
		Transfers:  total,
		Elapsed:    elapsed,
		PerSec:     float64(total) / elapsed.Seconds(),
	}, nil
}

// WriteConcurrentLoad renders the sweep.
func WriteConcurrentLoad(w io.Writer, r *ConcurrentLoadResult) {
	target := "disjoint providers"
	if r.SharedRecipient {
		target = "one shared provider"
	}
	fmt.Fprintf(w, "Concurrent transfer load (%s):\n\n", target)
	t := &Table{Header: []string{"durability", "consumers", "transfers", "elapsed", "transfers/sec"}}
	for _, p := range r.Points {
		t.Add(p.Durability, p.Consumers, p.Transfers, p.Elapsed.Round(time.Millisecond), fmt.Sprintf("%.0f", p.PerSec))
	}
	t.Write(w)
}
