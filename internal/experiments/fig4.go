package experiments

import (
	"fmt"
	"io"

	"gridbank/internal/accounts"
	"gridbank/internal/currency"
	"gridbank/internal/db"
	"gridbank/internal/economy"
)

// Fig4Config parameterizes the Figure 4 co-operative sharing scenario.
type Fig4Config struct {
	Rounds int   // default 200
	WorkMI int64 // per-consumption work, default 7_200_000 (2h at 1000 MIPS)
	Seed   int64
}

func (c *Fig4Config) defaults() {
	if c.Rounds <= 0 {
		c.Rounds = 200
	}
	if c.WorkMI <= 0 {
		c.WorkMI = 7_200_000
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
}

// Fig4Row is one participant's line in the Figure 4 account table.
type Fig4Row struct {
	Participant string
	RatingMIPS  int
	Consumed    currency.Amount
	Provided    currency.Amount
	Balance     currency.Amount
}

// Fig4Report reproduces Figure 4: four GSP/GSC participants bartering,
// with the GridBank accounts showing how much each consumed and provided.
type Fig4Report struct {
	Rows           []Fig4Row
	MoneyConserved bool
	// SlowCompensates: the slowest resource's price per unit of work is
	// the highest (it "has to compensate by running longer" at the same
	// hourly rate).
	SlowCompensates bool
}

// RunFig4 runs the co-operative resource sharing use case.
func RunFig4(cfg Fig4Config) (*Fig4Report, error) {
	cfg.defaults()
	mgr, err := accounts.NewManager(db.MustOpenMemory(), accounts.Config{})
	if err != nil {
		return nil, err
	}
	// The four participants of Figure 4 with heterogeneous hardware, all
	// charging the same hourly rate (the compensation effect then falls
	// out of run time).
	defs := []struct {
		name   string
		rating int
	}{
		{"GSP1 (fast)", 1600},
		{"GSP2", 800},
		{"GSP3", 600},
		{"GSP4 (slow)", 400},
	}
	parts := make([]*economy.Participant, len(defs))
	for i, d := range defs {
		a, err := mgr.CreateAccount(fmt.Sprintf("CN=%s", d.name), "coop", currency.GridDollar)
		if err != nil {
			return nil, err
		}
		parts[i] = &economy.Participant{
			Name:           d.name,
			Account:        a.AccountID,
			RatingMIPS:     d.rating,
			RatePerCPUHour: currency.FromG(2),
		}
	}
	const initial = 100
	sim, err := economy.NewCoopSim(mgr, parts, currency.FromG(initial), nil, cfg.Seed)
	if err != nil {
		return nil, err
	}
	if err := sim.RunRounds(cfg.Rounds, cfg.WorkMI); err != nil {
		return nil, err
	}

	report := &Fig4Report{}
	for _, p := range parts {
		acct, err := mgr.Details(p.Account)
		if err != nil {
			return nil, err
		}
		report.Rows = append(report.Rows, Fig4Row{
			Participant: p.Name,
			RatingMIPS:  p.RatingMIPS,
			Consumed:    p.Consumed,
			Provided:    p.Provided,
			Balance:     acct.AvailableBalance,
		})
	}
	total, err := mgr.TotalBalance()
	if err != nil {
		return nil, err
	}
	report.MoneyConserved = total == currency.FromG(initial*int64(len(parts)))
	// Per-job price on slowest vs fastest.
	slowPrice := cfg.WorkMI / int64(defs[len(defs)-1].rating) // cpu-seconds, price ∝ seconds at equal rate
	fastPrice := cfg.WorkMI / int64(defs[0].rating)
	report.SlowCompensates = slowPrice > fastPrice
	return report, nil
}

// WriteFig4 renders the account table of Figure 4.
func WriteFig4(w io.Writer, r *Fig4Report) {
	fmt.Fprintln(w, "Figure 4 — co-operative resource sharing (GridBank account view)")
	t := &Table{Header: []string{"participant", "MIPS", "consumed (G$)", "provided (G$)", "balance (G$)"}}
	for _, row := range r.Rows {
		t.Add(row.Participant, row.RatingMIPS, row.Consumed, row.Provided, row.Balance)
	}
	t.Write(w)
	fmt.Fprintf(w, "\nmoney conserved: %v; slow hardware compensates by running longer (higher per-job price): %v\n",
		r.MoneyConserved, r.SlowCompensates)
}
