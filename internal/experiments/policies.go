package experiments

import (
	"fmt"
	"io"
	"time"

	"gridbank/internal/core"
	"gridbank/internal/currency"
	"gridbank/internal/payment"
)

// PolicyLine is one charging policy's demonstration.
type PolicyLine struct {
	Policy     string
	Instrument string
	// WhenPaid describes the settlement timing the policy exists for.
	WhenPaid string
	// Payments counts the distinct value transfers the consumer made.
	Payments int
	// ProviderGot is the total the provider ended up with.
	ProviderGot currency.Amount
	// ConsumerRefunded is what returned to the consumer (unused
	// reservation).
	ConsumerRefunded currency.Amount
}

// PoliciesReport demonstrates the three §3.1 charging policies end to
// end.
type PoliciesReport struct {
	Lines []PolicyLine
}

// RunPolicies exercises pay-before-use (fixed-price directory lookup),
// pay-as-you-go (per-result hash-chain streaming), and pay-after-use
// (unknown-cost batch job settled by cheque).
func RunPolicies() (*PoliciesReport, error) {
	w, err := NewWorld()
	if err != nil {
		return nil, err
	}
	alice, aliceAcct, err := w.NewActor("alice", currency.FromG(100))
	if err != nil {
		return nil, err
	}
	gsp, gspAcct, err := w.NewActor("gsp", 0)
	if err != nil {
		return nil, err
	}
	report := &PoliciesReport{}
	gspBalance := func() currency.Amount {
		a, _ := w.Bank.Manager().Details(gspAcct)
		return a.AvailableBalance
	}

	// 1. Pay before use: a fixed-cost service (the paper's example: a
	// directory lookup). One direct transfer, then service delivery.
	before := gspBalance()
	if _, err := w.Bank.DirectTransfer(alice.SubjectName(), &core.DirectTransferRequest{
		FromAccountID: aliceAcct, ToAccountID: gspAcct, Amount: currency.FromG(1),
		RecipientAddress: "gsp.grid:9000",
	}); err != nil {
		return nil, err
	}
	report.Lines = append(report.Lines, PolicyLine{
		Policy: "pay before use", Instrument: "direct transfer", WhenPaid: "before service",
		Payments: 1, ProviderGot: gspBalance().MustSub(before),
	})

	// 2. Pay as you go: the consumer streams one hash word per computed
	// result; the provider redeems in two batches. 40 of 100 words are
	// spent; the rest returns to the consumer at expiry.
	before = gspBalance()
	chainResp, err := w.Bank.RequestChain(alice.SubjectName(), &core.RequestChainRequest{
		AccountID: aliceAcct, PayeeCert: gsp.SubjectName(), Length: 100,
		PerWord: currency.MustParse("0.05"), TTL: time.Hour,
	})
	if err != nil {
		return nil, err
	}
	chain := &payment.Chain{Commitment: chainResp.Chain.Commitment, Seed: chainResp.Seed}
	payments := 0
	for _, batchEnd := range []int{25, 40} {
		word, err := chain.Word(batchEnd)
		if err != nil {
			return nil, err
		}
		if _, err := w.Bank.RedeemChain(gsp.SubjectName(), &core.RedeemChainRequest{
			Chain: chainResp.Chain,
			Claim: payment.ChainClaim{Serial: chain.Commitment.Serial, Index: batchEnd, Word: word},
		}); err != nil {
			return nil, err
		}
	}
	payments = 40 // words released (each word is one micro-payment)
	w.Clock.Advance(2 * time.Hour)
	rel, err := w.Bank.ReleaseChain(alice.SubjectName(), &core.ReleaseRequest{Serial: chain.Commitment.Serial})
	if err != nil {
		return nil, err
	}
	report.Lines = append(report.Lines, PolicyLine{
		Policy: "pay as you go", Instrument: "GridHash chain", WhenPaid: "per result delivered",
		Payments: payments, ProviderGot: gspBalance().MustSub(before), ConsumerRefunded: rel.Released,
	})

	// 3. Pay after use: total cost unknown beforehand; a cheque reserves
	// the budget, the metered cost (less than the reservation) is
	// claimed after execution, the rest unlocks.
	before = gspBalance()
	chequeResp, err := w.Bank.RequestCheque(alice.SubjectName(), &core.RequestChequeRequest{
		AccountID: aliceAcct, Amount: currency.FromG(10), PayeeCert: gsp.SubjectName(),
	})
	if err != nil {
		return nil, err
	}
	metered := currency.MustParse("6.75") // the GBCM's RUR-priced total
	red, err := w.Bank.RedeemCheque(gsp.SubjectName(), &core.RedeemChequeRequest{
		Cheque: chequeResp.Cheque,
		Claim: payment.ChequeClaim{
			Serial: chequeResp.Cheque.Cheque.Serial, Amount: metered,
			RUR: []byte(`{"job":"batch"}`),
		},
	})
	if err != nil {
		return nil, err
	}
	report.Lines = append(report.Lines, PolicyLine{
		Policy: "pay after use", Instrument: "GridCheque", WhenPaid: "after metering",
		Payments: 1, ProviderGot: gspBalance().MustSub(before), ConsumerRefunded: red.Released,
	})
	return report, nil
}

// WritePolicies renders the demonstration.
func WritePolicies(w io.Writer, r *PoliciesReport) {
	fmt.Fprintln(w, "§3.1 — the three charging policies")
	t := &Table{Header: []string{"policy", "instrument", "settles", "micro-payments", "provider got (G$)", "refunded (G$)"}}
	for _, l := range r.Lines {
		t.Add(l.Policy, l.Instrument, l.WhenPaid, l.Payments, l.ProviderGot, l.ConsumerRefunded)
	}
	t.Write(w)
}
