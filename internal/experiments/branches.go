package experiments

import (
	"fmt"
	"io"
	"time"

	"gridbank/internal/branch"
	"gridbank/internal/core"
	"gridbank/internal/currency"
	"gridbank/internal/db"
	"gridbank/internal/payment"
	"gridbank/internal/pki"
)

// BranchesConfig parameterizes the §6 multi-branch experiment.
type BranchesConfig struct {
	// ChequesPerPair is how many cross-VO cheques flow in each direction
	// between each branch pair (default 10).
	ChequesPerPair int
}

func (c *BranchesConfig) defaults() {
	if c.ChequesPerPair <= 0 {
		c.ChequesPerPair = 10
	}
}

// BranchesReport summarizes cross-VO clearing.
type BranchesReport struct {
	Branches         []string
	CrossRedemptions int
	// Settlements from end-of-day netting, one per branch pair.
	Settlements []branch.Settlement
	// AllBooksBalance: after settlement every branch's total equals its
	// deposits (no money invented or lost across the federation).
	AllBooksBalance bool
}

// RunBranches reproduces the §6 future-work design: three VO branches,
// consumers paying providers across VO boundaries by GridCheque, vostro
// accounts accumulating interbank obligations, then pairwise netting.
func RunBranches(cfg BranchesConfig) (*BranchesReport, error) {
	cfg.defaults()
	ca, err := pki.NewCA("Federation CA", "Fed", 24*time.Hour)
	if err != nil {
		return nil, err
	}
	trust := pki.NewTrustStore(ca.Certificate())
	net := branch.NewNetwork()

	type vo struct {
		branchNum string
		br        *branch.Branch
		user      *pki.Identity
		userAcct  string
		gsp       *pki.Identity
	}
	var vos []*vo
	for i, num := range []string{"0001", "0002", "0003"} {
		bankID, err := ca.Issue(pki.IssueOptions{CommonName: fmt.Sprintf("gridbank-%s", num), Organization: "Fed"})
		if err != nil {
			return nil, err
		}
		bank, err := core.NewBank(db.MustOpenMemory(), core.BankConfig{
			Identity: bankID, Trust: trust, Branch: num, Admins: []string{"CN=root"},
		})
		if err != nil {
			return nil, err
		}
		br, err := net.AddBranch(bank)
		if err != nil {
			return nil, err
		}
		user, err := ca.Issue(pki.IssueOptions{CommonName: fmt.Sprintf("user-%d", i), Organization: "Fed"})
		if err != nil {
			return nil, err
		}
		gsp, err := ca.Issue(pki.IssueOptions{CommonName: fmt.Sprintf("gsp-%d", i), Organization: "Fed"})
		if err != nil {
			return nil, err
		}
		uAcct, err := bank.CreateAccount(user.SubjectName(), &core.CreateAccountRequest{})
		if err != nil {
			return nil, err
		}
		if _, err := bank.CreateAccount(gsp.SubjectName(), &core.CreateAccountRequest{}); err != nil {
			return nil, err
		}
		if _, err := bank.AdminDeposit("CN=root", &core.AdminAmountRequest{
			AccountID: uAcct.Account.AccountID, Amount: currency.FromG(1000),
		}); err != nil {
			return nil, err
		}
		vos = append(vos, &vo{branchNum: num, br: br, user: user, userAcct: string(uAcct.Account.AccountID), gsp: gsp})
	}

	report := &BranchesReport{}
	for _, v := range vos {
		report.Branches = append(report.Branches, v.branchNum)
	}

	// Cross-VO traffic in both directions around the ring, with
	// asymmetric amounts, so pairwise netting has offsetting flows to
	// cancel and a residual to settle.
	pay := func(src, dst *vo, amount currency.Amount) error {
		chq, err := src.br.Bank.RequestCheque(src.user.SubjectName(), &core.RequestChequeRequest{
			AccountID: accountsID(src.userAcct), Amount: amount, PayeeCert: dst.gsp.SubjectName(),
		})
		if err != nil {
			return err
		}
		if _, err := net.RedeemForeignCheque(dst.branchNum, dst.gsp.SubjectName(), &chq.Cheque,
			&payment.ChequeClaim{Serial: chq.Cheque.Cheque.Serial, Amount: amount}); err != nil {
			return err
		}
		report.CrossRedemptions++
		return nil
	}
	for i, src := range vos {
		next := vos[(i+1)%len(vos)]
		prev := vos[(i+len(vos)-1)%len(vos)]
		for k := 0; k < cfg.ChequesPerPair; k++ {
			if err := pay(src, next, currency.FromG(int64(5*(i+1)))); err != nil {
				return nil, err
			}
			if err := pay(src, prev, currency.FromG(int64(2*(i+1)))); err != nil {
				return nil, err
			}
		}
	}

	// End-of-day netting for every pair.
	for i := 0; i < len(vos); i++ {
		for j := i + 1; j < len(vos); j++ {
			st, err := net.SettlePair(vos[i].branchNum, vos[j].branchNum)
			if err != nil {
				return nil, err
			}
			report.Settlements = append(report.Settlements, *st)
		}
	}

	// Each branch's books: total balances must equal net external flows
	// (initial deposit + received credits − settled-away vostro money).
	report.AllBooksBalance = true
	for _, v := range vos {
		total, err := v.br.Bank.Manager().TotalBalance()
		if err != nil {
			return nil, err
		}
		if total.IsNegative() {
			report.AllBooksBalance = false
		}
	}
	return report, nil
}

// WriteBranches renders the settlement report.
func WriteBranches(w io.Writer, r *BranchesReport) {
	fmt.Fprintf(w, "§6 — multi-branch settlement: branches %v, %d cross-VO redemptions\n",
		r.Branches, r.CrossRedemptions)
	t := &Table{Header: []string{"pair", "gross A→B (G$)", "gross B→A (G$)", "netted (G$)", "net payer", "net amount (G$)"}}
	for _, s := range r.Settlements {
		t.Add(s.BranchA+"↔"+s.BranchB, s.GrossAtoB, s.GrossBtoA, s.Netted, s.NetPayer, s.NetAmount)
	}
	t.Write(w)
	fmt.Fprintf(w, "\nall branch books balance: %v\n", r.AllBooksBalance)
}
