package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"gridbank/internal/currency"
	"gridbank/internal/economy"
)

// EstimateConfig parameterizes the §4.2 price-estimation experiment.
type EstimateConfig struct {
	// HistorySize is how many synthetic transactions seed the estimator
	// (default 2000).
	HistorySize int
	// Queries is how many held-out resources to value (default 50).
	Queries int
	Seed    int64
}

func (c *EstimateConfig) defaults() {
	if c.HistorySize <= 0 {
		c.HistorySize = 2000
	}
	if c.Queries <= 0 {
		c.Queries = 50
	}
	if c.Seed == 0 {
		c.Seed = 17
	}
}

// EstimateRow is one sample query.
type EstimateRow struct {
	Spec      economy.ResourceSpec
	TrueValue currency.Amount
	Estimate  currency.Amount
	ErrorPct  float64
}

// EstimateReport summarizes estimator accuracy.
type EstimateReport struct {
	HistorySize   int
	Queries       int
	MeanAbsErrPct float64
	Samples       []EstimateRow // first few queries, for display
}

// trueMarketPrice is the hidden pricing function generating the synthetic
// history: value grows with CPU speed, processor count, memory and
// bandwidth, with multiplicative market noise.
func trueMarketPrice(s economy.ResourceSpec, noise float64) currency.Amount {
	base := 0.4*(s.CPUMHz/1000) + 0.25*s.Processors/4 + 0.2*(s.MemoryMB/1024) + 0.1*(s.StorageGB/100) + 0.05*(s.BandwidthMbps/100)
	v := base * noise
	if v < 0.01 {
		v = 0.01
	}
	return currency.FromMicro(int64(v * currency.Scale))
}

func randomSpec(rng *rand.Rand) economy.ResourceSpec {
	return economy.ResourceSpec{
		CPUMHz:        200 + rng.Float64()*3800,
		Processors:    float64(1 + rng.Intn(32)),
		MemoryMB:      128 + rng.Float64()*8064,
		StorageGB:     5 + rng.Float64()*495,
		BandwidthMbps: 10 + rng.Float64()*990,
	}
}

// RunEstimate reproduces the §4.2 competitive-model flow: GridBank
// distills its confidential history into (hardware spec, price) points
// and answers valuation queries with a nearest-neighbour estimate; a
// held-out test set measures how close the estimates come to the market's
// hidden pricing function.
func RunEstimate(cfg EstimateConfig) (*EstimateReport, error) {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	history := make([]economy.PricePoint, cfg.HistorySize)
	for i := range history {
		spec := randomSpec(rng)
		noise := 0.9 + rng.Float64()*0.2 // ±10% market noise
		history[i] = economy.PricePoint{Spec: spec, Price: trueMarketPrice(spec, noise)}
	}
	est := economy.NewEstimator(history, 7)

	report := &EstimateReport{HistorySize: cfg.HistorySize, Queries: cfg.Queries}
	var sumErr float64
	for i := 0; i < cfg.Queries; i++ {
		spec := randomSpec(rng)
		truth := trueMarketPrice(spec, 1.0)
		got, err := est.Estimate(spec)
		if err != nil {
			return nil, err
		}
		errPct := math.Abs(got.G()-truth.G()) / truth.G() * 100
		sumErr += errPct
		if len(report.Samples) < 5 {
			report.Samples = append(report.Samples, EstimateRow{Spec: spec, TrueValue: truth, Estimate: got, ErrorPct: errPct})
		}
	}
	report.MeanAbsErrPct = sumErr / float64(cfg.Queries)
	return report, nil
}

// WriteEstimate renders the accuracy report.
func WriteEstimate(w io.Writer, r *EstimateReport) {
	fmt.Fprintf(w, "§4.2 — competitive price estimation from %d-transaction history (%d held-out queries)\n",
		r.HistorySize, r.Queries)
	t := &Table{Header: []string{"CPU MHz", "procs", "mem MB", "disk GB", "net Mbps", "true (G$/h)", "estimate (G$/h)", "err %"}}
	for _, s := range r.Samples {
		t.Add(fmt.Sprintf("%.0f", s.Spec.CPUMHz), fmt.Sprintf("%.0f", s.Spec.Processors),
			fmt.Sprintf("%.0f", s.Spec.MemoryMB), fmt.Sprintf("%.0f", s.Spec.StorageGB),
			fmt.Sprintf("%.0f", s.Spec.BandwidthMbps), s.TrueValue, s.Estimate, fmt.Sprintf("%.1f", s.ErrorPct))
	}
	t.Write(w)
	fmt.Fprintf(w, "\nmean absolute error: %.1f%% (history noise is ±10%%)\n", r.MeanAbsErrPct)
}
