package experiments

import (
	"fmt"
	"io"
	"time"

	"gridbank/internal/charging"
	"gridbank/internal/core"
	"gridbank/internal/currency"
	"gridbank/internal/gridsim"
	"gridbank/internal/rur"
)

// Fig2Report traces the GSP-internals pipeline of Figure 2 for one job:
// raw usage statistics → GRM filter/convert → standard RUR → GBCM cost
// calculation against the GTS rates → signed statement → redeemed
// payment.
type Fig2Report struct {
	Raw       gridsim.RawUsage
	RUR       *rur.Record
	Statement *rur.CostStatement
	Paid      currency.Amount
	// StatementVerified: the GSP-signed calculation re-derives (the
	// non-repudiation property of §2.1).
	StatementVerified bool
	// EvidenceStored: the RUR blob is retrievable from the TRANSFER
	// record ("provides evidence that a transaction took place").
	EvidenceStored bool
}

// RunFig2 executes the Figure 2 pipeline once.
func RunFig2() (*Fig2Report, error) {
	w, err := NewWorld()
	if err != nil {
		return nil, err
	}
	p, err := w.NewProvider("gsp1", StandardRates(), 4)
	if err != nil {
		return nil, err
	}
	consumer, acct, err := w.NewActor("alice", currency.FromG(100))
	if err != nil {
		return nil, err
	}

	// The GTS hands the agreed rates record to the GBCM (§2.1).
	agreement, err := p.GTS.Agree(consumer.SubjectName())
	if err != nil {
		return nil, err
	}

	// The consumer purchases a GridCheque; the GBCM admits the job onto
	// a template account.
	cheque, err := w.Bank.RequestCheque(consumer.SubjectName(), &core.RequestChequeRequest{
		AccountID: acct, Amount: currency.FromG(50), PayeeCert: p.Identity.SubjectName(),
	})
	if err != nil {
		return nil, err
	}
	const jobID = "fig2-job"
	if _, err := p.GBCM.AdmitCheque(jobID, &cheque.Cheque); err != nil {
		return nil, err
	}

	// Run the job on the simulated resource; its completion carries the
	// raw usage record the local OS accounting produced.
	sim := gridsim.New(w.Clock.Now())
	r, err := sim.AddResource(gridsim.ResourceConfig{
		Provider: p.Identity.SubjectName(), Host: "gsp1.grid", Nodes: 1, RatingMIPS: 800,
	})
	if err != nil {
		return nil, err
	}
	job := gridsim.Job{
		ID: jobID, Owner: consumer.SubjectName(), Application: "render",
		LengthMI: 2_880_000, // 3600 s at 800 MIPS: one CPU-hour
		MemoryMB: 512, StorageMB: 200, InputMB: 40, OutputMB: 60,
		SoftwareFraction: 0.1,
	}
	var result gridsim.JobResult
	if err := r.Submit(job, func(res gridsim.JobResult) { result = res }); err != nil {
		return nil, err
	}
	sim.Run()
	w.Clock.Set(result.End)

	report := &Fig2Report{Raw: result.Usage}

	// GRM: filter + convert (Figure 2's conversion unit).
	rec, err := p.Meter.Convert(result)
	if err != nil {
		return nil, err
	}
	report.RUR = rec

	// GBCM: total cost = Σ rate × usage, signed, redeemed with the bank.
	settle, err := p.GBCM.SettleCheque(jobID, rec, &agreement.Card)
	if err != nil {
		return nil, err
	}
	report.Statement = settle.Statement
	paid, err := currency.Parse(settle.Paid)
	if err != nil {
		return nil, err
	}
	report.Paid = paid

	// Non-repudiation: anyone holding the CA cert can verify and
	// re-derive the calculation.
	if _, _, err := charging.VerifyStatement(settle.SignedStatement, w.Trust, w.Clock.Now()); err == nil {
		report.StatementVerified = true
	}
	// Evidence: the RUR blob is on the TRANSFER record.
	tr, err := w.Bank.Manager().GetTransfer(settle.TransactionID)
	if err == nil && len(tr.ResourceUsageRecord) > 0 {
		if back, err := rur.Decode(tr.ResourceUsageRecord); err == nil && back.Job.JobID == jobID {
			report.EvidenceStored = true
		}
	}
	return report, nil
}

// WriteFig2 renders the pipeline trace.
func WriteFig2(w io.Writer, r *Fig2Report) {
	fmt.Fprintln(w, "Figure 2 — GSP metering/charging pipeline (one CPU-hour job)")
	fmt.Fprintf(w, "\nraw OS usage (GRM input): user %ds sys %ds wall %ds rss %dMB scratch %dMB net %d+%dMB (+noise: %d faults, %d ctxsw)\n",
		r.Raw.UserCPUSec, r.Raw.SystemCPUSec, r.Raw.WallClockSec, r.Raw.MaxRSSMB, r.Raw.ScratchMB,
		r.Raw.NetworkInMB, r.Raw.NetworkOutMB, r.Raw.PageFaults, r.Raw.ContextSwitches)
	fmt.Fprintln(w, "\nstandard RUR + priced lines (GBCM output):")
	t := &Table{Header: []string{"item", "usage", "unit", "charge (G$)"}}
	for _, line := range r.Statement.Lines {
		t.Add(line.Item, line.Quantity, line.Item.UnitName(), line.Charge)
	}
	t.Write(w)
	fmt.Fprintf(w, "\ntotal %s G$; paid %s G$; statement verified: %v; RUR evidence stored: %v\n",
		r.Statement.Total, r.Paid, r.StatementVerified, r.EvidenceStored)
}

var _ = time.Second
