package experiments

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"gridbank/internal/accounts"
	"gridbank/internal/charging"
	"gridbank/internal/core"
	"gridbank/internal/currency"
	"gridbank/internal/db"
	"gridbank/internal/pki"
	"gridbank/internal/rur"
	"gridbank/internal/shard"
	"gridbank/internal/usage"
)

// The usage experiment measures the batched asynchronous settlement
// pipeline on the durable path (fsync-per-commit journals), swept over
// batch size × worker count × shard count, against the naive baseline
// the paper's flow implies: one synchronous SettleCheque per RUR. Every
// cell asserts exactly-once settlement (the recipient pool is credited
// exactly once per job) and exact conservation — including a crash
// round per cell that abandons the pipeline mid-settlement, reboots
// every store from its journal, and re-drives recovery.

// UsageExpConfig parameterizes RunUsage.
type UsageExpConfig struct {
	// BatchSizes sweeps charges-per-ledger-transaction (default 1, 16, 64, 256).
	BatchSizes []int
	// WorkerCounts sweeps settlement workers (default 1, 4).
	WorkerCounts []int
	// ShardCounts sweeps ledger shards (default 1, 2).
	ShardCounts []int
	// Jobs is the number of charges settled per cell (default 256).
	Jobs int
	// CrashJobs is the extra charges run through the per-cell crash
	// round (default 24).
	CrashJobs int
	// BaselineJobs sizes the naive SettleCheque measurement (default 96).
	BaselineJobs int
	// Recipients is the provider-account pool size (default 8).
	Recipients int
	// Dir holds the journals; defaults to a fresh temp directory.
	Dir string
}

// UsagePoint is one measured cell.
type UsagePoint struct {
	Shards     int           `json:"shards"`
	Workers    int           `json:"workers"`
	BatchSize  int           `json:"batch_size"`
	Jobs       int           `json:"jobs"`
	Elapsed    time.Duration `json:"elapsed"`
	PerSec     float64       `json:"per_sec"`
	Batches    uint64        `json:"batches"` // ledger transactions used for same-shard batches
	CrossShard uint64        `json:"cross_shard"`
	Speedup    float64       `json:"speedup_vs_naive"`
}

// UsageResult is the full sweep.
type UsageResult struct {
	BaselineJobs   int
	BaselinePerSec float64
	Points         []UsagePoint
}

// usageExpRates prices one 3600-CPU-second job at exactly 1 G$.
func usageExpRates(provider string) *rur.RateCard {
	rates := map[rur.Item]currency.Rate{rur.ItemCPU: currency.PerHour(currency.Scale)}
	for _, item := range rur.AllItems {
		if _, ok := rates[item]; !ok {
			rates[item] = currency.ZeroRate
		}
	}
	return &rur.RateCard{Provider: provider, Currency: currency.GridDollar, Rates: rates}
}

func usageExpRecord(consumer, provider, jobID string, now time.Time) *rur.Record {
	rec := &rur.Record{
		User:     rur.UserDetails{CertificateName: consumer},
		Job:      rur.JobDetails{JobID: jobID, Application: "usage-exp", Start: now.Add(-time.Hour), End: now},
		Resource: rur.ResourceDetails{Host: "sim", CertificateName: provider, LocalJobID: "pid"},
	}
	rec.SetQuantity(rur.ItemCPU, 3600)
	return rec
}

// RunUsage sweeps the pipeline and measures the naive baseline.
func RunUsage(cfg UsageExpConfig) (*UsageResult, error) {
	if len(cfg.BatchSizes) == 0 {
		cfg.BatchSizes = []int{1, 16, 64, 256}
	}
	if len(cfg.WorkerCounts) == 0 {
		cfg.WorkerCounts = []int{1, 4}
	}
	if len(cfg.ShardCounts) == 0 {
		cfg.ShardCounts = []int{1, 2}
	}
	if cfg.Jobs <= 0 {
		cfg.Jobs = 256
	}
	if cfg.CrashJobs <= 0 {
		cfg.CrashJobs = 24
	}
	if cfg.BaselineJobs <= 0 {
		cfg.BaselineJobs = 96
	}
	if cfg.Recipients <= 0 {
		cfg.Recipients = 8
	}
	if cfg.Dir == "" {
		dir, err := os.MkdirTemp("", "gridbank-usage")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		cfg.Dir = dir
	}
	baseline, err := runUsageBaseline(cfg)
	if err != nil {
		return nil, fmt.Errorf("usage baseline: %w", err)
	}
	res := &UsageResult{BaselineJobs: cfg.BaselineJobs, BaselinePerSec: baseline}
	cell := 0
	for _, shards := range cfg.ShardCounts {
		for _, workers := range cfg.WorkerCounts {
			for _, batch := range cfg.BatchSizes {
				cell++
				pt, err := runUsageCell(cfg, shards, workers, batch, cell)
				if err != nil {
					return nil, fmt.Errorf("usage cell shards=%d workers=%d batch=%d: %w", shards, workers, batch, err)
				}
				pt.Speedup = pt.PerSec / baseline
				res.Points = append(res.Points, *pt)
			}
		}
	}
	return res, nil
}

// runUsageBaseline measures the naive per-RUR flow on the durable path:
// cheques are issued and admitted up front (that is the job-start cost,
// not the settlement cost), then each RUR is priced, signed and
// redeemed with one synchronous SettleCheque — paying the full
// per-transaction fsync chain every job.
func runUsageBaseline(cfg UsageExpConfig) (float64, error) {
	ca, err := pki.NewCA("Usage Exp CA", "VO-X", 24*time.Hour)
	if err != nil {
		return 0, err
	}
	bankID, err := ca.Issue(pki.IssueOptions{CommonName: "gridbank", Organization: "VO-X", IsServer: true})
	if err != nil {
		return 0, err
	}
	gspID, err := ca.Issue(pki.IssueOptions{CommonName: "gsp", Organization: "VO-X"})
	if err != nil {
		return 0, err
	}
	trust := pki.NewTrustStore(ca.Certificate())
	journal, err := db.OpenFileJournal(filepath.Join(cfg.Dir, "baseline.wal"), true)
	if err != nil {
		return 0, err
	}
	store, err := db.Open(journal)
	if err != nil {
		return 0, err
	}
	defer store.Close()
	const admin = "CN=usage-admin"
	bank, err := core.NewBank(store, core.BankConfig{
		Identity: bankID, Trust: trust, Admins: []string{admin},
	})
	if err != nil {
		return 0, err
	}
	consumer, err := bank.CreateAccount("CN=consumer", &core.CreateAccountRequest{})
	if err != nil {
		return 0, err
	}
	if _, err := bank.CreateAccount(gspID.SubjectName(), &core.CreateAccountRequest{}); err != nil {
		return 0, err
	}
	if _, err := bank.AdminDeposit(admin, &core.AdminAmountRequest{
		AccountID: consumer.Account.AccountID, Amount: currency.FromG(int64(2 * cfg.BaselineJobs)),
	}); err != nil {
		return 0, err
	}
	pool, err := charging.NewTemplatePool("grid", 4, nil)
	if err != nil {
		return 0, err
	}
	gbcm, err := charging.NewModule(charging.ModuleConfig{
		Identity: gspID,
		Trust:    trust,
		Pool:     pool,
		Redeemer: &bankRedeemer{bank: bank, subject: gspID.SubjectName()},
	})
	if err != nil {
		return 0, err
	}
	// Issue + admit up front; settlement is the measured phase.
	rates := usageExpRates(gspID.SubjectName())
	for i := 0; i < cfg.BaselineJobs; i++ {
		jobID := fmt.Sprintf("base-%04d", i)
		chq, err := bank.RequestCheque("CN=consumer", &core.RequestChequeRequest{
			AccountID: consumer.Account.AccountID,
			Amount:    currency.FromG(1),
			PayeeCert: gspID.SubjectName(),
			TTL:       time.Hour,
		})
		if err != nil {
			return 0, err
		}
		if _, err := gbcm.AdmitCheque(jobID, &chq.Cheque); err != nil {
			return 0, err
		}
	}
	start := time.Now()
	for i := 0; i < cfg.BaselineJobs; i++ {
		jobID := fmt.Sprintf("base-%04d", i)
		rec := usageExpRecord("CN=consumer", gspID.SubjectName(), jobID, time.Now())
		if _, err := gbcm.SettleCheque(jobID, rec, rates); err != nil {
			return 0, fmt.Errorf("settle %s: %w", jobID, err)
		}
	}
	elapsed := time.Since(start)
	return float64(cfg.BaselineJobs) / elapsed.Seconds(), nil
}

// usageCellWorld is one cell's durable deployment, rebuildable from its
// journals for the crash round.
type usageCellWorld struct {
	dir    string
	shards int
	led    *shard.Ledger
	stores []*db.Store
	spool  *db.Store
	pipe   *usage.Pipeline

	// Crash injection: the hook is installed at construction (before
	// the workers start) but inert until armed; once a settle boundary
	// fires while armed, every subsequent boundary fails too —
	// persistent process death, cleared by the disarmed reboot.
	armed atomic.Bool
	died  atomic.Bool
}

func (w *usageCellWorld) open(cfg UsageExpConfig, workers, batch int) error {
	w.stores = make([]*db.Store, w.shards)
	for i := range w.stores {
		j, err := db.OpenFileJournal(filepath.Join(w.dir, fmt.Sprintf("shard-%d.wal", i)), true)
		if err != nil {
			return err
		}
		st, err := db.Open(j)
		if err != nil {
			return err
		}
		w.stores[i] = st
	}
	led, err := shard.New(w.stores, shard.Config{})
	if err != nil {
		return err
	}
	w.led = led
	sj, err := db.OpenFileJournal(filepath.Join(w.dir, "spool.wal"), true)
	if err != nil {
		return err
	}
	spool, err := db.Open(sj)
	if err != nil {
		return err
	}
	w.spool = spool
	pipe, err := usage.New(usage.Config{
		Ledger:    usage.WrapSharded(led),
		Spool:     spool,
		BatchSize: batch,
		Workers:   workers,
		// The queue must hold a whole cell's jobs: this experiment
		// measures batching, not backpressure.
		MaxPending:    cfg.Jobs + cfg.CrashJobs + 1,
		RetryInterval: time.Millisecond,
		CrashHook: func(b usage.Boundary, _ string) error {
			if !w.armed.Load() {
				return nil
			}
			if b == usage.BoundarySettled {
				w.died.Store(true)
			}
			if w.died.Load() {
				return errors.New("injected crash")
			}
			return nil
		},
	})
	if err != nil {
		return err
	}
	w.pipe = pipe
	return nil
}

func (w *usageCellWorld) close() {
	if w.pipe != nil {
		w.pipe.Close()
	}
	if w.spool != nil {
		w.spool.Close()
	}
	for _, st := range w.stores {
		if st != nil {
			st.Close()
		}
	}
}

// reboot closes everything and rebuilds from the journals on disk.
func (w *usageCellWorld) reboot(cfg UsageExpConfig, workers, batch int) error {
	w.close()
	return w.open(cfg, workers, batch)
}

func runUsageCell(cfg UsageExpConfig, shards, workers, batch, cellNo int) (*UsagePoint, error) {
	dir := filepath.Join(cfg.Dir, fmt.Sprintf("cell-%02d", cellNo))
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return nil, err
	}
	w := &usageCellWorld{dir: dir, shards: shards}
	if err := w.open(cfg, workers, batch); err != nil {
		return nil, err
	}
	defer w.close()

	total := int64(cfg.Jobs + cfg.CrashJobs + 8)
	drawer, err := w.led.CreateAccount("CN=usage-consumer", "VO-X", "")
	if err != nil {
		return nil, err
	}
	if err := w.led.Deposit(drawer.AccountID, currency.FromG(total)); err != nil {
		return nil, err
	}
	recips := make([]accounts.ID, cfg.Recipients)
	for i := range recips {
		a, err := w.led.CreateAccount(fmt.Sprintf("CN=usage-gsp-%d", i), "VO-X", "")
		if err != nil {
			return nil, err
		}
		recips[i] = a.AccountID
	}
	before, err := w.led.TotalBalance()
	if err != nil {
		return nil, err
	}
	rates := usageExpRates("CN=usage-gsp")
	submission := func(id string, recip accounts.ID) (usage.Submission, error) {
		raw, err := rur.Encode(usageExpRecord("CN=usage-consumer", "CN=usage-gsp", id, time.Now()), rur.FormatJSON)
		if err != nil {
			return usage.Submission{}, err
		}
		return usage.Submission{ID: id, Drawer: drawer.AccountID, Recipient: recip, RUR: raw, Rates: rates}, nil
	}

	// Phase 1: the measured settlement run.
	subs := make([]usage.Submission, 0, cfg.Jobs)
	for i := 0; i < cfg.Jobs; i++ {
		s, err := submission(fmt.Sprintf("job-%05d", i), recips[i%len(recips)])
		if err != nil {
			return nil, err
		}
		subs = append(subs, s)
	}
	start := time.Now()
	for off := 0; off < len(subs); off += 512 {
		end := off + 512
		if end > len(subs) {
			end = len(subs)
		}
		res, err := w.pipe.Submit(subs[off:end])
		if err != nil {
			return nil, err
		}
		if len(res.Rejected) > 0 {
			return nil, fmt.Errorf("unexpected rejections: %+v", res.Rejected)
		}
	}
	st, err := w.pipe.Drain(5 * time.Minute)
	if err != nil {
		return nil, fmt.Errorf("drain: %v (stats %+v)", err, st)
	}
	elapsed := time.Since(start)
	if st.Settled != uint64(cfg.Jobs) || st.Failed != 0 {
		return nil, fmt.Errorf("settled %d of %d (failed %d)", st.Settled, cfg.Jobs, st.Failed)
	}
	batches, crossShard := st.Batches, st.CrossShard
	if err := assertUsageCell(w.led, recips, cfg.Jobs, before); err != nil {
		return nil, err
	}

	// Phase 2: crash round. Abandon the pipeline at the first settled
	// boundary (persistent death: every later boundary also fails),
	// reboot every store from its journal, recover, and re-assert
	// exactly-once + conservation.
	crash := make([]usage.Submission, 0, cfg.CrashJobs)
	for i := 0; i < cfg.CrashJobs; i++ {
		s, err := submission(fmt.Sprintf("crash-%05d", i), recips[i%len(recips)])
		if err != nil {
			return nil, err
		}
		crash = append(crash, s)
	}
	w.armed.Store(true)
	if _, err := w.pipe.Submit(crash); err != nil {
		return nil, err
	}
	// Let settlement run into the crash (or finish the pre-crash work).
	deadline := time.Now().Add(10 * time.Second)
	for !w.died.Load() && time.Now().Before(deadline) {
		if workers == 0 {
			w.pipe.SettleOnce()
		}
		time.Sleep(time.Millisecond)
	}
	if !w.died.Load() {
		return nil, errors.New("crash round never reached a settle boundary")
	}
	// The reboot runs disarmed: recovery must settle cleanly.
	w.armed.Store(false)
	w.died.Store(false)
	if err := w.reboot(cfg, workers, batch); err != nil {
		return nil, err
	}
	// Re-submit the same batch post-reboot (an at-least-once producer
	// replaying after the crash) — dedup must absorb every duplicate.
	if _, err := w.pipe.Submit(crash); err != nil {
		return nil, err
	}
	if st, err = w.pipe.Drain(5 * time.Minute); err != nil {
		return nil, fmt.Errorf("post-crash drain: %v (stats %+v)", err, st)
	}
	if st.Failed != 0 {
		return nil, fmt.Errorf("post-crash failures: %+v", st)
	}
	if err := assertUsageCell(w.led, recips, cfg.Jobs+cfg.CrashJobs, before); err != nil {
		return nil, fmt.Errorf("after crash recovery: %w", err)
	}

	return &UsagePoint{
		Shards:     shards,
		Workers:    workers,
		BatchSize:  batch,
		Jobs:       cfg.Jobs,
		Elapsed:    elapsed,
		PerSec:     float64(cfg.Jobs) / elapsed.Seconds(),
		Batches:    batches,
		CrossShard: crossShard,
	}, nil
}

// assertUsageCell checks exactly-once (the recipient pool holds exactly
// one G$ per settled job — no charge lost, none applied twice) and
// exact conservation (total balances unchanged by settlement).
func assertUsageCell(led *shard.Ledger, recips []accounts.ID, jobs int, before currency.Amount) error {
	var credited currency.Amount
	for _, id := range recips {
		a, err := led.Details(id)
		if err != nil {
			return err
		}
		credited = credited.MustAdd(a.AvailableBalance)
	}
	if want := currency.FromG(int64(jobs)); credited != want {
		return fmt.Errorf("exactly-once violated: recipients hold %s, want %s", credited, want)
	}
	total, err := led.TotalBalance()
	if err != nil {
		return err
	}
	if total != before {
		return fmt.Errorf("conservation violated: %s -> %s", before, total)
	}
	esc, err := led.PendingEscrow()
	if err != nil {
		return err
	}
	if !esc.IsZero() {
		return fmt.Errorf("escrow residue %s", esc)
	}
	return nil
}

// WriteUsage renders the sweep.
func WriteUsage(w io.Writer, r *UsageResult) {
	fmt.Fprintf(w, "Batched async usage settlement vs naive per-RUR SettleCheque (durable path)\n")
	fmt.Fprintf(w, "naive baseline: %.1f settlements/sec over %d jobs (every cell asserts exactly-once + conservation, incl. after injected crash + reboot)\n\n",
		r.BaselinePerSec, r.BaselineJobs)
	t := &Table{Header: []string{"shards", "workers", "batch", "jobs", "ledger txs", "cross", "charges/sec", "speedup"}}
	for _, p := range r.Points {
		t.Add(p.Shards, p.Workers, p.BatchSize, p.Jobs, p.Batches, p.CrossShard,
			fmt.Sprintf("%.0f", p.PerSec), fmt.Sprintf("%.1fx", p.Speedup))
	}
	t.Write(w)
}
