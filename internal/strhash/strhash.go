// Package strhash provides the allocation-free string hash shared by
// the storage engine's row striping and the bank core's keyed locks.
package strhash

// FNV32a is the 32-bit FNV-1a hash of s.
func FNV32a(s string) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= prime32
	}
	return h
}
