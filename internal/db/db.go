// Package db is the embedded storage substrate standing in for the MySQL
// database of §3.2/§5.1 of the GridBank paper.
//
// It implements exactly what GridBank needs from a relational store and no
// more: named tables of versioned records addressed by primary key,
// secondary indexes, snapshot isolation for readers, single-writer ACID
// transactions with rollback, a write-ahead journal for durability, and
// point-in-time snapshots for backup/restore. Records are stored as
// encoded bytes ([]byte), keeping the engine schema-agnostic; the
// accounts layer supplies codecs.
//
// Concurrency model: one RWMutex per Store. GridBank's workload is small
// records and short transactions (the paper's transfer path touches two
// account rows and appends two journal rows), so a single-writer design is
// both simple and fast enough to saturate the wire protocol above it.
package db

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Common errors.
var (
	ErrNoTable  = errors.New("db: no such table")
	ErrNoRecord = errors.New("db: no such record")
	ErrExists   = errors.New("db: record already exists")
	ErrNoIndex  = errors.New("db: no such index")
	ErrTxDone   = errors.New("db: transaction already finished")
	ErrConflict = errors.New("db: write conflict")
	ErrClosed   = errors.New("db: store closed")
	ErrDupTable = errors.New("db: table already exists")
	ErrDupIndex = errors.New("db: index already exists")
)

// IndexFunc extracts the secondary-index key(s) for a record's encoded
// value. Returning nil means the record is not indexed under this index.
type IndexFunc func(key string, value []byte) []string

type index struct {
	name    string
	fn      IndexFunc
	entries map[string]map[string]struct{} // index key -> set of primary keys
}

type table struct {
	name    string
	rows    map[string][]byte
	indexes map[string]*index
}

func (t *table) reindexAdd(key string, value []byte) {
	for _, ix := range t.indexes {
		for _, ik := range ix.fn(key, value) {
			set, ok := ix.entries[ik]
			if !ok {
				set = make(map[string]struct{})
				ix.entries[ik] = set
			}
			set[key] = struct{}{}
		}
	}
}

func (t *table) reindexRemove(key string, value []byte) {
	for _, ix := range t.indexes {
		for _, ik := range ix.fn(key, value) {
			if set, ok := ix.entries[ik]; ok {
				delete(set, key)
				if len(set) == 0 {
					delete(ix.entries, ik)
				}
			}
		}
	}
}

// Store is an embedded multi-table database.
type Store struct {
	mu      sync.RWMutex
	tables  map[string]*table
	journal Journal // may be nil (volatile store)
	seq     uint64  // monotonically increasing record sequence for WAL entries
	closed  bool
}

// Open creates a Store backed by the given journal. If journal is non-nil
// and non-empty, the store's state is rebuilt by replaying it. A nil
// journal yields a volatile in-memory store.
func Open(journal Journal) (*Store, error) {
	s := &Store{tables: make(map[string]*table), journal: journal}
	if journal != nil {
		if err := journal.Replay(func(e Entry) error { return s.applyEntry(e) }); err != nil {
			return nil, fmt.Errorf("db: journal replay: %w", err)
		}
	}
	return s, nil
}

// MustOpenMemory returns a volatile store, for tests and simulations.
func MustOpenMemory() *Store {
	s, err := Open(nil)
	if err != nil {
		panic(err)
	}
	return s
}

// applyEntry applies one journal entry during replay (no re-journaling).
func (s *Store) applyEntry(e Entry) error {
	switch e.Op {
	case OpCreateTable:
		if _, ok := s.tables[e.Table]; ok {
			return nil // idempotent replay
		}
		s.tables[e.Table] = &table{name: e.Table, rows: make(map[string][]byte), indexes: make(map[string]*index)}
	case OpPut:
		t, ok := s.tables[e.Table]
		if !ok {
			return fmt.Errorf("%w: %q (replay put)", ErrNoTable, e.Table)
		}
		if old, ok := t.rows[e.Key]; ok {
			t.reindexRemove(e.Key, old)
		}
		t.rows[e.Key] = e.Value
		t.reindexAdd(e.Key, e.Value)
	case OpDelete:
		t, ok := s.tables[e.Table]
		if !ok {
			return fmt.Errorf("%w: %q (replay delete)", ErrNoTable, e.Table)
		}
		if old, ok := t.rows[e.Key]; ok {
			t.reindexRemove(e.Key, old)
			delete(t.rows, e.Key)
		}
	default:
		return fmt.Errorf("db: unknown journal op %q", e.Op)
	}
	if e.Seq > s.seq {
		s.seq = e.Seq
	}
	return nil
}

// Close flushes and closes the journal. Further operations fail with
// ErrClosed.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.journal != nil {
		return s.journal.Close()
	}
	return nil
}

// CreateTable registers a new table. Creating a table that exists is an
// error, so schema setup bugs surface immediately; use EnsureTable for
// idempotent setup.
func (s *Store) CreateTable(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if _, ok := s.tables[name]; ok {
		return fmt.Errorf("%w: %q", ErrDupTable, name)
	}
	if err := s.journalAppend(Entry{Op: OpCreateTable, Table: name}); err != nil {
		return err
	}
	s.tables[name] = &table{name: name, rows: make(map[string][]byte), indexes: make(map[string]*index)}
	return nil
}

// EnsureTable creates the table if absent.
func (s *Store) EnsureTable(name string) error {
	s.mu.RLock()
	_, ok := s.tables[name]
	s.mu.RUnlock()
	if ok {
		return nil
	}
	err := s.CreateTable(name)
	if errors.Is(err, ErrDupTable) {
		return nil
	}
	return err
}

// CreateIndex registers a secondary index over a table and backfills it
// from existing rows. Indexes are in-memory only: they are deterministic
// functions of the data and are rebuilt on journal replay.
func (s *Store) CreateIndex(tableName, indexName string, fn IndexFunc) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	t, ok := s.tables[tableName]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoTable, tableName)
	}
	if _, ok := t.indexes[indexName]; ok {
		return fmt.Errorf("%w: %s.%s", ErrDupIndex, tableName, indexName)
	}
	ix := &index{name: indexName, fn: fn, entries: make(map[string]map[string]struct{})}
	t.indexes[indexName] = ix
	for k, v := range t.rows {
		for _, ik := range fn(k, v) {
			set, ok := ix.entries[ik]
			if !ok {
				set = make(map[string]struct{})
				ix.entries[ik] = set
			}
			set[k] = struct{}{}
		}
	}
	return nil
}

func (s *Store) journalAppend(e Entry) error {
	if s.journal == nil {
		return nil
	}
	s.seq++
	e.Seq = s.seq
	return s.journal.Append(e)
}

// Get returns the encoded record stored under key. The returned slice must
// not be modified; it is shared with the store.
func (s *Store) Get(tableName, key string) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	t, ok := s.tables[tableName]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoTable, tableName)
	}
	v, ok := t.rows[key]
	if !ok {
		return nil, fmt.Errorf("%w: %s/%s", ErrNoRecord, tableName, key)
	}
	return v, nil
}

// Lookup returns the primary keys of records whose index key equals
// indexKey, in sorted order.
func (s *Store) Lookup(tableName, indexName, indexKey string) ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	t, ok := s.tables[tableName]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoTable, tableName)
	}
	ix, ok := t.indexes[indexName]
	if !ok {
		return nil, fmt.Errorf("%w: %s.%s", ErrNoIndex, tableName, indexName)
	}
	set := ix.entries[indexKey]
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys, nil
}

// Scan visits every record in a table in sorted key order. The callback
// must not retain or modify value. Returning false stops the scan.
func (s *Store) Scan(tableName string, visit func(key string, value []byte) bool) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	t, ok := s.tables[tableName]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoTable, tableName)
	}
	keys := make([]string, 0, len(t.rows))
	for k := range t.rows {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if !visit(k, t.rows[k]) {
			break
		}
	}
	return nil
}

// Count returns the number of records in a table.
func (s *Store) Count(tableName string) (int, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return 0, ErrClosed
	}
	t, ok := s.tables[tableName]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNoTable, tableName)
	}
	return len(t.rows), nil
}

// Tables returns the names of all tables, sorted.
func (s *Store) Tables() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.tables))
	for n := range s.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
