// Package db is the embedded storage substrate standing in for the MySQL
// database of §3.2/§5.1 of the GridBank paper.
//
// It implements exactly what GridBank needs from a relational store and no
// more: named tables of versioned records addressed by primary key,
// secondary indexes, snapshot isolation for readers, ACID transactions
// with rollback, a write-ahead journal for durability, and point-in-time
// snapshots for backup/restore. Records are stored as encoded bytes
// ([]byte), keeping the engine schema-agnostic; the accounts layer
// supplies codecs.
//
// Concurrency model: a store-level RWMutex guards only the schema (the
// set of tables); each table shards its rows over fixed hash stripes,
// each stripe with its own RWMutex. Reads lock only the stripe holding
// their key. Transactions are optimistic: they run without locks,
// record what they read, and at commit lock just the touched stripes
// (in a global sorted order), validate the read set, journal, and
// apply. A transaction whose reads were invalidated by a concurrent
// commit fails with ErrConflict; Update retries automatically.
// Transactions over disjoint keys — a transfer between accounts A→B
// and another between C→D — commit fully in parallel even inside one
// table; only same-stripe commits serialize.
package db

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"gridbank/internal/obs"
	"gridbank/internal/strhash"
)

// Common errors.
var (
	ErrNoTable  = errors.New("db: no such table")
	ErrNoRecord = errors.New("db: no such record")
	ErrExists   = errors.New("db: record already exists")
	ErrNoIndex  = errors.New("db: no such index")
	ErrTxDone   = errors.New("db: transaction already finished")
	ErrConflict = errors.New("db: write conflict")
	ErrClosed   = errors.New("db: store closed")
	ErrDupTable = errors.New("db: table already exists")
	ErrDupIndex = errors.New("db: index already exists")
)

// IndexFunc extracts the secondary-index key(s) for a record's encoded
// value. Returning nil means the record is not indexed under this index.
// Index functions must be pure: they are re-run on replay, backfill and
// commit, sometimes outside any lock.
type IndexFunc func(key string, value []byte) []string

type index struct {
	name    string
	fn      IndexFunc
	entries map[string]map[string]struct{} // index key -> set of primary keys
}

// row is one stored record. The value slice is immutable once a row is
// published: writers replace the whole *row, never mutate it, so readers
// holding a reference (and the commit validator comparing pointers) are
// safe. ixKeys caches the index keys the row is filed under, so removal
// never re-runs index functions (which would mean decoding JSON inside
// the exclusive section).
type row struct {
	value  []byte
	ixKeys map[string][]string // index name -> keys (lazily filled)
}

// tableStripes is the number of row shards per table. Power of two;
// sized so that a handful of concurrent committers rarely collide.
const tableStripes = 32

// stripe is one shard of a table's rows, with its own lock.
type stripe struct {
	mu   sync.RWMutex
	rows map[string]*row
}

// table shards its rows over stripes. Lock order within a commit is
// fixed: table schema locks (mu) are never held together with stripe
// locks by writers; predMu comes before this table's stripe locks;
// ixMu is a leaf taken transiently with any of the above held.
type table struct {
	name string

	// mu guards the indexes map itself (schema): CreateIndex takes it
	// exclusively, index readers take it shared. Row access never needs
	// it — stripes self-synchronize.
	mu      sync.RWMutex
	indexes map[string]*index

	// predMu serializes commits that performed index lookups on this
	// table (predicate/phantom protection): two racing "is this
	// certificate name taken?" transactions validate and apply one at a
	// time. Plain row writers never take it.
	predMu sync.Mutex

	// ixMu guards every index's entries map. Leaf lock: held only for
	// the moment of an entry read or update, never while acquiring
	// another lock.
	ixMu sync.Mutex

	// version counts committed mutations; transactions that scanned the
	// whole table validate against it (they hold every stripe at
	// commit, so it is stable under them).
	version atomic.Uint64

	stripes [tableStripes]stripe
}

func newTable(name string) *table {
	t := &table{name: name, indexes: make(map[string]*index)}
	for i := range t.stripes {
		t.stripes[i].rows = make(map[string]*row)
	}
	return t
}

// stripeFor returns the shard index for a key.
func stripeFor(key string) int {
	return int(strhash.FNV32a(key) % tableStripes)
}

// getRow reads a row under its stripe's read lock.
func (t *table) getRow(key string) *row {
	st := &t.stripes[stripeFor(key)]
	st.mu.RLock()
	r := st.rows[key]
	st.mu.RUnlock()
	return r
}

// indexKeysFor returns r's cached keys under ix, computing and caching
// them if absent. Callers must hold the row's stripe lock for writing
// (the cache write mutates the row).
func (t *table) indexKeysFor(key string, r *row, ix *index) []string {
	keys, ok := r.ixKeys[ix.name]
	if !ok {
		keys = ix.fn(key, r.value)
		if r.ixKeys == nil {
			r.ixKeys = make(map[string][]string, len(t.indexes))
		}
		r.ixKeys[ix.name] = keys
	}
	return keys
}

// applyPut installs a new row under key, maintaining indexes. Caller
// holds the key's stripe lock for writing (or has exclusive access
// during replay/backfill).
func (t *table) applyPut(key string, r *row) {
	st := &t.stripes[stripeFor(key)]
	old := st.rows[key]
	t.mu.RLock()
	if len(t.indexes) > 0 {
		t.ixMu.Lock()
		if old != nil {
			t.unindexLocked(key, old)
		}
		for _, ix := range t.indexes {
			for _, ik := range t.indexKeysFor(key, r, ix) {
				set, ok := ix.entries[ik]
				if !ok {
					set = make(map[string]struct{})
					ix.entries[ik] = set
				}
				set[key] = struct{}{}
			}
		}
		t.ixMu.Unlock()
	}
	t.mu.RUnlock()
	st.rows[key] = r
	t.version.Add(1)
}

// applyDelete removes key if present. Caller holds the key's stripe
// lock for writing.
func (t *table) applyDelete(key string) {
	st := &t.stripes[stripeFor(key)]
	if old, ok := st.rows[key]; ok {
		t.mu.RLock()
		if len(t.indexes) > 0 {
			t.ixMu.Lock()
			t.unindexLocked(key, old)
			t.ixMu.Unlock()
		}
		t.mu.RUnlock()
		delete(st.rows, key)
	}
	t.version.Add(1)
}

// unindexLocked drops a row's index entries. Caller holds ixMu and the
// row's stripe lock.
func (t *table) unindexLocked(key string, r *row) {
	for _, ix := range t.indexes {
		for _, ik := range t.indexKeysFor(key, r, ix) {
			if set, ok := ix.entries[ik]; ok {
				delete(set, key)
				if len(set) == 0 {
					delete(ix.entries, ik)
				}
			}
		}
	}
}

// lockAllStripes takes every stripe of the table shared, in index
// order — the whole-table read lock used by scans and snapshots.
func (t *table) lockAllStripes() {
	for i := range t.stripes {
		t.stripes[i].mu.RLock()
	}
}

func (t *table) unlockAllStripes() {
	for i := range t.stripes {
		t.stripes[i].mu.RUnlock()
	}
}

// sortedKeysLocked returns all row keys sorted. Caller holds all
// stripes (shared at least).
func (t *table) sortedKeysLocked() []string {
	n := 0
	for i := range t.stripes {
		n += len(t.stripes[i].rows)
	}
	keys := make([]string, 0, n)
	for i := range t.stripes {
		for k := range t.stripes[i].rows {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// lookupIndex reads an index's membership for one key, sorted. Caller
// must not hold ixMu.
func (t *table) lookupIndex(indexName, indexKey string) ([]string, error) {
	t.mu.RLock()
	ix, ok := t.indexes[indexName]
	t.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s.%s", ErrNoIndex, t.name, indexName)
	}
	t.ixMu.Lock()
	set := ix.entries[indexKey]
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	t.ixMu.Unlock()
	sort.Strings(keys)
	return keys, nil
}

// Store is an embedded multi-table database.
type Store struct {
	mu     sync.RWMutex // schema lock: guards tables map and closed flag
	tables map[string]*table
	closed bool

	// instance uniquely identifies this open of the store. Sequence
	// numbers are only comparable within one instance: a restart may
	// replay less history than a follower already saw (lost unsynced
	// tail) and then re-use sequence numbers for different writes, so
	// replication resume checks the epoch before trusting seq equality.
	instance string

	journal Journal       // may be nil (volatile store)
	seq     atomic.Uint64 // monotonically increasing record sequence for WAL entries

	// Commit stream (replication fan-out). pubMu orders sequence
	// assignment with publication: every committer assigns its batch's
	// Seq values and enqueues the batch to subscribers inside one pubMu
	// section, so subscribers observe batches in exact sequence order.
	// pubMu is a leaf lock — held only for the atomic adds and
	// non-blocking channel sends, never while acquiring another lock.
	pubMu   sync.Mutex
	subs    map[*CommitSub]struct{}
	hasSubs atomic.Bool // fast-path skip when nothing ever subscribed
	// forceSnap is set when the stream may have shipped entries the
	// journal never accepted (publish happened, stage failed): sequence
	// numbers were burned without state changing, so "follower seq ==
	// store seq" no longer implies identical history. From then on
	// every bootstrap gets a full snapshot.
	forceSnap atomic.Bool

	// failed is set when a committed transaction's journal flush
	// failed after its in-memory apply: memory and disk have diverged,
	// so the store fail-stops — every subsequent operation reports the
	// original journal error rather than serving (or snapshotting)
	// state that would vanish on restart.
	failed atomic.Pointer[error]

	// OCC telemetry (nil no-ops until SetObs; see internal/obs).
	mConflicts *obs.Counter
	mRetries   *obs.Counter
	mFailed    *obs.Counter // db.storage_failed: fail-stop poisonings
}

// obsJournal is the optional journal extension SetObs forwards to, so
// journal-level instruments (fsync latency, group size, bytes written)
// land in the same registry as the store's OCC counters.
type obsJournal interface {
	setObs(reg *obs.Registry)
}

// SetObs attaches a telemetry registry: OCC conflict/retry counters on
// the store, fsync/group-commit instruments on the journal. Wiring-time
// only — call before the store sees concurrent traffic.
func (s *Store) SetObs(reg *obs.Registry) {
	s.mConflicts = reg.Counter("db.occ_conflicts")
	s.mRetries = reg.Counter("db.occ_retries")
	s.mFailed = reg.Counter("db.storage_failed")
	if oj, ok := s.journal.(obsJournal); ok {
		oj.setObs(reg)
	}
}

// fail poisons the store after a divergence-inducing journal error.
// Subscribers are cut off with the same error: the stream may have
// shipped batches that were never made durable, so followers must
// re-bootstrap from whatever the primary recovers to. The poisoning
// error always matches ErrStorageFailed, so every later refusal is
// typed — callers see "unavailable", never silent data loss.
func (s *Store) fail(err error) {
	var wrapped error
	if errors.Is(err, ErrStorageFailed) {
		wrapped = fmt.Errorf("db: store failed, in-memory state not durable: %w", err)
	} else {
		wrapped = fmt.Errorf("db: store failed, in-memory state not durable: %w: %w", ErrStorageFailed, err)
	}
	if s.failed.CompareAndSwap(nil, &wrapped) {
		s.mFailed.Inc()
	}
	s.closeSubs(*s.failed.Load())
}

// failedErr returns the poisoning error, or nil.
func (s *Store) failedErr() error {
	if p := s.failed.Load(); p != nil {
		return *p
	}
	return nil
}

// Open creates a Store backed by the given journal. If journal is non-nil
// and non-empty, the store's state is rebuilt by replaying it. A nil
// journal yields a volatile in-memory store.
func Open(journal Journal) (*Store, error) {
	s := &Store{tables: make(map[string]*table), journal: journal, instance: newInstanceID()}
	if journal != nil {
		if err := journal.Replay(func(e Entry) error { return s.applyEntry(e) }); err != nil {
			return nil, fmt.Errorf("db: journal replay: %w", err)
		}
	}
	return s, nil
}

// MustOpenMemory returns a volatile store, for tests and simulations.
func MustOpenMemory() *Store {
	s, err := Open(nil)
	if err != nil {
		panic(err)
	}
	return s
}

// applyEntry applies one journal entry during replay (no re-journaling).
// Replay is single-threaded; the apply helpers' internal locking is
// uncontended.
func (s *Store) applyEntry(e Entry) error {
	switch e.Op {
	case OpCreateTable:
		if _, ok := s.tables[e.Table]; ok {
			break // idempotent replay
		}
		s.tables[e.Table] = newTable(e.Table)
	case OpPut:
		t, ok := s.tables[e.Table]
		if !ok {
			return fmt.Errorf("%w: %q (replay put)", ErrNoTable, e.Table)
		}
		t.applyPut(e.Key, &row{value: e.Value})
	case OpDelete:
		t, ok := s.tables[e.Table]
		if !ok {
			return fmt.Errorf("%w: %q (replay delete)", ErrNoTable, e.Table)
		}
		t.applyDelete(e.Key)
	default:
		return fmt.Errorf("db: unknown journal op %q", e.Op)
	}
	if e.Seq > s.seq.Load() {
		s.seq.Store(e.Seq)
	}
	return nil
}

// Close flushes and closes the journal. Further operations fail with
// ErrClosed.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	s.closeSubs(ErrClosed)
	if s.journal != nil {
		return s.journal.Close()
	}
	return nil
}

// table resolves a table by name, checking the store is open. The
// returned handle stays valid forever (tables are never dropped).
func (s *Store) table(name string) (*table, error) {
	if err := s.failedErr(); err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	t, ok := s.tables[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoTable, name)
	}
	return t, nil
}

// CreateTable registers a new table. Creating a table that exists is an
// error, so schema setup bugs surface immediately; use EnsureTable for
// idempotent setup.
func (s *Store) CreateTable(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if _, ok := s.tables[name]; ok {
		return fmt.Errorf("%w: %q", ErrDupTable, name)
	}
	if err := s.journalAppend(Entry{Op: OpCreateTable, Table: name}); err != nil {
		return err
	}
	s.tables[name] = newTable(name)
	return nil
}

// EnsureTable creates the table if absent.
func (s *Store) EnsureTable(name string) error {
	s.mu.RLock()
	_, ok := s.tables[name]
	s.mu.RUnlock()
	if ok {
		return nil
	}
	err := s.CreateTable(name)
	if errors.Is(err, ErrDupTable) {
		return nil
	}
	return err
}

// CreateIndex registers a secondary index over a table and backfills it
// from existing rows. Indexes are in-memory only: they are deterministic
// functions of the data and are rebuilt on journal replay.
func (s *Store) CreateIndex(tableName, indexName string, fn IndexFunc) error {
	t, err := s.table(tableName)
	if err != nil {
		return err
	}
	// Shared on every stripe (no commit can apply during the backfill),
	// then exclusive on the schema. Stripes-before-table.mu is the
	// global lock order: appliers hold stripe locks when they read the
	// index set.
	t.lockAllStripes()
	defer t.unlockAllStripes()
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.indexes[indexName]; ok {
		return fmt.Errorf("%w: %s.%s", ErrDupIndex, tableName, indexName)
	}
	ix := &index{name: indexName, fn: fn, entries: make(map[string]map[string]struct{})}
	t.indexes[indexName] = ix
	for i := range t.stripes {
		for k, r := range t.stripes[i].rows {
			for _, ik := range ix.fn(k, r.value) {
				set, ok := ix.entries[ik]
				if !ok {
					set = make(map[string]struct{})
					ix.entries[ik] = set
				}
				set[k] = struct{}{}
			}
			// Invalidate any stale cache so future removals recompute
			// under the new index set.
			if r.ixKeys != nil {
				delete(r.ixKeys, indexName)
			}
		}
	}
	return nil
}

func (s *Store) journalAppend(e Entry) error {
	if s.journal == nil && !s.hasSubs.Load() {
		// Volatile, nobody listening: advance the replication clock so
		// reconnecting followers know they missed something.
		s.seq.Add(1)
		return nil
	}
	s.pubMu.Lock()
	e.Seq = s.seq.Add(1)
	s.publishLocked([]Entry{e})
	s.pubMu.Unlock()
	if s.journal == nil {
		return nil
	}
	if err := s.journal.Append(e); err != nil {
		// Subscribers already saw the entry; they must re-bootstrap
		// against whatever the journal actually holds.
		s.streamDiverged(fmt.Errorf("db: journal append failed after publish: %w", err))
		return err
	}
	return nil
}

// Get returns the encoded record stored under key. The returned slice is
// the caller's to keep: it is a defensive copy, never aliased with
// writer state.
func (s *Store) Get(tableName, key string) ([]byte, error) {
	t, err := s.table(tableName)
	if err != nil {
		return nil, err
	}
	r := t.getRow(key)
	if r == nil {
		return nil, fmt.Errorf("%w: %s/%s", ErrNoRecord, tableName, key)
	}
	return cloneBytes(r.value), nil
}

// Lookup returns the primary keys of records whose index key equals
// indexKey, in sorted order.
func (s *Store) Lookup(tableName, indexName, indexKey string) ([]string, error) {
	t, err := s.table(tableName)
	if err != nil {
		return nil, err
	}
	return t.lookupIndex(indexName, indexKey)
}

// Scan visits every record in a table in sorted key order. The callback
// must not retain or modify value. Returning false stops the scan.
func (s *Store) Scan(tableName string, visit func(key string, value []byte) bool) error {
	t, err := s.table(tableName)
	if err != nil {
		return err
	}
	t.lockAllStripes()
	defer t.unlockAllStripes()
	for _, k := range t.sortedKeysLocked() {
		if !visit(k, t.stripes[stripeFor(k)].rows[k].value) {
			break
		}
	}
	return nil
}

// Count returns the number of records in a table.
func (s *Store) Count(tableName string) (int, error) {
	t, err := s.table(tableName)
	if err != nil {
		return 0, err
	}
	n := 0
	for i := range t.stripes {
		t.stripes[i].mu.RLock()
		n += len(t.stripes[i].rows)
		t.stripes[i].mu.RUnlock()
	}
	return n, nil
}

// Tables returns the names of all tables, sorted.
func (s *Store) Tables() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.tables))
	for n := range s.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
