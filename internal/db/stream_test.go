package db

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// drain reads batches until ch closes or idle for a beat.
func collectBatches(t *testing.T, sub *CommitSub, want int) [][]Entry {
	t.Helper()
	var got [][]Entry
	deadline := time.After(5 * time.Second)
	for len(got) < want {
		select {
		case b, ok := <-sub.C():
			if !ok {
				t.Fatalf("subscription closed early (%v) after %d/%d batches", sub.Err(), len(got), want)
			}
			got = append(got, b)
		case <-deadline:
			t.Fatalf("timed out after %d/%d batches", len(got), want)
		}
	}
	return got
}

func TestCommitStreamDeliversInSequenceOrder(t *testing.T) {
	s := MustOpenMemory()
	must(t, s.CreateTable("t"))
	sub, err := s.SubscribeCommits(64)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	const commits = 20
	errc := make(chan error, 4)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < commits/4; k++ {
				key := fmt.Sprintf("w%d-k%d", w, k)
				err := s.Update(func(tx *Tx) error {
					if err := tx.Put("t", key, []byte("a")); err != nil {
						return err
					}
					return tx.Put("t", key+"-b", []byte("b"))
				})
				if err != nil {
					errc <- err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errc)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}

	batches := collectBatches(t, sub, commits)
	next := uint64(2) // seq 1 was the pre-subscription CreateTable
	for _, b := range batches {
		if len(b) != 2 {
			t.Fatalf("batch size %d, want 2", len(b))
		}
		for _, e := range b {
			if e.Seq != next {
				t.Fatalf("entry seq %d, want %d (stream must be gapless and ordered)", e.Seq, next)
			}
			next++
		}
	}
	if s.CurrentSeq() != commits*2+1 {
		t.Fatalf("CurrentSeq = %d, want %d", s.CurrentSeq(), commits*2+1)
	}
}

func TestCommitStreamSlowSubscriberDetached(t *testing.T) {
	s := MustOpenMemory()
	must(t, s.CreateTable("t"))
	slow, err := s.SubscribeCommits(1)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := s.SubscribeCommits(16)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		must(t, s.Update(func(tx *Tx) error { return tx.Put("t", "k", []byte{byte(i)}) }))
	}
	// The slow subscriber buffered one batch and was then cut off.
	var delivered int
	for range slow.C() {
		delivered++
	}
	if !errors.Is(slow.Err(), ErrSlowSubscriber) {
		t.Fatalf("slow.Err() = %v, want ErrSlowSubscriber", slow.Err())
	}
	if delivered != 1 {
		t.Fatalf("slow subscriber got %d batches before overflow, want 1", delivered)
	}
	// The fast subscriber saw everything, unaffected. (Seq 1 was the
	// pre-subscription CreateTable.)
	got := collectBatches(t, fast, 3)
	if got[2][0].Seq != 4 {
		t.Fatalf("fast subscriber last seq = %d, want 4", got[2][0].Seq)
	}
	fast.Close()
}

func TestCommitStreamClosedOnStoreClose(t *testing.T) {
	s := MustOpenMemory()
	must(t, s.CreateTable("t"))
	sub, err := s.SubscribeCommits(4)
	if err != nil {
		t.Fatal(err)
	}
	must(t, s.Close())
	if _, ok := <-sub.C(); ok {
		t.Fatal("channel still open after store close")
	}
	if !errors.Is(sub.Err(), ErrClosed) {
		t.Fatalf("Err() = %v, want ErrClosed", sub.Err())
	}
}

// TestCommitStreamBootstrapConvergence is the replication contract at
// the db layer: subscribe, snapshot, apply the tail (skipping entries
// at or below the snapshot cut) — the replica store converges to the
// primary byte-for-byte, under writers racing the bootstrap.
func TestCommitStreamBootstrapConvergence(t *testing.T) {
	primary := MustOpenMemory()
	must(t, primary.CreateTable("acct"))
	// Pre-subscription history: unpublished (nobody listening), but
	// still sequence-counted and covered by the snapshot.
	for i := 0; i < 10; i++ {
		key := fmt.Sprintf("pre%d", i)
		must(t, primary.Update(func(tx *Tx) error { return tx.Put("acct", key, []byte("old")) }))
	}

	// The writer races the bootstrap below; its total commit count
	// stays under the subscription buffer so the bootstrap-time backlog
	// never overflows a subscriber nobody is draining yet.
	const liveWrites = 1500
	writeErr := make(chan error, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < liveWrites; i++ {
			key := fmt.Sprintf("live%d", i%7)
			val := []byte(fmt.Sprintf("v%d", i))
			if err := primary.Update(func(tx *Tx) error { return tx.Put("acct", key, val) }); err != nil {
				writeErr <- err
				return
			}
		}
	}()

	// Bootstrap mid-stream: subscribe first, then cut.
	sub, err := primary.SubscribeCommits(4096)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	snap, err := primary.SnapshotSince(0)
	if err != nil {
		t.Fatal(err)
	}
	replica, err := OpenFromSnapshot(snap, nil)
	if err != nil {
		t.Fatal(err)
	}
	applied := snap.Seq
	wg.Wait()
	select {
	case err := <-writeErr:
		t.Fatal(err)
	default:
	}
	target := primary.CurrentSeq()
	timeout := time.After(5 * time.Second)
	for applied < target {
		var batch []Entry
		select {
		case b, ok := <-sub.C():
			if !ok {
				t.Fatalf("stream closed (%v) at applied %d, target %d", sub.Err(), applied, target)
			}
			batch = b
		case <-timeout:
			t.Fatalf("timed out at applied %d, target %d", applied, target)
		}
		live := batch[:0:0]
		for _, e := range batch {
			if e.Seq <= applied {
				continue // already in the snapshot
			}
			if e.Seq != applied+1 {
				t.Fatalf("gap: entry seq %d after applied %d", e.Seq, applied)
			}
			live = append(live, e)
			applied = e.Seq
		}
		must(t, replica.ApplyReplicated(live))
	}
	wantSnap, err := primary.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	gotSnap, err := replica.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(wantSnap.Tables["acct"]) != len(gotSnap.Tables["acct"]) {
		t.Fatalf("row counts diverge: primary %d, replica %d",
			len(wantSnap.Tables["acct"]), len(gotSnap.Tables["acct"]))
	}
	for k, v := range wantSnap.Tables["acct"] {
		if !bytes.Equal(gotSnap.Tables["acct"][k], v) {
			t.Fatalf("key %s diverges: primary %q, replica %q", k, v, gotSnap.Tables["acct"][k])
		}
	}
}

func TestApplyReplicatedMaintainsIndexes(t *testing.T) {
	s := MustOpenMemory()
	must(t, s.CreateTable("t"))
	must(t, s.CreateIndex("t", "by_val", func(_ string, v []byte) []string { return []string{string(v)} }))
	must(t, s.ApplyReplicated([]Entry{
		{Seq: 1, Op: OpPut, Table: "t", Key: "a", Value: []byte("x")},
		{Seq: 2, Op: OpPut, Table: "t", Key: "b", Value: []byte("x")},
	}))
	keys, err := s.Lookup("t", "by_val", "x")
	if err != nil || len(keys) != 2 {
		t.Fatalf("Lookup after replicated put = %v, %v", keys, err)
	}
	must(t, s.ApplyReplicated([]Entry{{Seq: 3, Op: OpDelete, Table: "t", Key: "a"}}))
	keys, err = s.Lookup("t", "by_val", "x")
	if err != nil || len(keys) != 1 || keys[0] != "b" {
		t.Fatalf("Lookup after replicated delete = %v, %v", keys, err)
	}
	if s.CurrentSeq() != 3 {
		t.Fatalf("CurrentSeq = %d, want 3", s.CurrentSeq())
	}
	// mktable entries create tables idempotently, including mid-batch.
	must(t, s.ApplyReplicated([]Entry{
		{Seq: 4, Op: OpCreateTable, Table: "t2"},
		{Seq: 5, Op: OpPut, Table: "t2", Key: "k", Value: []byte("v")},
		{Seq: 6, Op: OpCreateTable, Table: "t"},
	}))
	v, err := s.Get("t2", "k")
	if err != nil || string(v) != "v" {
		t.Fatalf("Get from replicated table = %q, %v", v, err)
	}
}

func TestCommitStreamSeesSchemaEntries(t *testing.T) {
	s := MustOpenMemory()
	sub, err := s.SubscribeCommits(8)
	if err != nil {
		t.Fatal(err)
	}
	must(t, s.CreateTable("fresh"))
	must(t, s.Update(func(tx *Tx) error { return tx.Put("fresh", "k", []byte("v")) }))
	got := collectBatches(t, sub, 2)
	if got[0][0].Op != OpCreateTable || got[0][0].Table != "fresh" {
		t.Fatalf("first streamed entry = %+v, want mktable fresh", got[0][0])
	}
	if got[1][0].Op != OpPut {
		t.Fatalf("second streamed entry = %+v, want put", got[1][0])
	}
	sub.Close()
}

// TestStageFailureForcesFullSnapshotBootstrap covers the publish-then-
// journal-refusal divergence: the stream shipped a batch whose sequence
// numbers were burned but whose state the primary never applied, so a
// follower at the "current" sequence must still get a full snapshot.
func TestStageFailureForcesFullSnapshotBootstrap(t *testing.T) {
	j := NewFailingMemJournal(2) // mktable + first batch succeed, second batch refused
	s, err := Open(j)
	if err != nil {
		t.Fatal(err)
	}
	must(t, s.CreateTable("t"))
	sub, err := s.SubscribeCommits(8)
	if err != nil {
		t.Fatal(err)
	}
	must(t, s.Update(func(tx *Tx) error { return tx.Put("t", "ok", []byte("1")) }))
	if err := s.Update(func(tx *Tx) error { return tx.Put("t", "phantom", []byte("2")) }); err == nil {
		t.Fatal("commit with refused journal batch succeeded")
	}
	// The subscriber was cut off after seeing the phantom batch.
	var last Entry
	for b := range sub.C() {
		last = b[len(b)-1]
	}
	if sub.Err() == nil {
		t.Fatal("subscriber not detached after journal refusal")
	}
	if last.Key != "phantom" {
		t.Fatalf("subscriber last saw %q (the divergence requires it saw the phantom)", last.Key)
	}
	// A follower that applied everything it saw now sits at the
	// store's own sequence — and must still be handed a full snapshot.
	sn, err := s.SnapshotSince(last.Seq)
	if err != nil {
		t.Fatal(err)
	}
	if sn == nil {
		t.Fatal("SnapshotSince returned nil to a follower holding phantom state")
	}
	if _, ok := sn.Tables["t"]["phantom"]; ok {
		t.Fatal("snapshot contains the never-applied phantom entry")
	}
	if _, ok := sn.Tables["t"]["ok"]; !ok {
		t.Fatal("snapshot missing the applied entry")
	}
}
