package db

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// ErrSlowSubscriber poisons a commit subscription whose buffer
// overflowed: the subscriber missed at least one batch and can no longer
// reconstruct a gapless entry sequence. Replication followers react by
// re-bootstrapping from a fresh snapshot.
var ErrSlowSubscriber = errors.New("db: commit subscriber fell behind")

// CommitSub is one subscription to the store's committed-entry stream.
// Batches arrive on C() in sequence order: within a subscription's
// lifetime, entry Seq values are consecutive — every committed entry is
// delivered exactly once, in order. When C() is closed, Err() explains
// why (ErrSlowSubscriber, ErrClosed, or a journal failure that
// fail-stopped the store).
//
// Entries on the channel alias the store's committed row values, which
// are immutable by the engine's contract: subscribers must treat them as
// read-only.
type CommitSub struct {
	s  *Store
	ch chan []Entry

	mu     sync.Mutex
	err    error
	closed bool
}

// C returns the delivery channel.
func (sub *CommitSub) C() <-chan []Entry { return sub.ch }

// Err reports why the channel closed (nil while the subscription is
// live or after a caller-initiated Close).
func (sub *CommitSub) Err() error {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	return sub.err
}

// Close detaches the subscription. Idempotent; safe to call while the
// publisher side is delivering.
func (sub *CommitSub) Close() { sub.s.unsubscribe(sub, nil) }

// closeLocked marks the subscription dead and closes its channel.
// Caller holds s.pubMu (so no publish races the close).
func (sub *CommitSub) closeLocked(err error) {
	sub.mu.Lock()
	if !sub.closed {
		sub.closed = true
		sub.err = err
		close(sub.ch)
	}
	sub.mu.Unlock()
}

// SubscribeCommits attaches a subscriber to the store's commit stream.
// Every batch committed after this call is delivered to the returned
// subscription, in sequence order. Delivery is non-blocking: a
// subscriber that lets `buffer` batches accumulate is disconnected with
// ErrSlowSubscriber rather than back-pressuring committers.
//
// The intended bootstrap pattern is subscribe-then-snapshot: attach the
// subscription first, then take a Snapshot (or SnapshotSince); entries
// with Seq at or below the snapshot's Seq are already reflected in it
// and must be skipped by the consumer.
func (s *Store) SubscribeCommits(buffer int) (*CommitSub, error) {
	if err := s.failedErr(); err != nil {
		return nil, err
	}
	if buffer < 1 {
		buffer = 1
	}
	s.mu.RLock()
	closed := s.closed
	s.mu.RUnlock()
	if closed {
		return nil, ErrClosed
	}
	sub := &CommitSub{s: s, ch: make(chan []Entry, buffer)}
	s.pubMu.Lock()
	if s.subs == nil {
		s.subs = make(map[*CommitSub]struct{})
	}
	s.subs[sub] = struct{}{}
	s.hasSubs.Store(true)
	s.pubMu.Unlock()
	return sub, nil
}

// unsubscribe detaches sub, recording err as the close reason.
func (s *Store) unsubscribe(sub *CommitSub, err error) {
	s.pubMu.Lock()
	if _, ok := s.subs[sub]; ok {
		delete(s.subs, sub)
		s.hasSubs.Store(len(s.subs) > 0)
		sub.closeLocked(err)
	}
	s.pubMu.Unlock()
}

// publishLocked fans a committed batch out to every subscriber. Caller
// holds s.pubMu — the same critical section that assigned the batch's
// sequence numbers, which is what makes delivery order equal sequence
// order. A subscriber whose buffer is full is detached with
// ErrSlowSubscriber (commits never block on replication).
func (s *Store) publishLocked(entries []Entry) {
	for sub := range s.subs {
		select {
		case sub.ch <- entries:
		default:
			delete(s.subs, sub)
			sub.closeLocked(ErrSlowSubscriber)
		}
	}
	if len(s.subs) == 0 {
		s.hasSubs.Store(false)
	}
}

// streamDiverged records that published entries may never have reached
// the journal (or memory), then cuts every subscriber off: followers
// holding phantom state must re-bootstrap from a full snapshot, which
// forceSnap guarantees they will get.
func (s *Store) streamDiverged(err error) {
	s.forceSnap.Store(true)
	s.closeSubs(err)
}

// closeSubs detaches every subscriber with the given reason. Called on
// store close, fail-stop, and after a journal error that let the stream
// run ahead of durable state.
func (s *Store) closeSubs(err error) {
	s.pubMu.Lock()
	for sub := range s.subs {
		delete(s.subs, sub)
		sub.closeLocked(err)
	}
	s.hasSubs.Store(false)
	s.pubMu.Unlock()
}

// CurrentSeq returns the highest assigned entry sequence number.
func (s *Store) CurrentSeq() uint64 { return s.seq.Load() }

// InstanceID identifies this open of the store — the replication epoch.
// Sequence numbers are only comparable between a follower and primary
// sharing an epoch; across a primary restart the counter may have
// rewound and re-issued, so followers from another epoch must
// re-bootstrap rather than resume by sequence.
func (s *Store) InstanceID() string { return s.instance }

// newInstanceID draws a random epoch identifier.
func newInstanceID() string {
	var b [12]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("db: instance id: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// ApplyReplicated applies a batch of entries shipped from another
// store's commit stream (or journal) into this store, which acts as a
// read replica: entries are applied verbatim, without re-journaling or
// re-sequencing. The batch is applied atomically with respect to
// concurrent readers — every touched stripe is locked, in the same
// global order commits use — so a reader never observes half a
// transfer. The store's sequence counter advances to the batch's
// highest Seq.
//
// Callers must apply batches in stream order; the follower layer
// enforces gap detection above this.
func (s *Store) ApplyReplicated(entries []Entry) error {
	if err := s.failedErr(); err != nil {
		return err
	}
	// Table creations first: a batch may (on a fresh follower) carry a
	// mktable followed by rows for that table.
	for _, e := range entries {
		if e.Op != OpCreateTable {
			continue
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return ErrClosed
		}
		if _, ok := s.tables[e.Table]; !ok {
			s.tables[e.Table] = newTable(e.Table)
		}
		s.mu.Unlock()
	}
	// Footprint: every stripe the batch writes, locked exclusively in
	// the commit layer's global order (tables by name, stripes by index).
	type footprint struct {
		t     *table
		touch [tableStripes]bool
	}
	foot := make(map[string]*footprint)
	for _, e := range entries {
		switch e.Op {
		case OpCreateTable:
			continue
		case OpPut, OpDelete:
			f, ok := foot[e.Table]
			if !ok {
				t, err := s.table(e.Table)
				if err != nil {
					return err
				}
				f = &footprint{t: t}
				foot[e.Table] = f
			}
			f.touch[stripeFor(e.Key)] = true
		default:
			return fmt.Errorf("db: unknown replicated op %q", e.Op)
		}
	}
	names := make([]string, 0, len(foot))
	for n := range foot {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f := foot[n]
		for i, touched := range f.touch {
			if touched {
				f.t.stripes[i].mu.Lock()
			}
		}
	}
	for _, e := range entries {
		switch e.Op {
		case OpPut:
			foot[e.Table].t.applyPut(e.Key, &row{value: cloneBytes(e.Value)})
		case OpDelete:
			foot[e.Table].t.applyDelete(e.Key)
		}
	}
	for _, n := range names {
		f := foot[n]
		for i, touched := range f.touch {
			if touched {
				f.t.stripes[i].mu.Unlock()
			}
		}
	}
	for _, e := range entries {
		if e.Seq > s.seq.Load() {
			s.seq.Store(e.Seq)
		}
	}
	return nil
}
