package db_test

// Storage fault-tolerance tests: the db layer driven over the
// diskfault in-memory disk, so every durability boundary — group-commit
// write, fsync, checkpoint write, the publishing rename, dir-fsync,
// Compact — can be killed or corrupted deterministically.

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"gridbank/internal/db"
	"gridbank/internal/diskfault"
	"gridbank/internal/wire"
)

const (
	walPath  = "/data/ledger.wal"
	ckptPath = "/data/ledger.ckpt"
)

// bootFS opens the journal and store from the disk, simtest-boot style.
func bootFS(t *testing.T, d *diskfault.Disk, codec string) (*db.Store, *db.BootInfo, db.Journal) {
	t.Helper()
	j, err := db.OpenFileJournalCodecFS(d, walPath, true, codec)
	if err != nil {
		t.Fatalf("open journal: %v", err)
	}
	s, info, err := db.OpenWithCheckpointFS(d, ckptPath, j)
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	return s, info, j
}

func putKey(t *testing.T, s *db.Store, k, v string) {
	t.Helper()
	if err := s.Update(func(tx *db.Tx) error { return tx.Put("kv", k, []byte(v)) }); err != nil {
		t.Fatalf("put %s: %v", k, err)
	}
}

func wantKey(t *testing.T, s *db.Store, k, v string) {
	t.Helper()
	got, err := s.Get("kv", k)
	if err != nil || string(got) != v {
		t.Fatalf("get %s = %q, %v; want %q", k, got, err, v)
	}
}

func wantAbsent(t *testing.T, s *db.Store, k string) {
	t.Helper()
	if got, err := s.Get("kv", k); err == nil {
		t.Fatalf("get %s = %q; want absent", k, got)
	}
}

// TestENOSPCMidGroupCommitEveryBoundary injects a real ENOSPC (or I/O
// error) at each write/fsync boundary of the group-commit path while
// concurrent committers race, and asserts the full fail-stop contract:
// every committer in (or after) the failed group gets ErrStorageFailed,
// no partial batch is ever acked, the store refuses all further
// commits, and a reboot recovers exactly the acked prefix — nothing
// more, nothing less.
func TestENOSPCMidGroupCommitEveryBoundary(t *testing.T) {
	boundaries := []struct {
		name string
		rule diskfault.Rule
	}{
		{"write-enospc", diskfault.Rule{PathSuffix: ".wal", Op: diskfault.OpWrite, Nth: 1, Err: diskfault.ErrNoSpace, Sticky: true}},
		{"write-short-enospc", diskfault.Rule{PathSuffix: ".wal", Op: diskfault.OpWrite, Nth: 1, Err: diskfault.ErrNoSpace, ShortBytes: 5, Sticky: true}},
		{"fsync-eio", diskfault.Rule{PathSuffix: ".wal", Op: diskfault.OpSync, Nth: 1, Err: diskfault.ErrIO, Sticky: true}},
	}
	for _, b := range boundaries {
		t.Run(b.name, func(t *testing.T) {
			d := diskfault.New(diskfault.Config{Seed: 11})
			s, _, _ := bootFS(t, d, wire.CodecJSON)
			if err := s.CreateTable("kv"); err != nil {
				t.Fatal(err)
			}
			// A known acked prefix before the fault arms.
			putKey(t, s, "acked-1", "v1")
			putKey(t, s, "acked-2", "v2")
			d.AddRule(b.rule)

			const writers = 8
			errs := make([]error, writers)
			var wg sync.WaitGroup
			for i := 0; i < writers; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					k := fmt.Sprintf("doomed-%d", i)
					errs[i] = s.Update(func(tx *db.Tx) error { return tx.Put("kv", k, []byte("x")) })
				}(i)
			}
			wg.Wait()
			for i, err := range errs {
				if err == nil {
					t.Fatalf("writer %d was acked through a failed flush", i)
				}
				if !errors.Is(err, db.ErrStorageFailed) {
					t.Fatalf("writer %d: %v; want ErrStorageFailed", i, err)
				}
			}
			// The poison is sticky: even a brand-new commit is refused.
			if err := s.Update(func(tx *db.Tx) error { return tx.Put("kv", "late", []byte("x")) }); !errors.Is(err, db.ErrStorageFailed) {
				t.Fatalf("post-failure commit: %v; want ErrStorageFailed", err)
			}

			// Reboot: exactly the acked prefix survives.
			d.Crash()
			d.ClearRules()
			s2, _, _ := bootFS(t, d, wire.CodecJSON)
			wantKey(t, s2, "acked-1", "v1")
			wantKey(t, s2, "acked-2", "v2")
			for i := 0; i < writers; i++ {
				wantAbsent(t, s2, fmt.Sprintf("doomed-%d", i))
			}
			wantAbsent(t, s2, "late")
		})
	}
}

// TestStickyFsyncAcksThenLosesPreFixShape pins the failure the fail-stop
// discipline exists to prevent. An anti-pattern journal — retry the
// fsync after it fails, treat the retried success as durability — acks
// a write that the kernel has already dropped (fsyncgate: the failed
// fsync marked the pages clean, so the retry has nothing to write and
// "succeeds"). The acked write vanishes on reboot. The fixed journal
// under the same fault class refuses the commit instead, and reboot
// recovers exactly the acked prefix.
func TestStickyFsyncAcksThenLosesPreFixShape(t *testing.T) {
	faultRule := diskfault.Rule{PathSuffix: ".wal", Op: diskfault.OpSync, Nth: 2, Err: diskfault.ErrIO}

	t.Run("pre-fix-retry-acks-then-loses", func(t *testing.T) {
		d := diskfault.New(diskfault.Config{Seed: 3})
		d.AddRule(faultRule)
		f, err := d.OpenFile(walPath, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o600)
		if err != nil {
			t.Fatal(err)
		}
		writeLine := func(line string) error {
			if _, err := f.Write([]byte(line + "\n")); err != nil {
				return err
			}
			if err := f.Sync(); err != nil {
				// The anti-pattern: retry and trust the second answer.
				return f.Sync()
			}
			return nil
		}
		if err := writeLine(`entry-1`); err != nil {
			t.Fatal(err)
		}
		// Sync #2 fails, the retry (#3) "succeeds" — caller acks.
		if err := writeLine(`entry-2`); err != nil {
			t.Fatalf("retried fsync should falsely succeed, got %v", err)
		}
		d.Crash()
		g, err := d.OpenFile(walPath, os.O_RDWR, 0)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(g)
		if bytes.Contains(b, []byte("entry-2")) {
			t.Fatal("lost pages survived the crash — diskfault model broken")
		}
		if !bytes.Contains(b, []byte("entry-1")) {
			t.Fatalf("durable prefix missing: %q", b)
		}
		// entry-2 was acked and is gone: the acks-then-loses shape.
	})

	t.Run("fixed-fail-stop-never-acks", func(t *testing.T) {
		d := diskfault.New(diskfault.Config{Seed: 3})
		s, _, _ := bootFS(t, d, wire.CodecJSON)
		if err := s.CreateTable("kv"); err != nil {
			t.Fatal(err)
		}
		putKey(t, s, "acked", "v")
		// The next fsync fails, matching the failing sync above.
		d.AddRule(diskfault.Rule{PathSuffix: ".wal", Op: diskfault.OpSync, Nth: 1, Err: diskfault.ErrIO})
		err := s.Update(func(tx *db.Tx) error { return tx.Put("kv", "doomed", []byte("x")) })
		if !errors.Is(err, db.ErrStorageFailed) {
			t.Fatalf("commit through failed fsync: %v; want ErrStorageFailed", err)
		}
		// No re-Sync "recovery": the store stays refused.
		if err := s.Update(func(tx *db.Tx) error { return tx.Put("kv", "late", []byte("x")) }); !errors.Is(err, db.ErrStorageFailed) {
			t.Fatalf("post-failure commit: %v; want ErrStorageFailed", err)
		}
		d.Crash()
		d.ClearRules()
		s2, _, _ := bootFS(t, d, wire.CodecJSON)
		wantKey(t, s2, "acked", "v")
		wantAbsent(t, s2, "doomed")
	})
}

// --- Checkpoint fallback chain, one test per step (satellite) ---

// Step 1 of the chain is every existing happy-path checkpoint test.

// TestBootFallsBackToPreviousGenerationOnCorruptNewest is step 2:
// newest generation rotted at rest, journal intact since the previous
// generation → boot restores <path>.ckpt.1 and replays the longer tail.
func TestBootFallsBackToPreviousGenerationOnCorruptNewest(t *testing.T) {
	d := diskfault.New(diskfault.Config{Seed: 5})
	s, _, _ := bootFS(t, d, wire.CodecJSON)
	if err := s.CreateTable("kv"); err != nil {
		t.Fatal(err)
	}
	putKey(t, s, "w1", "a")
	if _, err := s.CheckpointFS(d, ckptPath); err != nil { // becomes .1
		t.Fatal(err)
	}
	putKey(t, s, "w2", "b")
	if _, err := s.CheckpointFS(d, ckptPath); err != nil { // gen 0
		t.Fatal(err)
	}
	putKey(t, s, "w3", "c")

	if !d.Corrupt(ckptPath, 40, 0xFF) { // inside the JSON body
		t.Fatal("corrupt missed")
	}
	d.Crash()
	s2, info, _ := bootFS(t, d, wire.CodecJSON)
	if info.Generation != 1 {
		t.Fatalf("booted from generation %d (%s); want 1", info.Generation, info.Path)
	}
	if len(info.Fallbacks) == 0 || !errorStringContains(info.Fallbacks[0], "checkpoint corrupt") {
		t.Fatalf("fallbacks = %v; want corruption recorded", info.Fallbacks)
	}
	wantKey(t, s2, "w1", "a")
	wantKey(t, s2, "w2", "b")
	wantKey(t, s2, "w3", "c")
}

// TestBootFallbackInPreCompactCrashWindow is the same step under the
// exact shape the satellite names: checkpoint B was written and the
// crash landed before the journal was compacted, then B rots. The
// journal still reaches back to generation .1, so boot bridges the gap.
func TestBootFallbackInPreCompactCrashWindow(t *testing.T) {
	d := diskfault.New(diskfault.Config{Seed: 6})
	s, _, j := bootFS(t, d, wire.CodecJSON)
	if err := s.CreateTable("kv"); err != nil {
		t.Fatal(err)
	}
	putKey(t, s, "w1", "a")
	if _, err := s.CheckpointFS(d, ckptPath); err != nil {
		t.Fatal(err)
	}
	if err := j.(db.CompactableJournal).Compact(); err != nil {
		t.Fatal(err)
	}
	putKey(t, s, "w2", "b")
	if _, err := s.CheckpointFS(d, ckptPath); err != nil {
		t.Fatal(err)
	}
	// Crash here — before the post-checkpoint Compact. Then the newest
	// generation rots at rest.
	d.Crash()
	if !d.Corrupt(ckptPath, 40, 0xFF) {
		t.Fatal("corrupt missed")
	}
	s2, info, _ := bootFS(t, d, wire.CodecJSON)
	if info.Generation != 1 {
		t.Fatalf("booted from generation %d; want 1 (fallbacks %v)", info.Generation, info.Fallbacks)
	}
	wantKey(t, s2, "w1", "a")
	wantKey(t, s2, "w2", "b")
}

// TestBootMissingNewestUsesRotatedGeneration is the rotation-crash
// window: the crash hit between "rotate old to .1" and "rename new into
// place", leaving no <path>.ckpt at all. The rotated generation plus
// the journal cover everything.
func TestBootMissingNewestUsesRotatedGeneration(t *testing.T) {
	d := diskfault.New(diskfault.Config{Seed: 7})
	s, _, _ := bootFS(t, d, wire.CodecJSON)
	if err := s.CreateTable("kv"); err != nil {
		t.Fatal(err)
	}
	putKey(t, s, "w1", "a")
	if _, err := s.CheckpointFS(d, ckptPath); err != nil {
		t.Fatal(err)
	}
	putKey(t, s, "w2", "b")
	// Simulate the mid-rotation crash shape directly.
	if err := d.Rename(ckptPath, ckptPath+".1"); err != nil {
		t.Fatal(err)
	}
	if err := d.SyncDir(filepath.Dir(ckptPath)); err != nil {
		t.Fatal(err)
	}
	d.Crash()
	s2, info, _ := bootFS(t, d, wire.CodecJSON)
	if info.Generation != 1 {
		t.Fatalf("booted from generation %d; want 1", info.Generation)
	}
	wantKey(t, s2, "w1", "a")
	wantKey(t, s2, "w2", "b")
}

// TestBootAllGenerationsCorruptFullJournalReplays is step 3: every
// checkpoint generation fails verification, but the journal was never
// compacted — full history replay reconstructs the exact state.
func TestBootAllGenerationsCorruptFullJournalReplays(t *testing.T) {
	d := diskfault.New(diskfault.Config{Seed: 8})
	s, _, _ := bootFS(t, d, wire.CodecJSON)
	if err := s.CreateTable("kv"); err != nil {
		t.Fatal(err)
	}
	putKey(t, s, "w1", "a")
	if _, err := s.CheckpointFS(d, ckptPath); err != nil {
		t.Fatal(err)
	}
	putKey(t, s, "w2", "b")
	if _, err := s.CheckpointFS(d, ckptPath); err != nil {
		t.Fatal(err)
	}
	putKey(t, s, "w3", "c")
	d.Crash()
	for _, p := range []string{ckptPath, ckptPath + ".1"} {
		if !d.Corrupt(p, 40, 0xFF) {
			t.Fatalf("corrupt missed on %s", p)
		}
	}
	s2, info, _ := bootFS(t, d, wire.CodecJSON)
	if info.Generation != -1 {
		t.Fatalf("booted from generation %d; want -1 (plain replay)", info.Generation)
	}
	if len(info.Fallbacks) != 2 {
		t.Fatalf("fallbacks = %v; want both generations recorded", info.Fallbacks)
	}
	wantKey(t, s2, "w1", "a")
	wantKey(t, s2, "w2", "b")
	wantKey(t, s2, "w3", "c")
}

// TestBootRefusesWhenNoIntactHistory is step 4, the honest refusal: the
// newest generation is corrupt and the journal was compacted past the
// older one, so no intact source covers the lost span. Silently booting
// either would roll back acked writes; the store must refuse with the
// typed error instead.
func TestBootRefusesWhenNoIntactHistory(t *testing.T) {
	d := diskfault.New(diskfault.Config{Seed: 9})
	s, _, j := bootFS(t, d, wire.CodecJSON)
	if err := s.CreateTable("kv"); err != nil {
		t.Fatal(err)
	}
	putKey(t, s, "w1", "a")
	if _, err := s.CheckpointFS(d, ckptPath); err != nil {
		t.Fatal(err)
	}
	if err := j.(db.CompactableJournal).Compact(); err != nil {
		t.Fatal(err)
	}
	putKey(t, s, "w2", "b")
	if _, err := s.CheckpointFS(d, ckptPath); err != nil {
		t.Fatal(err)
	}
	if err := j.(db.CompactableJournal).Compact(); err != nil {
		t.Fatal(err)
	}
	// At-rest rot on the only generation that covers w2.
	d.Crash()
	if !d.Corrupt(ckptPath, 40, 0xFF) {
		t.Fatal("corrupt missed")
	}
	jj, err := db.OpenFileJournalCodecFS(d, walPath, true, wire.CodecJSON)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = db.OpenWithCheckpointFS(d, ckptPath, jj)
	if !errors.Is(err, db.ErrNoIntactHistory) {
		t.Fatalf("boot = %v; want ErrNoIntactHistory", err)
	}
	if !errorStringContains(fmt.Sprint(err), "gbadmin fsck") {
		t.Fatalf("refusal should point the operator at fsck: %v", err)
	}
}

// TestCompactDurableAcrossCrash (satellite): the truncation and fresh
// generation marker written by Compact must survive a crash immediately
// after — a resurrected pre-checkpoint tail would read as mid-file
// corruption (bin1) or double-applied history bounds (JSON) on reboot.
func TestCompactDurableAcrossCrash(t *testing.T) {
	for _, codec := range []string{wire.CodecJSON, wire.CodecBin1} {
		t.Run(codec, func(t *testing.T) {
			d := diskfault.New(diskfault.Config{Seed: 10, TornCrash: true})
			s, _, j := bootFS(t, d, codec)
			if err := s.CreateTable("kv"); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 20; i++ {
				putKey(t, s, fmt.Sprintf("k%d", i), "v")
			}
			if _, err := s.CheckpointFS(d, ckptPath); err != nil {
				t.Fatal(err)
			}
			if err := j.(db.CompactableJournal).Compact(); err != nil {
				t.Fatal(err)
			}
			putKey(t, s, "post-compact", "pv")
			d.Crash() // immediately after compact + one committed write
			s2, _, _ := bootFS(t, d, codec)
			for i := 0; i < 20; i++ {
				wantKey(t, s2, fmt.Sprintf("k%d", i), "v")
			}
			wantKey(t, s2, "post-compact", "pv")
		})
	}
}

// TestCheckpointRemovesTmpOnFailure (satellite): a failed publishing
// rename or dir-fsync must not leave <path>.tmp behind.
func TestCheckpointRemovesTmpOnFailure(t *testing.T) {
	for _, fault := range []diskfault.Rule{
		{PathSuffix: ".ckpt.tmp", Op: diskfault.OpRename, Nth: 1, Err: diskfault.ErrIO},
		{PathSuffix: "/data", Op: diskfault.OpSyncDir, Nth: 1, Err: diskfault.ErrIO},
		{PathSuffix: ".ckpt.tmp", Op: diskfault.OpWrite, Nth: 1, Err: diskfault.ErrNoSpace},
		{PathSuffix: ".ckpt.tmp", Op: diskfault.OpSync, Nth: 1, Err: diskfault.ErrIO},
	} {
		t.Run(string(fault.Op), func(t *testing.T) {
			d := diskfault.New(diskfault.Config{Seed: 12})
			s, _, _ := bootFS(t, d, wire.CodecJSON)
			if err := s.CreateTable("kv"); err != nil {
				t.Fatal(err)
			}
			putKey(t, s, "k", "v")
			d.AddRule(fault)
			if _, err := s.CheckpointFS(d, ckptPath); err == nil {
				t.Fatal("checkpoint should fail under injected fault")
			}
			if b := d.Bytes(ckptPath + ".tmp"); b != nil {
				t.Fatalf("stale tmp left behind (%d bytes)", len(b))
			}
		})
	}
}

// TestBootSweepsStaleTmp (satellite): a .tmp stranded by a crash
// between write and rename is swept at open.
func TestBootSweepsStaleTmp(t *testing.T) {
	d := diskfault.New(diskfault.Config{Seed: 13})
	d.SetBytes(ckptPath+".tmp", []byte("half-written garbage"))
	s, _, _ := bootFS(t, d, wire.CodecJSON)
	if err := s.CreateTable("kv"); err != nil {
		t.Fatal(err)
	}
	if b := d.Bytes(ckptPath + ".tmp"); b != nil {
		t.Fatalf("stale tmp not swept (%d bytes)", len(b))
	}
}

// TestRotationQuarantinesCorruptNewest: rotating a checkpoint that
// fails verification must move it to .corrupt, never over a
// possibly-good .1 — clobbering the only intact fallback would turn a
// recoverable fault into data loss.
func TestRotationQuarantinesCorruptNewest(t *testing.T) {
	d := diskfault.New(diskfault.Config{Seed: 14})
	s, _, _ := bootFS(t, d, wire.CodecJSON)
	if err := s.CreateTable("kv"); err != nil {
		t.Fatal(err)
	}
	putKey(t, s, "w1", "a")
	seqA, err := s.CheckpointFS(d, ckptPath)
	if err != nil {
		t.Fatal(err)
	}
	putKey(t, s, "w2", "b")
	if _, err := s.CheckpointFS(d, ckptPath); err != nil { // A → .1
		t.Fatal(err)
	}
	if !d.Corrupt(ckptPath, 40, 0xFF) { // B rots
		t.Fatal("corrupt missed")
	}
	putKey(t, s, "w3", "c")
	if _, err := s.CheckpointFS(d, ckptPath); err != nil { // C; B must quarantine
		t.Fatal(err)
	}
	if d.Bytes(ckptPath+".corrupt") == nil {
		t.Fatal("corrupt generation was not quarantined")
	}
	sn, err := db.ReadSnapshot(bytes.NewReader(d.Bytes(ckptPath + ".1")))
	if err != nil {
		t.Fatalf(".1 no longer readable — corrupt newest clobbered it: %v", err)
	}
	if sn.Seq != seqA {
		t.Fatalf(".1 holds seq %d; want the intact generation A (seq %d)", sn.Seq, seqA)
	}
}

// TestLegacyHeaderlessCheckpointLoads pins seed-era compatibility: a
// raw-JSON checkpoint written before the checksummed format restores,
// reports Legacy, and rotates like any intact generation.
func TestLegacyHeaderlessCheckpointLoads(t *testing.T) {
	d := diskfault.New(diskfault.Config{Seed: 15})
	s, _, _ := bootFS(t, d, wire.CodecJSON)
	if err := s.CreateTable("kv"); err != nil {
		t.Fatal(err)
	}
	putKey(t, s, "w1", "a")
	sn, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	var legacy bytes.Buffer
	if _, err := sn.WriteTo(&legacy); err != nil { // plain JSON: the seed format
		t.Fatal(err)
	}
	d.SetBytes(ckptPath, legacy.Bytes())
	putKey(t, s, "w2", "b")
	d.Crash()

	s2, info, _ := bootFS(t, d, wire.CodecJSON)
	if info.Generation != 0 || !info.Legacy {
		t.Fatalf("BootInfo = %+v; want legacy generation 0", info)
	}
	wantKey(t, s2, "w1", "a")
	wantKey(t, s2, "w2", "b")

	// A new checkpoint rotates the legacy file as an intact generation.
	if _, err := s2.CheckpointFS(d, ckptPath); err != nil {
		t.Fatal(err)
	}
	if _, err := db.ReadSnapshot(bytes.NewReader(d.Bytes(ckptPath + ".1"))); err != nil {
		t.Fatalf("rotated legacy generation unreadable: %v", err)
	}
}

// TestLegacyCheckpointOnRealFilesystem runs the legacy pin on the OS
// filesystem through the seed-signature entry points, proving a
// seed-era data dir opens unmodified.
func TestLegacyCheckpointOnRealFilesystem(t *testing.T) {
	dir := t.TempDir()
	wal, ckpt := filepath.Join(dir, "ledger.wal"), filepath.Join(dir, "ledger.ckpt")
	j, err := db.OpenFileJournal(wal, false)
	if err != nil {
		t.Fatal(err)
	}
	s, err := db.Open(j)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CreateTable("kv"); err != nil {
		t.Fatal(err)
	}
	putKey(t, s, "w1", "a")
	sn, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	var legacy bytes.Buffer
	if _, err := sn.WriteTo(&legacy); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(ckpt, legacy.Bytes(), 0o600); err != nil {
		t.Fatal(err)
	}
	putKey(t, s, "w2", "b")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := db.OpenFileJournal(wal, false)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := db.OpenWithCheckpoint(ckpt, j2)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	wantKey(t, s2, "w1", "a")
	wantKey(t, s2, "w2", "b")
}

func errorStringContains(s, sub string) bool { return bytes.Contains([]byte(s), []byte(sub)) }
