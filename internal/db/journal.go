package db

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// Op is a journal operation kind.
type Op string

// Journal operations.
const (
	OpCreateTable Op = "mktable"
	OpPut         Op = "put"
	OpDelete      Op = "del"
)

// Entry is one write-ahead journal record.
type Entry struct {
	Seq   uint64 `json:"seq"`
	Op    Op     `json:"op"`
	Table string `json:"table"`
	Key   string `json:"key,omitempty"`
	Value []byte `json:"value,omitempty"`
}

// Journal is the durability interface of the store. AppendBatch must be
// atomic: on replay either every entry of the batch is seen or none
// (torn batches at the journal tail are discarded, matching the
// crash-before-commit semantics of the transaction layer).
type Journal interface {
	Append(Entry) error
	AppendBatch([]Entry) error
	Replay(apply func(Entry) error) error
	Close() error
}

// fileJournal is a newline-delimited JSON journal. Each line is a batch:
// a JSON array of entries. A batch line that fails to parse (torn write
// at crash) terminates replay cleanly.
type fileJournal struct {
	mu   sync.Mutex
	path string
	f    *os.File
	w    *bufio.Writer
	sync bool
}

// OpenFileJournal opens (creating if needed) a journal file. If syncEach
// is true every batch is fsynced — durable against power loss, slower;
// GridBank servers want true, simulations want false.
func OpenFileJournal(path string, syncEach bool) (Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o600)
	if err != nil {
		return nil, fmt.Errorf("db: open journal: %w", err)
	}
	return &fileJournal{path: path, f: f, w: bufio.NewWriter(f), sync: syncEach}, nil
}

func (j *fileJournal) Append(e Entry) error { return j.AppendBatch([]Entry{e}) }

func (j *fileJournal) AppendBatch(entries []Entry) error {
	if len(entries) == 0 {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return ErrClosed
	}
	b, err := json.Marshal(entries)
	if err != nil {
		return err
	}
	if _, err := j.w.Write(b); err != nil {
		return err
	}
	if err := j.w.WriteByte('\n'); err != nil {
		return err
	}
	if err := j.w.Flush(); err != nil {
		return err
	}
	if j.sync {
		if err := j.f.Sync(); err != nil {
			return err
		}
	}
	return nil
}

func (j *fileJournal) Replay(apply func(Entry) error) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return ErrClosed
	}
	if _, err := j.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	sc := bufio.NewScanner(j.f)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var batch []Entry
		if err := json.Unmarshal(line, &batch); err != nil {
			// Torn tail from a crash mid-append: everything before this
			// line is a consistent prefix; stop here.
			break
		}
		for _, e := range batch {
			if err := apply(e); err != nil {
				return err
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if _, err := j.f.Seek(0, io.SeekEnd); err != nil {
		return err
	}
	return nil
}

func (j *fileJournal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err1 := j.w.Flush()
	err2 := j.f.Close()
	j.f = nil
	if err1 != nil {
		return err1
	}
	return err2
}

// memJournal is an in-memory journal, used by tests to exercise the
// replay path and crash simulations without touching disk.
type memJournal struct {
	mu      sync.Mutex
	batches [][]Entry
	failAt  int // if >0, AppendBatch fails once the batch count reaches it
	closed  bool
}

// NewMemJournal returns an in-memory journal.
func NewMemJournal() Journal { return &memJournal{failAt: -1} }

// NewFailingMemJournal returns a journal whose AppendBatch starts failing
// after n successful batches — for fault-injection tests of commit
// atomicity.
func NewFailingMemJournal(n int) Journal { return &memJournal{failAt: n} }

func (j *memJournal) Append(e Entry) error { return j.AppendBatch([]Entry{e}) }

func (j *memJournal) AppendBatch(entries []Entry) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	if j.failAt >= 0 && len(j.batches) >= j.failAt {
		return errors.New("db: injected journal failure")
	}
	cp := make([]Entry, len(entries))
	copy(cp, entries)
	j.batches = append(j.batches, cp)
	return nil
}

func (j *memJournal) Replay(apply func(Entry) error) error {
	j.mu.Lock()
	batches := j.batches
	j.mu.Unlock()
	for _, b := range batches {
		for _, e := range b {
			if err := apply(e); err != nil {
				return err
			}
		}
	}
	return nil
}

func (j *memJournal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.closed = true
	return nil
}
