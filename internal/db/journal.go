package db

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"gridbank/internal/obs"
	"gridbank/internal/wire"
)

// Op is a journal operation kind.
type Op string

// Journal operations.
const (
	OpCreateTable Op = "mktable"
	OpPut         Op = "put"
	OpDelete      Op = "del"
)

// Entry is one write-ahead journal record.
type Entry struct {
	Seq   uint64 `json:"seq"`
	Op    Op     `json:"op"`
	Table string `json:"table"`
	Key   string `json:"key,omitempty"`
	Value []byte `json:"value,omitempty"`
}

// ErrStorageFailed is the typed fail-stop error: a journal flush or
// fsync failed, so the durable medium can no longer be trusted to hold
// what the store acked (the kernel may already have dropped the dirty
// pages — retrying the fsync can falsely succeed, the classic
// fsyncgate failure). Every error produced by a poisoned journal or
// store matches errors.Is(err, ErrStorageFailed); core maps it to the
// wire code "unavailable" so callers see refusal, not silent loss. The
// only recovery is a process restart that replays the journal — the
// acked prefix — from disk.
var ErrStorageFailed = errors.New("db: storage failed")

// Journal is the durability interface of the store. AppendBatch must be
// atomic: on replay either every entry of the batch is seen or none
// (torn batches at the journal tail are discarded, matching the
// crash-before-commit semantics of the transaction layer).
type Journal interface {
	Append(Entry) error
	AppendBatch([]Entry) error
	Replay(apply func(Entry) error) error
	Close() error
}

// CompactableJournal is an optional Journal extension: Compact discards
// the journal's contents. Only safe when every entry is durably covered
// elsewhere — i.e. immediately after a successful Store.Checkpoint,
// before new writes land (gridbankd does this at startup, while
// quiescent). A crash between checkpoint and Compact is harmless:
// recovery skips the journal's pre-checkpoint entries by sequence.
type CompactableJournal interface {
	Journal
	Compact() error
}

// GroupJournal is an optional Journal extension for group commit. Stage
// enqueues a batch without doing I/O and returns a wait function; wait
// blocks until the batch is durable (or the journal fails) and returns
// the outcome. Staging fixes the batch's position in the journal, so a
// caller may apply the batch's effects to memory between Stage and wait
// — later committers that observe those effects necessarily stage after
// it and therefore land after it on disk.
type GroupJournal interface {
	Journal
	Stage(entries []Entry) (wait func() error, err error)
}

// encBuf pairs a reusable buffer with a JSON encoder bound to it, so
// batch encoding allocates nothing beyond the final line copy.
type encBuf struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var encBufPool = sync.Pool{New: func() any {
	e := &encBuf{}
	e.enc = json.NewEncoder(&e.buf)
	return e
}}

// ticket tracks one staged batch through a group flush.
type ticket struct {
	e    *encBuf
	done bool
	err  error
}

// Binary journal generation format. A journal file's codec is fixed
// per generation and announced by a marker at the start of the file:
// files opening with binJournalMagic are bin1 generations, anything
// else (including the seed's marker-less files) is JSON. The marker's
// first byte is non-ASCII and can never open a JSON array, so Replay
// auto-detects the generation and an existing file's format always
// wins over the codec the journal was opened with.
//
// A bin1 generation is the 8-byte marker followed by records:
//
//	0xBE len:u32 crc:u32 payload
//
// where payload is the shared binary entry-batch encoding (see
// bincodec.go) and crc is CRC-32 (IEEE) of the payload. The CRC gives
// the binary generation the same tear-vs-corruption discrimination
// newlines give the JSON one.
const (
	binJournalMagic  = "\xb3GBWAL1\n"
	binRecordMagic   = 0xBE
	binRecordHdrLen  = 9        // magic u8 + len u32 + crc u32
	maxJournalRecord = 64 << 20 // matches the JSON scanner's max line
)

// fileJournal is a write-ahead journal file in one of two generations:
// newline-delimited JSON (the seed format — each line a batch: a JSON
// array of entries) or the bin1 record format above. In both, a batch
// that fails to parse (torn write at crash) terminates replay cleanly.
//
// Concurrent appends group-commit: each committer encodes its batch
// outside the lock and stages it; the first waiter becomes the leader
// and writes+fsyncs every staged batch in one pass, while followers
// block on their ticket. A follower's wait is bounded by one in-flight
// flush cycle — the next leader picks its batch up as soon as the
// current flush finishes. N concurrent committers therefore share one
// fsync instead of queueing N.
type fileJournal struct {
	mu      sync.Mutex
	flushed sync.Cond // signaled after each flush completes and on close
	fsys    FS
	path    string
	f       File
	w       *bufio.Writer
	sync    bool
	staged  []*ticket
	leading bool        // a leader is currently writing outside mu
	err     error       // sticky flush failure: once durability order is broken, fail stop
	bin     atomic.Bool // current generation is bin1 (atomic: Stage encodes outside mu)
	binNext bool        // codec requested at open; adopted when a fresh generation starts (Compact)

	// Group-commit telemetry (nil no-ops until setObs).
	mFsync    *obs.Histogram // fsync latency per group flush
	mBatch    *obs.Histogram // staged batches coalesced per flush
	mBytes    *obs.Counter   // journal bytes written
	mFsyncErr *obs.Counter   // flush/fsync failures (each one poisons the journal)
}

// setObs resolves the journal's instruments. Wiring-time only, via
// Store.SetObs.
func (j *fileJournal) setObs(reg *obs.Registry) {
	j.mFsync = reg.Histogram("db.fsync")
	j.mBatch = reg.Histogram("db.commit_batch")
	j.mBytes = reg.Counter("db.journal_bytes")
	j.mFsyncErr = reg.Counter("db.fsync_errors")
}

// OpenFileJournal opens (creating if needed) a journal file in the
// seed JSON codec. If syncEach is true every flush is fsynced — durable
// against power loss, slower; GridBank servers want true, simulations
// want false.
func OpenFileJournal(path string, syncEach bool) (Journal, error) {
	return OpenFileJournalCodec(path, syncEach, wire.CodecJSON)
}

// OpenFileJournalCodec opens (creating if needed) a journal file,
// starting new generations in the given codec ("json" or "bin1"). An
// existing non-empty file keeps its own generation's codec regardless
// of the request — a JSON data dir opens unchanged under a
// binary-default build, and vice versa. The codec takes effect for a
// file only when it is empty: at creation, or after Compact.
func OpenFileJournalCodec(path string, syncEach bool, codec string) (Journal, error) {
	return OpenFileJournalCodecFS(OSFS(), path, syncEach, codec)
}

// OpenFileJournalCodecFS is OpenFileJournalCodec over an explicit
// filesystem — the seam the diskfault package injects faults through.
func OpenFileJournalCodecFS(fsys FS, path string, syncEach bool, codec string) (Journal, error) {
	var wantBin bool
	switch codec {
	case wire.CodecJSON:
	case wire.CodecBin1:
		wantBin = true
	default:
		return nil, fmt.Errorf("db: unknown journal codec %q", codec)
	}
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o600)
	if err != nil {
		return nil, fmt.Errorf("db: open journal: %w", err)
	}
	j := &fileJournal{fsys: fsys, path: path, f: f, w: bufio.NewWriter(f), sync: syncEach}
	j.flushed.L = &j.mu
	j.binNext = wantBin
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("db: stat journal: %w", err)
	}
	if st.Size() > 0 {
		// Existing generation wins: sniff the marker's first byte.
		// Replay validates the full marker (and repairs a torn one).
		var first [1]byte
		if _, err := f.ReadAt(first[:], 0); err != nil {
			f.Close()
			return nil, fmt.Errorf("db: sniff journal codec: %w", err)
		}
		j.bin.Store(first[0] == binJournalMagic[0])
	} else if wantBin {
		if err := j.writeGenerationMarker(); err != nil {
			f.Close()
			return nil, err
		}
	}
	return j, nil
}

// writeGenerationMarker starts a bin1 generation on an (empty) file.
// The file is O_APPEND, so a plain Write lands at the new end.
func (j *fileJournal) writeGenerationMarker() error {
	if _, err := j.f.Write([]byte(binJournalMagic)); err != nil {
		return fmt.Errorf("db: write journal codec marker: %w", err)
	}
	if j.sync {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("db: sync journal codec marker: %w", err)
		}
	}
	j.bin.Store(true)
	return nil
}

func (j *fileJournal) Append(e Entry) error { return j.AppendBatch([]Entry{e}) }

func (j *fileJournal) AppendBatch(entries []Entry) error {
	wait, err := j.Stage(entries)
	if err != nil {
		return err
	}
	return wait()
}

var waitNoop = func() error { return nil }

// Stage implements GroupJournal: encode outside the lock, enqueue, and
// hand back a wait that drives (or joins) the group flush.
func (j *fileJournal) Stage(entries []Entry) (func() error, error) {
	if len(entries) == 0 {
		return waitNoop, nil
	}
	e := encBufPool.Get().(*encBuf)
	e.buf.Reset()
	var encErr error
	if j.bin.Load() {
		encErr = appendBinRecord(&e.buf, entries)
	} else {
		encErr = e.enc.Encode(entries)
	}
	if encErr != nil {
		encBufPool.Put(e)
		return nil, encErr
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		encBufPool.Put(e)
		return nil, ErrClosed
	}
	if j.err != nil {
		encBufPool.Put(e)
		return nil, j.err
	}
	t := &ticket{e: e}
	j.staged = append(j.staged, t)
	return func() error { return j.wait(t) }, nil
}

// wait blocks until t's batch is durable. The first waiter whose batch
// is still pending becomes the leader and flushes the whole group.
func (j *fileJournal) wait(t *ticket) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	for !t.done {
		if j.leading {
			j.flushed.Wait()
			continue
		}
		j.flushGroupLocked()
	}
	return t.err
}

// flushGroupLocked takes the staged batches and writes+fsyncs them as
// one group. Called with j.mu held; releases it during I/O.
func (j *fileJournal) flushGroupLocked() {
	group := j.staged
	j.staged = nil
	j.leading = true
	f, w, syncEach := j.f, j.w, j.sync
	j.mu.Unlock()

	var err error
	if f == nil {
		err = ErrClosed
	}
	var bytesOut int64
	for _, t := range group {
		if err == nil {
			_, err = w.Write(t.e.buf.Bytes())
			bytesOut += int64(t.e.buf.Len())
		}
	}
	if err == nil {
		err = w.Flush()
	}
	if err == nil && syncEach {
		syncStart := time.Now()
		err = f.Sync()
		j.mFsync.ObserveDuration(time.Since(syncStart))
	}
	j.mBatch.Observe(int64(len(group)))
	if err == nil {
		j.mBytes.Add(bytesOut)
	} else if err != ErrClosed {
		// Fail-stop: a failed write/flush/fsync means the kernel may
		// already have dropped the batch's dirty pages, so a retried
		// Sync could report success for data that never reached disk
		// (fsyncgate). Every ticket in the group — and every later
		// caller, via the sticky error — gets the typed refusal; the fd
		// is never re-Synced to "recover".
		j.mFsyncErr.Inc()
		err = fmt.Errorf("db: journal flush failed: %w: %w", ErrStorageFailed, err)
	}

	j.mu.Lock()
	for _, t := range group {
		t.done = true
		t.err = err
		encBufPool.Put(t.e)
		t.e = nil
	}
	if err != nil && j.err == nil {
		j.err = err
	}
	j.leading = false
	j.flushed.Broadcast()
}

// appendBinRecord encodes one staged batch as a bin1 journal record
// into buf (which Stage has Reset, so the record starts at offset 0):
// header placeholder first, payload appended in place, then the length
// and CRC patched in.
func appendBinRecord(buf *bytes.Buffer, entries []Entry) error {
	buf.Write([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0}) // binRecordHdrLen placeholder
	if err := AppendEntriesBinary(buf, entries); err != nil {
		return err
	}
	b := buf.Bytes()
	payload := b[binRecordHdrLen:]
	if len(payload) > maxJournalRecord {
		return fmt.Errorf("db: %d-byte journal record exceeds maximum", len(payload))
	}
	b[0] = binRecordMagic
	binary.BigEndian.PutUint32(b[1:5], uint32(len(payload)))
	binary.BigEndian.PutUint32(b[5:9], crc32.ChecksumIEEE(payload))
	return nil
}

func (j *fileJournal) Replay(apply func(Entry) error) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	for j.leading {
		j.flushed.Wait()
	}
	if j.f == nil {
		return ErrClosed
	}
	if j.err != nil {
		// A poisoned journal's file position and contents are unknown
		// territory; only a fresh open (new process) may replay it.
		return j.err
	}
	if _, err := j.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	// Sniff the generation marker: the file's format wins over the
	// codec the journal was opened with, so mixed data dirs replay
	// correctly under any build default.
	var first [1]byte
	if n, err := j.f.ReadAt(first[:], 0); err != nil && err != io.EOF {
		return err
	} else if n == 1 {
		j.bin.Store(first[0] == binJournalMagic[0])
	}
	if j.bin.Load() {
		return j.replayBinary(apply)
	}
	sc := bufio.NewScanner(j.f)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20)
	var good int64 // bytes consumed through the last intact batch line
	torn := false
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			good++
			continue
		}
		var batch []Entry
		if err := json.Unmarshal(line, &batch); err != nil {
			// Torn tail from a crash mid-append: everything before this
			// line is a consistent prefix; stop here.
			torn = true
			break
		}
		for _, e := range batch {
			if err := apply(e); err != nil {
				return err
			}
		}
		// +1 for the newline Scan consumed. A final line missing its
		// newline can only be the torn tail, never a counted one.
		good += int64(len(line)) + 1
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if torn {
		if sc.Scan() {
			// Valid-looking lines follow the bad one: this is mid-file
			// corruption, not a crash tear (a tear is by construction
			// the last line). Truncating would destroy intact, possibly
			// fsynced-and-acked batches — refuse to open instead of
			// silently dropping them.
			return fmt.Errorf("db: journal corrupted mid-file at byte %d (intact data follows); manual repair required", good)
		}
		// Truncate the torn tail away: appends land after whatever the
		// file ends in, so leaving the junk line in place would bury
		// every future (fsynced, acked) batch behind it — the next
		// replay would stop at the tear and silently drop them.
		if err := j.f.Truncate(good); err != nil {
			return fmt.Errorf("db: truncating torn journal tail: %w", err)
		}
	}
	if _, err := j.f.Seek(0, io.SeekEnd); err != nil {
		return err
	}
	return nil
}

// replayBinary replays a bin1 generation. Tear-vs-corruption semantics
// mirror the JSON path: a record the crash tore off the tail (short
// header, short payload, implausible length) is truncated away, while a
// CRC or decode failure on a fully-present record is only a tear if
// nothing valid follows — when it is followed by an intact record the
// file is corrupted mid-stream and replay refuses, exactly like a bad
// JSON line with good lines after it. (A mangled record header makes
// the following length untrustworthy, so look-ahead is only possible
// when the bad record's own length was readable.)
func (j *fileJournal) replayBinary(apply func(Entry) error) error {
	br := bufio.NewReaderSize(j.f, 1<<20)
	marker := make([]byte, len(binJournalMagic))
	if _, err := io.ReadFull(br, marker); err != nil || string(marker) != binJournalMagic {
		// Torn generation marker: the file died at creation, before any
		// record could have been acked. Restart the generation.
		return j.resetBinaryGeneration()
	}
	good := int64(len(binJournalMagic)) // bytes consumed through the last intact record
	var payload []byte
	for {
		var hdr [binRecordHdrLen]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF {
				break // clean end of journal
			}
			return j.truncateTornTail(good) // header torn mid-write
		}
		n := binary.BigEndian.Uint32(hdr[1:5])
		if hdr[0] != binRecordMagic || n == 0 || n > maxJournalRecord {
			return j.truncateTornTail(good)
		}
		if cap(payload) < int(n) {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(br, payload); err != nil {
			return j.truncateTornTail(good) // payload torn mid-write
		}
		var entries []Entry
		if crc32.ChecksumIEEE(payload) != binary.BigEndian.Uint32(hdr[5:9]) {
			entries = nil
		} else if dec, err := DecodeEntriesBinary(payload); err == nil {
			entries = dec
		}
		if entries == nil {
			if nextBinRecordIntact(br) {
				return fmt.Errorf("db: journal corrupted mid-file at byte %d (intact data follows); manual repair required", good)
			}
			return j.truncateTornTail(good)
		}
		for _, e := range entries {
			if err := apply(e); err != nil {
				return err
			}
		}
		good += binRecordHdrLen + int64(n)
	}
	_, err := j.f.Seek(0, io.SeekEnd)
	return err
}

// nextBinRecordIntact reports whether one complete, CRC-clean record
// can be read next — the binary generation's "intact data follows"
// probe. It may consume from br freely: both outcomes abort the replay
// scan.
func nextBinRecordIntact(br *bufio.Reader) bool {
	var hdr [binRecordHdrLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return false
	}
	n := binary.BigEndian.Uint32(hdr[1:5])
	if hdr[0] != binRecordMagic || n == 0 || n > maxJournalRecord {
		return false
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(br, payload); err != nil {
		return false
	}
	return crc32.ChecksumIEEE(payload) == binary.BigEndian.Uint32(hdr[5:9])
}

// truncateTornTail discards a torn journal tail: appends land after
// whatever the file ends in, so leaving the junk in place would bury
// every future (fsynced, acked) batch behind it — the next replay
// would stop at the tear and silently drop them.
func (j *fileJournal) truncateTornTail(good int64) error {
	if err := j.f.Truncate(good); err != nil {
		return fmt.Errorf("db: truncating torn journal tail: %w", err)
	}
	_, err := j.f.Seek(0, io.SeekEnd)
	return err
}

// resetBinaryGeneration rewrites a bin1 file whose generation marker
// itself was torn (a crash inside OpenFileJournalCodec's first write).
func (j *fileJournal) resetBinaryGeneration() error {
	if err := j.f.Truncate(0); err != nil {
		return fmt.Errorf("db: resetting torn journal marker: %w", err)
	}
	if err := j.writeGenerationMarker(); err != nil {
		return err
	}
	_, err := j.f.Seek(0, io.SeekEnd)
	return err
}

// Compact implements CompactableJournal by truncating the file. The
// fresh generation adopts the codec the journal was opened with
// (writing its marker if bin1) — this is how a data dir migrates
// between codecs: checkpoint, then compact under the new default.
//
// Durability: in sync mode the truncation (and the fresh generation
// marker) is fsynced before Compact returns. The truncate is inode
// metadata — without the fsync a power loss immediately after could
// resurrect pre-checkpoint journal content at the old length, and a
// resurrected partial tail behind a fresh generation marker would read
// as mid-file corruption on the next boot.
func (j *fileJournal) Compact() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	for j.leading {
		j.flushed.Wait()
	}
	if j.f == nil {
		return ErrClosed
	}
	if j.err != nil {
		// Never truncate through a poisoned journal: the file is the
		// only surviving copy of the acked prefix.
		return j.err
	}
	if len(j.staged) > 0 {
		return errors.New("db: compact with staged batches pending")
	}
	if err := j.w.Flush(); err != nil {
		return err
	}
	if err := j.f.Truncate(0); err != nil {
		return err
	}
	if _, err := j.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	j.bin.Store(false)
	if j.binNext {
		// writeGenerationMarker syncs the marker itself in sync mode.
		return j.writeGenerationMarker()
	}
	if j.sync {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("db: sync compacted journal: %w", err)
		}
	}
	return nil
}

func (j *fileJournal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	for j.leading {
		j.flushed.Wait()
	}
	if j.f == nil {
		return nil
	}
	if j.err != nil {
		// Poisoned: do NOT flush buffered bytes on the way out. The
		// batches behind them were never acked, and pushing them at the
		// file now could make a later replay see writes the store
		// reported failed. Staged-but-unflushed tickets fail with the
		// sticky error so their waiters unblock.
		for _, t := range j.staged {
			t.done = true
			t.err = j.err
			encBufPool.Put(t.e)
			t.e = nil
		}
		j.staged = nil
		err := j.f.Close()
		j.f = nil
		j.flushed.Broadcast()
		return err
	}
	// Flush anything staged but not yet waited on.
	for len(j.staged) > 0 {
		j.flushGroupLocked()
	}
	err1 := j.w.Flush()
	err2 := j.f.Close()
	j.f = nil
	j.flushed.Broadcast()
	if err1 != nil {
		return err1
	}
	return err2
}

// memJournal is an in-memory journal, used by tests to exercise the
// replay path and crash simulations without touching disk.
type memJournal struct {
	mu      sync.Mutex
	batches [][]Entry
	failAt  int // if >0, AppendBatch fails once the batch count reaches it
	closed  bool
}

// NewMemJournal returns an in-memory journal.
func NewMemJournal() Journal { return &memJournal{failAt: -1} }

// NewFailingMemJournal returns a journal whose AppendBatch starts failing
// after n successful batches — for fault-injection tests of commit
// atomicity.
func NewFailingMemJournal(n int) Journal { return &memJournal{failAt: n} }

func (j *memJournal) Append(e Entry) error { return j.AppendBatch([]Entry{e}) }

func (j *memJournal) AppendBatch(entries []Entry) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	if j.failAt >= 0 && len(j.batches) >= j.failAt {
		return errors.New("db: injected journal failure")
	}
	cp := make([]Entry, len(entries))
	copy(cp, entries)
	j.batches = append(j.batches, cp)
	return nil
}

// Stage implements GroupJournal: the batch's position is fixed (and,
// memory being the medium, already "durable") at stage time, so wait
// returns immediately. Giving the in-memory journal Stage parity with
// fileJournal keeps volatile benchmarks and replica tests on the exact
// commit code path durable stores use — including the clean-abort
// semantics of a stage-time failure.
func (j *memJournal) Stage(entries []Entry) (func() error, error) {
	if err := j.AppendBatch(entries); err != nil {
		return nil, err
	}
	return waitNoop, nil
}

func (j *memJournal) Replay(apply func(Entry) error) error {
	j.mu.Lock()
	batches := j.batches
	j.mu.Unlock()
	for _, b := range batches {
		for _, e := range b {
			if err := apply(e); err != nil {
				return err
			}
		}
	}
	return nil
}

func (j *memJournal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.closed = true
	return nil
}
