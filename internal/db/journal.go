package db

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"gridbank/internal/obs"
)

// Op is a journal operation kind.
type Op string

// Journal operations.
const (
	OpCreateTable Op = "mktable"
	OpPut         Op = "put"
	OpDelete      Op = "del"
)

// Entry is one write-ahead journal record.
type Entry struct {
	Seq   uint64 `json:"seq"`
	Op    Op     `json:"op"`
	Table string `json:"table"`
	Key   string `json:"key,omitempty"`
	Value []byte `json:"value,omitempty"`
}

// Journal is the durability interface of the store. AppendBatch must be
// atomic: on replay either every entry of the batch is seen or none
// (torn batches at the journal tail are discarded, matching the
// crash-before-commit semantics of the transaction layer).
type Journal interface {
	Append(Entry) error
	AppendBatch([]Entry) error
	Replay(apply func(Entry) error) error
	Close() error
}

// CompactableJournal is an optional Journal extension: Compact discards
// the journal's contents. Only safe when every entry is durably covered
// elsewhere — i.e. immediately after a successful Store.Checkpoint,
// before new writes land (gridbankd does this at startup, while
// quiescent). A crash between checkpoint and Compact is harmless:
// recovery skips the journal's pre-checkpoint entries by sequence.
type CompactableJournal interface {
	Journal
	Compact() error
}

// GroupJournal is an optional Journal extension for group commit. Stage
// enqueues a batch without doing I/O and returns a wait function; wait
// blocks until the batch is durable (or the journal fails) and returns
// the outcome. Staging fixes the batch's position in the journal, so a
// caller may apply the batch's effects to memory between Stage and wait
// — later committers that observe those effects necessarily stage after
// it and therefore land after it on disk.
type GroupJournal interface {
	Journal
	Stage(entries []Entry) (wait func() error, err error)
}

// encBuf pairs a reusable buffer with a JSON encoder bound to it, so
// batch encoding allocates nothing beyond the final line copy.
type encBuf struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var encBufPool = sync.Pool{New: func() any {
	e := &encBuf{}
	e.enc = json.NewEncoder(&e.buf)
	return e
}}

// ticket tracks one staged batch through a group flush.
type ticket struct {
	e    *encBuf
	done bool
	err  error
}

// fileJournal is a newline-delimited JSON journal. Each line is a batch:
// a JSON array of entries. A batch line that fails to parse (torn write
// at crash) terminates replay cleanly.
//
// Concurrent appends group-commit: each committer encodes its batch
// outside the lock and stages it; the first waiter becomes the leader
// and writes+fsyncs every staged batch in one pass, while followers
// block on their ticket. A follower's wait is bounded by one in-flight
// flush cycle — the next leader picks its batch up as soon as the
// current flush finishes. N concurrent committers therefore share one
// fsync instead of queueing N.
type fileJournal struct {
	mu      sync.Mutex
	flushed sync.Cond // signaled after each flush completes and on close
	path    string
	f       *os.File
	w       *bufio.Writer
	sync    bool
	staged  []*ticket
	leading bool  // a leader is currently writing outside mu
	err     error // sticky flush failure: once durability order is broken, fail stop

	// Group-commit telemetry (nil no-ops until setObs).
	mFsync *obs.Histogram // fsync latency per group flush
	mBatch *obs.Histogram // staged batches coalesced per flush
	mBytes *obs.Counter   // journal bytes written
}

// setObs resolves the journal's instruments. Wiring-time only, via
// Store.SetObs.
func (j *fileJournal) setObs(reg *obs.Registry) {
	j.mFsync = reg.Histogram("db.fsync")
	j.mBatch = reg.Histogram("db.commit_batch")
	j.mBytes = reg.Counter("db.journal_bytes")
}

// OpenFileJournal opens (creating if needed) a journal file. If syncEach
// is true every flush is fsynced — durable against power loss, slower;
// GridBank servers want true, simulations want false.
func OpenFileJournal(path string, syncEach bool) (Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o600)
	if err != nil {
		return nil, fmt.Errorf("db: open journal: %w", err)
	}
	j := &fileJournal{path: path, f: f, w: bufio.NewWriter(f), sync: syncEach}
	j.flushed.L = &j.mu
	return j, nil
}

func (j *fileJournal) Append(e Entry) error { return j.AppendBatch([]Entry{e}) }

func (j *fileJournal) AppendBatch(entries []Entry) error {
	wait, err := j.Stage(entries)
	if err != nil {
		return err
	}
	return wait()
}

var waitNoop = func() error { return nil }

// Stage implements GroupJournal: encode outside the lock, enqueue, and
// hand back a wait that drives (or joins) the group flush.
func (j *fileJournal) Stage(entries []Entry) (func() error, error) {
	if len(entries) == 0 {
		return waitNoop, nil
	}
	e := encBufPool.Get().(*encBuf)
	e.buf.Reset()
	if err := e.enc.Encode(entries); err != nil {
		encBufPool.Put(e)
		return nil, err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		encBufPool.Put(e)
		return nil, ErrClosed
	}
	if j.err != nil {
		encBufPool.Put(e)
		return nil, j.err
	}
	t := &ticket{e: e}
	j.staged = append(j.staged, t)
	return func() error { return j.wait(t) }, nil
}

// wait blocks until t's batch is durable. The first waiter whose batch
// is still pending becomes the leader and flushes the whole group.
func (j *fileJournal) wait(t *ticket) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	for !t.done {
		if j.leading {
			j.flushed.Wait()
			continue
		}
		j.flushGroupLocked()
	}
	return t.err
}

// flushGroupLocked takes the staged batches and writes+fsyncs them as
// one group. Called with j.mu held; releases it during I/O.
func (j *fileJournal) flushGroupLocked() {
	group := j.staged
	j.staged = nil
	j.leading = true
	f, w, syncEach := j.f, j.w, j.sync
	j.mu.Unlock()

	var err error
	if f == nil {
		err = ErrClosed
	}
	var bytesOut int64
	for _, t := range group {
		if err == nil {
			_, err = w.Write(t.e.buf.Bytes())
			bytesOut += int64(t.e.buf.Len())
		}
	}
	if err == nil {
		err = w.Flush()
	}
	if err == nil && syncEach {
		syncStart := time.Now()
		err = f.Sync()
		j.mFsync.ObserveDuration(time.Since(syncStart))
	}
	j.mBatch.Observe(int64(len(group)))
	if err == nil {
		j.mBytes.Add(bytesOut)
	}

	j.mu.Lock()
	for _, t := range group {
		t.done = true
		t.err = err
		encBufPool.Put(t.e)
		t.e = nil
	}
	if err != nil && j.err == nil {
		j.err = err
	}
	j.leading = false
	j.flushed.Broadcast()
}

func (j *fileJournal) Replay(apply func(Entry) error) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	for j.leading {
		j.flushed.Wait()
	}
	if j.f == nil {
		return ErrClosed
	}
	if _, err := j.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	sc := bufio.NewScanner(j.f)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20)
	var good int64 // bytes consumed through the last intact batch line
	torn := false
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			good++
			continue
		}
		var batch []Entry
		if err := json.Unmarshal(line, &batch); err != nil {
			// Torn tail from a crash mid-append: everything before this
			// line is a consistent prefix; stop here.
			torn = true
			break
		}
		for _, e := range batch {
			if err := apply(e); err != nil {
				return err
			}
		}
		// +1 for the newline Scan consumed. A final line missing its
		// newline can only be the torn tail, never a counted one.
		good += int64(len(line)) + 1
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if torn {
		if sc.Scan() {
			// Valid-looking lines follow the bad one: this is mid-file
			// corruption, not a crash tear (a tear is by construction
			// the last line). Truncating would destroy intact, possibly
			// fsynced-and-acked batches — refuse to open instead of
			// silently dropping them.
			return fmt.Errorf("db: journal corrupted mid-file at byte %d (intact data follows); manual repair required", good)
		}
		// Truncate the torn tail away: appends land after whatever the
		// file ends in, so leaving the junk line in place would bury
		// every future (fsynced, acked) batch behind it — the next
		// replay would stop at the tear and silently drop them.
		if err := j.f.Truncate(good); err != nil {
			return fmt.Errorf("db: truncating torn journal tail: %w", err)
		}
	}
	if _, err := j.f.Seek(0, io.SeekEnd); err != nil {
		return err
	}
	return nil
}

// Compact implements CompactableJournal by truncating the file.
func (j *fileJournal) Compact() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	for j.leading {
		j.flushed.Wait()
	}
	if j.f == nil {
		return ErrClosed
	}
	if len(j.staged) > 0 {
		return errors.New("db: compact with staged batches pending")
	}
	if err := j.w.Flush(); err != nil {
		return err
	}
	if err := j.f.Truncate(0); err != nil {
		return err
	}
	_, err := j.f.Seek(0, io.SeekStart)
	return err
}

func (j *fileJournal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	for j.leading {
		j.flushed.Wait()
	}
	if j.f == nil {
		return nil
	}
	// Flush anything staged but not yet waited on.
	for len(j.staged) > 0 {
		j.flushGroupLocked()
	}
	err1 := j.w.Flush()
	err2 := j.f.Close()
	j.f = nil
	j.flushed.Broadcast()
	if err1 != nil {
		return err1
	}
	return err2
}

// memJournal is an in-memory journal, used by tests to exercise the
// replay path and crash simulations without touching disk.
type memJournal struct {
	mu      sync.Mutex
	batches [][]Entry
	failAt  int // if >0, AppendBatch fails once the batch count reaches it
	closed  bool
}

// NewMemJournal returns an in-memory journal.
func NewMemJournal() Journal { return &memJournal{failAt: -1} }

// NewFailingMemJournal returns a journal whose AppendBatch starts failing
// after n successful batches — for fault-injection tests of commit
// atomicity.
func NewFailingMemJournal(n int) Journal { return &memJournal{failAt: n} }

func (j *memJournal) Append(e Entry) error { return j.AppendBatch([]Entry{e}) }

func (j *memJournal) AppendBatch(entries []Entry) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	if j.failAt >= 0 && len(j.batches) >= j.failAt {
		return errors.New("db: injected journal failure")
	}
	cp := make([]Entry, len(entries))
	copy(cp, entries)
	j.batches = append(j.batches, cp)
	return nil
}

// Stage implements GroupJournal: the batch's position is fixed (and,
// memory being the medium, already "durable") at stage time, so wait
// returns immediately. Giving the in-memory journal Stage parity with
// fileJournal keeps volatile benchmarks and replica tests on the exact
// commit code path durable stores use — including the clean-abort
// semantics of a stage-time failure.
func (j *memJournal) Stage(entries []Entry) (func() error, error) {
	if err := j.AppendBatch(entries); err != nil {
		return nil, err
	}
	return waitNoop, nil
}

func (j *memJournal) Replay(apply func(Entry) error) error {
	j.mu.Lock()
	batches := j.batches
	j.mu.Unlock()
	for _, b := range batches {
		for _, e := range b {
			if err := apply(e); err != nil {
				return err
			}
		}
	}
	return nil
}

func (j *memJournal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.closed = true
	return nil
}
