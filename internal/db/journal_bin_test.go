package db

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"gridbank/internal/wire"
)

// TestBinaryJournalDurability is TestFileJournalDurability under the
// bin1 generation, plus the auto-detect contract: the reopen requests
// the JSON codec and must still replay the binary file.
func TestBinaryJournalDurability(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.bin")
	j, err := OpenFileJournalCodec(path, false, wire.CodecBin1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(j)
	if err != nil {
		t.Fatal(err)
	}
	must(t, s.CreateTable("acct"))
	must(t, s.Update(func(tx *Tx) error { return tx.Insert("acct", "a1", []byte("balance=10")) }))
	must(t, s.Close())

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(raw, []byte(binJournalMagic)) {
		t.Fatalf("binary journal missing generation marker: % x", raw[:16])
	}

	j2, err := OpenFileJournal(path, false) // JSON requested; file's generation wins
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Open(j2)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	v, err := s2.Get("acct", "a1")
	if err != nil || string(v) != "balance=10" {
		t.Fatalf("recovered = %q, %v", v, err)
	}
	must(t, s2.Update(func(tx *Tx) error { return tx.Put("acct", "a1", []byte("balance=20")) }))
}

// TestJSONGenerationSurvivesBinaryDefault is the satellite cross-compat
// cell: a seed JSON data dir opened under a binary-default build keeps
// appending seed-identical JSON lines — the existing bytes are
// untouched and the new ones are plain JSON, until a Compact starts a
// fresh generation.
func TestJSONGenerationSurvivesBinaryDefault(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.ndjson")
	j, err := OpenFileJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	must(t, j.Append(Entry{Seq: 1, Op: OpCreateTable, Table: "t"}))
	must(t, j.Close())
	seedBytes, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	j2, err := OpenFileJournalCodec(path, false, wire.CodecBin1)
	if err != nil {
		t.Fatal(err)
	}
	must(t, j2.Append(Entry{Seq: 2, Op: OpPut, Table: "t", Key: "k", Value: []byte("v")}))
	must(t, j2.Close())

	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(after, seedBytes) {
		t.Fatal("binary-default reopen rewrote the existing JSON generation")
	}
	tail := after[len(seedBytes):]
	if len(tail) == 0 || tail[0] != '[' {
		t.Fatalf("append to a JSON generation was not JSON: % x", tail[:min(len(tail), 8)])
	}

	// And the mixed file replays completely under either requested codec.
	for _, codec := range []string{wire.CodecJSON, wire.CodecBin1} {
		j3, err := OpenFileJournalCodec(path, false, codec)
		if err != nil {
			t.Fatal(err)
		}
		var seqs []uint64
		must(t, j3.Replay(func(e Entry) error { seqs = append(seqs, e.Seq); return nil }))
		must(t, j3.Close())
		if !reflect.DeepEqual(seqs, []uint64{1, 2}) {
			t.Fatalf("replay under %s = %v", codec, seqs)
		}
	}
}

// TestCompactAdoptsRequestedCodec checks the migration path: a JSON
// data dir opened under bin1 switches generations at Compact
// (checkpoint-then-compact is how gridbankd migrates a WAL).
func TestCompactAdoptsRequestedCodec(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal")
	j, err := OpenFileJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	must(t, j.Append(Entry{Seq: 1, Op: OpCreateTable, Table: "t"}))
	must(t, j.Close())

	j2, err := OpenFileJournalCodec(path, false, wire.CodecBin1)
	if err != nil {
		t.Fatal(err)
	}
	must(t, j2.Replay(func(Entry) error { return nil }))
	must(t, j2.(CompactableJournal).Compact())
	must(t, j2.Append(Entry{Seq: 2, Op: OpCreateTable, Table: "u"}))
	must(t, j2.Close())

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(raw, []byte(binJournalMagic)) {
		t.Fatalf("post-compact generation not binary: % x", raw[:min(len(raw), 16)])
	}

	j3, err := OpenFileJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	var seqs []uint64
	must(t, j3.Replay(func(e Entry) error { seqs = append(seqs, e.Seq); return nil }))
	if !reflect.DeepEqual(seqs, []uint64{2}) {
		t.Fatalf("post-compact replay = %v", seqs)
	}
}

// TestBinaryJournalTornTailTruncated mirrors the JSON torn-tail test: a
// partial record at the tail (crash mid-append) is truncated away, the
// intact prefix replays, and later appends survive the next replay.
func TestBinaryJournalTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.bin")
	j, err := OpenFileJournalCodec(path, false, wire.CodecBin1)
	if err != nil {
		t.Fatal(err)
	}
	must(t, j.Append(Entry{Seq: 1, Op: OpCreateTable, Table: "t"}))
	must(t, j.Append(Entry{Seq: 2, Op: OpPut, Table: "t", Key: "good", Value: []byte("1")}))
	must(t, j.Close())

	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A record header promising more payload than the file holds.
	if _, err := f.Write([]byte{binRecordMagic, 0, 0, 1, 0, 0xde, 0xad, 0xbe, 0xef, 'x', 'y'}); err != nil {
		t.Fatal(err)
	}
	must(t, f.Close())

	j2, err := OpenFileJournalCodec(path, false, wire.CodecBin1)
	if err != nil {
		t.Fatal(err)
	}
	var seqs []uint64
	if err := j2.Replay(func(e Entry) error { seqs = append(seqs, e.Seq); return nil }); err != nil {
		t.Fatalf("replay with torn tail failed: %v", err)
	}
	if !reflect.DeepEqual(seqs, []uint64{1, 2}) {
		t.Fatalf("replay = %v", seqs)
	}
	must(t, j2.Append(Entry{Seq: 3, Op: OpPut, Table: "t", Key: "after", Value: []byte("2")}))
	must(t, j2.Close())

	j3, err := OpenFileJournalCodec(path, false, wire.CodecBin1)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	seqs = nil
	must(t, j3.Replay(func(e Entry) error { seqs = append(seqs, e.Seq); return nil }))
	if !reflect.DeepEqual(seqs, []uint64{1, 2, 3}) {
		t.Fatalf("replay after healing = %v", seqs)
	}
}

// TestBinaryJournalRefusesMidFileCorruption: a CRC-bad record with an
// intact record after it is corruption, not a tear — replay must refuse
// rather than silently truncate acked history.
func TestBinaryJournalRefusesMidFileCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.bin")
	j, err := OpenFileJournalCodec(path, false, wire.CodecBin1)
	if err != nil {
		t.Fatal(err)
	}
	must(t, j.Append(Entry{Seq: 1, Op: OpCreateTable, Table: "table-one"}))
	must(t, j.Append(Entry{Seq: 2, Op: OpCreateTable, Table: "table-two"}))
	must(t, j.Close())

	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the first record's payload (after the 8-byte
	// marker and 9-byte record header) — CRC now fails while the second
	// record stays intact.
	if _, err := f.WriteAt([]byte{0xFF}, int64(len(binJournalMagic))+binRecordHdrLen+6); err != nil {
		t.Fatal(err)
	}
	must(t, f.Close())

	j2, err := OpenFileJournalCodec(path, false, wire.CodecBin1)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	err = j2.Replay(func(Entry) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "corrupted mid-file") {
		t.Fatalf("mid-file corruption replayed: %v", err)
	}
}

// TestBinaryJournalTornMarkerResets: a crash during generation-marker
// creation leaves a partial marker; no record can have been acked, so
// replay restarts the generation instead of failing forever.
func TestBinaryJournalTornMarkerResets(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.bin")
	if err := os.WriteFile(path, []byte(binJournalMagic[:4]), 0o600); err != nil {
		t.Fatal(err)
	}
	j, err := OpenFileJournalCodec(path, false, wire.CodecBin1)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Replay(func(e Entry) error { t.Fatalf("entry %d from a torn marker", e.Seq); return nil }); err != nil {
		t.Fatalf("torn-marker replay failed: %v", err)
	}
	must(t, j.Append(Entry{Seq: 1, Op: OpCreateTable, Table: "t"}))
	must(t, j.Close())

	j2, err := OpenFileJournalCodec(path, false, wire.CodecBin1)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	var seqs []uint64
	must(t, j2.Replay(func(e Entry) error { seqs = append(seqs, e.Seq); return nil }))
	if !reflect.DeepEqual(seqs, []uint64{1}) {
		t.Fatalf("replay after marker reset = %v", seqs)
	}
}

// FuzzEntriesBinaryRoundTrip checks the shared entry-batch encoding
// (journal records and replica stream frames) against arbitrary field
// values, normalizing the one deliberate asymmetry: a zero-length value
// decodes as nil (matching JSON omitempty semantics).
func FuzzEntriesBinaryRoundTrip(f *testing.F) {
	f.Add(uint64(1), "put", "accounts", "01-0001-00000001", []byte(`{"balance":10}`))
	f.Add(uint64(2), "mktable", "t", "", []byte(nil))
	f.Add(uint64(3), "del", "t", "k", []byte(nil))
	f.Add(uint64(4), "exotic-op", "t", "k", []byte{0, 1, 2})
	f.Fuzz(func(t *testing.T, seq uint64, op, table, key string, value []byte) {
		in := []Entry{{Seq: seq, Op: Op(op), Table: table, Key: key, Value: value}}
		var buf bytes.Buffer
		if err := AppendEntriesBinary(&buf, in); err != nil {
			return // oversized strings are legitimately unencodable
		}
		out, err := DecodeEntriesBinary(buf.Bytes())
		if err != nil {
			t.Fatalf("decode of own encoding: %v", err)
		}
		if len(in[0].Value) == 0 {
			in[0].Value = nil
		}
		if !reflect.DeepEqual(out, in) {
			t.Fatalf("round trip:\n got %+v\nwant %+v", out, in)
		}
	})
}
