package db

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestMemJournalReplayRebuildsState(t *testing.T) {
	j := NewMemJournal()
	s, err := Open(j)
	if err != nil {
		t.Fatal(err)
	}
	must(t, s.CreateTable("t"))
	must(t, s.Update(func(tx *Tx) error {
		must(t, tx.Insert("t", "a", []byte("1")))
		must(t, tx.Insert("t", "b", []byte("2")))
		return tx.Delete("t", "a")
	}))
	must(t, s.Update(func(tx *Tx) error { return tx.Put("t", "b", []byte("3")) }))

	s2, err := Open(j)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Get("t", "a"); !errors.Is(err, ErrNoRecord) {
		t.Fatalf("replayed store has deleted record: %v", err)
	}
	v, err := s2.Get("t", "b")
	if err != nil || string(v) != "3" {
		t.Fatalf("replayed value = %q, %v", v, err)
	}
}

func TestJournalFailureAbortsCommit(t *testing.T) {
	j := NewFailingMemJournal(1) // table create succeeds, first tx batch fails
	s, err := Open(j)
	if err != nil {
		t.Fatal(err)
	}
	must(t, s.CreateTable("t"))
	err = s.Update(func(tx *Tx) error { return tx.Insert("t", "a", []byte("1")) })
	if err == nil {
		t.Fatal("commit with failing journal succeeded")
	}
	// In-memory state must be unchanged (write-ahead discipline).
	if _, err := s.Get("t", "a"); !errors.Is(err, ErrNoRecord) {
		t.Fatalf("failed commit mutated state: %v", err)
	}
}

func TestFileJournalDurability(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.ndjson")
	j, err := OpenFileJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(j)
	if err != nil {
		t.Fatal(err)
	}
	must(t, s.CreateTable("acct"))
	must(t, s.Update(func(tx *Tx) error { return tx.Insert("acct", "a1", []byte("balance=10")) }))
	must(t, s.Close())

	j2, err := OpenFileJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Open(j2)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	v, err := s2.Get("acct", "a1")
	if err != nil || string(v) != "balance=10" {
		t.Fatalf("recovered = %q, %v", v, err)
	}
	// And the recovered store can continue writing.
	must(t, s2.Update(func(tx *Tx) error { return tx.Put("acct", "a1", []byte("balance=20")) }))
}

func TestFileJournalTornTailIgnored(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.ndjson")
	j, err := OpenFileJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(j)
	if err != nil {
		t.Fatal(err)
	}
	must(t, s.CreateTable("t"))
	must(t, s.Update(func(tx *Tx) error { return tx.Insert("t", "good", []byte("1")) }))
	must(t, s.Close())

	// Simulate a crash mid-append: truncated garbage at the tail.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`[{"seq":99,"op":"put","table":"t","key":"torn","va`); err != nil {
		t.Fatal(err)
	}
	must(t, f.Close())

	j2, err := OpenFileJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Open(j2)
	if err != nil {
		t.Fatalf("replay with torn tail failed: %v", err)
	}
	defer s2.Close()
	if _, err := s2.Get("t", "good"); err != nil {
		t.Fatalf("pre-crash record lost: %v", err)
	}
	if _, err := s2.Get("t", "torn"); !errors.Is(err, ErrNoRecord) {
		t.Fatalf("torn record applied: %v", err)
	}
}

func TestFileJournalSyncMode(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenFileJournal(filepath.Join(dir, "wal"), true)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Entry{Seq: 1, Op: OpCreateTable, Table: "t"}); err != nil {
		t.Fatal(err)
	}
	must(t, j.Close())
	if err := j.Append(Entry{Seq: 2, Op: OpCreateTable, Table: "u"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close = %v", err)
	}
	if err := j.Replay(nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("replay after close = %v", err)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := MustOpenMemory()
	must(t, s.CreateTable("a"))
	must(t, s.CreateTable("b"))
	must(t, s.Update(func(tx *Tx) error {
		must(t, tx.Insert("a", "k1", []byte("v1")))
		return tx.Insert("b", "k2", []byte("v2"))
	}))
	sn, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := sn.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	sn2, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := OpenFromSnapshot(sn2, nil)
	if err != nil {
		t.Fatal(err)
	}
	v, err := s2.Get("a", "k1")
	if err != nil || string(v) != "v1" {
		t.Fatalf("restored a/k1 = %q, %v", v, err)
	}
	v, err = s2.Get("b", "k2")
	if err != nil || string(v) != "v2" {
		t.Fatalf("restored b/k2 = %q, %v", v, err)
	}
	// Snapshot isolation: mutating the source store after Snapshot()
	// must not affect the snapshot.
	must(t, s.Update(func(tx *Tx) error { return tx.Put("a", "k1", []byte("mutated")) }))
	s3, err := OpenFromSnapshot(sn, nil)
	if err != nil {
		t.Fatal(err)
	}
	v, _ = s3.Get("a", "k1")
	if string(v) != "v1" {
		t.Fatalf("snapshot not isolated from source: %q", v)
	}
}

func TestSnapshotPlusJournalTail(t *testing.T) {
	j := NewMemJournal()
	s, err := Open(j)
	if err != nil {
		t.Fatal(err)
	}
	must(t, s.CreateTable("t"))
	must(t, s.Update(func(tx *Tx) error { return tx.Insert("t", "pre", []byte("1")) }))
	sn, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	must(t, s.Update(func(tx *Tx) error { return tx.Insert("t", "post", []byte("2")) }))

	s2, err := OpenFromSnapshot(sn, j)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Get("t", "pre"); err != nil {
		t.Fatalf("snapshot record lost: %v", err)
	}
	v, err := s2.Get("t", "post")
	if err != nil || string(v) != "2" {
		t.Fatalf("journal tail not applied: %q, %v", v, err)
	}
}

func TestReadSnapshotErrors(t *testing.T) {
	if _, err := ReadSnapshot(bytes.NewBufferString("{bad")); err == nil {
		t.Fatal("garbage snapshot accepted")
	}
}

func TestSaveSnapshotFile(t *testing.T) {
	s := MustOpenMemory()
	must(t, s.CreateTable("t"))
	must(t, s.Update(func(tx *Tx) error { return tx.Insert("t", "k", []byte("v")) }))
	path := filepath.Join(t.TempDir(), "snap.json")
	must(t, s.SaveSnapshotFile(path))
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sn, err := ReadSnapshot(f)
	if err != nil {
		t.Fatal(err)
	}
	if string(sn.Tables["t"]["k"]) != "v" {
		t.Fatalf("snapshot content wrong: %+v", sn.Tables)
	}
}

// Property: for any sequence of puts/deletes, a journal-replayed store has
// identical contents to the live store.
func TestReplayEquivalenceProperty(t *testing.T) {
	type step struct {
		Key   uint8
		Del   bool
		Value uint16
	}
	f := func(steps []step) bool {
		j := NewMemJournal()
		s, err := Open(j)
		if err != nil {
			return false
		}
		if err := s.CreateTable("t"); err != nil {
			return false
		}
		for _, st := range steps {
			k := fmt.Sprintf("k%d", st.Key%16)
			_ = s.Update(func(tx *Tx) error {
				if st.Del {
					// ignore delete-missing errors by checking first
					if ok, _ := tx.Exists("t", k); ok {
						return tx.Delete("t", k)
					}
					return nil
				}
				return tx.Put("t", k, []byte{byte(st.Value), byte(st.Value >> 8)})
			})
		}
		replayed, err := Open(j)
		if err != nil {
			return false
		}
		same := true
		_ = s.Scan("t", func(k string, v []byte) bool {
			rv, err := replayed.Get("t", k)
			if err != nil || !bytes.Equal(rv, v) {
				same = false
				return false
			}
			return true
		})
		n1, _ := s.Count("t")
		n2, _ := replayed.Count("t")
		return same && n1 == n2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
