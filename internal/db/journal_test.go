package db

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestMemJournalReplayRebuildsState(t *testing.T) {
	j := NewMemJournal()
	s, err := Open(j)
	if err != nil {
		t.Fatal(err)
	}
	must(t, s.CreateTable("t"))
	must(t, s.Update(func(tx *Tx) error {
		must(t, tx.Insert("t", "a", []byte("1")))
		must(t, tx.Insert("t", "b", []byte("2")))
		return tx.Delete("t", "a")
	}))
	must(t, s.Update(func(tx *Tx) error { return tx.Put("t", "b", []byte("3")) }))

	s2, err := Open(j)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Get("t", "a"); !errors.Is(err, ErrNoRecord) {
		t.Fatalf("replayed store has deleted record: %v", err)
	}
	v, err := s2.Get("t", "b")
	if err != nil || string(v) != "3" {
		t.Fatalf("replayed value = %q, %v", v, err)
	}
}

func TestJournalFailureAbortsCommit(t *testing.T) {
	j := NewFailingMemJournal(1) // table create succeeds, first tx batch fails
	s, err := Open(j)
	if err != nil {
		t.Fatal(err)
	}
	must(t, s.CreateTable("t"))
	err = s.Update(func(tx *Tx) error { return tx.Insert("t", "a", []byte("1")) })
	if err == nil {
		t.Fatal("commit with failing journal succeeded")
	}
	// In-memory state must be unchanged (write-ahead discipline).
	if _, err := s.Get("t", "a"); !errors.Is(err, ErrNoRecord) {
		t.Fatalf("failed commit mutated state: %v", err)
	}
}

func TestFileJournalDurability(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.ndjson")
	j, err := OpenFileJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(j)
	if err != nil {
		t.Fatal(err)
	}
	must(t, s.CreateTable("acct"))
	must(t, s.Update(func(tx *Tx) error { return tx.Insert("acct", "a1", []byte("balance=10")) }))
	must(t, s.Close())

	j2, err := OpenFileJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Open(j2)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	v, err := s2.Get("acct", "a1")
	if err != nil || string(v) != "balance=10" {
		t.Fatalf("recovered = %q, %v", v, err)
	}
	// And the recovered store can continue writing.
	must(t, s2.Update(func(tx *Tx) error { return tx.Put("acct", "a1", []byte("balance=20")) }))
}

func TestFileJournalTornTailIgnored(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.ndjson")
	j, err := OpenFileJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(j)
	if err != nil {
		t.Fatal(err)
	}
	must(t, s.CreateTable("t"))
	must(t, s.Update(func(tx *Tx) error { return tx.Insert("t", "good", []byte("1")) }))
	must(t, s.Close())

	// Simulate a crash mid-append: truncated garbage at the tail.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`[{"seq":99,"op":"put","table":"t","key":"torn","va`); err != nil {
		t.Fatal(err)
	}
	must(t, f.Close())

	j2, err := OpenFileJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Open(j2)
	if err != nil {
		t.Fatalf("replay with torn tail failed: %v", err)
	}
	defer s2.Close()
	if _, err := s2.Get("t", "good"); err != nil {
		t.Fatalf("pre-crash record lost: %v", err)
	}
	if _, err := s2.Get("t", "torn"); !errors.Is(err, ErrNoRecord) {
		t.Fatalf("torn record applied: %v", err)
	}
}

func TestFileJournalSyncMode(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenFileJournal(filepath.Join(dir, "wal"), true)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Entry{Seq: 1, Op: OpCreateTable, Table: "t"}); err != nil {
		t.Fatal(err)
	}
	must(t, j.Close())
	if err := j.Append(Entry{Seq: 2, Op: OpCreateTable, Table: "u"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close = %v", err)
	}
	if err := j.Replay(nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("replay after close = %v", err)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := MustOpenMemory()
	must(t, s.CreateTable("a"))
	must(t, s.CreateTable("b"))
	must(t, s.Update(func(tx *Tx) error {
		must(t, tx.Insert("a", "k1", []byte("v1")))
		return tx.Insert("b", "k2", []byte("v2"))
	}))
	sn, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := sn.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	sn2, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := OpenFromSnapshot(sn2, nil)
	if err != nil {
		t.Fatal(err)
	}
	v, err := s2.Get("a", "k1")
	if err != nil || string(v) != "v1" {
		t.Fatalf("restored a/k1 = %q, %v", v, err)
	}
	v, err = s2.Get("b", "k2")
	if err != nil || string(v) != "v2" {
		t.Fatalf("restored b/k2 = %q, %v", v, err)
	}
	// Snapshot isolation: mutating the source store after Snapshot()
	// must not affect the snapshot.
	must(t, s.Update(func(tx *Tx) error { return tx.Put("a", "k1", []byte("mutated")) }))
	s3, err := OpenFromSnapshot(sn, nil)
	if err != nil {
		t.Fatal(err)
	}
	v, _ = s3.Get("a", "k1")
	if string(v) != "v1" {
		t.Fatalf("snapshot not isolated from source: %q", v)
	}
}

func TestSnapshotPlusJournalTail(t *testing.T) {
	j := NewMemJournal()
	s, err := Open(j)
	if err != nil {
		t.Fatal(err)
	}
	must(t, s.CreateTable("t"))
	must(t, s.Update(func(tx *Tx) error { return tx.Insert("t", "pre", []byte("1")) }))
	sn, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	must(t, s.Update(func(tx *Tx) error { return tx.Insert("t", "post", []byte("2")) }))

	s2, err := OpenFromSnapshot(sn, j)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Get("t", "pre"); err != nil {
		t.Fatalf("snapshot record lost: %v", err)
	}
	v, err := s2.Get("t", "post")
	if err != nil || string(v) != "2" {
		t.Fatalf("journal tail not applied: %q, %v", v, err)
	}
}

func TestReadSnapshotErrors(t *testing.T) {
	if _, err := ReadSnapshot(bytes.NewBufferString("{bad")); err == nil {
		t.Fatal("garbage snapshot accepted")
	}
}

func TestSaveSnapshotFile(t *testing.T) {
	s := MustOpenMemory()
	must(t, s.CreateTable("t"))
	must(t, s.Update(func(tx *Tx) error { return tx.Insert("t", "k", []byte("v")) }))
	path := filepath.Join(t.TempDir(), "snap.json")
	must(t, s.SaveSnapshotFile(path))
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sn, err := ReadSnapshot(f)
	if err != nil {
		t.Fatal(err)
	}
	if string(sn.Tables["t"]["k"]) != "v" {
		t.Fatalf("snapshot content wrong: %+v", sn.Tables)
	}
}

// Property: for any sequence of puts/deletes, a journal-replayed store has
// identical contents to the live store.
func TestReplayEquivalenceProperty(t *testing.T) {
	type step struct {
		Key   uint8
		Del   bool
		Value uint16
	}
	f := func(steps []step) bool {
		j := NewMemJournal()
		s, err := Open(j)
		if err != nil {
			return false
		}
		if err := s.CreateTable("t"); err != nil {
			return false
		}
		for _, st := range steps {
			k := fmt.Sprintf("k%d", st.Key%16)
			_ = s.Update(func(tx *Tx) error {
				if st.Del {
					// ignore delete-missing errors by checking first
					if ok, _ := tx.Exists("t", k); ok {
						return tx.Delete("t", k)
					}
					return nil
				}
				return tx.Put("t", k, []byte{byte(st.Value), byte(st.Value >> 8)})
			})
		}
		replayed, err := Open(j)
		if err != nil {
			return false
		}
		same := true
		_ = s.Scan("t", func(k string, v []byte) bool {
			rv, err := replayed.Get("t", k)
			if err != nil || !bytes.Equal(rv, v) {
				same = false
				return false
			}
			return true
		})
		n1, _ := s.Count("t")
		n2, _ := replayed.Count("t")
		return same && n1 == n2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestReplayRestoresSeqWithoutDuplicates(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal")
	j, err := OpenFileJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(j)
	if err != nil {
		t.Fatal(err)
	}
	must(t, s.CreateTable("t"))
	for i := 0; i < 5; i++ {
		must(t, s.Update(func(tx *Tx) error { return tx.Put("t", "k", []byte{byte(i)}) }))
	}
	must(t, s.Close())

	// Reopen and write more; then inspect the raw journal: every WAL
	// sequence number must appear exactly once (a replayed store that
	// forgot its seq would re-issue 1, 2, 3...).
	j2, err := OpenFileJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Open(j2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 5; i < 10; i++ {
		must(t, s2.Update(func(tx *Tx) error { return tx.Put("t", "k", []byte{byte(i)}) }))
	}
	must(t, s2.Close())

	j3, err := OpenFileJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	seen := make(map[uint64]int)
	var maxSeq uint64
	must(t, j3.Replay(func(e Entry) error {
		seen[e.Seq]++
		if e.Seq > maxSeq {
			maxSeq = e.Seq
		}
		return nil
	}))
	for seq, n := range seen {
		if n != 1 {
			t.Fatalf("seq %d appears %d times", seq, n)
		}
	}
	if len(seen) != int(maxSeq) {
		t.Fatalf("%d distinct seqs, max %d: gaps or duplicates", len(seen), maxSeq)
	}
}

func TestGroupCommitBatchesAtomicOnReplay(t *testing.T) {
	// Concurrent committers share flushes, but each transaction's batch
	// must stay its own replay unit: replaying must yield exactly the
	// committed transactions, never a partial one.
	dir := t.TempDir()
	path := filepath.Join(dir, "wal")
	j, err := OpenFileJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(j)
	if err != nil {
		t.Fatal(err)
	}
	must(t, s.CreateTable("t"))
	const workers = 8
	const perWorker = 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				a := fmt.Sprintf("w%d-a%d", w, i)
				b := fmt.Sprintf("w%d-b%d", w, i)
				_ = s.Update(func(tx *Tx) error {
					if err := tx.Put("t", a, []byte{1}); err != nil {
						return err
					}
					return tx.Put("t", b, []byte{2})
				})
			}
		}(w)
	}
	wg.Wait()
	must(t, s.Close())

	j2, err := OpenFileJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := Open(j2)
	if err != nil {
		t.Fatal(err)
	}
	defer replayed.Close()
	// Batch atomicity: the a-row and b-row of each transaction exist
	// together or not at all.
	for w := 0; w < workers; w++ {
		for i := 0; i < perWorker; i++ {
			_, errA := replayed.Get("t", fmt.Sprintf("w%d-a%d", w, i))
			_, errB := replayed.Get("t", fmt.Sprintf("w%d-b%d", w, i))
			if (errA == nil) != (errB == nil) {
				t.Fatalf("torn transaction w%d/%d: a=%v b=%v", w, i, errA, errB)
			}
		}
	}
	n, err := replayed.Count("t")
	if err != nil {
		t.Fatal(err)
	}
	if n != workers*perWorker*2 {
		t.Fatalf("replayed %d rows, want %d", n, workers*perWorker*2)
	}
}

func TestSeedFormatJournalReplaysIdentically(t *testing.T) {
	// A journal written by the seed implementation (json.Marshal of the
	// batch slice + '\n' per line, one line per transaction) must replay
	// into the new store byte-for-byte: same rows, same values, same
	// restored sequence counter.
	dir := t.TempDir()
	path := filepath.Join(dir, "wal")
	lines := []string{
		`[{"seq":1,"op":"mktable","table":"accounts"}]`,
		`[{"seq":2,"op":"put","table":"accounts","key":"a1","value":"eyJiIjoxMH0="},{"seq":3,"op":"put","table":"accounts","key":"a2","value":"eyJiIjoyMH0="}]`,
		`[{"seq":4,"op":"del","table":"accounts","key":"a2"},{"seq":5,"op":"put","table":"accounts","key":"a1","value":"eyJiIjozMH0="}]`,
	}
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	j, err := OpenFileJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(j)
	if err != nil {
		t.Fatal(err)
	}
	v, err := s.Get("accounts", "a1")
	if err != nil || string(v) != `{"b":30}` {
		t.Fatalf("a1 = %q, %v", v, err)
	}
	if _, err := s.Get("accounts", "a2"); !errors.Is(err, ErrNoRecord) {
		t.Fatalf("deleted a2 still present: %v", err)
	}
	// Continue writing through the new engine; the next entry must take
	// seq 6 (replay restored the counter) and the appended line must use
	// the same NDJSON batch framing the seed wrote.
	must(t, s.Update(func(tx *Tx) error { return tx.Put("accounts", "a3", []byte(`{"b":40}`)) }))
	must(t, s.Close())
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := strings.Join(lines, "\n") + "\n" +
		`[{"seq":6,"op":"put","table":"accounts","key":"a3","value":"eyJiIjo0MH0="}]` + "\n"
	if string(raw) != want {
		t.Fatalf("journal bytes diverge from seed format:\n got: %q\nwant: %q", raw, want)
	}
}

// failingGroupJournal stages successfully but fails at flush time —
// the shape of a disk-full fsync error after the in-memory apply.
type failingGroupJournal struct {
	memJournal
	failWait bool
}

func (j *failingGroupJournal) Stage(entries []Entry) (func() error, error) {
	if err := j.AppendBatch(entries); err != nil {
		return nil, err
	}
	if j.failWait {
		return func() error { return errors.New("db: injected flush failure") }, nil
	}
	return func() error { return nil }, nil
}

func TestFlushFailureAfterApplyFailStopsStore(t *testing.T) {
	j := &failingGroupJournal{memJournal: memJournal{failAt: -1}}
	s, err := Open(j)
	if err != nil {
		t.Fatal(err)
	}
	must(t, s.CreateTable("t"))
	must(t, s.Update(func(tx *Tx) error { return tx.Put("t", "k", []byte("ok")) }))

	// From here on, every flush fails after the apply: the commit must
	// report the error AND the store must refuse further service —
	// its memory now runs ahead of the journal.
	j.failWait = true
	err = s.Update(func(tx *Tx) error { return tx.Put("t", "k", []byte("lost")) })
	if err == nil {
		t.Fatal("commit with failing flush succeeded")
	}
	if _, err := s.Get("t", "k"); err == nil {
		t.Fatal("poisoned store still serving reads")
	}
	if _, err := s.Begin(); err == nil {
		t.Fatal("poisoned store still accepting transactions")
	}
	if _, err := s.Snapshot(); err == nil {
		t.Fatal("poisoned store still snapshotting non-durable state")
	}
}

func TestReplayTruncatesTornTailSoAppendsSurviveNextReplay(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.ndjson")
	j, err := OpenFileJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	must(t, j.AppendBatch([]Entry{{Seq: 1, Op: OpCreateTable, Table: "t"}}))
	must(t, j.AppendBatch([]Entry{{Seq: 2, Op: OpPut, Table: "t", Key: "a", Value: []byte("1")}}))
	must(t, j.Close())
	// Crash left a torn line at the tail.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`[{"seq":3,"op":"put","table":"t","key":"torn","va`); err != nil {
		t.Fatal(err)
	}
	must(t, f.Close())

	// Restart 1: replay discards (and truncates) the tear, then acks a
	// new batch appended after it.
	j2, err := OpenFileJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(j2)
	if err != nil {
		t.Fatal(err)
	}
	must(t, s.Update(func(tx *Tx) error { return tx.Put("t", "b", []byte("2")) }))
	must(t, s.Close())

	// Restart 2: the post-crash batch must replay — it would be buried
	// behind the torn line if the tear were left in place.
	j3, err := OpenFileJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Open(j3)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	v, err := s2.Get("t", "b")
	if err != nil || string(v) != "2" {
		t.Fatalf("post-crash acked write lost across replays: %q, %v", v, err)
	}
	if _, err := s2.Get("t", "torn"); err == nil {
		t.Fatal("torn entry resurrected")
	}
}

func TestReplayRefusesMidFileCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.ndjson")
	j, err := OpenFileJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	must(t, j.AppendBatch([]Entry{{Seq: 1, Op: OpCreateTable, Table: "t"}}))
	must(t, j.AppendBatch([]Entry{{Seq: 2, Op: OpPut, Table: "t", Key: "a", Value: []byte("1")}}))
	must(t, j.AppendBatch([]Entry{{Seq: 3, Op: OpPut, Table: "t", Key: "b", Value: []byte("2")}}))
	must(t, j.Close())
	// Flip the middle line into garbage, leaving the intact line after
	// it in place — disk corruption, not a crash tear.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(raw, []byte("\n"))
	lines[1] = []byte("{CORRUPT\n")
	must(t, os.WriteFile(path, bytes.Join(lines, nil), 0o600))

	j2, err := OpenFileJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(j2); err == nil {
		t.Fatal("open over mid-file corruption succeeded (would have truncated acked batches)")
	}
	// The intact tail must still be on disk for manual repair.
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(after, []byte(`"key":"b"`)) {
		t.Fatal("intact batch after the corruption was destroyed")
	}
}

func TestCheckpointCompactCycle(t *testing.T) {
	dir := t.TempDir()
	wal := filepath.Join(dir, "ledger.wal")
	ckpt := filepath.Join(dir, "ledger.ckpt")

	j, err := OpenFileJournal(wal, false)
	if err != nil {
		t.Fatal(err)
	}
	s, err := OpenWithCheckpoint(ckpt, j)
	if err != nil {
		t.Fatal(err)
	}
	must(t, s.CreateTable("t"))
	must(t, s.Update(func(tx *Tx) error { return tx.Put("t", "old", []byte("o")) }))
	if _, err := s.Checkpoint(ckpt); err != nil {
		t.Fatal(err)
	}
	// The gridbankd startup sequence: checkpoint, then drop the journal
	// it covers.
	if err := j.(CompactableJournal).Compact(); err != nil {
		t.Fatal(err)
	}
	must(t, s.Update(func(tx *Tx) error { return tx.Put("t", "new", []byte("n")) }))
	must(t, s.Close())
	if fi, err := os.Stat(wal); err != nil || fi.Size() == 0 {
		t.Fatalf("journal after compact+write: %v, size %d (want only the post-checkpoint tail)", err, fi.Size())
	}

	j2, err := OpenFileJournal(wal, false)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := OpenWithCheckpoint(ckpt, j2)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for k, want := range map[string]string{"old": "o", "new": "n"} {
		v, err := s2.Get("t", k)
		if err != nil || string(v) != want {
			t.Fatalf("after checkpoint+compact restart, %s = %q, %v", k, v, err)
		}
	}
}
