package db

import (
	"errors"
	"fmt"
	"sort"
)

// Tx is a read-write transaction. Writes are buffered and become visible
// (and durable, if the store has a journal) only at Commit. A Tx holds the
// store's write lock for its whole lifetime: GridBank transactions are
// short (a transfer touches two rows), so exclusivity is cheaper than
// conflict detection and gives full serializability, which an accounting
// system needs — the paper's fund locking (§3.4) is only sound if balance
// check and debit are atomic.
type Tx struct {
	s    *Store
	done bool
	// staged mutations, applied in order at commit
	ops []txOp
	// overlay of staged state per table: key -> value (nil = deleted)
	overlay map[string]map[string]*[]byte
}

type txOp struct {
	op    Op
	table string
	key   string
	value []byte
}

// Begin starts a transaction. Callers must finish it with Commit or
// Rollback; until then all other store access blocks.
func (s *Store) Begin() (*Tx, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	return &Tx{s: s, overlay: make(map[string]map[string]*[]byte)}, nil
}

// Update runs fn inside a transaction, committing if it returns nil and
// rolling back otherwise.
func (s *Store) Update(fn func(tx *Tx) error) error {
	tx, err := s.Begin()
	if err != nil {
		return err
	}
	if err := fn(tx); err != nil {
		tx.Rollback()
		return err
	}
	return tx.Commit()
}

func (tx *Tx) table(name string) (*table, error) {
	t, ok := tx.s.tables[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoTable, name)
	}
	return t, nil
}

// Get reads a record, observing the transaction's own uncommitted writes.
func (tx *Tx) Get(tableName, key string) ([]byte, error) {
	if tx.done {
		return nil, ErrTxDone
	}
	if ov, ok := tx.overlay[tableName]; ok {
		if vp, ok := ov[key]; ok {
			if vp == nil {
				return nil, fmt.Errorf("%w: %s/%s", ErrNoRecord, tableName, key)
			}
			return *vp, nil
		}
	}
	t, err := tx.table(tableName)
	if err != nil {
		return nil, err
	}
	v, ok := t.rows[key]
	if !ok {
		return nil, fmt.Errorf("%w: %s/%s", ErrNoRecord, tableName, key)
	}
	return v, nil
}

// Exists reports whether a record exists, observing uncommitted writes.
func (tx *Tx) Exists(tableName, key string) (bool, error) {
	_, err := tx.Get(tableName, key)
	if err == nil {
		return true, nil
	}
	if errors.Is(err, ErrNoRecord) {
		return false, nil
	}
	return false, err
}

func (tx *Tx) stage(op Op, tableName, key string, value []byte) error {
	if tx.done {
		return ErrTxDone
	}
	if _, err := tx.table(tableName); err != nil {
		return err
	}
	tx.ops = append(tx.ops, txOp{op: op, table: tableName, key: key, value: value})
	ov, ok := tx.overlay[tableName]
	if !ok {
		ov = make(map[string]*[]byte)
		tx.overlay[tableName] = ov
	}
	if op == OpDelete {
		ov[key] = nil
	} else {
		v := value
		ov[key] = &v
	}
	return nil
}

// Put writes a record (insert or replace).
func (tx *Tx) Put(tableName, key string, value []byte) error {
	return tx.stage(OpPut, tableName, key, value)
}

// Insert writes a record that must not already exist.
func (tx *Tx) Insert(tableName, key string, value []byte) error {
	ok, err := tx.Exists(tableName, key)
	if err != nil {
		return err
	}
	if ok {
		return fmt.Errorf("%w: %s/%s", ErrExists, tableName, key)
	}
	return tx.Put(tableName, key, value)
}

// Delete removes a record if present. Deleting an absent record is an
// error, surfacing accounting bugs (GridBank never blind-deletes).
func (tx *Tx) Delete(tableName, key string) error {
	ok, err := tx.Exists(tableName, key)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("%w: %s/%s", ErrNoRecord, tableName, key)
	}
	return tx.stage(OpDelete, tableName, key, nil)
}

// Commit journals and applies all staged writes atomically, then releases
// the store.
func (tx *Tx) Commit() error {
	if tx.done {
		return ErrTxDone
	}
	tx.done = true
	defer tx.s.mu.Unlock()
	s := tx.s
	// Journal first (write-ahead): if the journal fails part-way the
	// in-memory state is untouched and replay-on-restart is a prefix of
	// the transaction, which the journal layer prevents from being
	// applied by framing commit batches.
	if s.journal != nil {
		entries := make([]Entry, len(tx.ops))
		for i, op := range tx.ops {
			s.seq++
			entries[i] = Entry{Seq: s.seq, Op: op.op, Table: op.table, Key: op.key, Value: op.value}
		}
		if err := s.journal.AppendBatch(entries); err != nil {
			return fmt.Errorf("db: commit journal: %w", err)
		}
	}
	for _, op := range tx.ops {
		t := s.tables[op.table]
		switch op.op {
		case OpPut:
			if old, ok := t.rows[op.key]; ok {
				t.reindexRemove(op.key, old)
			}
			t.rows[op.key] = op.value
			t.reindexAdd(op.key, op.value)
		case OpDelete:
			if old, ok := t.rows[op.key]; ok {
				t.reindexRemove(op.key, old)
				delete(t.rows, op.key)
			}
		}
	}
	return nil
}

// Rollback discards all staged writes and releases the store. Rollback
// after Commit (or a second Rollback) is a no-op.
func (tx *Tx) Rollback() {
	if tx.done {
		return
	}
	tx.done = true
	tx.s.mu.Unlock()
}

// Lookup queries a secondary index inside the transaction. Staged writes
// are visible: keys written in this transaction are matched by running the
// index function over the overlay.
func (tx *Tx) Lookup(tableName, indexName, indexKey string) ([]string, error) {
	if tx.done {
		return nil, ErrTxDone
	}
	t, err := tx.table(tableName)
	if err != nil {
		return nil, err
	}
	ix, ok := t.indexes[indexName]
	if !ok {
		return nil, fmt.Errorf("%w: %s.%s", ErrNoIndex, tableName, indexName)
	}
	match := make(map[string]bool)
	for k := range ix.entries[indexKey] {
		match[k] = true
	}
	if ov, ok := tx.overlay[tableName]; ok {
		for k, vp := range ov {
			delete(match, k) // superseded by overlay
			if vp != nil {
				for _, ik := range ix.fn(k, *vp) {
					if ik == indexKey {
						match[k] = true
					}
				}
			}
		}
	}
	keys := make([]string, 0, len(match))
	for k := range match {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys, nil
}

// Scan iterates the table inside the transaction, observing staged writes,
// in sorted key order.
func (tx *Tx) Scan(tableName string, visit func(key string, value []byte) bool) error {
	if tx.done {
		return ErrTxDone
	}
	t, err := tx.table(tableName)
	if err != nil {
		return err
	}
	ov := tx.overlay[tableName]
	keys := make([]string, 0, len(t.rows)+len(ov))
	seen := make(map[string]bool, len(t.rows)+len(ov))
	for k := range t.rows {
		if vp, staged := ov[k]; staged && vp == nil {
			continue // deleted in tx
		}
		keys = append(keys, k)
		seen[k] = true
	}
	for k, vp := range ov {
		if vp != nil && !seen[k] {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		var v []byte
		if vp, staged := ov[k]; staged {
			v = *vp
		} else {
			v = t.rows[k]
		}
		if !visit(k, v) {
			break
		}
	}
	return nil
}
