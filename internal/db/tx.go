package db

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"time"
)

// Tx is a read-write transaction with optimistic concurrency control.
// Writes are buffered and become visible (and durable, if the store has
// a journal) only at Commit. A Tx holds no locks while it runs: reads
// take the touched stripe's read lock only for the moment of the lookup
// and are recorded in a read set. Commit locks the touched stripes (in
// a global sorted order), revalidates every read against current state,
// journals, applies, and releases. If a concurrent commit invalidated
// any read, Commit fails with ErrConflict and the transaction's effects
// are discarded — Update retries automatically, which restores the full
// serializability an accounting system needs (the paper's §3.4 fund
// locking is only sound if balance check and debit are atomic).
//
// Reads are repeatable: a key read twice returns the same value both
// times, even if a concurrent transaction committed in between.
type Tx struct {
	s    *Store
	done bool
	// staged mutations, applied in order at commit
	ops []txOp
	// overlay of staged state per table: key -> value (nil = deleted)
	overlay map[string]map[string]*[]byte
	// read set: key -> observed row pointer (nil = observed missing)
	reads map[string]map[string]*row
	// secondary-index reads to revalidate (phantom protection for
	// uniqueness checks like accounts-by-certificate)
	ixReads []ixRead
	// whole-table scans: table -> version at scan time
	scans map[string]uint64
}

type txOp struct {
	op    Op
	table string
	key   string
	value []byte
}

type ixRead struct {
	table, index, key string
	result            []string // raw store result, pre-overlay, sorted
}

// Begin starts a transaction. Callers must finish it with Commit or
// Rollback. Transactions run lock-free; conflicting commits are detected
// at Commit and reported as ErrConflict.
func (s *Store) Begin() (*Tx, error) {
	if err := s.failedErr(); err != nil {
		return nil, err
	}
	s.mu.RLock()
	closed := s.closed
	s.mu.RUnlock()
	if closed {
		return nil, ErrClosed
	}
	return &Tx{s: s, overlay: make(map[string]map[string]*[]byte)}, nil
}

// Update runs fn inside a transaction, committing if it returns nil and
// rolling back otherwise. Conflicts with concurrent transactions are
// retried until the transaction commits or fails for a real reason, so
// fn must be a pure function of the transaction (it may run more than
// once).
func (s *Store) Update(fn func(tx *Tx) error) error {
	for attempt := 0; ; attempt++ {
		tx, err := s.Begin()
		if err != nil {
			return err
		}
		err = fn(tx)
		if err == nil {
			err = tx.Commit()
		} else {
			tx.Rollback()
		}
		if !errors.Is(err, ErrConflict) {
			return err
		}
		s.mRetries.Inc()
		// Contended: yield so the winning committer finishes, with a
		// touch of backoff once the key is clearly hot.
		if attempt < 8 {
			runtime.Gosched()
		} else {
			time.Sleep(time.Duration(attempt) * time.Microsecond)
		}
	}
}

// recordRead notes that this transaction observed r (or a miss, r==nil)
// under table/key. First observation wins: that is the value the
// transaction's logic acted on.
func (tx *Tx) recordRead(tableName, key string, r *row) {
	if tx.reads == nil {
		tx.reads = make(map[string]map[string]*row)
	}
	byKey, ok := tx.reads[tableName]
	if !ok {
		byKey = make(map[string]*row)
		tx.reads[tableName] = byKey
	}
	if _, seen := byKey[key]; !seen {
		byKey[key] = r
	}
}

// Get reads a record, observing the transaction's own uncommitted writes.
// The returned slice is a defensive copy.
func (tx *Tx) Get(tableName, key string) ([]byte, error) {
	if tx.done {
		return nil, ErrTxDone
	}
	if ov, ok := tx.overlay[tableName]; ok {
		if vp, ok := ov[key]; ok {
			if vp == nil {
				return nil, fmt.Errorf("%w: %s/%s", ErrNoRecord, tableName, key)
			}
			return *vp, nil
		}
	}
	// Repeatable read: once observed, a key keeps its first-seen value.
	if byKey, ok := tx.reads[tableName]; ok {
		if r, seen := byKey[key]; seen {
			if r == nil {
				return nil, fmt.Errorf("%w: %s/%s", ErrNoRecord, tableName, key)
			}
			return cloneBytes(r.value), nil
		}
	}
	t, err := tx.s.table(tableName)
	if err != nil {
		return nil, err
	}
	r := t.getRow(key)
	tx.recordRead(tableName, key, r)
	if r == nil {
		return nil, fmt.Errorf("%w: %s/%s", ErrNoRecord, tableName, key)
	}
	return cloneBytes(r.value), nil
}

func cloneBytes(b []byte) []byte {
	cp := make([]byte, len(b))
	copy(cp, b)
	return cp
}

// Exists reports whether a record exists, observing uncommitted writes.
func (tx *Tx) Exists(tableName, key string) (bool, error) {
	_, err := tx.Get(tableName, key)
	if err == nil {
		return true, nil
	}
	if errors.Is(err, ErrNoRecord) {
		return false, nil
	}
	return false, err
}

func (tx *Tx) stage(op Op, tableName, key string, value []byte) error {
	if tx.done {
		return ErrTxDone
	}
	if _, err := tx.s.table(tableName); err != nil {
		return err
	}
	tx.ops = append(tx.ops, txOp{op: op, table: tableName, key: key, value: value})
	ov, ok := tx.overlay[tableName]
	if !ok {
		ov = make(map[string]*[]byte)
		tx.overlay[tableName] = ov
	}
	if op == OpDelete {
		ov[key] = nil
	} else {
		v := value
		ov[key] = &v
	}
	return nil
}

// Put writes a record (insert or replace).
func (tx *Tx) Put(tableName, key string, value []byte) error {
	return tx.stage(OpPut, tableName, key, value)
}

// Insert writes a record that must not already exist.
func (tx *Tx) Insert(tableName, key string, value []byte) error {
	ok, err := tx.Exists(tableName, key)
	if err != nil {
		return err
	}
	if ok {
		return fmt.Errorf("%w: %s/%s", ErrExists, tableName, key)
	}
	return tx.Put(tableName, key, value)
}

// Delete removes a record if present. Deleting an absent record is an
// error, surfacing accounting bugs (GridBank never blind-deletes).
func (tx *Tx) Delete(tableName, key string) error {
	ok, err := tx.Exists(tableName, key)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("%w: %s/%s", ErrNoRecord, tableName, key)
	}
	return tx.stage(OpDelete, tableName, key, nil)
}

// footTable is one table in a commit's footprint: which stripes it
// locks in which mode, and whether predicate protection is needed.
type footTable struct {
	t *table
	// stripe modes: 0 untouched, 1 shared (validated read), 2 exclusive
	// (written). A scanned table marks every untouched stripe shared.
	modes [tableStripes]uint8
	pred  bool
}

const (
	stripeIdle = iota
	stripeShared
	stripeExcl
)

func (f *footTable) mark(key string, mode uint8) {
	i := stripeFor(key)
	if f.modes[i] < mode {
		f.modes[i] = mode
	}
}

// Commit validates the read set, journals and applies all staged writes
// atomically, then releases the touched stripes. It returns ErrConflict
// if a concurrent commit invalidated this transaction's reads.
func (tx *Tx) Commit() error {
	if tx.done {
		return ErrTxDone
	}
	tx.done = true
	s := tx.s

	// Build the footprint: every stripe read or written, plus predicate
	// and scan coverage.
	foot := make(map[string]*footTable)
	ft := func(name string) (*footTable, error) {
		if f, ok := foot[name]; ok {
			return f, nil
		}
		t, err := s.table(name)
		if err != nil {
			return nil, err
		}
		f := &footTable{t: t}
		foot[name] = f
		return f, nil
	}
	for _, op := range tx.ops {
		f, err := ft(op.table)
		if err != nil {
			return err
		}
		f.mark(op.key, stripeExcl)
	}
	for name, byKey := range tx.reads {
		f, err := ft(name)
		if err != nil {
			return err
		}
		for key := range byKey {
			f.mark(key, stripeShared)
		}
	}
	for _, ir := range tx.ixReads {
		f, err := ft(ir.table)
		if err != nil {
			return err
		}
		f.pred = true
	}
	for name := range tx.scans {
		f, err := ft(name)
		if err != nil {
			return err
		}
		for i := range f.modes {
			if f.modes[i] == stripeIdle {
				f.modes[i] = stripeShared
			}
		}
	}
	if len(foot) == 0 {
		return nil // empty transaction
	}
	order := make([]string, 0, len(foot))
	for n := range foot {
		order = append(order, n)
	}
	sort.Strings(order)

	// Prepare the apply plan outside any lock: pre-compute each written
	// row's index keys so the exclusive section never runs index
	// functions (for the accounts table that would mean decoding JSON
	// while holding the stripe).
	plan := make([]preparedOp, len(tx.ops))
	for i, op := range tx.ops {
		t := foot[op.table].t
		p := preparedOp{op: op.op, t: t, key: op.key}
		if op.op == OpPut {
			p.r = &row{value: op.value}
			t.mu.RLock()
			if len(t.indexes) > 0 {
				p.r.ixKeys = make(map[string][]string, len(t.indexes))
				for _, ix := range t.indexes {
					p.r.ixKeys[ix.name] = ix.fn(op.key, op.value)
				}
			}
			t.mu.RUnlock()
		}
		plan[i] = p
	}

	// The store may have closed since Begin; a commit must not outlive
	// its journal. (Checked before locking — a Close racing past this
	// point is caught by the journal's own closed check.)
	s.mu.RLock()
	closed := s.closed
	s.mu.RUnlock()
	if closed {
		return ErrClosed
	}

	// Lock the footprint in global order: tables sorted by name; within
	// a table the predicate mutex first, then stripes by index.
	for _, n := range order {
		f := foot[n]
		if f.pred {
			f.t.predMu.Lock()
		}
		for i, m := range f.modes {
			switch m {
			case stripeShared:
				f.t.stripes[i].mu.RLock()
			case stripeExcl:
				f.t.stripes[i].mu.Lock()
			}
		}
	}
	unlock := func() {
		for _, n := range order {
			f := foot[n]
			for i, m := range f.modes {
				switch m {
				case stripeShared:
					f.t.stripes[i].mu.RUnlock()
				case stripeExcl:
					f.t.stripes[i].mu.Unlock()
				}
			}
			if f.pred {
				f.t.predMu.Unlock()
			}
		}
	}

	if !tx.validateLocked(foot) {
		unlock()
		s.mConflicts.Inc()
		return ErrConflict
	}

	// Sequence and publish, then journal (write-ahead). Seq assignment
	// and commit-stream publication share one pubMu section so
	// subscribers observe batches in exact sequence order even when
	// disjoint-stripe commits race. With a group journal the batch is
	// staged — its on-disk position fixed — before the in-memory apply,
	// and the fsync wait happens after the locks are released so
	// concurrent committers coalesce into one flush.
	//
	// Every commit advances the sequence counter, even on a volatile
	// store with no subscribers (the cheap bulk-add branch): sequence
	// numbers are the replication clock, and a follower that reconnects
	// after unwitnessed writes must see the counter moved — otherwise
	// SnapshotSince would judge it current and it would silently miss
	// them forever.
	var wait func() error
	if len(tx.ops) > 0 && (s.journal != nil || s.hasSubs.Load()) {
		entries := make([]Entry, len(tx.ops))
		for i, op := range tx.ops {
			entries[i] = Entry{Op: op.op, Table: op.table, Key: op.key, Value: op.value}
		}
		s.pubMu.Lock()
		for i := range entries {
			entries[i].Seq = s.seq.Add(1)
		}
		s.publishLocked(entries)
		s.pubMu.Unlock()
		if gj, ok := s.journal.(GroupJournal); ok {
			w, err := gj.Stage(entries)
			if err != nil {
				// Subscribers already saw the batch the journal just
				// refused; cut them off and force full snapshots on
				// re-bootstrap so no follower keeps the phantom state.
				s.streamDiverged(fmt.Errorf("db: commit journal: %w", err))
				unlock()
				return fmt.Errorf("db: commit journal: %w", err)
			}
			wait = w
		} else if s.journal != nil {
			if err := s.journal.AppendBatch(entries); err != nil {
				s.streamDiverged(fmt.Errorf("db: commit journal: %w", err))
				unlock()
				return fmt.Errorf("db: commit journal: %w", err)
			}
		}
	} else if len(tx.ops) > 0 {
		// Volatile store, nobody listening: just move the clock. Still
		// under this commit's stripe locks, so a concurrent
		// subscribe+snapshot cuts either before or after the whole
		// commit, never through it.
		s.seq.Add(uint64(len(tx.ops)))
	}

	for _, p := range plan {
		switch p.op {
		case OpPut:
			p.t.applyPut(p.key, p.r)
		case OpDelete:
			p.t.applyDelete(p.key)
		}
	}
	unlock()

	if wait != nil {
		if err := wait(); err != nil {
			// The apply already happened: memory now runs ahead of a
			// journal that could not persist the batch. Fail-stop the
			// whole store so nothing serves or snapshots the divergence.
			s.fail(err)
			return fmt.Errorf("db: commit journal: %w", err)
		}
	}
	return nil
}

type preparedOp struct {
	op  Op
	t   *table
	key string
	r   *row // nil for deletes
}

// validateLocked re-checks the read set against current state. Caller
// holds every footprint stripe (and predMu where relevant).
func (tx *Tx) validateLocked(foot map[string]*footTable) bool {
	for name, byKey := range tx.reads {
		t := foot[name].t
		for key, seen := range byKey {
			if t.stripes[stripeFor(key)].rows[key] != seen {
				return false
			}
		}
	}
	for _, ir := range tx.ixReads {
		now, err := foot[ir.table].t.lookupIndex(ir.index, ir.key)
		if err != nil || len(now) != len(ir.result) {
			return false
		}
		for i := range now {
			if now[i] != ir.result[i] {
				return false
			}
		}
	}
	for name, version := range tx.scans {
		if foot[name].t.version.Load() != version {
			return false
		}
	}
	return true
}

// Rollback discards all staged writes. Rollback after Commit (or a
// second Rollback) is a no-op.
func (tx *Tx) Rollback() {
	tx.done = true
}

// Lookup queries a secondary index inside the transaction. Staged writes
// are visible: keys written in this transaction are matched by running the
// index function over the overlay. The raw index result joins the read
// set — at commit the transaction holds the table's predicate mutex and
// revalidates the lookup.
//
// Phantom-protection boundary: predMu serializes only commits that
// themselves performed a Lookup on the table. Two racing uniqueness
// checks (both Lookup-then-Insert, like CreateAccount) therefore
// conflict correctly, but a plain writer that changes a key's index
// membership WITHOUT looking it up is not excluded and could commit
// between another transaction's validate and apply. Callers enforcing
// index-based invariants must perform the Lookup inside every
// transaction that adds membership for the guarded key — the natural
// check-then-insert shape — as the accounts layer does.
func (tx *Tx) Lookup(tableName, indexName, indexKey string) ([]string, error) {
	if tx.done {
		return nil, ErrTxDone
	}
	t, err := tx.s.table(tableName)
	if err != nil {
		return nil, err
	}
	raw, err := t.lookupIndex(indexName, indexKey)
	if err != nil {
		return nil, err
	}
	t.mu.RLock()
	ix := t.indexes[indexName]
	t.mu.RUnlock()
	tx.ixReads = append(tx.ixReads, ixRead{table: tableName, index: indexName, key: indexKey, result: raw})

	match := make(map[string]bool, len(raw))
	for _, k := range raw {
		match[k] = true
	}
	if ov, ok := tx.overlay[tableName]; ok {
		for k, vp := range ov {
			delete(match, k) // superseded by overlay
			if vp != nil {
				for _, ik := range ix.fn(k, *vp) {
					if ik == indexKey {
						match[k] = true
					}
				}
			}
		}
	}
	keys := make([]string, 0, len(match))
	for k := range match {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys, nil
}

// Scan iterates the table inside the transaction, observing staged writes,
// in sorted key order. The whole-table read is validated at commit by the
// table's version counter (with every stripe locked), so any concurrent
// mutation of the table conflicts.
func (tx *Tx) Scan(tableName string, visit func(key string, value []byte) bool) error {
	if tx.done {
		return ErrTxDone
	}
	t, err := tx.s.table(tableName)
	if err != nil {
		return err
	}
	t.lockAllStripes()
	if tx.scans == nil {
		tx.scans = make(map[string]uint64)
	}
	if _, seen := tx.scans[tableName]; !seen {
		tx.scans[tableName] = t.version.Load()
	}
	snapshot := make(map[string][]byte)
	for i := range t.stripes {
		for k, r := range t.stripes[i].rows {
			snapshot[k] = r.value
		}
	}
	t.unlockAllStripes()

	ov := tx.overlay[tableName]
	keys := make([]string, 0, len(snapshot)+len(ov))
	seen := make(map[string]bool, len(snapshot)+len(ov))
	for k := range snapshot {
		if vp, staged := ov[k]; staged && vp == nil {
			continue // deleted in tx
		}
		keys = append(keys, k)
		seen[k] = true
	}
	for k, vp := range ov {
		if vp != nil && !seen[k] {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		var v []byte
		if vp, staged := ov[k]; staged {
			v = *vp
		} else {
			v = snapshot[k]
		}
		if !visit(k, v) {
			break
		}
	}
	return nil
}
