package db

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func newTestStore(t *testing.T) *Store {
	t.Helper()
	s := MustOpenMemory()
	if err := s.CreateTable("accounts"); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCreateTableDuplicate(t *testing.T) {
	s := newTestStore(t)
	if err := s.CreateTable("accounts"); !errors.Is(err, ErrDupTable) {
		t.Fatalf("duplicate create: %v", err)
	}
	if err := s.EnsureTable("accounts"); err != nil {
		t.Fatalf("EnsureTable existing: %v", err)
	}
	if err := s.EnsureTable("other"); err != nil {
		t.Fatalf("EnsureTable new: %v", err)
	}
	got := s.Tables()
	if len(got) != 2 || got[0] != "accounts" || got[1] != "other" {
		t.Fatalf("Tables() = %v", got)
	}
}

func TestBasicCRUD(t *testing.T) {
	s := newTestStore(t)
	err := s.Update(func(tx *Tx) error {
		return tx.Insert("accounts", "a1", []byte("v1"))
	})
	if err != nil {
		t.Fatal(err)
	}
	v, err := s.Get("accounts", "a1")
	if err != nil || string(v) != "v1" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	if _, err := s.Get("accounts", "missing"); !errors.Is(err, ErrNoRecord) {
		t.Fatalf("missing Get err = %v", err)
	}
	if _, err := s.Get("nope", "a1"); !errors.Is(err, ErrNoTable) {
		t.Fatalf("missing table err = %v", err)
	}
	err = s.Update(func(tx *Tx) error {
		if err := tx.Put("accounts", "a1", []byte("v2")); err != nil {
			return err
		}
		return tx.Delete("accounts", "a1")
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("accounts", "a1"); !errors.Is(err, ErrNoRecord) {
		t.Fatalf("after delete err = %v", err)
	}
}

func TestInsertDuplicateFails(t *testing.T) {
	s := newTestStore(t)
	must(t, s.Update(func(tx *Tx) error { return tx.Insert("accounts", "a1", []byte("x")) }))
	err := s.Update(func(tx *Tx) error { return tx.Insert("accounts", "a1", []byte("y")) })
	if !errors.Is(err, ErrExists) {
		t.Fatalf("dup insert err = %v", err)
	}
	// Duplicate within the same tx.
	err = s.Update(func(tx *Tx) error {
		if err := tx.Insert("accounts", "b", []byte("1")); err != nil {
			return err
		}
		return tx.Insert("accounts", "b", []byte("2"))
	})
	if !errors.Is(err, ErrExists) {
		t.Fatalf("same-tx dup insert err = %v", err)
	}
	// Rolled back: b should not exist.
	if _, err := s.Get("accounts", "b"); !errors.Is(err, ErrNoRecord) {
		t.Fatalf("rolled-back insert visible: %v", err)
	}
}

func TestDeleteMissingFails(t *testing.T) {
	s := newTestStore(t)
	err := s.Update(func(tx *Tx) error { return tx.Delete("accounts", "ghost") })
	if !errors.Is(err, ErrNoRecord) {
		t.Fatalf("delete missing err = %v", err)
	}
}

func TestRollbackDiscards(t *testing.T) {
	s := newTestStore(t)
	tx, err := s.Begin()
	if err != nil {
		t.Fatal(err)
	}
	must(t, tx.Put("accounts", "a1", []byte("staged")))
	tx.Rollback()
	if _, err := s.Get("accounts", "a1"); !errors.Is(err, ErrNoRecord) {
		t.Fatalf("rollback leaked write: %v", err)
	}
	// Double rollback and post-done ops are safe/fail cleanly.
	tx.Rollback()
	if err := tx.Put("accounts", "x", nil); !errors.Is(err, ErrTxDone) {
		t.Fatalf("put after done: %v", err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrTxDone) {
		t.Fatalf("commit after done: %v", err)
	}
}

func TestTxReadsOwnWrites(t *testing.T) {
	s := newTestStore(t)
	err := s.Update(func(tx *Tx) error {
		if err := tx.Put("accounts", "k", []byte("v")); err != nil {
			return err
		}
		v, err := tx.Get("accounts", "k")
		if err != nil || string(v) != "v" {
			return fmt.Errorf("tx read own write: %q %v", v, err)
		}
		if err := tx.Delete("accounts", "k"); err != nil {
			return err
		}
		if _, err := tx.Get("accounts", "k"); !errors.Is(err, ErrNoRecord) {
			return fmt.Errorf("tx read own delete: %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIndexLookup(t *testing.T) {
	s := newTestStore(t)
	// index by value prefix before ':'
	must(t, s.CreateIndex("accounts", "byOwner", func(key string, v []byte) []string {
		owner, _, ok := strings.Cut(string(v), ":")
		if !ok {
			return nil
		}
		return []string{owner}
	}))
	must(t, s.Update(func(tx *Tx) error {
		for i, owner := range []string{"alice", "bob", "alice"} {
			if err := tx.Insert("accounts", fmt.Sprintf("a%d", i), []byte(owner+":data")); err != nil {
				return err
			}
		}
		return nil
	}))
	keys, err := s.Lookup("accounts", "byOwner", "alice")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 || keys[0] != "a0" || keys[1] != "a2" {
		t.Fatalf("Lookup(alice) = %v", keys)
	}
	// Update changes index membership.
	must(t, s.Update(func(tx *Tx) error { return tx.Put("accounts", "a0", []byte("carol:data")) }))
	keys, _ = s.Lookup("accounts", "byOwner", "alice")
	if len(keys) != 1 || keys[0] != "a2" {
		t.Fatalf("after move, Lookup(alice) = %v", keys)
	}
	keys, _ = s.Lookup("accounts", "byOwner", "carol")
	if len(keys) != 1 || keys[0] != "a0" {
		t.Fatalf("Lookup(carol) = %v", keys)
	}
	// Delete removes from index.
	must(t, s.Update(func(tx *Tx) error { return tx.Delete("accounts", "a2") }))
	keys, _ = s.Lookup("accounts", "byOwner", "alice")
	if len(keys) != 0 {
		t.Fatalf("after delete, Lookup(alice) = %v", keys)
	}
	if _, err := s.Lookup("accounts", "noidx", "x"); !errors.Is(err, ErrNoIndex) {
		t.Fatalf("missing index err = %v", err)
	}
}

func TestIndexBackfillAndDuplicate(t *testing.T) {
	s := newTestStore(t)
	must(t, s.Update(func(tx *Tx) error { return tx.Insert("accounts", "a", []byte("x:1")) }))
	ixfn := func(k string, v []byte) []string { p, _, _ := strings.Cut(string(v), ":"); return []string{p} }
	must(t, s.CreateIndex("accounts", "p", ixfn))
	keys, err := s.Lookup("accounts", "p", "x")
	if err != nil || len(keys) != 1 {
		t.Fatalf("backfill lookup = %v, %v", keys, err)
	}
	if err := s.CreateIndex("accounts", "p", ixfn); !errors.Is(err, ErrDupIndex) {
		t.Fatalf("dup index err = %v", err)
	}
	if err := s.CreateIndex("nope", "p", ixfn); !errors.Is(err, ErrNoTable) {
		t.Fatalf("index on missing table err = %v", err)
	}
}

func TestTxLookupSeesOverlay(t *testing.T) {
	s := newTestStore(t)
	ixfn := func(k string, v []byte) []string { p, _, _ := strings.Cut(string(v), ":"); return []string{p} }
	must(t, s.CreateIndex("accounts", "p", ixfn))
	must(t, s.Update(func(tx *Tx) error { return tx.Insert("accounts", "a", []byte("x:1")) }))
	err := s.Update(func(tx *Tx) error {
		if err := tx.Insert("accounts", "b", []byte("x:2")); err != nil {
			return err
		}
		if err := tx.Delete("accounts", "a"); err != nil {
			return err
		}
		keys, err := tx.Lookup("accounts", "p", "x")
		if err != nil {
			return err
		}
		if len(keys) != 1 || keys[0] != "b" {
			return fmt.Errorf("tx lookup = %v, want [b]", keys)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScan(t *testing.T) {
	s := newTestStore(t)
	must(t, s.Update(func(tx *Tx) error {
		for _, k := range []string{"c", "a", "b"} {
			if err := tx.Insert("accounts", k, []byte(k)); err != nil {
				return err
			}
		}
		return nil
	}))
	var order []string
	must(t, s.Scan("accounts", func(k string, v []byte) bool {
		order = append(order, k)
		return true
	}))
	if strings.Join(order, "") != "abc" {
		t.Fatalf("scan order = %v", order)
	}
	// early stop
	order = nil
	must(t, s.Scan("accounts", func(k string, v []byte) bool {
		order = append(order, k)
		return len(order) < 2
	}))
	if len(order) != 2 {
		t.Fatalf("early-stop scan = %v", order)
	}
	n, err := s.Count("accounts")
	if err != nil || n != 3 {
		t.Fatalf("Count = %d, %v", n, err)
	}
}

func TestTxScanSeesOverlay(t *testing.T) {
	s := newTestStore(t)
	must(t, s.Update(func(tx *Tx) error {
		must(t, tx.Insert("accounts", "a", []byte("1")))
		return tx.Insert("accounts", "b", []byte("2"))
	}))
	err := s.Update(func(tx *Tx) error {
		must(t, tx.Delete("accounts", "a"))
		must(t, tx.Insert("accounts", "c", []byte("3")))
		var got []string
		if err := tx.Scan("accounts", func(k string, v []byte) bool {
			got = append(got, k+"="+string(v))
			return true
		}); err != nil {
			return err
		}
		if strings.Join(got, ",") != "b=2,c=3" {
			return fmt.Errorf("tx scan = %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestUpdateRollsBackOnError(t *testing.T) {
	s := newTestStore(t)
	sentinel := errors.New("boom")
	err := s.Update(func(tx *Tx) error {
		must(t, tx.Put("accounts", "a", []byte("x")))
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("Update err = %v", err)
	}
	if _, err := s.Get("accounts", "a"); !errors.Is(err, ErrNoRecord) {
		t.Fatal("failed Update leaked a write")
	}
}

func TestConcurrentTransfersConserveSum(t *testing.T) {
	s := newTestStore(t)
	const nAcct = 8
	must(t, s.Update(func(tx *Tx) error {
		for i := 0; i < nAcct; i++ {
			if err := tx.Insert("accounts", fmt.Sprintf("a%d", i), []byte{100}); err != nil {
				return err
			}
		}
		return nil
	}))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				from := fmt.Sprintf("a%d", (seed+i)%nAcct)
				to := fmt.Sprintf("a%d", (seed+i+1)%nAcct)
				_ = s.Update(func(tx *Tx) error {
					fv, err := tx.Get("accounts", from)
					if err != nil {
						return err
					}
					tv, err := tx.Get("accounts", to)
					if err != nil {
						return err
					}
					if fv[0] == 0 {
						return nil
					}
					if err := tx.Put("accounts", from, []byte{fv[0] - 1}); err != nil {
						return err
					}
					return tx.Put("accounts", to, []byte{tv[0] + 1})
				})
			}
		}(g)
	}
	wg.Wait()
	total := 0
	must(t, s.Scan("accounts", func(k string, v []byte) bool {
		total += int(v[0])
		return true
	}))
	if total != nAcct*100 {
		t.Fatalf("sum after concurrent transfers = %d, want %d", total, nAcct*100)
	}
}

func TestClosedStore(t *testing.T) {
	s := newTestStore(t)
	must(t, s.Close())
	must(t, s.Close()) // idempotent
	if _, err := s.Get("accounts", "x"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Get on closed = %v", err)
	}
	if err := s.CreateTable("t"); !errors.Is(err, ErrClosed) {
		t.Fatalf("CreateTable on closed = %v", err)
	}
	if _, err := s.Begin(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Begin on closed = %v", err)
	}
	if _, err := s.Snapshot(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Snapshot on closed = %v", err)
	}
	if _, err := s.Count("accounts"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Count on closed = %v", err)
	}
	if err := s.Scan("accounts", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Scan on closed = %v", err)
	}
	if _, err := s.Lookup("accounts", "i", "k"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Lookup on closed = %v", err)
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func TestGetReturnsDefensiveCopy(t *testing.T) {
	s := newTestStore(t)
	must(t, s.Update(func(tx *Tx) error { return tx.Insert("accounts", "a1", []byte("original")) }))
	v, err := s.Get("accounts", "a1")
	if err != nil {
		t.Fatal(err)
	}
	copy(v, "MUTATED!")
	got, err := s.Get("accounts", "a1")
	if err != nil || string(got) != "original" {
		t.Fatalf("store aliased reader mutation: %q, %v", got, err)
	}
}

func TestTxGetReturnsDefensiveCopy(t *testing.T) {
	s := newTestStore(t)
	must(t, s.Update(func(tx *Tx) error { return tx.Insert("accounts", "a1", []byte("original")) }))
	must(t, s.Update(func(tx *Tx) error {
		v, err := tx.Get("accounts", "a1")
		if err != nil {
			return err
		}
		copy(v, "MUTATED!")
		// Re-read within the same tx and from a fresh read path.
		v2, err := tx.Get("accounts", "a1")
		if err != nil || string(v2) != "original" {
			t.Fatalf("tx read aliased mutation: %q, %v", v2, err)
		}
		return nil
	}))
	got, _ := s.Get("accounts", "a1")
	if string(got) != "original" {
		t.Fatalf("store corrupted through tx read alias: %q", got)
	}
}

func TestConcurrentCreateAccountPhantom(t *testing.T) {
	// Two racing transactions both check an index for a key and insert
	// when absent — exactly the accounts-by-certificate uniqueness
	// check. The predicate validation must let exactly one win per
	// round.
	s := newTestStore(t)
	must(t, s.CreateIndex("accounts", "byName", func(k string, v []byte) []string {
		return []string{string(v)}
	}))
	const rounds = 50
	var created, refused atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				name := fmt.Sprintf("dup%d", i)
				err := s.Update(func(tx *Tx) error {
					keys, err := tx.Lookup("accounts", "byName", name)
					if err != nil {
						return err
					}
					if len(keys) > 0 {
						return fmt.Errorf("taken: %w", ErrExists)
					}
					return tx.Insert("accounts", fmt.Sprintf("g%d-%s", g, name), []byte(name))
				})
				if err == nil {
					created.Add(1)
				} else if errors.Is(err, ErrExists) {
					refused.Add(1)
				}
			}
		}(g)
	}
	wg.Wait()
	if created.Load() != rounds {
		t.Fatalf("created %d accounts for %d names (phantom duplicates!)", created.Load(), rounds)
	}
}
