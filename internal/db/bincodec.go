package db

import (
	"bytes"
	"fmt"
	"math"

	"gridbank/internal/wire"
)

// Binary entry-batch encoding, shared by the bin1 journal generation
// and the replica stream's binary frames (one encoder for "a batch of
// WAL entries" everywhere it crosses a boundary):
//
//	count:u32 × ( seq:u64 op:u8 table:u16-str key:u16-str value:u32-blob )
//
// The op byte compresses the three built-in operations; 0 escapes to a
// u16-length string for any future op. Integers are big-endian. A
// zero-length value decodes to nil, matching what a JSON round trip of
// an omitempty field produces.
const (
	binOpOther       = 0
	binOpCreateTable = 1
	binOpPut         = 2
	binOpDelete      = 3
)

func binOpByte(op Op) byte {
	switch op {
	case OpCreateTable:
		return binOpCreateTable
	case OpPut:
		return binOpPut
	case OpDelete:
		return binOpDelete
	}
	return binOpOther
}

// AppendEntriesBinary appends the binary encoding of an entry batch.
func AppendEntriesBinary(buf *bytes.Buffer, entries []Entry) error {
	if len(entries) > math.MaxUint32 {
		return fmt.Errorf("db: %d entries in one batch", len(entries))
	}
	appendU32(buf, uint32(len(entries)))
	for i := range entries {
		e := &entries[i]
		appendU64(buf, e.Seq)
		b := binOpByte(e.Op)
		buf.WriteByte(b)
		if b == binOpOther {
			if err := appendStr16(buf, string(e.Op)); err != nil {
				return err
			}
		}
		if err := appendStr16(buf, e.Table); err != nil {
			return err
		}
		if err := appendStr16(buf, e.Key); err != nil {
			return err
		}
		if len(e.Value) > math.MaxUint32 {
			return fmt.Errorf("db: %d-byte value in entry %d", len(e.Value), e.Seq)
		}
		appendU32(buf, uint32(len(e.Value)))
		buf.Write(e.Value)
	}
	return nil
}

// DecodeEntriesBinary parses a payload produced by AppendEntriesBinary.
// The payload may be pooled scratch: everything kept is copied.
func DecodeEntriesBinary(payload []byte) ([]Entry, error) {
	r := wire.NewBinReader(payload)
	n := r.U32()
	if err := r.Err(); err != nil {
		return nil, err
	}
	// Cap the pre-allocation: n is attacker-/corruption-controlled.
	entries := make([]Entry, 0, min(int(n), 4096))
	for i := uint32(0); i < n; i++ {
		var e Entry
		e.Seq = r.U64()
		switch b := r.U8(); b {
		case binOpCreateTable:
			e.Op = OpCreateTable
		case binOpPut:
			e.Op = OpPut
		case binOpDelete:
			e.Op = OpDelete
		case binOpOther:
			e.Op = Op(r.Str16())
		default:
			return nil, fmt.Errorf("db: unknown binary entry op 0x%02x", b)
		}
		e.Table = r.Str16()
		e.Key = r.Str16()
		e.Value = r.Blob32()
		if err := r.Err(); err != nil {
			return nil, err
		}
		entries = append(entries, e)
	}
	if err := r.Close(); err != nil {
		return nil, err
	}
	return entries, nil
}

// Local append helpers (db avoids exporting these from wire's frame
// layer; the byte layout is trivial and the duplication is three
// one-liners).

func appendU32(buf *bytes.Buffer, v uint32) {
	buf.Write([]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
}

func appendU64(buf *bytes.Buffer, v uint64) {
	buf.Write([]byte{
		byte(v >> 56), byte(v >> 48), byte(v >> 40), byte(v >> 32),
		byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v),
	})
}

func appendStr16(buf *bytes.Buffer, s string) error {
	if len(s) > math.MaxUint16 {
		return fmt.Errorf("db: string field exceeds %d bytes", math.MaxUint16)
	}
	buf.Write([]byte{byte(len(s) >> 8), byte(len(s))})
	buf.WriteString(s)
	return nil
}
