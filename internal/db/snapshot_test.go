package db

import (
	"bytes"
	"fmt"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

func TestSnapshotRoundTripFidelity(t *testing.T) {
	j := NewMemJournal()
	s, err := Open(j)
	if err != nil {
		t.Fatal(err)
	}
	must(t, s.CreateTable("accounts"))
	must(t, s.CreateTable("transfers"))
	must(t, s.Update(func(tx *Tx) error {
		if err := tx.Put("accounts", "a", []byte{0x00, 0xff, 0x7f}); err != nil {
			return err
		}
		if err := tx.Put("accounts", "b", []byte(`{"balance":42}`)); err != nil {
			return err
		}
		return tx.Put("transfers", "t1", []byte("a->b"))
	}))
	must(t, s.Update(func(tx *Tx) error { return tx.Delete("accounts", "a") }))

	sn, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := sn.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Seq != sn.Seq || back.Seq != s.CurrentSeq() {
		t.Fatalf("seq: serialized %d, original %d, store %d", back.Seq, sn.Seq, s.CurrentSeq())
	}
	if !reflect.DeepEqual(back.Tables, sn.Tables) {
		t.Fatalf("tables diverge after round trip:\n got %v\nwant %v", back.Tables, sn.Tables)
	}
	// A store rebuilt from the snapshot serves identical state,
	// including the deletion.
	s2, err := OpenFromSnapshot(back, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Get("accounts", "a"); err == nil {
		t.Fatal("deleted record resurrected by snapshot restore")
	}
	v, err := s2.Get("accounts", "b")
	if err != nil || string(v) != `{"balance":42}` {
		t.Fatalf("restored value = %q, %v", v, err)
	}
	if got := s2.Tables(); len(got) != 2 {
		t.Fatalf("restored tables = %v", got)
	}
}

// TestSnapshotConsistentCutUnderConcurrentWriters drives balance-
// preserving transfers while snapshotting: every snapshot must show the
// conserved total, never a cut between a debit and its credit.
func TestSnapshotConsistentCutUnderConcurrentWriters(t *testing.T) {
	s := MustOpenMemory()
	must(t, s.CreateTable("acct"))
	const nAcct, unit = 8, 100
	for i := 0; i < nAcct; i++ {
		key := fmt.Sprintf("a%d", i)
		must(t, s.Update(func(tx *Tx) error { return tx.Put("acct", key, []byte{unit}) }))
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				from := fmt.Sprintf("a%d", (seed+i)%nAcct)
				to := fmt.Sprintf("a%d", (seed+i+3)%nAcct)
				if from == to {
					continue
				}
				_ = s.Update(func(tx *Tx) error {
					fv, err := tx.Get("acct", from)
					if err != nil {
						return err
					}
					tv, err := tx.Get("acct", to)
					if err != nil {
						return err
					}
					if fv[0] == 0 || tv[0] == 255 {
						return nil
					}
					if err := tx.Put("acct", from, []byte{fv[0] - 1}); err != nil {
						return err
					}
					return tx.Put("acct", to, []byte{tv[0] + 1})
				})
			}
		}(g)
	}
	for round := 0; round < 25; round++ {
		sn, err := s.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, v := range sn.Tables["acct"] {
			total += int(v[0])
		}
		if total != nAcct*unit {
			close(stop)
			wg.Wait()
			t.Fatalf("snapshot %d shows total %d, want %d — cut is not consistent", round, total, nAcct*unit)
		}
	}
	close(stop)
	wg.Wait()
}

func TestSnapshotOfFailedStoreReturnsStopError(t *testing.T) {
	j := &failingGroupJournal{memJournal: memJournal{failAt: -1}}
	s, err := Open(j)
	if err != nil {
		t.Fatal(err)
	}
	must(t, s.CreateTable("t"))
	j.failWait = true
	if err := s.Update(func(tx *Tx) error { return tx.Put("t", "k", []byte("v")) }); err == nil {
		t.Fatal("commit with failing flush succeeded")
	}
	if _, err := s.Snapshot(); err == nil {
		t.Fatal("Snapshot on fail-stopped store succeeded")
	}
	if _, err := s.SnapshotSince(0); err == nil {
		t.Fatal("SnapshotSince on fail-stopped store succeeded")
	}
}

func TestSnapshotSinceCurrentFollowerGetsNil(t *testing.T) {
	j := NewMemJournal()
	s, err := Open(j)
	if err != nil {
		t.Fatal(err)
	}
	must(t, s.CreateTable("t"))
	must(t, s.Update(func(tx *Tx) error { return tx.Put("t", "k", []byte("v")) }))
	seq := s.CurrentSeq()

	// Fresh follower (seq 0): always a full snapshot.
	sn, err := s.SnapshotSince(0)
	if err != nil || sn == nil {
		t.Fatalf("SnapshotSince(0) = %v, %v; want full snapshot", sn, err)
	}
	// Current follower: nil, the stream alone carries the tail.
	sn, err = s.SnapshotSince(seq)
	if err != nil || sn != nil {
		t.Fatalf("SnapshotSince(current) = %v, %v; want nil", sn, err)
	}
	// Behind: full snapshot.
	must(t, s.Update(func(tx *Tx) error { return tx.Put("t", "k2", []byte("v2")) }))
	sn, err = s.SnapshotSince(seq)
	if err != nil || sn == nil || sn.Seq != s.CurrentSeq() {
		t.Fatalf("SnapshotSince(behind) = %+v, %v; want snapshot at head", sn, err)
	}
	// Ahead (diverged follower): full snapshot, not an error.
	sn, err = s.SnapshotSince(s.CurrentSeq() + 10)
	if err != nil || sn == nil {
		t.Fatalf("SnapshotSince(ahead) = %v, %v; want full snapshot", sn, err)
	}
}

func TestCheckpointRestartReplaysOnlyTail(t *testing.T) {
	dir := t.TempDir()
	wal := filepath.Join(dir, "ledger.wal")
	ckpt := filepath.Join(dir, "ledger.ckpt")

	j, err := OpenFileJournal(wal, false)
	if err != nil {
		t.Fatal(err)
	}
	s, err := OpenWithCheckpoint(ckpt, j) // no checkpoint yet: plain open
	if err != nil {
		t.Fatal(err)
	}
	must(t, s.CreateTable("t"))
	must(t, s.Update(func(tx *Tx) error { return tx.Put("t", "early", []byte("e")) }))
	ckptSeq, err := s.Checkpoint(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if ckptSeq != s.CurrentSeq() {
		t.Fatalf("checkpoint seq %d, store seq %d", ckptSeq, s.CurrentSeq())
	}
	must(t, s.Update(func(tx *Tx) error { return tx.Put("t", "late", []byte("l")) }))
	must(t, s.Close())

	j2, err := OpenFileJournal(wal, false)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := OpenWithCheckpoint(ckpt, j2)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for k, want := range map[string]string{"early": "e", "late": "l"} {
		v, err := s2.Get("t", k)
		if err != nil || string(v) != want {
			t.Fatalf("after checkpointed restart, %s = %q, %v", k, v, err)
		}
	}
	if s2.CurrentSeq() <= ckptSeq {
		t.Fatalf("restarted seq %d not past checkpoint %d", s2.CurrentSeq(), ckptSeq)
	}
}

// TestOpenFromSnapshotSkipsCoveredJournalPrefix proves the tail-only
// replay contract: journal entries at or below the snapshot's sequence
// are not re-applied (the snapshot's state wins over any stale prefix).
func TestOpenFromSnapshotSkipsCoveredJournalPrefix(t *testing.T) {
	j := NewMemJournal()
	must(t, j.AppendBatch([]Entry{{Seq: 1, Op: OpCreateTable, Table: "t"}}))
	must(t, j.AppendBatch([]Entry{{Seq: 2, Op: OpPut, Table: "t", Key: "k", Value: []byte("stale")}}))
	must(t, j.AppendBatch([]Entry{{Seq: 3, Op: OpPut, Table: "t", Key: "tail", Value: []byte("applied")}}))
	sn := &Snapshot{Seq: 2, Tables: map[string]map[string][]byte{
		"t": {"k": []byte("checkpointed")},
	}}
	s, err := OpenFromSnapshot(sn, j)
	if err != nil {
		t.Fatal(err)
	}
	v, err := s.Get("t", "k")
	if err != nil || string(v) != "checkpointed" {
		t.Fatalf("covered prefix re-applied: k = %q, %v (want checkpointed)", v, err)
	}
	v, err = s.Get("t", "tail")
	if err != nil || string(v) != "applied" {
		t.Fatalf("tail not applied: %q, %v", v, err)
	}
}
