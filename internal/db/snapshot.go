package db

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// Snapshot is a point-in-time copy of the whole store, suitable for
// backup, branch bootstrapping (a new VO bank starts from a snapshot of
// the parent), and compacting a long journal.
type Snapshot struct {
	Seq    uint64                       `json:"seq"`
	Tables map[string]map[string][]byte `json:"tables"`
}

// Snapshot captures the current state of every table.
func (s *Store) Snapshot() (*Snapshot, error) {
	if err := s.failedErr(); err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	// Lock every table's stripes (tables in sorted order, stripes in
	// index order — the same global order commits use) so the copy is
	// one consistent cross-table cut, then release as we go.
	names := make([]string, 0, len(s.tables))
	for n := range s.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		s.tables[n].lockAllStripes()
	}
	snap := &Snapshot{Seq: s.seq.Load(), Tables: make(map[string]map[string][]byte, len(s.tables))}
	for _, n := range names {
		t := s.tables[n]
		rows := make(map[string][]byte)
		for i := range t.stripes {
			for k, r := range t.stripes[i].rows {
				rows[k] = cloneBytes(r.value)
			}
		}
		snap.Tables[n] = rows
		t.unlockAllStripes()
	}
	return snap, nil
}

// WriteTo serializes the snapshot as JSON.
func (sn *Snapshot) WriteTo(w io.Writer) (int64, error) {
	b, err := json.Marshal(sn)
	if err != nil {
		return 0, err
	}
	n, err := w.Write(b)
	return int64(n), err
}

// ReadSnapshot parses a snapshot previously produced by WriteTo.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	b, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	var sn Snapshot
	if err := json.Unmarshal(b, &sn); err != nil {
		return nil, fmt.Errorf("db: snapshot decode: %w", err)
	}
	return &sn, nil
}

// SnapshotSince returns the bootstrap artifact for a replica whose
// state already reflects every entry up to fromSeq. A follower that is
// current (fromSeq equals the store's sequence) gets nil — the commit
// stream alone carries its tail. Any other follower — fresh (fromSeq
// zero), behind, or ahead (it outran a primary that lost its tail) —
// gets a full snapshot: the store keeps no per-sequence history, so
// state it cannot bridge over the stream is cheapest to ship whole.
//
// Callers must subscribe to the commit stream *before* calling this,
// so entries sequenced after the returned snapshot's cut are guaranteed
// to be in the subscription buffer.
func (s *Store) SnapshotSince(fromSeq uint64) (*Snapshot, error) {
	if err := s.failedErr(); err != nil {
		return nil, err
	}
	// forceSnap: a publish-then-journal-failure burned sequence numbers
	// without changing state, so seq equality no longer implies equal
	// history — a follower at fromSeq may hold entries this store never
	// applied. Full snapshot resets it.
	if fromSeq != 0 && !s.forceSnap.Load() && s.seq.Load() == fromSeq {
		return nil, nil
	}
	return s.Snapshot()
}

// SaveSnapshotFile writes the store's snapshot to path atomically
// (write-temp-then-rename).
func (s *Store) SaveSnapshotFile(path string) error {
	sn, err := s.Snapshot()
	if err != nil {
		return err
	}
	return writeSnapshotFile(sn, path)
}

// Checkpoint writes a point-in-time snapshot to path and returns its
// sequence number. A store later opened with OpenWithCheckpoint(path,
// journal) restores from the checkpoint and applies only the journal
// entries sequenced after it — a restart (or a replica bootstrap from
// the same file) no longer replays the full history.
func (s *Store) Checkpoint(path string) (uint64, error) {
	sn, err := s.Snapshot()
	if err != nil {
		return 0, err
	}
	if err := writeSnapshotFile(sn, path); err != nil {
		return 0, err
	}
	return sn.Seq, nil
}

// OpenWithCheckpoint opens a store from a checkpoint file plus the
// journal holding writes made after the checkpoint was taken. A missing
// checkpoint file degrades to a plain Open (full journal replay), so
// first boots and checkpoint-less deployments need no special casing.
func OpenWithCheckpoint(checkpointPath string, journal Journal) (*Store, error) {
	f, err := os.Open(checkpointPath)
	if os.IsNotExist(err) {
		return Open(journal)
	}
	if err != nil {
		return nil, fmt.Errorf("db: open checkpoint: %w", err)
	}
	defer f.Close()
	sn, err := ReadSnapshot(f)
	if err != nil {
		return nil, fmt.Errorf("db: checkpoint %s: %w", checkpointPath, err)
	}
	return OpenFromSnapshot(sn, journal)
}

func writeSnapshotFile(sn *Snapshot, path string) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o600)
	if err != nil {
		return err
	}
	if _, err := sn.WriteTo(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	// The rename is directory metadata: without fsyncing the directory
	// it may not survive power loss. Callers (gridbankd) compact the
	// journal right after a checkpoint, so a vanished rename plus a
	// truncated journal would lose the whole ledger.
	dir, err := os.Open(filepath.Dir(path))
	if err != nil {
		return err
	}
	if err := dir.Sync(); err != nil {
		dir.Close()
		return err
	}
	return dir.Close()
}

// OpenFromSnapshot builds a store from a snapshot plus an optional journal
// holding writes made after the snapshot was taken. Journal entries with
// Seq <= snapshot Seq are skipped (already reflected in the snapshot).
func OpenFromSnapshot(sn *Snapshot, journal Journal) (*Store, error) {
	s := &Store{tables: make(map[string]*table), journal: journal, instance: newInstanceID()}
	s.seq.Store(sn.Seq)
	for name, rows := range sn.Tables {
		t := newTable(name)
		for k, v := range rows {
			t.stripes[stripeFor(k)].rows[k] = &row{value: cloneBytes(v)}
		}
		s.tables[name] = t
	}
	if journal != nil {
		err := journal.Replay(func(e Entry) error {
			if e.Seq != 0 && e.Seq <= sn.Seq {
				return nil
			}
			return s.applyEntry(e)
		})
		if err != nil {
			return nil, fmt.Errorf("db: post-snapshot replay: %w", err)
		}
	}
	return s, nil
}
