package db

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"strings"
	"time"
)

// Snapshot is a point-in-time copy of the whole store, suitable for
// backup, branch bootstrapping (a new VO bank starts from a snapshot of
// the parent), and compacting a long journal.
type Snapshot struct {
	Seq    uint64                       `json:"seq"`
	Tables map[string]map[string][]byte `json:"tables"`
}

// Snapshot captures the current state of every table.
func (s *Store) Snapshot() (*Snapshot, error) {
	if err := s.failedErr(); err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	// Lock every table's stripes (tables in sorted order, stripes in
	// index order — the same global order commits use) so the copy is
	// one consistent cross-table cut, then release as we go.
	names := make([]string, 0, len(s.tables))
	for n := range s.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		s.tables[n].lockAllStripes()
	}
	snap := &Snapshot{Seq: s.seq.Load(), Tables: make(map[string]map[string][]byte, len(s.tables))}
	for _, n := range names {
		t := s.tables[n]
		rows := make(map[string][]byte)
		for i := range t.stripes {
			for k, r := range t.stripes[i].rows {
				rows[k] = cloneBytes(r.value)
			}
		}
		snap.Tables[n] = rows
		t.unlockAllStripes()
	}
	return snap, nil
}

// WriteTo serializes the snapshot as JSON.
func (sn *Snapshot) WriteTo(w io.Writer) (int64, error) {
	b, err := json.Marshal(sn)
	if err != nil {
		return 0, err
	}
	n, err := w.Write(b)
	return int64(n), err
}

// ReadSnapshot parses a snapshot previously produced by WriteTo (plain
// JSON) or a checksummed checkpoint file image (see the format notes at
// ckptMagic).
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	b, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	sn, _, err := decodeCheckpoint(b)
	return sn, err
}

// SnapshotSince returns the bootstrap artifact for a replica whose
// state already reflects every entry up to fromSeq. A follower that is
// current (fromSeq equals the store's sequence) gets nil — the commit
// stream alone carries its tail. Any other follower — fresh (fromSeq
// zero), behind, or ahead (it outran a primary that lost its tail) —
// gets a full snapshot: the store keeps no per-sequence history, so
// state it cannot bridge over the stream is cheapest to ship whole.
//
// Callers must subscribe to the commit stream *before* calling this,
// so entries sequenced after the returned snapshot's cut are guaranteed
// to be in the subscription buffer.
func (s *Store) SnapshotSince(fromSeq uint64) (*Snapshot, error) {
	if err := s.failedErr(); err != nil {
		return nil, err
	}
	// forceSnap: a publish-then-journal-failure burned sequence numbers
	// without changing state, so seq equality no longer implies equal
	// history — a follower at fromSeq may hold entries this store never
	// applied. Full snapshot resets it.
	if fromSeq != 0 && !s.forceSnap.Load() && s.seq.Load() == fromSeq {
		return nil, nil
	}
	return s.Snapshot()
}

// SaveSnapshotFile writes the store's snapshot to path atomically
// (write-temp-then-rename), in the checksummed checkpoint format.
// Unlike Checkpoint it does not rotate generations: a backup target is
// overwritten in place.
func (s *Store) SaveSnapshotFile(path string) error {
	sn, err := s.Snapshot()
	if err != nil {
		return err
	}
	return writeSnapshotFile(OSFS(), sn, path, false)
}

// Checkpoint writes a point-in-time snapshot to path and returns its
// sequence number. A store later opened with OpenWithCheckpoint(path,
// journal) restores from the checkpoint and applies only the journal
// entries sequenced after it — a restart (or a replica bootstrap from
// the same file) no longer replays the full history.
//
// Generations: an existing intact checkpoint at path is rotated to
// path+".1" first (one previous generation is kept), so a checkpoint
// that rots on disk after the journal is compacted never strands the
// deployment without any bootable history. An existing checkpoint that
// fails verification is moved aside to path+".corrupt" instead — it
// must not clobber a possibly-good previous generation.
func (s *Store) Checkpoint(path string) (uint64, error) {
	return s.CheckpointFS(OSFS(), path)
}

// CheckpointFS is Checkpoint over an explicit filesystem — the seam the
// diskfault package injects faults through.
func (s *Store) CheckpointFS(fsys FS, path string) (uint64, error) {
	sn, err := s.Snapshot()
	if err != nil {
		return 0, err
	}
	if err := writeSnapshotFile(fsys, sn, path, true); err != nil {
		return 0, err
	}
	return sn.Seq, nil
}

// Checkpoint file format ("gen1"):
//
//	#GBCKPT1 len=<body bytes> crc=<crc32-ieee hex>\n
//	<body: the JSON snapshot>
//	\n#GBCKPTE seq=<seq>\n
//
// The header's CRC covers exactly the body, so at-rest bit rot anywhere
// in the state is detected at boot; the trailer is written last, so a
// torn write (crash mid-checkpoint, before the atomic rename this file
// normally hides behind) is detected even when the tear falls on a
// block boundary the CRC read would miss. The trailer repeats the
// snapshot sequence as a cross-check against header/body confusion.
//
// The magic's first byte '#' can never open a JSON value, so legacy
// headerless checkpoints (raw JSON, written before this format) remain
// distinguishable and loadable — pinned by regression tests.
const (
	ckptMagic        = "#GBCKPT1 "
	ckptTrailerMagic = "#GBCKPTE "
)

// ErrCheckpointCorrupt tags a checkpoint file that failed verification:
// bad CRC, torn trailer, malformed header, or undecodable body.
var ErrCheckpointCorrupt = errors.New("db: checkpoint corrupt")

// ErrNoIntactHistory is the typed boot refusal: no checkpoint
// generation survives verification AND the journal does not cover the
// missing span, so any state the store could produce would silently
// roll back acked history. Operators diagnose with `gbadmin fsck`.
var ErrNoIntactHistory = errors.New("db: no intact source of history")

// encodeCheckpoint renders a snapshot in the checkpoint file format.
func encodeCheckpoint(sn *Snapshot) ([]byte, error) {
	body, err := json.Marshal(sn)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	buf.Grow(len(body) + 64)
	fmt.Fprintf(&buf, "%slen=%d crc=%08x\n", ckptMagic, len(body), crc32.ChecksumIEEE(body))
	buf.Write(body)
	fmt.Fprintf(&buf, "\n%sseq=%d\n", ckptTrailerMagic, sn.Seq)
	return buf.Bytes(), nil
}

// decodeCheckpoint parses and verifies a checkpoint image. legacy
// reports that the image predates the checksummed format (raw JSON —
// nothing to verify beyond parsing). Verification failures wrap
// ErrCheckpointCorrupt.
func decodeCheckpoint(b []byte) (sn *Snapshot, legacy bool, err error) {
	if !bytes.HasPrefix(b, []byte(ckptMagic)) {
		// Legacy headerless checkpoint: the whole file is the JSON body.
		var s Snapshot
		if err := json.Unmarshal(b, &s); err != nil {
			return nil, true, fmt.Errorf("%w: legacy body: %v", ErrCheckpointCorrupt, err)
		}
		return &s, true, nil
	}
	nl := bytes.IndexByte(b, '\n')
	if nl < 0 {
		return nil, false, fmt.Errorf("%w: torn header", ErrCheckpointCorrupt)
	}
	var bodyLen int
	var crc uint32
	if _, err := fmt.Sscanf(string(b[len(ckptMagic):nl]), "len=%d crc=%08x", &bodyLen, &crc); err != nil {
		return nil, false, fmt.Errorf("%w: malformed header: %v", ErrCheckpointCorrupt, err)
	}
	rest := b[nl+1:]
	if bodyLen < 0 || len(rest) < bodyLen {
		return nil, false, fmt.Errorf("%w: truncated body (%d of %d bytes)", ErrCheckpointCorrupt, len(rest), bodyLen)
	}
	body, tail := rest[:bodyLen], rest[bodyLen:]
	var trailerSeq uint64
	if _, err := fmt.Sscanf(string(tail), "\n"+ckptTrailerMagic+"seq=%d\n", &trailerSeq); err != nil {
		return nil, false, fmt.Errorf("%w: missing or torn trailer", ErrCheckpointCorrupt)
	}
	if got := crc32.ChecksumIEEE(body); got != crc {
		return nil, false, fmt.Errorf("%w: body crc %08x, header says %08x", ErrCheckpointCorrupt, got, crc)
	}
	var s Snapshot
	if err := json.Unmarshal(body, &s); err != nil {
		return nil, false, fmt.Errorf("%w: body decode: %v", ErrCheckpointCorrupt, err)
	}
	if s.Seq != trailerSeq {
		return nil, false, fmt.Errorf("%w: body seq %d, trailer says %d", ErrCheckpointCorrupt, s.Seq, trailerSeq)
	}
	return &s, false, nil
}

// readCheckpointFile loads and verifies one checkpoint generation.
// Missing files return os.ErrNotExist; verification failures wrap
// ErrCheckpointCorrupt.
func readCheckpointFile(fsys FS, path string) (*Snapshot, bool, error) {
	f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return nil, false, err
	}
	defer f.Close()
	b, err := io.ReadAll(f)
	if err != nil {
		return nil, false, err
	}
	return decodeCheckpoint(b)
}

// writeSnapshotFile writes sn to path atomically: encode to path+".tmp",
// fsync, rename into place, fsync the directory (the rename is
// directory metadata — without the dir fsync it may not survive power
// loss, and callers compact the journal right after a checkpoint, so a
// vanished rename plus a truncated journal would lose the whole
// ledger). The temp file is removed on every failure path, and with
// rotate an intact existing checkpoint is preserved as path+".1".
func writeSnapshotFile(fsys FS, sn *Snapshot, path string, rotate bool) error {
	img, err := encodeCheckpoint(sn)
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o600)
	if err != nil {
		return err
	}
	cleanup := func(err error) error {
		fsys.Remove(tmp) // best effort: never leave a stale .tmp behind
		return err
	}
	if _, err := f.Write(img); err != nil {
		f.Close()
		return cleanup(err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		return cleanup(err)
	}
	if rotate {
		if err := rotateCheckpoint(fsys, path); err != nil {
			return cleanup(err)
		}
	}
	if err := fsys.Rename(tmp, path); err != nil {
		return cleanup(err)
	}
	if err := syncParentDir(fsys, path); err != nil {
		return cleanup(err)
	}
	return nil
}

// rotateCheckpoint moves an existing checkpoint at path out of the way
// before a new one is renamed in: an intact (or legacy) generation
// becomes path+".1" — the fallback OpenWithCheckpoint boots from if the
// new file later rots — while a corrupt one is moved aside to
// path+".corrupt" so it can never clobber a possibly-good previous
// generation (rotating garbage over the only intact fallback would turn
// a recoverable fault into data loss).
func rotateCheckpoint(fsys FS, path string) error {
	if _, err := fsys.Stat(path); err != nil {
		if os.IsNotExist(err) {
			return nil // first checkpoint ever: nothing to rotate
		}
		return err
	}
	dest := path + ".1"
	if _, _, err := readCheckpointFile(fsys, path); err != nil {
		dest = path + ".corrupt"
	}
	return fsys.Rename(path, dest)
}

// BootInfo reports how OpenWithCheckpointFS recovered the store: which
// checkpoint generation (if any) it restored from, and any fallbacks it
// took on the way. Generation 0 is <path>, generation 1 is <path>.1,
// and -1 means no checkpoint was used (full journal replay).
type BootInfo struct {
	// Generation actually restored from (-1: plain journal replay).
	Generation int
	// Path of the restored checkpoint ("" when Generation is -1).
	Path string
	// Seq of the restored checkpoint (0 when Generation is -1).
	Seq uint64
	// Legacy reports a headerless pre-checksum checkpoint.
	Legacy bool
	// ModTime of the restored checkpoint file (zero when none) — feeds
	// the db.checkpoint_age_seconds gauge.
	ModTime time.Time
	// Fallbacks lists what was skipped and why, in the order tried
	// (e.g. "ledger.ckpt: db: checkpoint corrupt: body crc ...").
	Fallbacks []string
}

// OpenWithCheckpoint opens a store from a checkpoint file plus the
// journal holding writes made after the checkpoint was taken. A missing
// checkpoint file degrades to a plain Open (full journal replay), so
// first boots and checkpoint-less deployments need no special casing.
//
// Fault tolerance — the fallback chain, each step verified before use:
//
//  1. <path> intact (CRC + trailer, or legacy headerless) and the
//     journal reaches back to it → restore + tail replay.
//  2. <path> corrupt or missing → <path>.1 (the previous generation),
//     if the journal still covers the span since it (the pre-Compact
//     crash window leaves exactly this shape) → restore + longer
//     journal replay.
//  3. Every generation corrupt but the journal intact from sequence 1 →
//     plain Open (full history replay).
//  4. Otherwise the boot refuses with ErrNoIntactHistory: any state it
//     could produce would silently roll back acked writes.
//
// Stale <path>.tmp files (a crash between checkpoint write and rename)
// are swept on open.
func OpenWithCheckpoint(checkpointPath string, journal Journal) (*Store, error) {
	s, _, err := OpenWithCheckpointFS(OSFS(), checkpointPath, journal)
	return s, err
}

// OpenWithCheckpointFS is OpenWithCheckpoint over an explicit
// filesystem, reporting how recovery went.
func OpenWithCheckpointFS(fsys FS, checkpointPath string, journal Journal) (*Store, *BootInfo, error) {
	info := &BootInfo{Generation: -1}
	// Sweep the stale temp file a crash between write and rename leaves
	// behind; it was never published, so it holds nothing durable.
	if _, err := fsys.Stat(checkpointPath + ".tmp"); err == nil {
		fsys.Remove(checkpointPath + ".tmp")
	}

	// One journal pre-pass: the first sequence number bounds how far
	// back the journal reaches, which decides whether a fallback
	// generation (or a full replay) can bridge to the present without a
	// gap. The pass also settles torn tails up front, exactly as the
	// final replay would.
	firstSeq, haveEntries, err := journalFirstSeq(journal)
	if err != nil {
		return nil, nil, fmt.Errorf("db: journal pre-scan: %w", err)
	}

	type gen struct {
		idx  int
		path string
	}
	gens := []gen{{0, checkpointPath}, {1, checkpointPath + ".1"}}
	newestExists := false
	for _, g := range gens {
		sn, legacy, err := readCheckpointFile(fsys, g.path)
		if err != nil {
			if os.IsNotExist(err) {
				if g.idx == 0 {
					continue // missing newest: rotation crash window, try .1
				}
				break // no older generation either
			}
			info.Fallbacks = append(info.Fallbacks, fmt.Sprintf("%s: %v", g.path, err))
			if g.idx == 0 {
				newestExists = true
			}
			continue
		}
		// Continuity: restoring from a generation at seq S needs journal
		// coverage from S+1 on. An empty journal proves continuity only
		// when nothing could have been compacted past this generation —
		// i.e. for the newest file, or for .1 when the newest was never
		// published (crash between the rotation renames). When the
		// newest file EXISTS but is corrupt, writes since this older
		// generation may already have been compacted away, so an empty
		// journal proves nothing and the gap must be assumed.
		if haveEntries && firstSeq > sn.Seq+1 {
			info.Fallbacks = append(info.Fallbacks,
				fmt.Sprintf("%s: journal starts at seq %d, past checkpoint seq %d+1 (span compacted away)", g.path, firstSeq, sn.Seq))
			continue
		}
		if !haveEntries && g.idx > 0 && newestExists {
			info.Fallbacks = append(info.Fallbacks,
				fmt.Sprintf("%s: journal empty and a newer (corrupt) generation exists — span since seq %d unprovable", g.path, sn.Seq))
			continue
		}
		st, err := OpenFromSnapshot(sn, journal)
		if err != nil {
			return nil, nil, fmt.Errorf("db: checkpoint %s: %w", g.path, err)
		}
		info.Generation = g.idx
		info.Path = g.path
		info.Seq = sn.Seq
		info.Legacy = legacy
		if fi, err := fsys.Stat(g.path); err == nil {
			info.ModTime = fi.ModTime()
		}
		return st, info, nil
	}

	// No usable generation. A journal covering full history (from seq 1)
	// still boots the true state; so does a completely fresh directory.
	if !haveEntries || firstSeq <= 1 {
		if len(info.Fallbacks) > 0 && haveEntries {
			// Corrupt checkpoints present, but the journal alone is the
			// whole history: plain open is exact.
		} else if len(info.Fallbacks) > 0 && !haveEntries {
			// Corrupt checkpoint(s) and an empty journal: whatever the
			// checkpoints held is gone. Refuse.
			return nil, nil, fmt.Errorf("%w: %s unreadable (%s) and journal empty; run `gbadmin fsck` on the data directory",
				ErrNoIntactHistory, checkpointPath, strings.Join(info.Fallbacks, "; "))
		}
		st, err := Open(journal)
		if err != nil {
			return nil, nil, err
		}
		return st, info, nil
	}
	return nil, nil, fmt.Errorf("%w: every checkpoint generation of %s failed verification (%s) and the journal only reaches back to seq %d; run `gbadmin fsck` on the data directory",
		ErrNoIntactHistory, checkpointPath, strings.Join(info.Fallbacks, "; "), firstSeq)
}

// journalFirstSeq scans the journal for its first (non-zero) sequence
// number. haveEntries is false for a nil or empty journal. The scan
// settles torn tails exactly as the boot replay that follows would.
func journalFirstSeq(journal Journal) (firstSeq uint64, haveEntries bool, err error) {
	if journal == nil {
		return 0, false, nil
	}
	err = journal.Replay(func(e Entry) error {
		haveEntries = true
		if firstSeq == 0 {
			firstSeq = e.Seq
		}
		return nil
	})
	if err != nil {
		return 0, false, err
	}
	if haveEntries && firstSeq == 0 {
		// Sequence-less entries predate the replication clock; they can
		// only be a whole-history journal.
		firstSeq = 1
	}
	return firstSeq, haveEntries, nil
}

// OpenFromSnapshot builds a store from a snapshot plus an optional journal
// holding writes made after the snapshot was taken. Journal entries with
// Seq <= snapshot Seq are skipped (already reflected in the snapshot).
func OpenFromSnapshot(sn *Snapshot, journal Journal) (*Store, error) {
	s := &Store{tables: make(map[string]*table), journal: journal, instance: newInstanceID()}
	s.seq.Store(sn.Seq)
	for name, rows := range sn.Tables {
		t := newTable(name)
		for k, v := range rows {
			t.stripes[stripeFor(k)].rows[k] = &row{value: cloneBytes(v)}
		}
		s.tables[name] = t
	}
	if journal != nil {
		err := journal.Replay(func(e Entry) error {
			if e.Seq != 0 && e.Seq <= sn.Seq {
				return nil
			}
			return s.applyEntry(e)
		})
		if err != nil {
			return nil, fmt.Errorf("db: post-snapshot replay: %w", err)
		}
	}
	return s, nil
}
