package db

import (
	"fmt"
	"path/filepath"
	"sync/atomic"
	"testing"
)

func benchStore(b *testing.B, j Journal) *Store {
	b.Helper()
	s, err := Open(j)
	if err != nil {
		b.Fatal(err)
	}
	if err := s.CreateTable("t"); err != nil {
		b.Fatal(err)
	}
	return s
}

func BenchmarkPutVolatile(b *testing.B) {
	s := benchStore(b, nil)
	val := []byte(`{"balance":"123.456789"}`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Update(func(tx *Tx) error {
			return tx.Put("t", fmt.Sprintf("k%d", i%1024), val)
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation: journal modes. The paper's bank wants durability; the
// simulator wants speed. These quantify the trade.
func BenchmarkPutJournalMem(b *testing.B) {
	s := benchStore(b, NewMemJournal())
	val := []byte(`{"balance":"123.456789"}`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Update(func(tx *Tx) error {
			return tx.Put("t", fmt.Sprintf("k%d", i%1024), val)
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPutJournalFileNoSync(b *testing.B) {
	j, err := OpenFileJournal(filepath.Join(b.TempDir(), "wal"), false)
	if err != nil {
		b.Fatal(err)
	}
	s := benchStore(b, j)
	val := []byte(`{"balance":"123.456789"}`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Update(func(tx *Tx) error {
			return tx.Put("t", fmt.Sprintf("k%d", i%1024), val)
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPutJournalFileSync(b *testing.B) {
	j, err := OpenFileJournal(filepath.Join(b.TempDir(), "wal"), true)
	if err != nil {
		b.Fatal(err)
	}
	s := benchStore(b, j)
	val := []byte(`{"balance":"123.456789"}`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Update(func(tx *Tx) error {
			return tx.Put("t", fmt.Sprintf("k%d", i%1024), val)
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelUpdateDisjointKeys measures concurrent single-put
// transactions on disjoint keys of one table — the upper bound on store
// write concurrency.
func BenchmarkParallelUpdateDisjointKeys(b *testing.B) {
	s := benchStore(b, nil)
	val := []byte(`{"balance":"123.456789"}`)
	var worker atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		w := worker.Add(1)
		i := 0
		for pb.Next() {
			i++
			key := fmt.Sprintf("w%d-k%d", w, i%1024)
			if err := s.Update(func(tx *Tx) error {
				return tx.Put("t", key, val)
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkParallelUpdateFileSync is the durable version: concurrent
// committers against one fsync-per-commit journal. Group commit should
// let N committers amortize a single fsync.
func BenchmarkParallelUpdateFileSync(b *testing.B) {
	j, err := OpenFileJournal(filepath.Join(b.TempDir(), "wal"), true)
	if err != nil {
		b.Fatal(err)
	}
	s := benchStore(b, j)
	val := []byte(`{"balance":"123.456789"}`)
	var worker atomic.Uint64
	b.SetParallelism(8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		w := worker.Add(1)
		i := 0
		for pb.Next() {
			i++
			key := fmt.Sprintf("w%d-k%d", w, i%1024)
			if err := s.Update(func(tx *Tx) error {
				return tx.Put("t", key, val)
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkParallelJournalAppendSync hits the journal directly with
// transfer-shaped batches (two rows) under fsync-per-batch durability.
func BenchmarkParallelJournalAppendSync(b *testing.B) {
	j, err := OpenFileJournal(filepath.Join(b.TempDir(), "wal"), true)
	if err != nil {
		b.Fatal(err)
	}
	defer j.Close()
	val := []byte(`{"balance":"123.456789"}`)
	var seq atomic.Uint64
	b.SetParallelism(8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			base := seq.Add(2)
			batch := []Entry{
				{Seq: base - 1, Op: OpPut, Table: "t", Key: "a", Value: val},
				{Seq: base, Op: OpPut, Table: "t", Key: "b", Value: val},
			}
			if err := j.AppendBatch(batch); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkParallelGet measures read scalability.
func BenchmarkParallelGet(b *testing.B) {
	s := benchStore(b, nil)
	if err := s.Update(func(tx *Tx) error {
		for i := 0; i < 1024; i++ {
			if err := tx.Put("t", fmt.Sprintf("k%d", i), []byte("v")); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			i++
			if _, err := s.Get("t", fmt.Sprintf("k%d", i%1024)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkGet(b *testing.B) {
	s := benchStore(b, nil)
	if err := s.Update(func(tx *Tx) error {
		for i := 0; i < 1024; i++ {
			if err := tx.Put("t", fmt.Sprintf("k%d", i), []byte("v")); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Get("t", fmt.Sprintf("k%d", i%1024)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIndexLookup(b *testing.B) {
	s := benchStore(b, nil)
	if err := s.CreateIndex("t", "byPrefix", func(k string, v []byte) []string {
		return []string{string(v[:1])}
	}); err != nil {
		b.Fatal(err)
	}
	if err := s.Update(func(tx *Tx) error {
		for i := 0; i < 1024; i++ {
			if err := tx.Put("t", fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("%d", i%16))); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Lookup("t", "byPrefix", "7"); err != nil {
			b.Fatal(err)
		}
	}
}
