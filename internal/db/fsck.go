package db

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"strings"
)

// Offline verification walkers — the machinery behind `gbadmin fsck`.
// Unlike Replay they are strictly read-only: a torn tail is reported,
// never truncated, so fsck can be pointed at a live or quarantined data
// directory without changing what the next boot will see.

// JournalReport is the result of one read-only journal walk.
type JournalReport struct {
	Path  string `json:"path"`
	Codec string `json:"codec"` // "json", "bin1", or "empty"
	// Batches and Entries count the intact prefix.
	Batches int `json:"batches"`
	Entries int `json:"entries"`
	// FirstSeq/LastSeq bound the intact prefix's sequence numbers
	// (0/0 when no sequenced entries exist).
	FirstSeq uint64 `json:"first_seq"`
	LastSeq  uint64 `json:"last_seq"`
	// GoodBytes is the size of the intact prefix; TornBytes counts
	// trailing bytes in a torn tail — a benign crash artifact that the
	// next open repairs by truncation.
	GoodBytes int64 `json:"good_bytes"`
	TornBytes int64 `json:"torn_bytes"`
	// MidFileCorrupt: a bad region is followed by intact batches. The
	// next open will refuse; manual repair is required.
	MidFileCorrupt bool `json:"mid_file_corrupt,omitempty"`
	// NonMonotonic: sequence numbers in the intact prefix go backwards
	// (ignoring seq-less legacy entries) — replay order is suspect.
	NonMonotonic bool `json:"non_monotonic,omitempty"`
}

// OK reports whether the journal is safe to boot from as-is (a torn
// tail is OK: the open repairs it and loses nothing acked).
func (r *JournalReport) OK() bool { return !r.MidFileCorrupt && !r.NonMonotonic }

// Verdict is the operator-facing one-liner.
func (r *JournalReport) Verdict() string {
	switch {
	case r.MidFileCorrupt:
		return fmt.Sprintf("CORRUPT mid-file after %d intact batches (%d bytes) — manual repair required", r.Batches, r.GoodBytes)
	case r.NonMonotonic:
		return "CORRUPT non-monotonic sequence numbers"
	case r.TornBytes > 0:
		return fmt.Sprintf("OK %d batches, seq %d..%d (%d-byte torn tail will truncate at next open)", r.Batches, r.FirstSeq, r.LastSeq, r.TornBytes)
	case r.Entries == 0:
		return "OK empty"
	default:
		return fmt.Sprintf("OK %d batches, %d entries, seq %d..%d", r.Batches, r.Entries, r.FirstSeq, r.LastSeq)
	}
}

// VerifyJournal walks a journal file read-only, verifying every batch
// (JSON parse, or bin1 CRC + decode) and classifying any damage the
// way Replay would, without repairing anything.
func VerifyJournal(fsys FS, path string) (*JournalReport, error) {
	f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	b, err := io.ReadAll(f)
	if err != nil {
		return nil, err
	}
	r := &JournalReport{Path: path, Codec: "empty"}
	if len(b) == 0 {
		return r, nil
	}
	if b[0] == binJournalMagic[0] {
		r.Codec = "bin1"
		verifyBinJournal(b, r)
	} else {
		r.Codec = "json"
		verifyJSONJournal(b, r)
	}
	return r, nil
}

func (r *JournalReport) noteBatch(entries []Entry, size int64) {
	r.Batches++
	r.Entries += len(entries)
	for _, e := range entries {
		if e.Seq == 0 {
			continue // legacy seq-less entry
		}
		if r.FirstSeq == 0 {
			r.FirstSeq = e.Seq
		}
		if e.Seq < r.LastSeq {
			r.NonMonotonic = true
		}
		r.LastSeq = e.Seq
	}
	r.GoodBytes += size
}

func verifyJSONJournal(b []byte, r *JournalReport) {
	rest := b
	for len(rest) > 0 {
		nl := bytes.IndexByte(rest, '\n')
		if nl < 0 {
			// Final line missing its newline: always a torn tail.
			r.TornBytes = int64(len(rest))
			return
		}
		line := rest[:nl]
		rest = rest[nl+1:]
		if len(line) == 0 {
			r.GoodBytes++
			continue
		}
		var batch []Entry
		if err := json.Unmarshal(line, &batch); err != nil {
			// A tear is by construction the last line; anything after a
			// bad line means mid-file corruption (mirrors Replay).
			if len(rest) > 0 {
				r.MidFileCorrupt = true
			} else {
				r.TornBytes = int64(len(line)) + 1
			}
			return
		}
		r.noteBatch(batch, int64(len(line))+1)
	}
}

func verifyBinJournal(b []byte, r *JournalReport) {
	if len(b) < len(binJournalMagic) || string(b[:len(binJournalMagic)]) != binJournalMagic {
		// Torn generation marker: the file died at creation.
		r.TornBytes = int64(len(b))
		return
	}
	r.GoodBytes = int64(len(binJournalMagic))
	rest := b[len(binJournalMagic):]
	for len(rest) > 0 {
		if len(rest) < binRecordHdrLen {
			r.TornBytes = int64(len(rest))
			return
		}
		n := binary.BigEndian.Uint32(rest[1:5])
		if rest[0] != binRecordMagic || n == 0 || n > maxJournalRecord {
			r.TornBytes = int64(len(rest))
			return
		}
		if len(rest) < binRecordHdrLen+int(n) {
			r.TornBytes = int64(len(rest))
			return
		}
		payload := rest[binRecordHdrLen : binRecordHdrLen+int(n)]
		var entries []Entry
		ok := false
		if crc32.ChecksumIEEE(payload) == binary.BigEndian.Uint32(rest[5:9]) {
			if dec, err := DecodeEntriesBinary(payload); err == nil {
				entries, ok = dec, true
			}
		}
		if !ok {
			// Mirror Replay: only a tear if no intact record follows.
			if binRecordFollows(rest[binRecordHdrLen+int(n):]) {
				r.MidFileCorrupt = true
			} else {
				r.TornBytes = int64(len(rest))
			}
			return
		}
		r.noteBatch(entries, int64(binRecordHdrLen)+int64(n))
		rest = rest[binRecordHdrLen+int(n):]
	}
}

// binRecordFollows reports whether buf opens with one complete,
// CRC-clean bin1 record.
func binRecordFollows(buf []byte) bool {
	if len(buf) < binRecordHdrLen {
		return false
	}
	n := binary.BigEndian.Uint32(buf[1:5])
	if buf[0] != binRecordMagic || n == 0 || n > maxJournalRecord {
		return false
	}
	if len(buf) < binRecordHdrLen+int(n) {
		return false
	}
	payload := buf[binRecordHdrLen : binRecordHdrLen+int(n)]
	return crc32.ChecksumIEEE(payload) == binary.BigEndian.Uint32(buf[5:9])
}

// CheckpointReport is the verdict on one checkpoint generation file.
type CheckpointReport struct {
	Path   string `json:"path"`
	Exists bool   `json:"exists"`
	OK     bool   `json:"ok"`
	Legacy bool   `json:"legacy,omitempty"`
	Seq    uint64 `json:"seq"`
	Size   int64  `json:"size"`
	Detail string `json:"detail,omitempty"` // failure reason when !OK
}

// Verdict is the operator-facing one-liner.
func (r *CheckpointReport) Verdict() string {
	switch {
	case !r.Exists:
		return "absent"
	case !r.OK:
		return "CORRUPT " + r.Detail
	case r.Legacy:
		return fmt.Sprintf("OK seq %d (legacy headerless format, %d bytes)", r.Seq, r.Size)
	default:
		return fmt.Sprintf("OK seq %d (crc verified, %d bytes)", r.Seq, r.Size)
	}
}

// VerifyCheckpoint loads and verifies one checkpoint generation file.
func VerifyCheckpoint(fsys FS, path string) *CheckpointReport {
	r := &CheckpointReport{Path: path}
	f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		if !os.IsNotExist(err) {
			r.Exists, r.Detail = true, err.Error()
		}
		return r
	}
	defer f.Close()
	r.Exists = true
	b, err := io.ReadAll(f)
	if err != nil {
		r.Detail = err.Error()
		return r
	}
	r.Size = int64(len(b))
	sn, legacy, err := decodeCheckpoint(b)
	if err != nil {
		r.Legacy = legacy
		r.Detail = strings.TrimPrefix(err.Error(), "db: checkpoint corrupt: ")
		return r
	}
	r.OK, r.Legacy, r.Seq = true, legacy, sn.Seq
	return r
}

// StoreFsck is the full offline verdict for one store: its journal and
// every checkpoint generation, plus the boot decision the fallback
// chain would make.
type StoreFsck struct {
	Name        string              `json:"name"`
	Journal     *JournalReport      `json:"journal"`
	Generations []*CheckpointReport `json:"generations"`
	// BootSource names what OpenWithCheckpoint would restore from:
	// "checkpoint <path>", "journal replay", or "NONE".
	BootSource string `json:"boot_source"`
	// Bootable is false when no intact source of history remains.
	Bootable bool `json:"bootable"`
}

// FsckStore runs the offline walk for one store (journal path + its
// checkpoint base path), mirroring OpenWithCheckpointFS's fallback
// decision without opening the store.
func FsckStore(fsys FS, name, walPath, ckptPath string) (*StoreFsck, error) {
	jr, err := VerifyJournal(fsys, walPath)
	if err != nil {
		if !os.IsNotExist(err) {
			return nil, err
		}
		jr = &JournalReport{Path: walPath, Codec: "empty"}
	}
	out := &StoreFsck{Name: name, Journal: jr}
	gens := []*CheckpointReport{
		VerifyCheckpoint(fsys, ckptPath),
		VerifyCheckpoint(fsys, ckptPath+".1"),
	}
	out.Generations = gens
	if q := VerifyCheckpoint(fsys, ckptPath+".corrupt"); q.Exists {
		out.Generations = append(out.Generations, q)
	}

	haveEntries := jr.Entries > 0
	if jr.MidFileCorrupt || jr.NonMonotonic {
		// A corrupted journal refuses to open regardless of checkpoints:
		// the tail past the corruption may hold acked history.
		out.BootSource, out.Bootable = "NONE", false
		return out, nil
	}
	newestExists := gens[0].Exists
	for i, g := range gens[:2] {
		if !g.OK {
			continue
		}
		if haveEntries && jr.FirstSeq > g.Seq+1 {
			continue // journal compacted past this generation
		}
		if !haveEntries && i > 0 && newestExists {
			continue // span since the older generation unprovable
		}
		out.BootSource, out.Bootable = "checkpoint "+g.Path, true
		return out, nil
	}
	if !haveEntries || jr.FirstSeq <= 1 {
		if !haveEntries && (gens[0].Exists && !gens[0].OK || gens[1].Exists && !gens[1].OK) {
			out.BootSource, out.Bootable = "NONE", false
			return out, nil
		}
		out.BootSource, out.Bootable = "journal replay", true
		return out, nil
	}
	out.BootSource, out.Bootable = "NONE", false
	return out, nil
}
