package db

import (
	"io"
	"os"
	"path/filepath"
)

// FS is the slice of the filesystem the storage layer touches: journal
// appends, checkpoint writes, the rename that publishes a checkpoint
// and the directory fsync that makes the rename durable. Production
// code uses OSFS; the diskfault package substitutes a deterministic
// fault-injecting implementation so every durability seam — group-
// commit flush, checkpoint write, rename, dir-fsync, Compact, spool
// WALs — can be killed and corrupted reproducibly from a seed.
type FS interface {
	// OpenFile opens a file with os.OpenFile semantics.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Rename atomically replaces newpath with oldpath. Like the real
	// syscall it is durable only after SyncDir on the parent.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// Stat reports file metadata.
	Stat(name string) (os.FileInfo, error)
	// ReadDir lists a directory (for stale-tmp sweeps and fsck walks).
	ReadDir(name string) ([]os.DirEntry, error)
	// SyncDir fsyncs a directory, making renames/removes in it durable.
	SyncDir(dir string) error
}

// File is the handle surface the storage layer needs from an open file.
// *os.File satisfies it.
type File interface {
	io.Reader
	io.Writer
	io.ReaderAt
	io.Seeker
	io.Closer
	Sync() error
	Truncate(size int64) error
	Stat() (os.FileInfo, error)
}

// osFS is the real filesystem.
type osFS struct{}

// OSFS returns the production filesystem implementation.
func OSFS() FS { return osFS{} }

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) Stat(name string) (os.FileInfo, error) { return os.Stat(name) }

func (osFS) ReadDir(name string) ([]os.DirEntry, error) { return os.ReadDir(name) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return err
	}
	return d.Close()
}

// syncParentDir fsyncs path's directory through fsys.
func syncParentDir(fsys FS, path string) error {
	return fsys.SyncDir(filepath.Dir(path))
}
