package economy

import (
	"fmt"
	"math"
	"sort"

	"gridbank/internal/currency"
)

// The §4.2 competitive-model price estimator. "GridBank's transaction
// history can assist in deciding how much a computational service is
// worth. Such transaction history is confidential and cannot be disclosed
// as is. Therefore GridBank would receive a description of the resource,
// process the information in its database regarding prices paid for
// resources of similar type, and then produce an estimate. The simplest
// approach to compare resources is to consider hardware parameters such
// as processor speed, number of processors, amount of main memory and
// secondary storage, network bandwidth."

// ResourceSpec is the hardware description a GSP submits for valuation.
type ResourceSpec struct {
	CPUMHz        float64 `json:"cpu_mhz"`
	Processors    float64 `json:"processors"`
	MemoryMB      float64 `json:"memory_mb"`
	StorageGB     float64 `json:"storage_gb"`
	BandwidthMbps float64 `json:"bandwidth_mbps"`
}

func (s ResourceSpec) features() [5]float64 {
	return [5]float64{s.CPUMHz, s.Processors, s.MemoryMB, s.StorageGB, s.BandwidthMbps}
}

// PricePoint is one observation distilled from the transaction history:
// a resource of the given spec traded at the given CPU-hour price. The
// estimator keeps only these points — the underlying transfers (who paid
// whom, for which job) never leave the bank, preserving the paper's
// confidentiality requirement.
type PricePoint struct {
	Spec  ResourceSpec
	Price currency.Amount // per CPU-hour
}

// Estimator produces market-value estimates by distance-weighted
// k-nearest-neighbour regression over hardware feature space. Features
// are normalized by the history's per-dimension spread so that MB-scale
// memory does not drown MHz-scale CPU speed.
type Estimator struct {
	points []PricePoint
	k      int
}

// NewEstimator builds an estimator over the history with the given
// neighbourhood size (k ≤ 0 defaults to 5).
func NewEstimator(history []PricePoint, k int) *Estimator {
	if k <= 0 {
		k = 5
	}
	pts := make([]PricePoint, len(history))
	copy(pts, history)
	return &Estimator{points: pts, k: k}
}

// Add appends an observation (e.g. after each settled transfer).
func (e *Estimator) Add(p PricePoint) { e.points = append(e.points, p) }

// Len returns the history size.
func (e *Estimator) Len() int { return len(e.points) }

// Estimate returns the estimated per-CPU-hour market price for the spec.
func (e *Estimator) Estimate(spec ResourceSpec) (currency.Amount, error) {
	if len(e.points) == 0 {
		return 0, ErrNoHistory
	}
	// Per-dimension normalization spans.
	var lo, hi [5]float64
	for d := 0; d < 5; d++ {
		lo[d], hi[d] = math.Inf(1), math.Inf(-1)
	}
	for _, p := range e.points {
		f := p.Spec.features()
		for d := 0; d < 5; d++ {
			lo[d] = math.Min(lo[d], f[d])
			hi[d] = math.Max(hi[d], f[d])
		}
	}
	span := func(d int) float64 {
		s := hi[d] - lo[d]
		if s <= 0 {
			return 1
		}
		return s
	}
	target := spec.features()
	type neighbour struct {
		dist  float64
		price currency.Amount
	}
	ns := make([]neighbour, 0, len(e.points))
	for _, p := range e.points {
		f := p.Spec.features()
		var d2 float64
		for d := 0; d < 5; d++ {
			diff := (f[d] - target[d]) / span(d)
			d2 += diff * diff
		}
		ns = append(ns, neighbour{dist: math.Sqrt(d2), price: p.Price})
	}
	sort.Slice(ns, func(i, j int) bool { return ns[i].dist < ns[j].dist })
	k := e.k
	if k > len(ns) {
		k = len(ns)
	}
	// Inverse-distance weighting; an exact match short-circuits.
	var wSum, pSum float64
	for _, n := range ns[:k] {
		if n.dist == 0 {
			return n.price, nil
		}
		w := 1 / n.dist
		wSum += w
		pSum += w * n.price.G()
	}
	if wSum == 0 {
		return 0, fmt.Errorf("economy: degenerate neighbourhood")
	}
	est := pSum / wSum
	return currency.FromMicro(int64(est * currency.Scale)), nil
}
