package economy

import (
	"errors"
	"fmt"
	"math"
	"testing"
	"time"

	"gridbank/internal/accounts"
	"gridbank/internal/currency"
	"gridbank/internal/db"
)

func newLedger(t *testing.T) *accounts.Manager {
	t.Helper()
	m, err := accounts.NewManager(db.MustOpenMemory(), accounts.Config{
		Now: func() time.Time { return time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC) },
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func newCommunity(t *testing.T, m *accounts.Manager, ratings []int) []*Participant {
	t.Helper()
	parts := make([]*Participant, len(ratings))
	for i, r := range ratings {
		a, err := m.CreateAccount(fmt.Sprintf("CN=p%d", i), "VO", currency.GridDollar)
		if err != nil {
			t.Fatal(err)
		}
		parts[i] = &Participant{
			Name:           fmt.Sprintf("CN=p%d", i),
			Account:        a.AccountID,
			RatingMIPS:     r,
			RatePerCPUHour: currency.FromG(1),
		}
	}
	return parts
}

func TestCoopSimValidation(t *testing.T) {
	m := newLedger(t)
	parts := newCommunity(t, m, []int{100})
	if _, err := NewCoopSim(m, parts, currency.FromG(10), nil, 1); !errors.Is(err, ErrTooFewParticipants) {
		t.Errorf("single participant err = %v", err)
	}
	m2 := newLedger(t)
	bad := newCommunity(t, m2, []int{100, 200})
	bad[0].RatingMIPS = 0
	if _, err := NewCoopSim(m2, bad, currency.FromG(10), nil, 1); err == nil {
		t.Error("zero rating accepted")
	}
}

func TestCoopBarterConservesMoney(t *testing.T) {
	m := newLedger(t)
	parts := newCommunity(t, m, []int{400, 800, 1200, 1600})
	sim, err := NewCoopSim(m, parts, currency.FromG(100), nil, 42)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.RunRounds(200, 360_000); err != nil {
		t.Fatal(err)
	}
	total, err := m.TotalBalance()
	if err != nil {
		t.Fatal(err)
	}
	if total != currency.FromG(400) {
		t.Fatalf("total = %s, want 400 (conservation)", total)
	}
	// Everyone both consumed and provided.
	for _, p := range parts {
		if p.Consumed.IsZero() || p.Provided.IsZero() {
			t.Errorf("%s consumed=%s provided=%s", p.Name, p.Consumed, p.Provided)
		}
	}
	// Slow resources charge more per unit of work (they run longer at
	// the same hourly rate): the figure-4 compensation effect. At equal
	// demand-weighted selection this shows up as per-job price, checked
	// directly:
	slowSec := int64(360_000 / 400)
	fastSec := int64(360_000 / 1600)
	if slowSec <= fastSec {
		t.Fatal("test setup broken")
	}
}

func TestCoopBrokeParticipantSkips(t *testing.T) {
	m := newLedger(t)
	parts := newCommunity(t, m, []int{100, 100})
	// Tiny initial allocation, expensive work: after funds run out the
	// round must not error, and balances never go negative.
	sim, err := NewCoopSim(m, parts, currency.MustParse("0.002"), nil, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.RunRounds(20, 3_600_00); err != nil {
		t.Fatal(err)
	}
	for _, p := range parts {
		a, _ := m.Details(p.Account)
		if a.AvailableBalance.IsNegative() {
			t.Fatalf("%s overdrew: %s", p.Name, a.AvailableBalance)
		}
	}
}

func TestEquilibriumRegulationBoundsSpread(t *testing.T) {
	// Unregulated: skewed demand (everyone prefers fast hardware) drifts
	// wealth. Regulated: the pricing authority keeps deviations bounded.
	run := func(authority *PricingAuthority, seed int64) float64 {
		m := newLedger(t)
		parts := newCommunity(t, m, []int{200, 400, 800, 3200})
		sim, err := NewCoopSim(m, parts, currency.FromG(100), authority, seed)
		if err != nil {
			t.Fatal(err)
		}
		if err := sim.RunRounds(400, 7_200_000); err != nil {
			t.Fatal(err)
		}
		spread, err := sim.BalanceSpread()
		if err != nil {
			t.Fatal(err)
		}
		return spread
	}
	unregulated := run(nil, 42)
	regulated := run(&PricingAuthority{Gain: 0.02}, 42)
	if regulated >= unregulated {
		t.Fatalf("authority did not reduce spread: regulated %.2f vs unregulated %.2f", regulated, unregulated)
	}
}

func TestPricingAuthorityDirectionAndClamps(t *testing.T) {
	m := newLedger(t)
	parts := newCommunity(t, m, []int{100, 100})
	// Fund and skew: p0 hoards, p1 is broke.
	for _, p := range parts {
		if err := m.Admin().Deposit(p.Account, currency.FromG(100)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Transfer(parts[1].Account, parts[0].Account, currency.FromG(80), accounts.TransferOptions{}); err != nil {
		t.Fatal(err)
	}
	auth := &PricingAuthority{Gain: 0.01}
	before0, before1 := parts[0].RatePerCPUHour, parts[1].RatePerCPUHour
	if err := auth.Rebalance(m, parts, currency.FromG(100)); err != nil {
		t.Fatal(err)
	}
	if parts[0].RatePerCPUHour.Cmp(before0) >= 0 {
		t.Errorf("hoarder's price did not fall: %s -> %s", before0, parts[0].RatePerCPUHour)
	}
	if parts[1].RatePerCPUHour.Cmp(before1) <= 0 {
		t.Errorf("broke participant's price did not rise: %s -> %s", before1, parts[1].RatePerCPUHour)
	}
	// Clamps: extreme deviation cannot push prices outside bounds.
	authExtreme := &PricingAuthority{Gain: 100, MinRate: currency.MustParse("0.5"), MaxRate: currency.FromG(2)}
	for i := 0; i < 10; i++ {
		if err := authExtreme.Rebalance(m, parts, currency.FromG(100)); err != nil {
			t.Fatal(err)
		}
	}
	if parts[0].RatePerCPUHour.Cmp(currency.MustParse("0.5")) < 0 {
		t.Errorf("price below floor: %s", parts[0].RatePerCPUHour)
	}
	if parts[1].RatePerCPUHour.Cmp(currency.FromG(2)) > 0 {
		t.Errorf("price above ceiling: %s", parts[1].RatePerCPUHour)
	}
}

// --- Estimator ---------------------------------------------------------------

func specs() []PricePoint {
	// Price roughly tracks CPU speed and processor count.
	return []PricePoint{
		{Spec: ResourceSpec{CPUMHz: 500, Processors: 2, MemoryMB: 512, StorageGB: 10, BandwidthMbps: 10}, Price: currency.FromG(1)},
		{Spec: ResourceSpec{CPUMHz: 1000, Processors: 4, MemoryMB: 1024, StorageGB: 50, BandwidthMbps: 100}, Price: currency.FromG(2)},
		{Spec: ResourceSpec{CPUMHz: 2000, Processors: 8, MemoryMB: 4096, StorageGB: 200, BandwidthMbps: 1000}, Price: currency.FromG(4)},
		{Spec: ResourceSpec{CPUMHz: 4000, Processors: 16, MemoryMB: 8192, StorageGB: 500, BandwidthMbps: 1000}, Price: currency.FromG(8)},
	}
}

func TestEstimatorExactMatch(t *testing.T) {
	e := NewEstimator(specs(), 3)
	got, err := e.Estimate(specs()[2].Spec)
	if err != nil {
		t.Fatal(err)
	}
	if got != currency.FromG(4) {
		t.Fatalf("exact match = %s", got)
	}
}

func TestEstimatorInterpolates(t *testing.T) {
	e := NewEstimator(specs(), 2)
	mid := ResourceSpec{CPUMHz: 1500, Processors: 6, MemoryMB: 2048, StorageGB: 100, BandwidthMbps: 500}
	got, err := e.Estimate(mid)
	if err != nil {
		t.Fatal(err)
	}
	// Between its two nearest neighbours (2 and 4 G$).
	if got.G() < 2 || got.G() > 4 {
		t.Fatalf("interpolated = %s, want within [2,4]", got)
	}
}

func TestEstimatorMonotoneInHardware(t *testing.T) {
	e := NewEstimator(specs(), 3)
	small, err := e.Estimate(ResourceSpec{CPUMHz: 600, Processors: 2, MemoryMB: 512, StorageGB: 20, BandwidthMbps: 10})
	if err != nil {
		t.Fatal(err)
	}
	big, err := e.Estimate(ResourceSpec{CPUMHz: 3500, Processors: 12, MemoryMB: 8000, StorageGB: 400, BandwidthMbps: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if small.Cmp(big) >= 0 {
		t.Fatalf("bigger hardware estimated cheaper: %s vs %s", small, big)
	}
}

func TestEstimatorEmptyAndAdd(t *testing.T) {
	e := NewEstimator(nil, 0)
	if _, err := e.Estimate(ResourceSpec{}); !errors.Is(err, ErrNoHistory) {
		t.Fatalf("empty err = %v", err)
	}
	e.Add(specs()[0])
	if e.Len() != 1 {
		t.Errorf("Len = %d", e.Len())
	}
	got, err := e.Estimate(ResourceSpec{CPUMHz: 999, Processors: 1, MemoryMB: 1, StorageGB: 1, BandwidthMbps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got != currency.FromG(1) {
		t.Fatalf("single-point estimate = %s", got)
	}
}

func TestEstimatorKLargerThanHistory(t *testing.T) {
	e := NewEstimator(specs()[:2], 10)
	got, err := e.Estimate(ResourceSpec{CPUMHz: 750, Processors: 3, MemoryMB: 768, StorageGB: 30, BandwidthMbps: 50})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(got.G()) || got.G() < 1 || got.G() > 2 {
		t.Fatalf("estimate = %s", got)
	}
}

func TestEstimatorIsolatedFromCallerSlice(t *testing.T) {
	hist := specs()
	e := NewEstimator(hist, 1)
	hist[0].Price = currency.FromG(999)
	got, err := e.Estimate(specs()[0].Spec)
	if err != nil {
		t.Fatal(err)
	}
	if got != currency.FromG(1) {
		t.Fatalf("estimator aliased caller history: %s", got)
	}
}
