// Package economy implements the GridBank operating models of §4: the
// co-operative model, where "all participants both consume and provide
// services" and barter through GridBank credits; the price-equilibrium
// regulation the paper calls for ("a community based resource valuation
// and pricing authority is needed to control prices"); and the
// competitive model's price estimator, which turns GridBank's
// confidential transaction history into a market-value estimate for a
// described resource (§4.2).
package economy

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"gridbank/internal/accounts"
	"gridbank/internal/currency"
)

// Errors.
var (
	ErrTooFewParticipants = errors.New("economy: co-operative model needs at least two participants")
	ErrNoHistory          = errors.New("economy: no transaction history to estimate from")
)

// Participant is one member of a co-operative community: simultaneously
// a GSP (with a resource) and a GSC (with work to run).
type Participant struct {
	// Name is the participant's certificate name.
	Name string
	// Account is the participant's GridBank account.
	Account accounts.ID
	// RatingMIPS is the speed of the participant's resource. Faster
	// hardware finishes the same work sooner ("although computations on
	// some resources are faster because of better hardware, the slower
	// resources have to compensate by running longer", Figure 4).
	RatingMIPS int
	// RatePerCPUHour is the participant's current asking price.
	RatePerCPUHour currency.Amount

	// Running tallies, maintained by the simulation:
	Consumed currency.Amount // total paid to others
	Provided currency.Amount // total earned from others
}

// CoopSim drives a co-operative bartering community over an in-process
// GridBank ledger. Each round, every participant consumes one unit of
// work from a provider chosen by demand preference and pays CPU-time ×
// the provider's rate; the ledger records every exchange, so Figure 4's
// "accounts show how much of Grid currency each client have consumed and
// provided" falls directly out of the books.
type CoopSim struct {
	mgr          *accounts.Manager
	participants []*Participant
	authority    *PricingAuthority // nil = unregulated
	rng          *rand.Rand
	initial      currency.Amount
}

// NewCoopSim creates a community. Each participant receives the initial
// credit allocation ("each participant may be initially allocated a
// certain amount of credits", §4.1). authority may be nil for an
// unregulated market.
func NewCoopSim(mgr *accounts.Manager, participants []*Participant, initial currency.Amount, authority *PricingAuthority, seed int64) (*CoopSim, error) {
	if len(participants) < 2 {
		return nil, ErrTooFewParticipants
	}
	for _, p := range participants {
		if p.RatingMIPS <= 0 || !p.RatePerCPUHour.IsPositive() {
			return nil, fmt.Errorf("economy: participant %s needs positive rating and rate", p.Name)
		}
		if err := mgr.Admin().Deposit(p.Account, initial); err != nil {
			return nil, fmt.Errorf("economy: initial allocation for %s: %w", p.Name, err)
		}
	}
	return &CoopSim{
		mgr:          mgr,
		participants: participants,
		authority:    authority,
		rng:          rand.New(rand.NewSource(seed)),
		initial:      initial,
	}, nil
}

// Participants returns the community members.
func (c *CoopSim) Participants() []*Participant { return c.participants }

// pickProvider selects where a consumer's next job goes. Demand is
// proportional to hardware speed: "in a global computing environment all
// users would prefer to use powerful resources" (§1). The consumer never
// selects itself.
func (c *CoopSim) pickProvider(consumer *Participant) *Participant {
	total := 0
	for _, p := range c.participants {
		if p != consumer {
			total += p.RatingMIPS
		}
	}
	n := c.rng.Intn(total)
	for _, p := range c.participants {
		if p == consumer {
			continue
		}
		n -= p.RatingMIPS
		if n < 0 {
			return p
		}
	}
	return nil // unreachable: weights are positive
}

// RunRound executes one bartering round: every participant consumes
// workMI million instructions of service from some provider. The charge
// is CPU-seconds × the provider's per-hour rate, settled through the
// ledger. A participant that cannot pay skips its consumption this round
// (it must earn first — the bartering discipline).
func (c *CoopSim) RunRound(workMI int64) error {
	for _, consumer := range c.participants {
		provider := c.pickProvider(consumer)
		cpuSec := workMI / int64(provider.RatingMIPS)
		if cpuSec < 1 {
			cpuSec = 1
		}
		rate := currency.Rate{MicroPerUnit: provider.RatePerCPUHour.Micro(), Unit: 3600}
		cost, err := rate.Charge(cpuSec)
		if err != nil {
			return err
		}
		if cost.IsZero() {
			continue
		}
		if _, err := c.mgr.Transfer(consumer.Account, provider.Account, cost, accounts.TransferOptions{}); err != nil {
			if errors.Is(err, accounts.ErrInsufficient) {
				continue // broke this round; earn first
			}
			return err
		}
		consumer.Consumed = consumer.Consumed.MustAdd(cost)
		provider.Provided = provider.Provided.MustAdd(cost)
	}
	if c.authority != nil {
		if err := c.authority.Rebalance(c.mgr, c.participants, c.initial); err != nil {
			return err
		}
	}
	return nil
}

// RunRounds executes n rounds.
func (c *CoopSim) RunRounds(n int, workMI int64) error {
	for i := 0; i < n; i++ {
		if err := c.RunRound(workMI); err != nil {
			return fmt.Errorf("economy: round %d: %w", i, err)
		}
	}
	return nil
}

// BalanceSpread reports the community's wealth dispersion: the maximum
// absolute deviation of any participant's balance from the initial
// allocation, in G$. Unregulated communities drift ("some participants
// ... have all the money while others ... have none", §4.1); the pricing
// authority keeps this bounded.
func (c *CoopSim) BalanceSpread() (float64, error) {
	var worst float64
	for _, p := range c.participants {
		a, err := c.mgr.Details(p.Account)
		if err != nil {
			return 0, err
		}
		dev := math.Abs(a.AvailableBalance.MustSub(c.initial).G())
		if dev > worst {
			worst = dev
		}
	}
	return worst, nil
}

// PricingAuthority is the §4.1 community pricing authority: it nudges
// each participant's asking price so that earnings track spending —
// participants hoarding credits get cheaper (attracting work is no longer
// needed; spending is), and broke participants get more expensive labour.
type PricingAuthority struct {
	// Gain is the proportional controller gain: the per-round fractional
	// price adjustment per G$ of balance deviation (default 0.01).
	Gain float64
	// MinRate / MaxRate clamp prices (defaults: 1/10 and 10× nothing —
	// callers should set sensible bounds; zero means 0.1 and 10 G$/h).
	MinRate currency.Amount
	MaxRate currency.Amount
}

// Rebalance adjusts every participant's rate toward equilibrium.
func (a *PricingAuthority) Rebalance(mgr *accounts.Manager, parts []*Participant, initial currency.Amount) error {
	gain := a.Gain
	if gain == 0 {
		gain = 0.01
	}
	minRate := a.MinRate
	if minRate == 0 {
		minRate = currency.MustParse("0.1")
	}
	maxRate := a.MaxRate
	if maxRate == 0 {
		maxRate = currency.FromG(10)
	}
	for _, p := range parts {
		acct, err := mgr.Details(p.Account)
		if err != nil {
			return err
		}
		devG := acct.AvailableBalance.MustSub(initial).G()
		// Positive deviation (hoarding) lowers the price; negative raises
		// it.
		factor := 1 - gain*devG
		if factor < 0.5 {
			factor = 0.5
		}
		if factor > 2.0 {
			factor = 2.0
		}
		newRate := currency.FromMicro(int64(float64(p.RatePerCPUHour.Micro()) * factor))
		if newRate.Cmp(minRate) < 0 {
			newRate = minRate
		}
		if newRate.Cmp(maxRate) > 0 {
			newRate = maxRate
		}
		p.RatePerCPUHour = newRate
	}
	return nil
}
