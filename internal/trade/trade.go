// Package trade implements the Grid Trade Server (GTS) of §2.1/§2.2 and
// the GRACE economic pricing models it draws prices from (Buyya et al.).
//
// The GTS is the resource owner's selling agent: it publishes posted
// rates, negotiates service cost with the Grid Resource Broker ("GRB
// interacts with GSP's Grid Trading Service to establish the cost of
// services"), and hands the agreed rates record to the GridBank Charging
// Module, which prices RURs against it ("GBCM obtains service rates for
// the user from the Grid Trade Server").
//
// Three pricing models are provided:
//
//   - PostedPrice: a fixed rate card (take it or leave it);
//   - CommodityMarket: prices drift with utilization — the paper's
//     supply-and-demand regulation ("when there is less demand for
//     resources, the price is lowered; when there is high demand, the
//     price is raised");
//   - bargaining: an alternating-offers negotiation protocol between GTS
//     and broker (see Negotiate).
package trade

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"gridbank/internal/currency"
	"gridbank/internal/pki"
	"gridbank/internal/rur"
)

// RatesContext domain-separates GSP-signed rate agreements.
const RatesContext = "gridbank/rates/v1"

// Errors.
var (
	ErrNoAgreement = errors.New("trade: negotiation failed to converge")
	ErrBadRates    = errors.New("trade: malformed rate card")
)

// PricingModel produces the GTS's current asking rates given the
// resource's load.
type PricingModel interface {
	// Rates returns the asking rate card for the given utilization in
	// [0,1].
	Rates(utilization float64) map[rur.Item]currency.Rate
	// Name identifies the model in experiment output.
	Name() string
}

// PostedPrice is a fixed-rate pricing model.
type PostedPrice struct {
	Card map[rur.Item]currency.Rate
}

// Rates returns the fixed card regardless of load.
func (p PostedPrice) Rates(float64) map[rur.Item]currency.Rate { return cloneRates(p.Card) }

// Name implements PricingModel.
func (PostedPrice) Name() string { return "posted" }

// CommodityMarket adjusts prices linearly around a target utilization:
// rate = base × (1 + Sensitivity × (utilization − Target)), floored at
// Floor × base. With Sensitivity 2 and Target 0.5, an idle resource
// halves its price and a saturated one doubles it — the supply-and-demand
// regulation of §1.
type CommodityMarket struct {
	Base        map[rur.Item]currency.Rate
	Target      float64 // utilization where price == base (default 0.5)
	Sensitivity float64 // price slope (default 1.0)
	Floor       float64 // minimum fraction of base (default 0.1)
}

// Rates implements PricingModel.
func (m CommodityMarket) Rates(utilization float64) map[rur.Item]currency.Rate {
	target := m.Target
	if target == 0 {
		target = 0.5
	}
	sens := m.Sensitivity
	if sens == 0 {
		sens = 1.0
	}
	floor := m.Floor
	if floor == 0 {
		floor = 0.1
	}
	u := math.Max(0, math.Min(1, utilization))
	factor := 1 + sens*(u-target)
	if factor < floor {
		factor = floor
	}
	out := make(map[rur.Item]currency.Rate, len(m.Base))
	const scale = 1_000_000
	for item, rate := range m.Base {
		out[item] = rate.Scale(int64(factor*scale), scale)
	}
	return out
}

// Name implements PricingModel.
func (CommodityMarket) Name() string { return "commodity" }

func cloneRates(in map[rur.Item]currency.Rate) map[rur.Item]currency.Rate {
	out := make(map[rur.Item]currency.Rate, len(in))
	for k, v := range in {
		out[k] = v
	}
	return out
}

// Server is a Grid Trade Server for one GSP.
type Server struct {
	mu          sync.Mutex
	identity    *pki.Identity
	model       PricingModel
	currency    currency.Code
	utilization float64
	now         func() time.Time
	quoteTTL    time.Duration
	agreements  map[string]*Agreement // by agreement ID (consumer+serial)
}

// ServerConfig configures a GTS.
type ServerConfig struct {
	// Identity signs rate agreements (the GSP's identity).
	Identity *pki.Identity
	// Model prices the resource; required.
	Model PricingModel
	// Currency rates are quoted in; default G$.
	Currency currency.Code
	// QuoteTTL bounds agreement validity; default 1h.
	QuoteTTL time.Duration
	// Now for timestamps; default time.Now.
	Now func() time.Time
}

// NewServer builds a GTS.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Identity == nil {
		return nil, errors.New("trade: GTS requires an identity")
	}
	if cfg.Model == nil {
		return nil, errors.New("trade: GTS requires a pricing model")
	}
	if cfg.Currency == "" {
		cfg.Currency = currency.GridDollar
	}
	if cfg.QuoteTTL <= 0 {
		cfg.QuoteTTL = time.Hour
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Server{
		identity:   cfg.Identity,
		model:      cfg.Model,
		currency:   cfg.Currency,
		quoteTTL:   cfg.QuoteTTL,
		now:        cfg.Now,
		agreements: make(map[string]*Agreement),
	}, nil
}

// SetUtilization feeds the current resource load into the pricing model.
func (s *Server) SetUtilization(u float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.utilization = math.Max(0, math.Min(1, u))
}

// Utilization returns the last reported load.
func (s *Server) Utilization() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.utilization
}

// ProviderCert returns the GSP certificate name rates are quoted by.
func (s *Server) ProviderCert() string { return s.identity.SubjectName() }

// CurrentRates returns the posted asking rates as an unsigned rate card.
func (s *Server) CurrentRates() *rur.RateCard {
	s.mu.Lock()
	defer s.mu.Unlock()
	return &rur.RateCard{
		Provider: s.identity.SubjectName(),
		Currency: s.currency,
		Rates:    s.model.Rates(s.utilization),
		Expires:  s.now().Add(s.quoteTTL),
	}
}

// Agreement is a concluded rate agreement: the rates record the GBCM
// prices RURs against. It is signed by the GSP for non-repudiation.
type Agreement struct {
	ID        string       `json:"id"`
	Consumer  string       `json:"consumer"` // GSC certificate name
	Card      rur.RateCard `json:"card"`
	Signed    *pki.Signed  `json:"signed"`
	Concluded time.Time    `json:"concluded"`
	Rounds    int          `json:"rounds"` // negotiation rounds taken (1 = posted price)
}

// Agree produces a signed agreement at the current posted rates (no
// negotiation — the consumer accepted the posted price).
func (s *Server) Agree(consumerCert string) (*Agreement, error) {
	card := s.CurrentRates()
	card.Consumer = consumerCert
	return s.concludeAgreement(consumerCert, card, 1)
}

func (s *Server) concludeAgreement(consumerCert string, card *rur.RateCard, rounds int) (*Agreement, error) {
	if err := card.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRates, err)
	}
	id, err := newAgreementID()
	if err != nil {
		return nil, err
	}
	signed, err := pki.Sign(s.identity, RatesContext, card)
	if err != nil {
		return nil, err
	}
	ag := &Agreement{
		ID:        id,
		Consumer:  consumerCert,
		Card:      *card,
		Signed:    signed,
		Concluded: s.now(),
		Rounds:    rounds,
	}
	s.mu.Lock()
	s.agreements[id] = ag
	s.mu.Unlock()
	return ag, nil
}

// Lookup returns a previously concluded agreement: the GBCM's "obtains
// service rates for the user from the Grid Trade Server" interface
// (§2.1).
func (s *Server) Lookup(id string) (*Agreement, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ag, ok := s.agreements[id]
	return ag, ok
}

// VerifyAgreement checks a signed rate card against the trust store and
// returns the signing GSP's subject.
func VerifyAgreement(ag *Agreement, ts *pki.TrustStore, now time.Time) (string, error) {
	if ag == nil || ag.Signed == nil {
		return "", errors.New("trade: missing agreement signature")
	}
	var card rur.RateCard
	signer, err := ag.Signed.Verify(ts, RatesContext, now, &card)
	if err != nil {
		return "", err
	}
	if signer != card.Provider {
		return "", fmt.Errorf("trade: agreement signed by %q but quotes provider %q", signer, card.Provider)
	}
	return signer, nil
}
