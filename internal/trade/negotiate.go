package trade

import (
	"crypto/rand"
	"encoding/base64"
	"fmt"

	"gridbank/internal/currency"
	"gridbank/internal/rur"
)

// The alternating-offers negotiation protocol of the GRACE framework
// ("Grid Open Trading protocols", §1): the broker (buyer) and the GTS
// (seller) exchange counter-offers on an aggregate price level until
// they cross or a round limit is hit. Offers scale the whole rate card
// uniformly; item-relative prices are the seller's business.

// NegotiationParams tune the protocol.
type NegotiationParams struct {
	// MaxRounds bounds the exchange; default 16.
	MaxRounds int
	// SellerConcession is the per-round multiplicative step the seller
	// takes toward its reserve (e.g. 0.94 lowers the ask 6% per round).
	SellerConcession float64
	// BuyerConcession is the per-round step the buyer takes upward
	// (e.g. 1.08 raises the bid 8% per round).
	BuyerConcession float64
}

func (p *NegotiationParams) defaults() {
	if p.MaxRounds <= 0 {
		p.MaxRounds = 16
	}
	if p.SellerConcession <= 0 || p.SellerConcession >= 1 {
		p.SellerConcession = 0.94
	}
	if p.BuyerConcession <= 1 {
		p.BuyerConcession = 1.08
	}
}

// BuyerStrategy is the broker side of the negotiation: its opening bid
// and ceiling as fractions of the seller's posted price level.
type BuyerStrategy struct {
	// OpenFraction is the opening bid as a fraction of the posted level
	// (default 0.5).
	OpenFraction float64
	// MaxFraction is the highest acceptable level (default 0.9): derived
	// from the user's budget by the broker.
	MaxFraction float64
}

func (b *BuyerStrategy) defaults() {
	if b.OpenFraction <= 0 {
		b.OpenFraction = 0.5
	}
	if b.MaxFraction <= 0 {
		b.MaxFraction = 0.9
	}
}

// NegotiationOutcome records how a negotiation went, for the experiment
// harness.
type NegotiationOutcome struct {
	Agreed        bool
	Rounds        int
	FinalFraction float64 // agreed price level as fraction of posted
}

// Negotiate runs the alternating-offers protocol between this GTS and a
// buyer strategy, concluding a signed agreement at the crossing level.
// The seller's reserve is SellerConcession^MaxRounds of posted — below
// that it walks away.
func (s *Server) Negotiate(consumerCert string, buyer BuyerStrategy, params NegotiationParams) (*Agreement, *NegotiationOutcome, error) {
	params.defaults()
	buyer.defaults()
	posted := s.CurrentRates()

	ask := 1.0                // seller's current level (fraction of posted)
	bid := buyer.OpenFraction // buyer's current level
	outcome := &NegotiationOutcome{}
	for round := 1; round <= params.MaxRounds; round++ {
		outcome.Rounds = round
		if bid >= ask {
			// Offers crossed: settle at the midpoint.
			level := (bid + ask) / 2
			return s.settle(consumerCert, posted, level, round, outcome)
		}
		// Seller concedes, then buyer (bounded by its ceiling).
		ask *= params.SellerConcession
		next := bid * params.BuyerConcession
		if next > buyer.MaxFraction {
			next = buyer.MaxFraction
		}
		bid = next
		if bid >= ask {
			level := (bid + ask) / 2
			outcome.Rounds = round
			return s.settle(consumerCert, posted, level, round, outcome)
		}
	}
	outcome.Agreed = false
	return nil, outcome, fmt.Errorf("%w: after %d rounds (ask %.3f, bid %.3f)", ErrNoAgreement, params.MaxRounds, ask, bid)
}

func (s *Server) settle(consumerCert string, posted *rur.RateCard, level float64, rounds int, outcome *NegotiationOutcome) (*Agreement, *NegotiationOutcome, error) {
	const scale = 1_000_000
	card := &rur.RateCard{
		Provider: posted.Provider,
		Consumer: consumerCert,
		Currency: posted.Currency,
		Expires:  posted.Expires,
		Rates:    make(map[rur.Item]currency.Rate, len(posted.Rates)),
	}
	for item, rate := range posted.Rates {
		card.Rates[item] = rate.Scale(int64(level*scale), scale)
	}
	ag, err := s.concludeAgreement(consumerCert, card, rounds)
	if err != nil {
		return nil, outcome, err
	}
	outcome.Agreed = true
	outcome.FinalFraction = level
	return ag, outcome, nil
}

func newAgreementID() (string, error) {
	var b [12]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", err
	}
	return base64.RawURLEncoding.EncodeToString(b[:]), nil
}
