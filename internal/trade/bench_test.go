package trade

import (
	"testing"
	"time"

	"gridbank/internal/pki"
)

func benchGTS(b *testing.B, model PricingModel) *Server {
	b.Helper()
	ca, err := pki.NewCA("CA", "VO", 24*time.Hour)
	if err != nil {
		b.Fatal(err)
	}
	gsp, err := ca.Issue(pki.IssueOptions{CommonName: "gsp"})
	if err != nil {
		b.Fatal(err)
	}
	s, err := NewServer(ServerConfig{Identity: gsp, Model: model})
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func BenchmarkAgreePosted(b *testing.B) {
	s := benchGTS(b, PostedPrice{Card: baseRates()})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Agree("CN=alice"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNegotiate(b *testing.B) {
	s := benchGTS(b, PostedPrice{Card: baseRates()})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.Negotiate("CN=alice", BuyerStrategy{}, NegotiationParams{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCommodityReprice(b *testing.B) {
	m := CommodityMarket{Base: baseRates(), Sensitivity: 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Rates(float64(i%100) / 100)
	}
}
