package trade

import (
	"errors"
	"testing"
	"time"

	"gridbank/internal/currency"
	"gridbank/internal/pki"
	"gridbank/internal/rur"
)

func baseRates() map[rur.Item]currency.Rate {
	return map[rur.Item]currency.Rate{
		rur.ItemCPU:     currency.PerHour(2 * currency.Scale),
		rur.ItemMemory:  currency.PerMBHour(1000),
		rur.ItemNetwork: currency.PerMB(10_000),
	}
}

func newGTS(t *testing.T, model PricingModel) (*Server, *pki.TrustStore) {
	t.Helper()
	ca, err := pki.NewCA("CA", "VO", 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	gsp, err := ca.Issue(pki.IssueOptions{CommonName: "gsp1", Organization: "VO"})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewServer(ServerConfig{Identity: gsp, Model: model})
	if err != nil {
		t.Fatal(err)
	}
	return s, pki.NewTrustStore(ca.Certificate())
}

func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer(ServerConfig{}); err == nil {
		t.Error("GTS without identity accepted")
	}
	ca, _ := pki.NewCA("CA", "VO", time.Hour)
	id, _ := ca.Issue(pki.IssueOptions{CommonName: "x"})
	if _, err := NewServer(ServerConfig{Identity: id}); err == nil {
		t.Error("GTS without model accepted")
	}
}

func TestPostedPriceModel(t *testing.T) {
	m := PostedPrice{Card: baseRates()}
	low, high := m.Rates(0.0), m.Rates(1.0)
	if low[rur.ItemCPU] != high[rur.ItemCPU] {
		t.Error("posted price varies with load")
	}
	if m.Name() != "posted" {
		t.Error("name")
	}
	// Returned map is a copy.
	low[rur.ItemCPU] = currency.PerHour(1)
	if m.Card[rur.ItemCPU] == low[rur.ItemCPU] {
		t.Error("Rates aliases the model's card")
	}
}

func TestCommodityMarketModel(t *testing.T) {
	m := CommodityMarket{Base: baseRates(), Target: 0.5, Sensitivity: 2, Floor: 0.1}
	idle := m.Rates(0.0)[rur.ItemCPU].MicroPerUnit
	mid := m.Rates(0.5)[rur.ItemCPU].MicroPerUnit
	busy := m.Rates(1.0)[rur.ItemCPU].MicroPerUnit
	base := baseRates()[rur.ItemCPU].MicroPerUnit
	if mid != base {
		t.Errorf("at target: %d != base %d", mid, base)
	}
	if idle >= mid || mid >= busy {
		t.Errorf("prices not monotone in demand: %d %d %d", idle, mid, busy)
	}
	if busy != 2*base {
		t.Errorf("saturated price = %d, want %d", busy, 2*base)
	}
	// Floor prevents free resources.
	steep := CommodityMarket{Base: baseRates(), Target: 0.9, Sensitivity: 10, Floor: 0.2}
	floorRate := steep.Rates(0)[rur.ItemCPU].MicroPerUnit
	if floorRate != base/5 {
		t.Errorf("floored = %d, want %d", floorRate, base/5)
	}
	// Defaults applied for zero-valued fields.
	d := CommodityMarket{Base: baseRates()}
	if d.Rates(0.5)[rur.ItemCPU].MicroPerUnit != base {
		t.Error("defaults broken")
	}
	// Out-of-range utilization clamped.
	if m.Rates(5.0)[rur.ItemCPU].MicroPerUnit != busy {
		t.Error("clamping broken")
	}
	if m.Name() != "commodity" {
		t.Error("name")
	}
}

func TestCurrentRatesAndUtilization(t *testing.T) {
	s, _ := newGTS(t, CommodityMarket{Base: baseRates(), Sensitivity: 2})
	s.SetUtilization(0.5)
	midCard := s.CurrentRates()
	if err := midCard.Validate(); err != nil {
		t.Fatal(err)
	}
	if midCard.Provider != s.ProviderCert() {
		t.Error("provider mismatch")
	}
	s.SetUtilization(1.0)
	if s.Utilization() != 1.0 {
		t.Error("utilization not stored")
	}
	busyCard := s.CurrentRates()
	if busyCard.Rates[rur.ItemCPU].MicroPerUnit <= midCard.Rates[rur.ItemCPU].MicroPerUnit {
		t.Error("price did not rise with demand")
	}
	s.SetUtilization(-3)
	if s.Utilization() != 0 {
		t.Error("clamping broken")
	}
}

func TestAgreeSignsPostedRates(t *testing.T) {
	s, ts := newGTS(t, PostedPrice{Card: baseRates()})
	ag, err := s.Agree("CN=alice,O=VO")
	if err != nil {
		t.Fatal(err)
	}
	signer, err := VerifyAgreement(ag, ts, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if signer != "CN=gsp1,O=VO" {
		t.Errorf("signer = %q", signer)
	}
	if ag.Card.Consumer != "CN=alice,O=VO" || ag.Rounds != 1 {
		t.Errorf("agreement = %+v", ag)
	}
	// Lookup round trip (the GBCM path).
	got, ok := s.Lookup(ag.ID)
	if !ok || got.ID != ag.ID {
		t.Error("lookup failed")
	}
	if _, ok := s.Lookup("nope"); ok {
		t.Error("phantom agreement")
	}
}

func TestVerifyAgreementRejections(t *testing.T) {
	s, ts := newGTS(t, PostedPrice{Card: baseRates()})
	if _, err := VerifyAgreement(nil, ts, time.Now()); err == nil {
		t.Error("nil agreement accepted")
	}
	ag, err := s.Agree("CN=alice")
	if err != nil {
		t.Fatal(err)
	}
	// Signature from an untrusted CA refused.
	otherTS := pki.NewTrustStore()
	if _, err := VerifyAgreement(ag, otherTS, time.Now()); err == nil {
		t.Error("untrusted agreement accepted")
	}
}

func TestNegotiationConverges(t *testing.T) {
	s, ts := newGTS(t, PostedPrice{Card: baseRates()})
	ag, outcome, err := s.Negotiate("CN=alice,O=VO", BuyerStrategy{OpenFraction: 0.5, MaxFraction: 0.95}, NegotiationParams{})
	if err != nil {
		t.Fatal(err)
	}
	if !outcome.Agreed || outcome.Rounds < 2 {
		t.Fatalf("outcome = %+v", outcome)
	}
	// The agreed level is between the opening bid and the posted ask.
	if outcome.FinalFraction <= 0.5 || outcome.FinalFraction >= 1.0 {
		t.Fatalf("final fraction = %f", outcome.FinalFraction)
	}
	// Agreed rates are the posted rates scaled by the final fraction.
	posted := baseRates()[rur.ItemCPU].MicroPerUnit
	agreed := ag.Card.Rates[rur.ItemCPU].MicroPerUnit
	wantLow := int64(float64(posted) * (outcome.FinalFraction - 0.01))
	wantHigh := int64(float64(posted) * (outcome.FinalFraction + 0.01))
	if agreed < wantLow || agreed > wantHigh {
		t.Fatalf("agreed rate %d outside [%d,%d]", agreed, wantLow, wantHigh)
	}
	// And the agreement verifies.
	if _, err := VerifyAgreement(ag, ts, time.Now()); err != nil {
		t.Fatal(err)
	}
}

func TestNegotiationWalksAway(t *testing.T) {
	s, _ := newGTS(t, PostedPrice{Card: baseRates()})
	// A stingy buyer that barely concedes against a stubborn seller.
	_, outcome, err := s.Negotiate("CN=cheapskate", BuyerStrategy{OpenFraction: 0.01, MaxFraction: 0.02},
		NegotiationParams{MaxRounds: 5, SellerConcession: 0.99, BuyerConcession: 1.001})
	if !errors.Is(err, ErrNoAgreement) {
		t.Fatalf("err = %v", err)
	}
	if outcome.Agreed {
		t.Error("outcome claims agreement")
	}
	if outcome.Rounds != 5 {
		t.Errorf("rounds = %d", outcome.Rounds)
	}
}

func TestNegotiationBuyerCeilingRespected(t *testing.T) {
	s, _ := newGTS(t, PostedPrice{Card: baseRates()})
	ag, outcome, err := s.Negotiate("CN=alice", BuyerStrategy{OpenFraction: 0.3, MaxFraction: 0.6},
		NegotiationParams{MaxRounds: 50})
	if err != nil {
		t.Fatal(err)
	}
	// Crossing can happen at most marginally above the ceiling (seller
	// meets the ceiling from above; midpoint ≤ (ask+bid)/2 where
	// bid ≤ 0.6 and ask just crossed below it).
	if outcome.FinalFraction > 0.65 {
		t.Fatalf("settled at %f despite 0.6 ceiling", outcome.FinalFraction)
	}
	_ = ag
}

func TestQuoteExpiry(t *testing.T) {
	base := time.Now()
	clock := base
	ca, _ := pki.NewCA("CA", "VO", 24*time.Hour)
	gsp, _ := ca.Issue(pki.IssueOptions{CommonName: "gsp"})
	s, err := NewServer(ServerConfig{
		Identity: gsp,
		Model:    PostedPrice{Card: baseRates()},
		QuoteTTL: 10 * time.Minute,
		Now:      func() time.Time { return clock },
	})
	if err != nil {
		t.Fatal(err)
	}
	card := s.CurrentRates()
	if !card.Expires.Equal(base.Add(10 * time.Minute)) {
		t.Errorf("expires = %v", card.Expires)
	}
}
