package accounts

import (
	"gridbank/internal/db"
)

// Transaction-scoped ledger primitives for the sharding layer.
//
// A cross-shard transfer cannot go through Manager.Transfer — each of
// its sides lives on a different store — so the two-phase-commit
// coordinator in internal/shard composes its own db transactions:
// reserve-and-prepare on the debit shard, credit-and-mark on the credit
// shard, finalize on the debit shard. Each of those steps must mutate
// an ACCOUNT row, append the proper §5.1 TRANSACTION/TRANSFER records
// and write the coordinator's own bookkeeping rows atomically, in one
// db.Tx per step. These helpers expose exactly the row-level operations
// that requires, nothing more; every invariant beyond single-row
// encoding (conservation, non-negative locks) remains the caller's to
// uphold across the composed transaction.

// GetAccountTx reads and decodes an ACCOUNT row inside tx.
func GetAccountTx(tx *db.Tx, id ID) (*Account, error) {
	return getAccount(tx, id)
}

// PutAccountTx encodes and writes an ACCOUNT row inside tx.
func PutAccountTx(tx *db.Tx, a *Account) error {
	return putAccount(tx, a)
}

// AppendTransactionTx appends a TRANSACTION row inside tx, allocating
// the ID from the manager's allocator when t.TransactionID is zero, and
// returns the ID used.
func (m *Manager) AppendTransactionTx(tx *db.Tx, t *Transaction) (uint64, error) {
	return m.appendTransaction(tx, t)
}

// InsertTransferTx inserts a TRANSFER record inside tx under its
// canonical key. rec.TransactionID must already be set.
func (m *Manager) InsertTransferTx(tx *db.Tx, rec *Transfer) error {
	return tx.Insert(tableTransfers, transferKey(rec.TransactionID), encodeTransfer(rec))
}

// PutTransferTx overwrites a TRANSFER record inside tx (cancellation
// marking).
func (m *Manager) PutTransferTx(tx *db.Tx, rec *Transfer) error {
	return tx.Put(tableTransfers, transferKey(rec.TransactionID), encodeTransfer(rec))
}

// GetTransferTx reads a TRANSFER record inside tx.
func (m *Manager) GetTransferTx(tx *db.Tx, txID uint64) (*Transfer, error) {
	raw, err := tx.Get(tableTransfers, transferKey(txID))
	if err != nil {
		return nil, err
	}
	return decodeTransfer(raw)
}

// MaxReversalID scans the TRANSFER records for the highest pinned
// ReversalID. A reversal ID is allocated and durably pinned before its
// compensating transfer writes any row of its own, so after a crash it
// may exist nowhere but inside a transfer record's value — the sharded
// ledger folds this into its transaction-ID seeding so a fresh transfer
// can never collide with a pending cancellation.
func (m *Manager) MaxReversalID() (uint64, error) {
	var maxID uint64
	var scanErr error
	err := m.store.Scan(tableTransfers, func(_ string, value []byte) bool {
		tr, err := decodeTransfer(value)
		if err != nil {
			scanErr = err
			return false
		}
		if tr.ReversalID > maxID {
			maxID = tr.ReversalID
		}
		return true
	})
	if err != nil {
		return 0, err
	}
	return maxID, scanErr
}
