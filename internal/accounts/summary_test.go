package accounts

import (
	"testing"
	"time"

	"gridbank/internal/currency"
)

func TestSummaryFoldsStatement(t *testing.T) {
	m := newTestManager(t)
	alice := mustCreate(t, m, "CN=alice")
	bob := mustCreate(t, m, "CN=bob")
	mustDeposit(t, m, alice.AccountID, 100)
	if err := m.Admin().Withdraw(alice.AccountID, currency.FromG(10)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Transfer(alice.AccountID, bob.AccountID, currency.FromG(25), TransferOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Transfer(bob.AccountID, alice.AccountID, currency.FromG(5), TransferOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckFunds(alice.AccountID, currency.FromG(30)); err != nil {
		t.Fatal(err)
	}
	if err := m.Unlock(alice.AccountID, currency.FromG(12)); err != nil {
		t.Fatal(err)
	}

	s, err := m.Summary(alice.AccountID, testEpoch, testEpoch.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if s.Deposits != currency.FromG(100) || s.Withdrawals != currency.FromG(10) {
		t.Fatalf("deposits/withdrawals = %s/%s", s.Deposits, s.Withdrawals)
	}
	if s.PaidOut != currency.FromG(25) || s.Received != currency.FromG(5) {
		t.Fatalf("paid/received = %s/%s", s.PaidOut, s.Received)
	}
	if s.Locked != currency.FromG(30) || s.Unlocked != currency.FromG(12) {
		t.Fatalf("locked/unlocked = %s/%s", s.Locked, s.Unlocked)
	}
	// Net = 100 − 10 − 25 + 5 = 70 (locks are internal moves).
	if s.Net != currency.FromG(70) {
		t.Fatalf("net = %s", s.Net)
	}
	if s.Transactions != 6 {
		t.Fatalf("transactions = %d", s.Transactions)
	}
	// Net matches the account's actual total balance.
	acct, _ := m.Details(alice.AccountID)
	if s.Net != acct.AvailableBalance.MustAdd(acct.LockedBalance) {
		t.Fatalf("net %s != balance %s+%s", s.Net, acct.AvailableBalance, acct.LockedBalance)
	}
	// Missing account errors.
	if _, err := m.Summary("99-9999-99999999", testEpoch, testEpoch); err == nil {
		t.Fatal("missing account summarized")
	}
}
