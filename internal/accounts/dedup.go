package accounts

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"gridbank/internal/db"
)

// Idempotency markers (op_dedup).
//
// A mutating operation that may be retried after an ambiguous failure
// carries a client-generated idempotency key. The first execution
// writes a DedupMarker row in the SAME db transaction as the mutation
// it names — the usage pipeline's usage_settled discipline applied to
// the client API — so "the money moved" and "the key is spent" are one
// atomic fact. A retry finds the marker and replays the recorded
// outcome instead of moving money again. Markers are garbage-collected
// by a TTL sweep: a key is only protected against replay for the TTL,
// which bounds the table instead of growing it forever.

// TableDedup holds one row per spent idempotency key.
const TableDedup = "op_dedup"

// DedupMarker records that the mutation identified by Key executed as
// transaction TxID at Date.
type DedupMarker struct {
	Key  string    `json:"key"`
	TxID uint64    `json:"txid"`
	Date time.Time `json:"date"`
}

func encodeDedup(mk *DedupMarker) []byte {
	b, err := json.Marshal(mk)
	if err != nil {
		panic(fmt.Sprintf("accounts: encode dedup marker: %v", err)) // no unencodable fields
	}
	return b
}

// DecodeDedup decodes a TableDedup row value.
func DecodeDedup(value []byte) (*DedupMarker, error) {
	var mk DedupMarker
	if err := json.Unmarshal(value, &mk); err != nil {
		return nil, fmt.Errorf("accounts: corrupt dedup marker: %w", err)
	}
	return &mk, nil
}

// GetDedupTx reads the marker for key inside tx; (nil, nil) when the
// key is unspent.
func (m *Manager) GetDedupTx(tx *db.Tx, key string) (*DedupMarker, error) {
	raw, err := tx.Get(TableDedup, key)
	if errors.Is(err, db.ErrNoRecord) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	return DecodeDedup(raw)
}

// GetDedup reads the marker for key outside any transaction; (nil, nil)
// when the key is unspent.
func (m *Manager) GetDedup(key string) (*DedupMarker, error) {
	raw, err := m.store.Get(TableDedup, key)
	if errors.Is(err, db.ErrNoRecord) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	return DecodeDedup(raw)
}

// PutDedupTx spends mk.Key inside tx. Insert (not Put): two racing
// executions of the same key must collide here, so exactly one commits.
func (m *Manager) PutDedupTx(tx *db.Tx, mk *DedupMarker) error {
	return tx.Insert(TableDedup, mk.Key, encodeDedup(mk))
}

// MaxDedupTxID scans the dedup markers for the highest pinned
// transaction ID. A cross-shard keyed transfer durably pins its
// allocated ID in a marker before driving 2PC, so after a crash the ID
// may exist nowhere else — the sharded ledger folds this into its
// transaction-ID seeding exactly as it does MaxReversalID.
func (m *Manager) MaxDedupTxID() (uint64, error) {
	var maxID uint64
	var scanErr error
	err := m.store.Scan(TableDedup, func(_ string, value []byte) bool {
		mk, err := DecodeDedup(value)
		if err != nil {
			scanErr = err
			return false
		}
		if mk.TxID > maxID {
			maxID = mk.TxID
		}
		return true
	})
	if err != nil {
		return 0, err
	}
	return maxID, scanErr
}

// SweepDedup deletes markers dated strictly before cutoff and reports
// how many were removed. After a key's marker is swept, replaying that
// key executes as a fresh mutation — the TTL is the replay-protection
// window, and callers must not retry older requests.
func (m *Manager) SweepDedup(cutoff time.Time) (int, error) {
	var stale []string
	var scanErr error
	err := m.store.Scan(TableDedup, func(key string, value []byte) bool {
		mk, err := DecodeDedup(value)
		if err != nil {
			scanErr = err
			return false
		}
		if mk.Date.Before(cutoff) {
			stale = append(stale, key)
		}
		return true
	})
	if err != nil {
		return 0, err
	}
	if scanErr != nil {
		return 0, scanErr
	}
	if len(stale) == 0 {
		return 0, nil
	}
	err = m.store.Update(func(tx *db.Tx) error {
		for _, key := range stale {
			if err := tx.Delete(TableDedup, key); err != nil && !errors.Is(err, db.ErrNoRecord) {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	return len(stale), nil
}
