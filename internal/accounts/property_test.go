package accounts

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"gridbank/internal/currency"
	"gridbank/internal/db"
)

// opcode drives the property machine.
type opcode struct {
	Kind   uint8 // transfer / lock / unlock / lockedTransfer / deposit / withdraw
	From   uint8
	To     uint8
	Amount uint16
}

// TestLedgerInvariantsProperty drives random operation sequences against a
// fresh ledger and checks, after every operation:
//
//  1. conservation: total balance == total deposited - total withdrawn;
//  2. locked balances never negative;
//  3. available balance never below -creditLimit.
func TestLedgerInvariantsProperty(t *testing.T) {
	const nAcct = 4
	run := func(ops []opcode) bool {
		m, err := NewManager(db.MustOpenMemory(), Config{Now: func() time.Time { return testEpoch }})
		if err != nil {
			return false
		}
		ids := make([]ID, nAcct)
		for i := range ids {
			a, err := m.CreateAccount(fmt.Sprintf("CN=p%d", i), "", "")
			if err != nil {
				return false
			}
			ids[i] = a.AccountID
			if err := m.Admin().Deposit(ids[i], currency.FromG(50)); err != nil {
				return false
			}
			if err := m.Admin().ChangeCreditLimit(ids[i], currency.FromG(10)); err != nil {
				return false
			}
		}
		external := currency.FromG(50 * nAcct) // net deposits
		for _, op := range ops {
			from := ids[int(op.From)%nAcct]
			to := ids[int(op.To)%nAcct]
			amt := currency.FromMicro(int64(op.Amount) * 1000)
			if amt.IsZero() {
				continue
			}
			switch op.Kind % 6 {
			case 0:
				_, _ = m.Transfer(from, to, amt, TransferOptions{})
			case 1:
				_ = m.CheckFunds(from, amt)
			case 2:
				_ = m.Unlock(from, amt)
			case 3:
				_, _ = m.Transfer(from, to, amt, TransferOptions{FromLocked: true})
			case 4:
				if err := m.Admin().Deposit(from, amt); err == nil {
					external = external.MustAdd(amt)
				}
			case 5:
				if err := m.Admin().Withdraw(from, amt); err == nil {
					external = external.MustSub(amt)
				}
			}
		}
		total, err := m.TotalBalance()
		if err != nil || total != external {
			return false
		}
		for _, id := range ids {
			a, err := m.Details(id)
			if err != nil {
				return false
			}
			if a.LockedBalance.IsNegative() {
				return false
			}
			// available >= -creditLimit
			low := a.CreditLimit.MustAdd(a.AvailableBalance)
			if low.IsNegative() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(run, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestStatementSumMatchesBalanceProperty checks that an account's balance
// always equals the sum of its transaction amounts (the double-entry
// bookkeeping invariant a statement consumer relies on).
func TestStatementSumMatchesBalanceProperty(t *testing.T) {
	run := func(ops []opcode) bool {
		m, err := NewManager(db.MustOpenMemory(), Config{Now: func() time.Time { return testEpoch }})
		if err != nil {
			return false
		}
		a, err := m.CreateAccount("CN=a", "", "")
		if err != nil {
			return false
		}
		b, err := m.CreateAccount("CN=b", "", "")
		if err != nil {
			return false
		}
		if err := m.Admin().Deposit(a.AccountID, currency.FromG(20)); err != nil {
			return false
		}
		for _, op := range ops {
			amt := currency.FromMicro(int64(op.Amount)*100 + 1)
			switch op.Kind % 4 {
			case 0:
				_, _ = m.Transfer(a.AccountID, b.AccountID, amt, TransferOptions{})
			case 1:
				_, _ = m.Transfer(b.AccountID, a.AccountID, amt, TransferOptions{})
			case 2:
				_ = m.Admin().Deposit(b.AccountID, amt)
			case 3:
				_ = m.Admin().Withdraw(a.AccountID, amt)
			}
		}
		for _, id := range []ID{a.AccountID, b.AccountID} {
			st, err := m.Statement(id, testEpoch.Add(-time.Hour), testEpoch.Add(time.Hour))
			if err != nil {
				return false
			}
			var sum currency.Amount
			for _, tr := range st.Transactions {
				if tr.Type == TxLock || tr.Type == TxUnlock {
					continue // intra-account moves don't change the total
				}
				sum = sum.MustAdd(tr.Amount)
			}
			acct, err := m.Details(id)
			if err != nil {
				return false
			}
			if sum != acct.AvailableBalance.MustAdd(acct.LockedBalance) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(run, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
