package accounts

import (
	"errors"
	"fmt"

	"gridbank/internal/currency"
	"gridbank/internal/db"
)

// Admin is the GB Admin module (§3.2, §5.2.1): privileged operations
// performed by GridBank administrators "who are responsible for
// transferring real money to and from clients". The server layer gates
// these behind the administrator table; Admin itself only implements the
// ledger semantics.
type Admin struct {
	m *Manager
}

// Admin returns the privileged operations facade over the same ledger.
func (m *Manager) Admin() *Admin { return &Admin{m: m} }

// Deposit credits an account, recording a Deposit transaction (§5.2.1:
// "administrator receives funds via existing credit/debit/smart card
// payment systems, and deposits same amount into GridBank account").
func (ad *Admin) Deposit(id ID, amount currency.Amount) error {
	if !amount.IsPositive() {
		return ErrBadAmount
	}
	return ad.m.store.Update(func(tx *db.Tx) error {
		a, err := getAccount(tx, id)
		if err != nil {
			return err
		}
		if a.Closed {
			return fmt.Errorf("%w: %s", ErrClosed, id)
		}
		sum, err := a.AvailableBalance.Add(amount)
		if err != nil {
			return err
		}
		a.AvailableBalance = sum
		if err := putAccount(tx, a); err != nil {
			return err
		}
		_, err = ad.m.appendTransaction(tx, &Transaction{AccountID: id, Type: TxDeposit, Date: ad.m.now(), Amount: amount})
		return err
	})
}

// Withdraw debits the available balance for transfer to a real bank
// account. Withdrawals cannot dip into credit: credit is a spending
// facility, not withdrawable money.
func (ad *Admin) Withdraw(id ID, amount currency.Amount) error {
	if !amount.IsPositive() {
		return ErrBadAmount
	}
	return ad.m.store.Update(func(tx *db.Tx) error {
		a, err := getAccount(tx, id)
		if err != nil {
			return err
		}
		if a.Closed {
			return fmt.Errorf("%w: %s", ErrClosed, id)
		}
		if a.AvailableBalance.Cmp(amount) < 0 {
			return fmt.Errorf("%w: available %s < %s", ErrInsufficient, a.AvailableBalance, amount)
		}
		a.AvailableBalance = a.AvailableBalance.MustSub(amount)
		if err := putAccount(tx, a); err != nil {
			return err
		}
		neg, err := amount.Neg()
		if err != nil {
			return err
		}
		_, err = ad.m.appendTransaction(tx, &Transaction{AccountID: id, Type: TxWithdrawal, Date: ad.m.now(), Amount: neg})
		return err
	})
}

// ChangeCreditLimit sets the account's credit limit (§5.2.1). A negative
// limit is rejected; lowering the limit below the current overdraft is
// allowed (the account is simply over-limit until repaid, as with real
// banks).
func (ad *Admin) ChangeCreditLimit(id ID, limit currency.Amount) error {
	if limit.IsNegative() {
		return fmt.Errorf("accounts: credit limit cannot be negative")
	}
	return ad.m.store.Update(func(tx *db.Tx) error {
		a, err := getAccount(tx, id)
		if err != nil {
			return err
		}
		if a.Closed {
			return fmt.Errorf("%w: %s", ErrClosed, id)
		}
		a.CreditLimit = limit
		return putAccount(tx, a)
	})
}

// CancelTransfer reverses a committed transfer (§5.2.1 Cancel Transfer):
// dispute resolution when the drawer contests a charge. The reversal is a
// compensating transfer (recipient pays the drawer back) rather than a
// deletion, preserving the audit trail; the recipient may go into
// overdraft up to its credit limit — beyond that cancellation fails and
// the dispute escalates to the administrators.
func (ad *Admin) CancelTransfer(txID uint64) error {
	return ad.m.store.Update(func(tx *db.Tx) error {
		raw, err := tx.Get(tableTransfers, transferKey(txID))
		if errors.Is(err, db.ErrNoRecord) {
			return fmt.Errorf("%w: %d", ErrNoSuchTransfer, txID)
		}
		if err != nil {
			return err
		}
		tr, err := decodeTransfer(raw)
		if err != nil {
			return err
		}
		if tr.Cancelled {
			return fmt.Errorf("%w: %d", ErrAlreadyCancelled, txID)
		}
		drawer, err := getAccount(tx, tr.DrawerAccountID)
		if err != nil {
			return err
		}
		recipient, err := getAccount(tx, tr.RecipientAccountID)
		if err != nil {
			return err
		}
		if recipient.Spendable().Cmp(tr.Amount) < 0 {
			return fmt.Errorf("%w: recipient spendable %s < %s", ErrInsufficient, recipient.Spendable(), tr.Amount)
		}
		recipient.AvailableBalance = recipient.AvailableBalance.MustSub(tr.Amount)
		drawer.AvailableBalance = drawer.AvailableBalance.MustAdd(tr.Amount)
		tr.Cancelled = true
		if err := putAccount(tx, drawer); err != nil {
			return err
		}
		if err := putAccount(tx, recipient); err != nil {
			return err
		}
		if err := tx.Put(tableTransfers, transferKey(txID), encodeTransfer(tr)); err != nil {
			return err
		}
		now := ad.m.now()
		neg, err := tr.Amount.Neg()
		if err != nil {
			return err
		}
		reverseID, err := ad.m.appendTransaction(tx, &Transaction{AccountID: tr.RecipientAccountID, Type: TxTransfer, Date: now, Amount: neg})
		if err != nil {
			return err
		}
		if _, err := ad.m.appendTransaction(tx, &Transaction{TransactionID: reverseID, AccountID: tr.DrawerAccountID, Type: TxTransfer, Date: now, Amount: tr.Amount}); err != nil {
			return err
		}
		reversal := &Transfer{
			TransactionID:      reverseID,
			Date:               now,
			DrawerAccountID:    tr.RecipientAccountID,
			Amount:             tr.Amount,
			RecipientAccountID: tr.DrawerAccountID,
			Cancelled:          true, // marks the pair as a reversal, not a fresh charge
		}
		return tx.Insert(tableTransfers, transferKey(reverseID), encodeTransfer(reversal))
	})
}

// CloseAccount closes an account after transferring any outstanding
// balance to another account (§5.2.1: "Close account and get outstanding
// balance transferred to another GridBank account"). Locked funds must be
// released or redeemed first — a pending payment guarantee cannot be
// abandoned. If the account is overdrawn the debt must be settled first.
// transferTo may be empty only when the balance is exactly zero.
func (ad *Admin) CloseAccount(id, transferTo ID) error {
	return ad.m.store.Update(func(tx *db.Tx) error {
		a, err := getAccount(tx, id)
		if err != nil {
			return err
		}
		if a.Closed {
			return fmt.Errorf("%w: %s", ErrClosed, id)
		}
		if !a.LockedBalance.IsZero() {
			return fmt.Errorf("%w: %s has %s locked", ErrNotEmpty, id, a.LockedBalance)
		}
		if a.AvailableBalance.IsNegative() {
			return fmt.Errorf("%w: %s owes %s", ErrNotEmpty, id, a.AvailableBalance.Abs())
		}
		if !a.AvailableBalance.IsZero() {
			if transferTo == "" {
				return fmt.Errorf("%w: %s holds %s and no transfer target given", ErrNotEmpty, id, a.AvailableBalance)
			}
			dest, err := getAccount(tx, transferTo)
			if err != nil {
				return err
			}
			if dest.Closed {
				return fmt.Errorf("%w: %s", ErrClosed, transferTo)
			}
			if dest.Currency != a.Currency {
				return fmt.Errorf("%w: %s vs %s", ErrCurrencyMismatch, a.Currency, dest.Currency)
			}
			amount := a.AvailableBalance
			dest.AvailableBalance = dest.AvailableBalance.MustAdd(amount)
			a.AvailableBalance = 0
			if err := putAccount(tx, dest); err != nil {
				return err
			}
			now := ad.m.now()
			neg, err := amount.Neg()
			if err != nil {
				return err
			}
			txID, err := ad.m.appendTransaction(tx, &Transaction{AccountID: id, Type: TxTransfer, Date: now, Amount: neg})
			if err != nil {
				return err
			}
			if _, err := ad.m.appendTransaction(tx, &Transaction{TransactionID: txID, AccountID: transferTo, Type: TxTransfer, Date: now, Amount: amount}); err != nil {
				return err
			}
			rec := &Transfer{TransactionID: txID, Date: now, DrawerAccountID: id, Amount: amount, RecipientAccountID: transferTo}
			if err := tx.Insert(tableTransfers, transferKey(txID), encodeTransfer(rec)); err != nil {
				return err
			}
		}
		a.Closed = true
		return putAccount(tx, a)
	})
}
