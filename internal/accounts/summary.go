package accounts

import (
	"time"

	"gridbank/internal/currency"
)

// Summary condenses an account's activity over a window: the billing
// view an administrator or consumer derives from the §5.2 statement.
type Summary struct {
	AccountID ID        `json:"account_id"`
	Start     time.Time `json:"start"`
	End       time.Time `json:"end"`

	Deposits     currency.Amount `json:"deposits"`
	Withdrawals  currency.Amount `json:"withdrawals"` // positive magnitude
	PaidOut      currency.Amount `json:"paid_out"`    // outgoing transfers
	Received     currency.Amount `json:"received"`    // incoming transfers
	Locked       currency.Amount `json:"locked"`      // gross locks placed
	Unlocked     currency.Amount `json:"unlocked"`    // gross locks released
	Transactions int             `json:"transactions"`

	// Net is the window's total balance change (available + locked).
	Net currency.Amount `json:"net"`
}

// Summarize folds a statement into totals. Lock/Unlock rows move money
// between an account's own balances, so they appear in the gross lock
// columns but not in Net.
func Summarize(st *Statement) *Summary {
	s := &Summary{AccountID: st.Account.AccountID, Start: st.Start, End: st.End}
	for _, tr := range st.Transactions {
		s.Transactions++
		switch tr.Type {
		case TxDeposit:
			s.Deposits = s.Deposits.MustAdd(tr.Amount)
			s.Net = s.Net.MustAdd(tr.Amount)
		case TxWithdrawal:
			s.Withdrawals = s.Withdrawals.MustAdd(tr.Amount.Abs())
			s.Net = s.Net.MustAdd(tr.Amount)
		case TxTransfer:
			if tr.Amount.IsNegative() {
				s.PaidOut = s.PaidOut.MustAdd(tr.Amount.Abs())
			} else {
				s.Received = s.Received.MustAdd(tr.Amount)
			}
			s.Net = s.Net.MustAdd(tr.Amount)
		case TxLock:
			s.Locked = s.Locked.MustAdd(tr.Amount)
		case TxUnlock:
			s.Unlocked = s.Unlocked.MustAdd(tr.Amount)
		}
	}
	return s
}

// Summary fetches the statement for [start, end] and folds it.
func (m *Manager) Summary(id ID, start, end time.Time) (*Summary, error) {
	st, err := m.Statement(id, start, end)
	if err != nil {
		return nil, err
	}
	return Summarize(st), nil
}
