// Package accounts implements the Accounts Layer of the GridBank server
// (§3.2): the GB Accounts core module (account creation, details,
// statements, funds transfer, locking and transfer-from-locked) and the GB
// Admin module (deposit, withdrawal, credit limits, cancellation, account
// closure). It owns the §5.1 database schema — ACCOUNT, TRANSACTION and
// TRANSFER records — stored in the embedded db substrate.
//
// The module is deliberately independent of payment schemes, wire
// protocols and the security model, exactly as the paper specifies: "This
// module is independent of payment scheme, protocols used and underlying
// security model."
package accounts

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"regexp"
	"sync"
	"time"

	"gridbank/internal/currency"
)

// Errors returned by account operations.
var (
	ErrNotFound          = errors.New("accounts: account not found")
	ErrDuplicateIdentity = errors.New("accounts: certificate name already has an account")
	ErrInsufficient      = errors.New("accounts: insufficient funds")
	ErrInsufficientLock  = errors.New("accounts: insufficient locked funds")
	ErrCurrencyMismatch  = errors.New("accounts: currency mismatch")
	ErrBadAmount         = errors.New("accounts: amount must be positive")
	ErrClosed            = errors.New("accounts: account is closed")
	ErrNotEmpty          = errors.New("accounts: account still holds funds")
	ErrBadID             = errors.New("accounts: malformed account ID")
	ErrNoSuchTransfer    = errors.New("accounts: no such transfer")
	ErrAlreadyCancelled  = errors.New("accounts: transfer already cancelled")
)

// ID is an account identifier in the paper's format
// bank-branch-account, e.g. "01-0001-00000001" (§5.1: "imitates real
// world account numbers").
type ID string

var idPattern = regexp.MustCompile(`^[0-9]{2}-[0-9]{4}-[0-9]{8}$`)

// Valid reports whether the ID matches the paper's format.
func (id ID) Valid() bool { return idPattern.MatchString(string(id)) }

// MakeID formats an account ID from its components.
func MakeID(bank, branch, account uint64) ID {
	return ID(fmt.Sprintf("%02d-%04d-%08d", bank%100, branch%10000, account%100000000))
}

// Bank returns the two-digit bank number ("another payment system can use
// a different bank number", §6).
func (id ID) Bank() string {
	if !id.Valid() {
		return ""
	}
	return string(id[:2])
}

// Branch returns the four-digit branch number (one per VO GridBank
// server, §6).
func (id ID) Branch() string {
	if !id.Valid() {
		return ""
	}
	return string(id[3:7])
}

// Account is the §5.1 ACCOUNT record.
type Account struct {
	AccountID        ID              `json:"account_id"`
	CertificateName  string          `json:"certificate_name"`  // X509v3 subject: globally unique client ID
	OrganizationName string          `json:"organization_name"` // optional
	AvailableBalance currency.Amount `json:"available_balance"`
	LockedBalance    currency.Amount `json:"locked_balance"` // payment guarantees for started jobs (§3.4)
	Currency         currency.Code   `json:"currency"`
	CreditLimit      currency.Amount `json:"credit_limit"` // default 0
	Closed           bool            `json:"closed,omitempty"`
	CreatedAt        time.Time       `json:"created_at"`
}

// Spendable returns how much the account may spend right now:
// available balance plus remaining credit.
func (a *Account) Spendable() currency.Amount {
	return a.AvailableBalance.MustAdd(a.CreditLimit)
}

// TxType is the §5.1 TRANSACTION record type column.
type TxType string

// Transaction types. The paper enumerates Deposit, Withdrawal and
// Transfer; Lock/Unlock rows additionally journal the §3.4 fund-locking
// guarantee so statements show reserved funds (they move money between the
// available and locked balances of the *same* account, never across
// accounts).
const (
	TxDeposit    TxType = "Deposit"
	TxWithdrawal TxType = "Withdrawal"
	TxTransfer   TxType = "Transfer"
	TxLock       TxType = "Lock"
	TxUnlock     TxType = "Unlock"
)

// Transaction is the §5.1 TRANSACTION record. The paper's schema implies
// the owning account via the statement join; the AccountID column makes
// that join explicit.
type Transaction struct {
	TransactionID uint64    `json:"transaction_id"`
	AccountID     ID        `json:"account_id"`
	Type          TxType    `json:"type"`
	Date          time.Time `json:"date"`
	// Amount is negative for withdrawals and outgoing transfers (§5.1:
	// "if withdrawal or transfer from the account, then the amount is
	// negative").
	Amount currency.Amount `json:"amount"`
}

// Transfer is the §5.1 TRANSFER record: the cross-account movement tied to
// a pair of Transfer transactions by TransactionID, carrying the Resource
// Usage Record as an opaque blob ("GridBank stores RUR in binary format").
type Transfer struct {
	TransactionID       uint64          `json:"transaction_id"`
	Date                time.Time       `json:"date"`
	DrawerAccountID     ID              `json:"drawer_account_id"`    // GSC
	Amount              currency.Amount `json:"amount"`               // always positive
	RecipientAccountID  ID              `json:"recipient_account_id"` // GSP
	ResourceUsageRecord []byte          `json:"resource_usage_record,omitempty"`
	Cancelled           bool            `json:"cancelled,omitempty"`
	// ReversalID pins the transaction ID a cancellation's compensating
	// transfer uses, recorded durably before the reversal runs so a
	// crashed-and-retried cross-shard cancel re-drives the same
	// reversal instead of paying it twice (see shard.Ledger.
	// CancelTransfer). Zero on ordinary transfers.
	ReversalID uint64 `json:"reversal_id,omitempty"`
}

// Statement is the §5.2 Request Account Statement response: the account
// record plus its transactions and transfers within [Start, End].
type Statement struct {
	Account      Account       `json:"account"`
	Start        time.Time     `json:"start"`
	End          time.Time     `json:"end"`
	Transactions []Transaction `json:"transactions"`
	Transfers    []Transfer    `json:"transfers"`
}

// encPool recycles encoder+buffer pairs across the hot encode paths: a
// transfer encodes five rows (two accounts, two transactions, one
// transfer record), and reusing a pre-grown buffer leaves exactly one
// right-sized allocation per row — the returned copy that the store
// retains.
type pooledEncoder struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var encPool = sync.Pool{New: func() any {
	p := &pooledEncoder{}
	p.enc = json.NewEncoder(&p.buf)
	return p
}}

// marshalPooled JSON-encodes v through a pooled buffer, returning a
// fresh exact-size byte slice (same bytes as json.Marshal).
func marshalPooled(v any, what string) []byte {
	p := encPool.Get().(*pooledEncoder)
	p.buf.Reset()
	if err := p.enc.Encode(v); err != nil {
		encPool.Put(p)
		panic(fmt.Sprintf("accounts: encode %s: %v", what, err)) // all fields marshalable
	}
	b := p.buf.Bytes()
	out := make([]byte, len(b)-1) // drop the encoder's trailing newline
	copy(out, b)
	encPool.Put(p)
	return out
}

func encodeAccount(a *Account) []byte {
	return marshalPooled(a, "account")
}

func decodeAccount(b []byte) (*Account, error) {
	var a Account
	if err := json.Unmarshal(b, &a); err != nil {
		return nil, fmt.Errorf("accounts: corrupt account record: %w", err)
	}
	return &a, nil
}

func encodeTransaction(t *Transaction) []byte {
	return marshalPooled(t, "transaction")
}

func decodeTransaction(b []byte) (*Transaction, error) {
	var t Transaction
	if err := json.Unmarshal(b, &t); err != nil {
		return nil, fmt.Errorf("accounts: corrupt transaction record: %w", err)
	}
	return &t, nil
}

func encodeTransfer(t *Transfer) []byte {
	return marshalPooled(t, "transfer")
}

func decodeTransfer(b []byte) (*Transfer, error) {
	var t Transfer
	if err := json.Unmarshal(b, &t); err != nil {
		return nil, fmt.Errorf("accounts: corrupt transfer record: %w", err)
	}
	return &t, nil
}
