package accounts

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"gridbank/internal/currency"
	"gridbank/internal/db"
)

// Table and index names in the underlying store.
const (
	tableAccounts     = "accounts"
	tableTransactions = "transactions"
	tableTransfers    = "transfers"
	tableMeta         = "meta"

	indexByCert = "by_certificate_name"

	metaTxSeq   = "txseq"
	metaAcctSeq = "acctseq"
)

// Manager is the GB Accounts module: every balance mutation in GridBank
// flows through it, inside a single db transaction, so the ledger
// invariants (non-negative locked balance, overdraft bounded by credit
// limit, conservation of money across transfers) hold at every commit
// point.
//
// Transaction and account numbers come from in-memory atomic counters
// seeded from the store at startup (max existing ID, plus the legacy
// meta rows older journals carry). Allocating them transactionally
// would make the counter row a write hotspot every concurrent transfer
// conflicts on; atomic allocation keeps concurrent transfers on
// disjoint accounts conflict-free, at the cost of ID gaps when a
// transaction retries or rolls back — gaps are harmless, duplicates
// would not be. One Manager owns a store's ID space: construct a single
// Manager per store.
type Manager struct {
	store  *db.Store
	bank   string // two-digit bank number
	branch string // four-digit branch number
	now    func() time.Time

	txSeq   atomic.Uint64 // last allocated TransactionID
	acctSeq atomic.Uint64 // last allocated account number

	txAlloc func() uint64 // overrides txSeq when set (sharded deployments)
}

// Config configures a Manager.
type Config struct {
	// Bank and Branch number this GridBank server issues accounts under
	// (§6: branches per VO, bank numbers per payment system). Defaults
	// "01" and "0001".
	Bank   string
	Branch string
	// Now supplies timestamps; defaults to time.Now. Simulations inject a
	// virtual clock.
	Now func() time.Time
	// TxIDAlloc, when set, replaces the manager's own transaction-ID
	// counter. Sharded deployments pass one shared allocator to every
	// shard's manager so transaction IDs stay globally unique across
	// stores; the caller seeds it above every shard's LastTransactionID.
	TxIDAlloc func() uint64
}

// NewManager initializes the schema on the store and returns a manager.
func NewManager(store *db.Store, cfg Config) (*Manager, error) {
	if cfg.Bank == "" {
		cfg.Bank = "01"
	}
	if cfg.Branch == "" {
		cfg.Branch = "0001"
	}
	if len(cfg.Bank) != 2 || len(cfg.Branch) != 4 {
		return nil, fmt.Errorf("accounts: bank must be 2 digits and branch 4, got %q/%q", cfg.Bank, cfg.Branch)
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	for _, t := range []string{tableAccounts, tableTransactions, tableTransfers, tableMeta, TableDedup} {
		if err := store.EnsureTable(t); err != nil {
			return nil, err
		}
	}
	err := store.CreateIndex(tableAccounts, indexByCert, func(key string, value []byte) []string {
		a, err := decodeAccount(value)
		if err != nil || a.Closed {
			return nil
		}
		return []string{a.CertificateName}
	})
	if err != nil && !errors.Is(err, db.ErrDupIndex) {
		return nil, err
	}
	m := &Manager{store: store, bank: cfg.Bank, branch: cfg.Branch, now: cfg.Now, txAlloc: cfg.TxIDAlloc}
	if err := m.recoverSequences(); err != nil {
		return nil, err
	}
	return m, nil
}

// nextTxID allocates a transaction ID from the shared allocator if one
// was configured, else from the manager's own counter.
func (m *Manager) nextTxID() uint64 {
	if m.txAlloc != nil {
		return m.txAlloc()
	}
	return m.txSeq.Add(1)
}

// LastTransactionID returns the highest transaction ID recovered from
// (or allocated against) this manager's store. Sharded deployments use
// it to seed the shared allocator above every shard's history.
func (m *Manager) LastTransactionID() uint64 { return m.txSeq.Load() }

// LastAccountNumber returns the highest account number recovered from
// this manager's store.
func (m *Manager) LastAccountNumber() uint64 { return m.acctSeq.Load() }

// recoverSequences seeds the ID counters from existing state: the
// highest key in each numbered table, floored by the legacy meta rows
// that seed-era journals persisted the counters in.
func (m *Manager) recoverSequences() error {
	txMax := metaFloor(m.store, metaTxSeq)
	acctMax := metaFloor(m.store, metaAcctSeq)
	err := m.store.Scan(tableTransactions, func(key string, _ []byte) bool {
		if id, _, ok := strings.Cut(key, "/"); ok {
			if n, err := strconv.ParseUint(id, 10, 64); err == nil && n > txMax {
				txMax = n
			}
		}
		return true
	})
	if err != nil {
		return err
	}
	err = m.store.Scan(tableTransfers, func(key string, _ []byte) bool {
		if n, err := strconv.ParseUint(key, 10, 64); err == nil && n > txMax {
			txMax = n
		}
		return true
	})
	if err != nil {
		return err
	}
	err = m.store.Scan(tableAccounts, func(key string, _ []byte) bool {
		if i := strings.LastIndexByte(key, '-'); i >= 0 {
			if n, err := strconv.ParseUint(key[i+1:], 10, 64); err == nil && n > acctMax {
				acctMax = n
			}
		}
		return true
	})
	if err != nil {
		return err
	}
	m.txSeq.Store(txMax)
	m.acctSeq.Store(acctMax)
	return nil
}

// metaFloor reads a legacy transactional counter row; 0 if absent.
func metaFloor(store *db.Store, key string) uint64 {
	raw, err := store.Get(tableMeta, key)
	if err != nil {
		return 0
	}
	n, err := strconv.ParseUint(string(raw), 10, 64)
	if err != nil {
		return 0
	}
	return n
}

// Store exposes the underlying store (for snapshots and diagnostics).
func (m *Manager) Store() *db.Store { return m.store }

// BankNumber returns the manager's bank number.
func (m *Manager) BankNumber() string { return m.bank }

// BranchNumber returns the manager's branch number.
func (m *Manager) BranchNumber() string { return m.branch }

func getAccount(tx *db.Tx, id ID) (*Account, error) {
	raw, err := tx.Get(tableAccounts, string(id))
	if errors.Is(err, db.ErrNoRecord) {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	if err != nil {
		return nil, err
	}
	return decodeAccount(raw)
}

func putAccount(tx *db.Tx, a *Account) error {
	return tx.Put(tableAccounts, string(a.AccountID), encodeAccount(a))
}

// appendTransaction journals a TRANSACTION row under a fresh ID and
// returns that ID.
func (m *Manager) appendTransaction(tx *db.Tx, t *Transaction) (uint64, error) {
	if t.TransactionID == 0 {
		t.TransactionID = m.nextTxID()
	}
	key := txKey(t.TransactionID, t.AccountID)
	return t.TransactionID, tx.Insert(tableTransactions, key, encodeTransaction(t))
}

// txKey orders transactions by ID; the account suffix separates the two
// rows a transfer writes (one per side) under one TransactionID.
func txKey(id uint64, acct ID) string { return fmt.Sprintf("%020d/%s", id, acct) }

func transferKey(id uint64) string { return fmt.Sprintf("%020d", id) }

// CreateAccount implements §5.2 Create New Account: the caller has already
// authenticated the client certificate; the certificate name recorded here
// is the authenticated subject. One open account per certificate name and
// currency — the paper keys clients by Certificate Name.
func (m *Manager) CreateAccount(certName, orgName string, cur currency.Code) (*Account, error) {
	return m.createAccount(func() ID {
		return ID(fmt.Sprintf("%s-%s-%08d", m.bank, m.branch, m.acctSeq.Add(1)))
	}, certName, orgName, cur)
}

// CreateAccountWithID creates an account under a caller-chosen ID. It
// exists for sharded deployments, where the shard router allocates IDs
// from a deployment-wide counter and the ID's consistent-hash placement
// decides which store the record lives on — so the ID must be fixed
// before the owning manager is known. The per-store duplicate-identity
// check still runs; cross-shard duplicate checks are the router's job.
func (m *Manager) CreateAccountWithID(id ID, certName, orgName string, cur currency.Code) (*Account, error) {
	if !id.Valid() {
		return nil, fmt.Errorf("%w: %s", ErrBadID, id)
	}
	return m.createAccount(func() ID { return id }, certName, orgName, cur)
}

// createAccount is the shared create path: validate, enforce the
// one-open-account-per-certificate-and-currency invariant under the
// index's phantom protection, and insert. idFor runs inside the Update
// retry loop, so allocator-backed suppliers may burn an ID per retry
// (gaps are harmless, duplicates would not be).
func (m *Manager) createAccount(idFor func() ID, certName, orgName string, cur currency.Code) (*Account, error) {
	if certName == "" {
		return nil, errors.New("accounts: empty certificate name")
	}
	if cur == "" {
		cur = currency.GridDollar
	}
	if !cur.Valid() {
		return nil, fmt.Errorf("accounts: invalid currency %q", cur)
	}
	var created *Account
	err := m.store.Update(func(tx *db.Tx) error {
		existing, err := tx.Lookup(tableAccounts, indexByCert, certName)
		if err != nil {
			return err
		}
		for _, key := range existing {
			raw, err := tx.Get(tableAccounts, key)
			if err != nil {
				return err
			}
			a, err := decodeAccount(raw)
			if err != nil {
				return err
			}
			if !a.Closed && a.Currency == cur {
				return fmt.Errorf("%w: %s (%s)", ErrDuplicateIdentity, certName, cur)
			}
		}
		a := &Account{
			AccountID:        idFor(),
			CertificateName:  certName,
			OrganizationName: orgName,
			Currency:         cur,
			CreatedAt:        m.now(),
		}
		if err := tx.Insert(tableAccounts, string(a.AccountID), encodeAccount(a)); err != nil {
			return err
		}
		created = a
		return nil
	})
	if err != nil {
		return nil, err
	}
	return created, nil
}

// Details implements §5.2 Request Account Details / Check Balance.
func (m *Manager) Details(id ID) (*Account, error) {
	raw, err := m.store.Get(tableAccounts, string(id))
	if errors.Is(err, db.ErrNoRecord) {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	if err != nil {
		return nil, err
	}
	return decodeAccount(raw)
}

// FindByCertificate returns the open account for a certificate name in
// the given currency ("" matches any currency; the first match by account
// ID order wins). This is the authorization lookup of §3.2: "the subject
// name ... is checked against the database".
func (m *Manager) FindByCertificate(certName string, cur currency.Code) (*Account, error) {
	keys, err := m.store.Lookup(tableAccounts, indexByCert, certName)
	if err != nil {
		return nil, err
	}
	for _, key := range keys {
		raw, err := m.store.Get(tableAccounts, key)
		if err != nil {
			continue
		}
		a, err := decodeAccount(raw)
		if err != nil {
			return nil, err
		}
		if a.Closed {
			continue
		}
		if cur == "" || a.Currency == cur {
			return a, nil
		}
	}
	return nil, fmt.Errorf("%w: certificate %s", ErrNotFound, certName)
}

// UpdateDetails implements §5.2 Update Account Details: "Only
// CertificateName and OrganizationName can be modified." Changing the
// certificate name re-keys authorization (e.g. after certificate renewal
// under a new DN), so callers must have verified the client's right to
// the account first.
func (m *Manager) UpdateDetails(id ID, certName, orgName string) (*Account, error) {
	if certName == "" {
		return nil, errors.New("accounts: empty certificate name")
	}
	var updated *Account
	err := m.store.Update(func(tx *db.Tx) error {
		a, err := getAccount(tx, id)
		if err != nil {
			return err
		}
		if a.Closed {
			return fmt.Errorf("%w: %s", ErrClosed, id)
		}
		// The new name must not collide with a different client's account
		// in the same currency.
		keys, err := tx.Lookup(tableAccounts, indexByCert, certName)
		if err != nil {
			return err
		}
		for _, key := range keys {
			if key == string(id) {
				continue
			}
			raw, err := tx.Get(tableAccounts, key)
			if err != nil {
				return err
			}
			other, err := decodeAccount(raw)
			if err != nil {
				return err
			}
			if !other.Closed && other.Currency == a.Currency {
				return fmt.Errorf("%w: %s", ErrDuplicateIdentity, certName)
			}
		}
		a.CertificateName = certName
		a.OrganizationName = orgName
		updated = a
		return putAccount(tx, a)
	})
	if err != nil {
		return nil, err
	}
	return updated, nil
}

// CheckFunds implements §5.2 Perform Funds Availability Check: "the amount
// is transferred into locked balance for guarantee". This is the §3.4
// payment guarantee — GridCheque issuance locks the reserved amount so
// concurrent spending cannot overdraw past the credit limit.
func (m *Manager) CheckFunds(id ID, amount currency.Amount) error {
	if !amount.IsPositive() {
		return ErrBadAmount
	}
	return m.store.Update(func(tx *db.Tx) error {
		a, err := getAccount(tx, id)
		if err != nil {
			return err
		}
		if a.Closed {
			return fmt.Errorf("%w: %s", ErrClosed, id)
		}
		if a.Spendable().Cmp(amount) < 0 {
			return fmt.Errorf("%w: spendable %s < %s", ErrInsufficient, a.Spendable(), amount)
		}
		a.AvailableBalance = a.AvailableBalance.MustSub(amount)
		a.LockedBalance = a.LockedBalance.MustAdd(amount)
		if err := putAccount(tx, a); err != nil {
			return err
		}
		_, err = m.appendTransaction(tx, &Transaction{AccountID: id, Type: TxLock, Date: m.now(), Amount: amount})
		return err
	})
}

// Unlock releases previously locked funds back to the available balance
// (e.g. a cheque expired unredeemed, or was redeemed below its reserved
// amount).
func (m *Manager) Unlock(id ID, amount currency.Amount) error {
	if !amount.IsPositive() {
		return ErrBadAmount
	}
	return m.store.Update(func(tx *db.Tx) error {
		a, err := getAccount(tx, id)
		if err != nil {
			return err
		}
		if a.LockedBalance.Cmp(amount) < 0 {
			return fmt.Errorf("%w: locked %s < %s", ErrInsufficientLock, a.LockedBalance, amount)
		}
		a.LockedBalance = a.LockedBalance.MustSub(amount)
		a.AvailableBalance = a.AvailableBalance.MustAdd(amount)
		if err := putAccount(tx, a); err != nil {
			return err
		}
		_, err = m.appendTransaction(tx, &Transaction{AccountID: id, Type: TxUnlock, Date: m.now(), Amount: amount})
		return err
	})
}

// TransferOptions modify Transfer behaviour.
type TransferOptions struct {
	// FromLocked pays out of the drawer's locked balance (cheque
	// redemption path, §3.4) instead of the available balance.
	FromLocked bool
	// RUR is the Resource Usage Record evidence blob stored with the
	// TRANSFER record (§5.1).
	RUR []byte
	// DedupKey, when set, makes the transfer idempotent: an op_dedup
	// marker is written in the same db transaction as the transfer, and
	// a repeat call with the same key returns the recorded transfer
	// instead of moving money again.
	DedupKey string
}

// Transfer atomically moves amount from drawer to recipient, writing the
// §5.1 TRANSFER record plus a Transfer-typed TRANSACTION row on each side
// (negative on the drawer, positive on the recipient). It is the §5.2
// Request Direct Transfer operation and the settlement step of every
// payment protocol.
func (m *Manager) Transfer(drawer, recipient ID, amount currency.Amount, opts TransferOptions) (*Transfer, error) {
	if !amount.IsPositive() {
		return nil, ErrBadAmount
	}
	if drawer == recipient {
		return nil, errors.New("accounts: cannot transfer to self")
	}
	var rec *Transfer
	err := m.store.Update(func(tx *db.Tx) error {
		rec = nil
		if opts.DedupKey != "" {
			// Retry of a completed transfer: replay the recorded
			// outcome. Checked inside the transaction, so a concurrent
			// first execution either commits before this read (replay)
			// or collides on the marker insert (OCC retry, then replay).
			prior, err := m.GetDedupTx(tx, opts.DedupKey)
			if err != nil {
				return err
			}
			if prior != nil {
				rec, err = m.GetTransferTx(tx, prior.TxID)
				if err != nil {
					return fmt.Errorf("accounts: dedup marker %q names missing transfer %d: %w", opts.DedupKey, prior.TxID, err)
				}
				return nil
			}
		}
		from, err := getAccount(tx, drawer)
		if err != nil {
			return err
		}
		to, err := getAccount(tx, recipient)
		if err != nil {
			return err
		}
		if from.Closed {
			return fmt.Errorf("%w: %s", ErrClosed, drawer)
		}
		if to.Closed {
			return fmt.Errorf("%w: %s", ErrClosed, recipient)
		}
		if from.Currency != to.Currency {
			return fmt.Errorf("%w: %s is %s, %s is %s", ErrCurrencyMismatch, drawer, from.Currency, recipient, to.Currency)
		}
		if opts.FromLocked {
			if from.LockedBalance.Cmp(amount) < 0 {
				return fmt.Errorf("%w: locked %s < %s", ErrInsufficientLock, from.LockedBalance, amount)
			}
			from.LockedBalance = from.LockedBalance.MustSub(amount)
		} else {
			if from.Spendable().Cmp(amount) < 0 {
				return fmt.Errorf("%w: spendable %s < %s", ErrInsufficient, from.Spendable(), amount)
			}
			from.AvailableBalance = from.AvailableBalance.MustSub(amount)
		}
		to.AvailableBalance = to.AvailableBalance.MustAdd(amount)
		if err := putAccount(tx, from); err != nil {
			return err
		}
		if err := putAccount(tx, to); err != nil {
			return err
		}
		now := m.now()
		neg, err := amount.Neg()
		if err != nil {
			return err
		}
		txID, err := m.appendTransaction(tx, &Transaction{AccountID: drawer, Type: TxTransfer, Date: now, Amount: neg})
		if err != nil {
			return err
		}
		if _, err := m.appendTransaction(tx, &Transaction{TransactionID: txID, AccountID: recipient, Type: TxTransfer, Date: now, Amount: amount}); err != nil {
			return err
		}
		rec = &Transfer{
			TransactionID:       txID,
			Date:                now,
			DrawerAccountID:     drawer,
			Amount:              amount,
			RecipientAccountID:  recipient,
			ResourceUsageRecord: opts.RUR,
		}
		if opts.DedupKey != "" {
			// Same transaction as the transfer rows: the key is spent
			// exactly when the money moves, never before or after.
			if err := m.PutDedupTx(tx, &DedupMarker{Key: opts.DedupKey, TxID: txID, Date: now}); err != nil {
				return err
			}
		}
		return tx.Insert(tableTransfers, transferKey(txID), encodeTransfer(rec))
	})
	if err != nil {
		return nil, err
	}
	return rec, nil
}

// Statement implements §5.2 Request Account Statement: the ACCOUNT record
// plus TRANSACTION and TRANSFER records between start and end inclusive.
func (m *Manager) Statement(id ID, start, end time.Time) (*Statement, error) {
	acct, err := m.Details(id)
	if err != nil {
		return nil, err
	}
	st := &Statement{Account: *acct, Start: start, End: end}
	err = m.store.Scan(tableTransactions, func(key string, value []byte) bool {
		t, derr := decodeTransaction(value)
		if derr != nil {
			err = derr
			return false
		}
		if t.AccountID != id || t.Date.Before(start) || t.Date.After(end) {
			return true
		}
		st.Transactions = append(st.Transactions, *t)
		return true
	})
	if err != nil {
		return nil, err
	}
	err = m.store.Scan(tableTransfers, func(key string, value []byte) bool {
		tr, derr := decodeTransfer(value)
		if derr != nil {
			err = derr
			return false
		}
		if tr.Date.Before(start) || tr.Date.After(end) {
			return true
		}
		if tr.DrawerAccountID != id && tr.RecipientAccountID != id {
			return true
		}
		st.Transfers = append(st.Transfers, *tr)
		return true
	})
	if err != nil {
		return nil, err
	}
	return st, nil
}

// GetTransfer returns a transfer by transaction ID.
func (m *Manager) GetTransfer(txID uint64) (*Transfer, error) {
	raw, err := m.store.Get(tableTransfers, transferKey(txID))
	if errors.Is(err, db.ErrNoRecord) {
		return nil, fmt.Errorf("%w: %d", ErrNoSuchTransfer, txID)
	}
	if err != nil {
		return nil, err
	}
	return decodeTransfer(raw)
}

// TotalBalance sums available+locked over all open accounts — the
// conservation check used by tests and the co-operative economy
// experiments (transfers never create or destroy money; only
// deposits/withdrawals change this value).
func (m *Manager) TotalBalance() (currency.Amount, error) {
	var total currency.Amount
	var scanErr error
	err := m.store.Scan(tableAccounts, func(key string, value []byte) bool {
		a, err := decodeAccount(value)
		if err != nil {
			scanErr = err
			return false
		}
		if a.Closed {
			return true
		}
		total = total.MustAdd(a.AvailableBalance).MustAdd(a.LockedBalance)
		return true
	})
	if err != nil {
		return 0, err
	}
	if scanErr != nil {
		return 0, scanErr
	}
	return total, nil
}

// Accounts lists every account (open and closed), in ID order.
func (m *Manager) Accounts() ([]Account, error) {
	var out []Account
	var scanErr error
	err := m.store.Scan(tableAccounts, func(key string, value []byte) bool {
		a, err := decodeAccount(value)
		if err != nil {
			scanErr = err
			return false
		}
		out = append(out, *a)
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, scanErr
}
