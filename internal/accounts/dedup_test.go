package accounts

import (
	"sync"
	"testing"
	"time"

	"gridbank/internal/currency"
)

// TestTransferDedupKeyReplay pins the single-store idempotency
// contract: a replayed key returns the recorded transfer and moves no
// further money; a fresh key executes a fresh transfer.
func TestTransferDedupKeyReplay(t *testing.T) {
	m := newTestManager(t)
	alice := mustCreate(t, m, "CN=alice")
	bob := mustCreate(t, m, "CN=bob")
	mustDeposit(t, m, alice.AccountID, 100)

	tr1, err := m.Transfer(alice.AccountID, bob.AccountID, currency.FromG(10),
		TransferOptions{DedupKey: "pay-1"})
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := m.Transfer(alice.AccountID, bob.AccountID, currency.FromG(10),
		TransferOptions{DedupKey: "pay-1"})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if tr2.TransactionID != tr1.TransactionID {
		t.Fatalf("replay minted transaction %d, want recorded %d", tr2.TransactionID, tr1.TransactionID)
	}
	a, err := m.Details(alice.AccountID)
	if err != nil {
		t.Fatal(err)
	}
	if a.AvailableBalance != currency.FromG(90) {
		t.Fatalf("drawer balance %v after replay, want a single 10 G$ debit", a.AvailableBalance)
	}

	tr3, err := m.Transfer(alice.AccountID, bob.AccountID, currency.FromG(10),
		TransferOptions{DedupKey: "pay-2"})
	if err != nil {
		t.Fatal(err)
	}
	if tr3.TransactionID == tr1.TransactionID {
		t.Fatal("fresh key replayed the old transaction")
	}
}

// TestTransferDedupKeyRace drives the same key from many goroutines at
// once: the Insert collision inside the money-moving transaction must
// let exactly one execution commit, with every caller observing the
// same recorded transaction.
func TestTransferDedupKeyRace(t *testing.T) {
	m := newTestManager(t)
	alice := mustCreate(t, m, "CN=alice")
	bob := mustCreate(t, m, "CN=bob")
	mustDeposit(t, m, alice.AccountID, 100)

	const racers = 8
	ids := make([]uint64, racers)
	errs := make([]error, racers)
	var wg sync.WaitGroup
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr, err := m.Transfer(alice.AccountID, bob.AccountID, currency.FromG(7),
				TransferOptions{DedupKey: "race-1"})
			if err != nil {
				errs[i] = err
				return
			}
			ids[i] = tr.TransactionID
		}(i)
	}
	wg.Wait()
	for i := 0; i < racers; i++ {
		if errs[i] != nil {
			t.Fatalf("racer %d: %v", i, errs[i])
		}
		if ids[i] != ids[0] {
			t.Fatalf("racer %d saw transaction %d, racer 0 saw %d", i, ids[i], ids[0])
		}
	}
	a, err := m.Details(alice.AccountID)
	if err != nil {
		t.Fatal(err)
	}
	if a.AvailableBalance != currency.FromG(93) {
		t.Fatalf("drawer balance %v after %d racers, want a single 7 G$ debit", a.AvailableBalance, racers)
	}
}

// TestSweepDedup pins the TTL contract: sweeping removes markers dated
// before the cutoff and nothing newer, and a swept key replays as a
// fresh mutation — the TTL is the whole replay-protection window.
func TestSweepDedup(t *testing.T) {
	m := newTestManager(t)
	alice := mustCreate(t, m, "CN=alice")
	bob := mustCreate(t, m, "CN=bob")
	mustDeposit(t, m, alice.AccountID, 100)

	tr1, err := m.Transfer(alice.AccountID, bob.AccountID, currency.FromG(5),
		TransferOptions{DedupKey: "old"})
	if err != nil {
		t.Fatal(err)
	}
	mk, err := m.GetDedup("old")
	if err != nil || mk == nil || mk.TxID != tr1.TransactionID {
		t.Fatalf("marker after transfer: %+v, %v", mk, err)
	}

	// A cutoff before the marker's date removes nothing.
	if n, err := m.SweepDedup(testEpoch); err != nil || n != 0 {
		t.Fatalf("early sweep removed %d (%v), want 0", n, err)
	}
	// A cutoff after it removes the marker...
	if n, err := m.SweepDedup(testEpoch.Add(time.Hour)); err != nil || n != 1 {
		t.Fatalf("sweep removed %d (%v), want 1", n, err)
	}
	if mk, err := m.GetDedup("old"); err != nil || mk != nil {
		t.Fatalf("marker survived sweep: %+v, %v", mk, err)
	}
	// ...and the key replays as a fresh transfer.
	tr2, err := m.Transfer(alice.AccountID, bob.AccountID, currency.FromG(5),
		TransferOptions{DedupKey: "old"})
	if err != nil {
		t.Fatal(err)
	}
	if tr2.TransactionID == tr1.TransactionID {
		t.Fatal("swept key still replayed the old transaction")
	}
	a, err := m.Details(alice.AccountID)
	if err != nil {
		t.Fatal(err)
	}
	if a.AvailableBalance != currency.FromG(90) {
		t.Fatalf("drawer balance %v, want two 5 G$ debits after the sweep", a.AvailableBalance)
	}
}
