package accounts

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"gridbank/internal/currency"
	"gridbank/internal/db"
)

var testEpoch = time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC)

// newTestManager returns a manager with a deterministic clock that
// advances one second per call.
func newTestManager(t *testing.T) *Manager {
	t.Helper()
	var mu sync.Mutex
	tick := 0
	m, err := NewManager(db.MustOpenMemory(), Config{Now: func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		tick++
		return testEpoch.Add(time.Duration(tick) * time.Second)
	}})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func mustCreate(t *testing.T, m *Manager, cert string) *Account {
	t.Helper()
	a, err := m.CreateAccount(cert, "VO-Test", currency.GridDollar)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func mustDeposit(t *testing.T, m *Manager, id ID, g int64) {
	t.Helper()
	if err := m.Admin().Deposit(id, currency.FromG(g)); err != nil {
		t.Fatal(err)
	}
}

func TestIDFormat(t *testing.T) {
	if !ID("01-0001-00000001").Valid() {
		t.Error("paper's example ID invalid")
	}
	for _, bad := range []ID{"", "1-0001-00000001", "01-001-00000001", "01-0001-0000001", "ab-0001-00000001", "01-0001-00000001x"} {
		if bad.Valid() {
			t.Errorf("ID %q should be invalid", bad)
		}
	}
	id := MakeID(1, 1, 42)
	if id != "01-0001-00000042" {
		t.Errorf("MakeID = %q", id)
	}
	if id.Bank() != "01" || id.Branch() != "0001" {
		t.Errorf("components = %q %q", id.Bank(), id.Branch())
	}
	if ID("junk").Bank() != "" || ID("junk").Branch() != "" {
		t.Error("invalid ID should yield empty components")
	}
}

func TestCreateAccount(t *testing.T) {
	m := newTestManager(t)
	a := mustCreate(t, m, "CN=alice,O=VO-A")
	if !a.AccountID.Valid() {
		t.Errorf("generated ID %q invalid", a.AccountID)
	}
	if a.AccountID.Bank() != "01" || a.AccountID.Branch() != "0001" {
		t.Errorf("ID components wrong: %s", a.AccountID)
	}
	if !a.AvailableBalance.IsZero() || !a.LockedBalance.IsZero() || !a.CreditLimit.IsZero() {
		t.Error("new account should start at zero")
	}
	if a.Currency != currency.GridDollar {
		t.Errorf("currency = %q", a.Currency)
	}
	b := mustCreate(t, m, "CN=bob,O=VO-A")
	if b.AccountID == a.AccountID {
		t.Error("duplicate account IDs")
	}
	// Same certificate, same currency: rejected.
	if _, err := m.CreateAccount("CN=alice,O=VO-A", "", currency.GridDollar); !errors.Is(err, ErrDuplicateIdentity) {
		t.Errorf("duplicate identity err = %v", err)
	}
	// Same certificate, different currency: allowed.
	if _, err := m.CreateAccount("CN=alice,O=VO-A", "", "USD"); err != nil {
		t.Errorf("multi-currency account rejected: %v", err)
	}
	if _, err := m.CreateAccount("", "", ""); err == nil {
		t.Error("empty certificate accepted")
	}
	if _, err := m.CreateAccount("CN=x", "", currency.Code("way-too-long-code")); err == nil {
		t.Error("invalid currency accepted")
	}
}

func TestNewManagerValidation(t *testing.T) {
	if _, err := NewManager(db.MustOpenMemory(), Config{Bank: "123"}); err == nil {
		t.Error("3-digit bank accepted")
	}
	m, err := NewManager(db.MustOpenMemory(), Config{Bank: "02", Branch: "0007"})
	if err != nil {
		t.Fatal(err)
	}
	a, err := m.CreateAccount("CN=x", "", "")
	if err != nil {
		t.Fatal(err)
	}
	if a.AccountID.Bank() != "02" || a.AccountID.Branch() != "0007" {
		t.Errorf("custom bank/branch not applied: %s", a.AccountID)
	}
	if m.BankNumber() != "02" || m.BranchNumber() != "0007" {
		t.Error("accessors wrong")
	}
}

func TestDetailsAndFind(t *testing.T) {
	m := newTestManager(t)
	a := mustCreate(t, m, "CN=alice")
	got, err := m.Details(a.AccountID)
	if err != nil || got.CertificateName != "CN=alice" {
		t.Fatalf("Details = %+v, %v", got, err)
	}
	if _, err := m.Details("99-9999-99999999"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing details err = %v", err)
	}
	found, err := m.FindByCertificate("CN=alice", currency.GridDollar)
	if err != nil || found.AccountID != a.AccountID {
		t.Fatalf("FindByCertificate = %+v, %v", found, err)
	}
	if _, err := m.FindByCertificate("CN=nobody", ""); !errors.Is(err, ErrNotFound) {
		t.Errorf("find missing err = %v", err)
	}
	anyCur, err := m.FindByCertificate("CN=alice", "")
	if err != nil || anyCur.AccountID != a.AccountID {
		t.Fatalf("any-currency find = %+v, %v", anyCur, err)
	}
}

func TestUpdateDetails(t *testing.T) {
	m := newTestManager(t)
	a := mustCreate(t, m, "CN=alice")
	mustCreate(t, m, "CN=bob")
	upd, err := m.UpdateDetails(a.AccountID, "CN=alice-renewed", "NewOrg")
	if err != nil {
		t.Fatal(err)
	}
	if upd.CertificateName != "CN=alice-renewed" || upd.OrganizationName != "NewOrg" {
		t.Errorf("update = %+v", upd)
	}
	// Old name no longer resolves; new one does.
	if _, err := m.FindByCertificate("CN=alice", ""); !errors.Is(err, ErrNotFound) {
		t.Error("old name still resolves")
	}
	if _, err := m.FindByCertificate("CN=alice-renewed", ""); err != nil {
		t.Errorf("new name does not resolve: %v", err)
	}
	// Collision with bob rejected.
	if _, err := m.UpdateDetails(a.AccountID, "CN=bob", ""); !errors.Is(err, ErrDuplicateIdentity) {
		t.Errorf("collision err = %v", err)
	}
	if _, err := m.UpdateDetails(a.AccountID, "", ""); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := m.UpdateDetails("99-9999-99999999", "CN=x", ""); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing account err = %v", err)
	}
}

func TestDepositWithdraw(t *testing.T) {
	m := newTestManager(t)
	a := mustCreate(t, m, "CN=alice")
	ad := m.Admin()
	mustDeposit(t, m, a.AccountID, 100)
	if err := ad.Withdraw(a.AccountID, currency.FromG(40)); err != nil {
		t.Fatal(err)
	}
	got, _ := m.Details(a.AccountID)
	if got.AvailableBalance != currency.FromG(60) {
		t.Fatalf("balance = %s", got.AvailableBalance)
	}
	if err := ad.Withdraw(a.AccountID, currency.FromG(61)); !errors.Is(err, ErrInsufficient) {
		t.Errorf("over-withdraw err = %v", err)
	}
	if err := ad.Deposit(a.AccountID, currency.FromG(-1)); !errors.Is(err, ErrBadAmount) {
		t.Errorf("negative deposit err = %v", err)
	}
	if err := ad.Withdraw(a.AccountID, 0); !errors.Is(err, ErrBadAmount) {
		t.Errorf("zero withdraw err = %v", err)
	}
	if err := ad.Deposit("99-9999-99999999", currency.FromG(1)); !errors.Is(err, ErrNotFound) {
		t.Errorf("deposit to missing err = %v", err)
	}
	// Withdrawals cannot use credit.
	if err := ad.ChangeCreditLimit(a.AccountID, currency.FromG(1000)); err != nil {
		t.Fatal(err)
	}
	if err := ad.Withdraw(a.AccountID, currency.FromG(61)); !errors.Is(err, ErrInsufficient) {
		t.Errorf("credit-backed withdraw err = %v", err)
	}
}

func TestTransferBasics(t *testing.T) {
	m := newTestManager(t)
	alice := mustCreate(t, m, "CN=alice")
	bob := mustCreate(t, m, "CN=bob")
	mustDeposit(t, m, alice.AccountID, 50)
	tr, err := m.Transfer(alice.AccountID, bob.AccountID, currency.FromG(20), TransferOptions{RUR: []byte("evidence")})
	if err != nil {
		t.Fatal(err)
	}
	if tr.TransactionID == 0 || tr.Amount != currency.FromG(20) {
		t.Errorf("transfer record = %+v", tr)
	}
	a, _ := m.Details(alice.AccountID)
	b, _ := m.Details(bob.AccountID)
	if a.AvailableBalance != currency.FromG(30) || b.AvailableBalance != currency.FromG(20) {
		t.Fatalf("balances = %s / %s", a.AvailableBalance, b.AvailableBalance)
	}
	got, err := m.GetTransfer(tr.TransactionID)
	if err != nil || string(got.ResourceUsageRecord) != "evidence" {
		t.Fatalf("GetTransfer = %+v, %v", got, err)
	}
	if _, err := m.GetTransfer(999999); !errors.Is(err, ErrNoSuchTransfer) {
		t.Errorf("missing transfer err = %v", err)
	}
}

func TestTransferValidation(t *testing.T) {
	m := newTestManager(t)
	alice := mustCreate(t, m, "CN=alice")
	bob := mustCreate(t, m, "CN=bob")
	mustDeposit(t, m, alice.AccountID, 10)
	if _, err := m.Transfer(alice.AccountID, bob.AccountID, currency.FromG(11), TransferOptions{}); !errors.Is(err, ErrInsufficient) {
		t.Errorf("overdraw err = %v", err)
	}
	if _, err := m.Transfer(alice.AccountID, alice.AccountID, currency.FromG(1), TransferOptions{}); err == nil {
		t.Error("self transfer accepted")
	}
	if _, err := m.Transfer(alice.AccountID, bob.AccountID, 0, TransferOptions{}); !errors.Is(err, ErrBadAmount) {
		t.Errorf("zero transfer err = %v", err)
	}
	if _, err := m.Transfer(alice.AccountID, "99-9999-99999999", currency.FromG(1), TransferOptions{}); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing recipient err = %v", err)
	}
	// Currency mismatch.
	carolUSD, err := m.CreateAccount("CN=carol", "", "USD")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Transfer(alice.AccountID, carolUSD.AccountID, currency.FromG(1), TransferOptions{}); !errors.Is(err, ErrCurrencyMismatch) {
		t.Errorf("currency mismatch err = %v", err)
	}
}

func TestCreditLimitSpending(t *testing.T) {
	m := newTestManager(t)
	alice := mustCreate(t, m, "CN=alice")
	bob := mustCreate(t, m, "CN=bob")
	mustDeposit(t, m, alice.AccountID, 10)
	if err := m.Admin().ChangeCreditLimit(alice.AccountID, currency.FromG(5)); err != nil {
		t.Fatal(err)
	}
	// Can spend balance + credit = 15.
	if _, err := m.Transfer(alice.AccountID, bob.AccountID, currency.FromG(15), TransferOptions{}); err != nil {
		t.Fatalf("credit-backed transfer failed: %v", err)
	}
	a, _ := m.Details(alice.AccountID)
	if a.AvailableBalance != currency.FromG(-5) {
		t.Fatalf("overdrawn balance = %s", a.AvailableBalance)
	}
	// Nothing left.
	if _, err := m.Transfer(alice.AccountID, bob.AccountID, currency.FromMicro(1), TransferOptions{}); !errors.Is(err, ErrInsufficient) {
		t.Errorf("beyond-credit transfer err = %v", err)
	}
	if err := m.Admin().ChangeCreditLimit(alice.AccountID, currency.FromG(-1)); err == nil {
		t.Error("negative credit limit accepted")
	}
}

func TestLockUnlockAndLockedTransfer(t *testing.T) {
	m := newTestManager(t)
	alice := mustCreate(t, m, "CN=alice")
	gsp := mustCreate(t, m, "CN=gsp")
	mustDeposit(t, m, alice.AccountID, 100)

	// §3.4: lock 60 for a cheque.
	if err := m.CheckFunds(alice.AccountID, currency.FromG(60)); err != nil {
		t.Fatal(err)
	}
	a, _ := m.Details(alice.AccountID)
	if a.AvailableBalance != currency.FromG(40) || a.LockedBalance != currency.FromG(60) {
		t.Fatalf("after lock: %s / %s", a.AvailableBalance, a.LockedBalance)
	}
	// Locked funds are not spendable.
	if _, err := m.Transfer(alice.AccountID, gsp.AccountID, currency.FromG(41), TransferOptions{}); !errors.Is(err, ErrInsufficient) {
		t.Errorf("spend of locked funds err = %v", err)
	}
	// Redeem 45 from locked, release the remaining 15.
	if _, err := m.Transfer(alice.AccountID, gsp.AccountID, currency.FromG(45), TransferOptions{FromLocked: true}); err != nil {
		t.Fatal(err)
	}
	if err := m.Unlock(alice.AccountID, currency.FromG(15)); err != nil {
		t.Fatal(err)
	}
	a, _ = m.Details(alice.AccountID)
	if a.AvailableBalance != currency.FromG(55) || !a.LockedBalance.IsZero() {
		t.Fatalf("after redeem+unlock: %s / %s", a.AvailableBalance, a.LockedBalance)
	}
	// Over-unlock and over-redeem are rejected.
	if err := m.Unlock(alice.AccountID, currency.FromG(1)); !errors.Is(err, ErrInsufficientLock) {
		t.Errorf("over-unlock err = %v", err)
	}
	if _, err := m.Transfer(alice.AccountID, gsp.AccountID, currency.FromG(1), TransferOptions{FromLocked: true}); !errors.Is(err, ErrInsufficientLock) {
		t.Errorf("over-redeem err = %v", err)
	}
	// Lock more than spendable rejected.
	if err := m.CheckFunds(alice.AccountID, currency.FromG(56)); !errors.Is(err, ErrInsufficient) {
		t.Errorf("over-lock err = %v", err)
	}
	if err := m.CheckFunds(alice.AccountID, 0); !errors.Is(err, ErrBadAmount) {
		t.Errorf("zero lock err = %v", err)
	}
	if err := m.Unlock(alice.AccountID, 0); !errors.Is(err, ErrBadAmount) {
		t.Errorf("zero unlock err = %v", err)
	}
}

func TestStatement(t *testing.T) {
	m := newTestManager(t)
	alice := mustCreate(t, m, "CN=alice")
	bob := mustCreate(t, m, "CN=bob")
	mustDeposit(t, m, alice.AccountID, 100)
	if _, err := m.Transfer(alice.AccountID, bob.AccountID, currency.FromG(25), TransferOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := m.Admin().Withdraw(alice.AccountID, currency.FromG(5)); err != nil {
		t.Fatal(err)
	}
	st, err := m.Statement(alice.AccountID, testEpoch, testEpoch.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if st.Account.AccountID != alice.AccountID {
		t.Error("statement wrong account")
	}
	// Deposit + outgoing transfer + withdrawal = 3 transactions.
	if len(st.Transactions) != 3 {
		t.Fatalf("transactions = %+v", st.Transactions)
	}
	var sum currency.Amount
	for _, txr := range st.Transactions {
		sum = sum.MustAdd(txr.Amount)
	}
	if sum != currency.FromG(70) { // 100 - 25 - 5
		t.Errorf("transaction sum = %s", sum)
	}
	if len(st.Transfers) != 1 || st.Transfers[0].Amount != currency.FromG(25) {
		t.Errorf("transfers = %+v", st.Transfers)
	}
	// Bob sees the incoming side.
	stb, err := m.Statement(bob.AccountID, testEpoch, testEpoch.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if len(stb.Transactions) != 1 || stb.Transactions[0].Amount != currency.FromG(25) {
		t.Errorf("bob transactions = %+v", stb.Transactions)
	}
	if len(stb.Transfers) != 1 {
		t.Errorf("bob transfers = %+v", stb.Transfers)
	}
	// Window filtering: empty range.
	st2, err := m.Statement(alice.AccountID, testEpoch.Add(-time.Hour), testEpoch.Add(-time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if len(st2.Transactions) != 0 || len(st2.Transfers) != 0 {
		t.Error("out-of-window records included")
	}
	if _, err := m.Statement("99-9999-99999999", testEpoch, testEpoch); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing account statement err = %v", err)
	}
}

func TestCancelTransfer(t *testing.T) {
	m := newTestManager(t)
	alice := mustCreate(t, m, "CN=alice")
	bob := mustCreate(t, m, "CN=bob")
	mustDeposit(t, m, alice.AccountID, 100)
	tr, err := m.Transfer(alice.AccountID, bob.AccountID, currency.FromG(30), TransferOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Admin().CancelTransfer(tr.TransactionID); err != nil {
		t.Fatal(err)
	}
	a, _ := m.Details(alice.AccountID)
	b, _ := m.Details(bob.AccountID)
	if a.AvailableBalance != currency.FromG(100) || !b.AvailableBalance.IsZero() {
		t.Fatalf("after cancel: %s / %s", a.AvailableBalance, b.AvailableBalance)
	}
	// Double cancel rejected.
	if err := m.Admin().CancelTransfer(tr.TransactionID); !errors.Is(err, ErrAlreadyCancelled) {
		t.Errorf("double cancel err = %v", err)
	}
	if err := m.Admin().CancelTransfer(424242); !errors.Is(err, ErrNoSuchTransfer) {
		t.Errorf("missing cancel err = %v", err)
	}
	// Cancellation fails if the recipient already spent the money and has
	// no credit.
	tr2, err := m.Transfer(alice.AccountID, bob.AccountID, currency.FromG(40), TransferOptions{})
	if err != nil {
		t.Fatal(err)
	}
	carol := mustCreate(t, m, "CN=carol")
	if _, err := m.Transfer(bob.AccountID, carol.AccountID, currency.FromG(40), TransferOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := m.Admin().CancelTransfer(tr2.TransactionID); !errors.Is(err, ErrInsufficient) {
		t.Errorf("cancel-after-spend err = %v", err)
	}
}

func TestCloseAccount(t *testing.T) {
	m := newTestManager(t)
	alice := mustCreate(t, m, "CN=alice")
	bob := mustCreate(t, m, "CN=bob")
	mustDeposit(t, m, alice.AccountID, 30)

	// Locked funds block closure.
	if err := m.CheckFunds(alice.AccountID, currency.FromG(10)); err != nil {
		t.Fatal(err)
	}
	if err := m.Admin().CloseAccount(alice.AccountID, bob.AccountID); !errors.Is(err, ErrNotEmpty) {
		t.Errorf("close with locked funds err = %v", err)
	}
	if err := m.Unlock(alice.AccountID, currency.FromG(10)); err != nil {
		t.Fatal(err)
	}
	// Balance without target blocks closure.
	if err := m.Admin().CloseAccount(alice.AccountID, ""); !errors.Is(err, ErrNotEmpty) {
		t.Errorf("close without target err = %v", err)
	}
	// Proper close sweeps the balance.
	if err := m.Admin().CloseAccount(alice.AccountID, bob.AccountID); err != nil {
		t.Fatal(err)
	}
	b, _ := m.Details(bob.AccountID)
	if b.AvailableBalance != currency.FromG(30) {
		t.Fatalf("swept balance = %s", b.AvailableBalance)
	}
	a, _ := m.Details(alice.AccountID)
	if !a.Closed || !a.AvailableBalance.IsZero() {
		t.Fatalf("closed account state = %+v", a)
	}
	// Closed accounts refuse everything.
	if err := m.Admin().Deposit(alice.AccountID, currency.FromG(1)); !errors.Is(err, ErrClosed) {
		t.Errorf("deposit to closed err = %v", err)
	}
	if _, err := m.Transfer(bob.AccountID, alice.AccountID, currency.FromG(1), TransferOptions{}); !errors.Is(err, ErrClosed) {
		t.Errorf("transfer to closed err = %v", err)
	}
	if err := m.CheckFunds(alice.AccountID, currency.FromG(1)); !errors.Is(err, ErrClosed) {
		t.Errorf("lock on closed err = %v", err)
	}
	if err := m.Admin().CloseAccount(alice.AccountID, ""); !errors.Is(err, ErrClosed) {
		t.Errorf("double close err = %v", err)
	}
	// The certificate name is free for a new account after closure.
	if _, err := m.CreateAccount("CN=alice", "", currency.GridDollar); err != nil {
		t.Errorf("re-register after close: %v", err)
	}
}

func TestTotalBalanceConservation(t *testing.T) {
	m := newTestManager(t)
	ids := make([]ID, 5)
	for i := range ids {
		ids[i] = mustCreate(t, m, fmt.Sprintf("CN=u%d", i)).AccountID
		mustDeposit(t, m, ids[i], 100)
	}
	want := currency.FromG(500)
	// Random-ish mix of transfers, locks, unlocks.
	for i := 0; i < 50; i++ {
		from, to := ids[i%5], ids[(i+2)%5]
		_, _ = m.Transfer(from, to, currency.FromG(int64(i%7+1)), TransferOptions{})
		_ = m.CheckFunds(ids[(i+1)%5], currency.FromG(1))
		if i%3 == 0 {
			_ = m.Unlock(ids[(i+1)%5], currency.FromG(1))
		}
	}
	got, err := m.TotalBalance()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("total = %s, want %s (money not conserved)", got, want)
	}
	accts, err := m.Accounts()
	if err != nil || len(accts) != 5 {
		t.Fatalf("Accounts = %d, %v", len(accts), err)
	}
}

func TestConcurrentTransfersNeverOverdraw(t *testing.T) {
	m := newTestManager(t)
	alice := mustCreate(t, m, "CN=alice")
	sinks := make([]ID, 4)
	for i := range sinks {
		sinks[i] = mustCreate(t, m, fmt.Sprintf("CN=sink%d", i)).AccountID
	}
	mustDeposit(t, m, alice.AccountID, 100)
	var wg sync.WaitGroup
	var okCount int64
	var mu sync.Mutex
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := m.Transfer(alice.AccountID, sinks[g%4], currency.FromG(1), TransferOptions{}); err == nil {
					mu.Lock()
					okCount++
					mu.Unlock()
				}
			}
		}(g)
	}
	wg.Wait()
	if okCount != 100 {
		t.Fatalf("%d transfers of 1G$ succeeded from a 100G$ account", okCount)
	}
	a, _ := m.Details(alice.AccountID)
	if !a.AvailableBalance.IsZero() {
		t.Fatalf("final balance = %s", a.AvailableBalance)
	}
	total, _ := m.TotalBalance()
	if total != currency.FromG(100) {
		t.Fatalf("money not conserved: %s", total)
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	j := db.NewMemJournal()
	store, err := db.Open(j)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewManager(store, Config{Now: func() time.Time { return testEpoch }})
	if err != nil {
		t.Fatal(err)
	}
	a, err := m.CreateAccount("CN=alice", "", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Admin().Deposit(a.AccountID, currency.FromG(77)); err != nil {
		t.Fatal(err)
	}

	store2, err := db.Open(j)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := NewManager(store2, Config{Now: func() time.Time { return testEpoch }})
	if err != nil {
		t.Fatal(err)
	}
	got, err := m2.Details(a.AccountID)
	if err != nil || got.AvailableBalance != currency.FromG(77) {
		t.Fatalf("recovered = %+v, %v", got, err)
	}
	// Sequences continue, not restart: a new account gets a fresh ID.
	b, err := m2.CreateAccount("CN=bob", "", "")
	if err != nil {
		t.Fatal(err)
	}
	if b.AccountID == a.AccountID {
		t.Fatal("account sequence restarted after reopen")
	}
	// And the certificate index was rebuilt.
	if _, err := m2.FindByCertificate("CN=alice", ""); err != nil {
		t.Fatalf("index not rebuilt: %v", err)
	}
}
