package accounts

import (
	"fmt"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"gridbank/internal/currency"
	"gridbank/internal/db"
)

func benchLedger(b *testing.B, nAccounts int) (*Manager, []ID) {
	b.Helper()
	m, err := NewManager(db.MustOpenMemory(), Config{Now: func() time.Time { return testEpoch }})
	if err != nil {
		b.Fatal(err)
	}
	ids := make([]ID, nAccounts)
	for i := range ids {
		a, err := m.CreateAccount(fmt.Sprintf("CN=bench%d", i), "", "")
		if err != nil {
			b.Fatal(err)
		}
		ids[i] = a.AccountID
		if err := m.Admin().Deposit(ids[i], currency.FromG(1_000_000)); err != nil {
			b.Fatal(err)
		}
	}
	return m, ids
}

func BenchmarkLedgerTransfer(b *testing.B) {
	m, ids := benchLedger(b, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Transfer(ids[i%8], ids[(i+1)%8], currency.FromMicro(1), TransferOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLedgerTransferWithRUR(b *testing.B) {
	m, ids := benchLedger(b, 2)
	rur := []byte(`{"user":{"certificate_name":"CN=a"},"usage":[{"item":"cpu","quantity":3600}]}`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Transfer(ids[0], ids[1], currency.FromMicro(1), TransferOptions{RUR: rur}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLockUnlock(b *testing.B) {
	m, ids := benchLedger(b, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.CheckFunds(ids[0], currency.FromG(1)); err != nil {
			b.Fatal(err)
		}
		if err := m.Unlock(ids[0], currency.FromG(1)); err != nil {
			b.Fatal(err)
		}
	}
}

// benchLedgerJournal builds a ledger over a file-journaled store.
func benchLedgerJournal(b *testing.B, nAccounts int, syncEach bool) (*Manager, []ID) {
	b.Helper()
	j, err := db.OpenFileJournal(filepath.Join(b.TempDir(), "wal"), syncEach)
	if err != nil {
		b.Fatal(err)
	}
	s, err := db.Open(j)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { s.Close() })
	m, err := NewManager(s, Config{Now: func() time.Time { return testEpoch }})
	if err != nil {
		b.Fatal(err)
	}
	ids := make([]ID, nAccounts)
	for i := range ids {
		a, err := m.CreateAccount(fmt.Sprintf("CN=bench%d", i), "", "")
		if err != nil {
			b.Fatal(err)
		}
		ids[i] = a.AccountID
		if err := m.Admin().Deposit(ids[i], currency.FromG(1_000_000)); err != nil {
			b.Fatal(err)
		}
	}
	return m, ids
}

// parallelTransfers drives RunParallel transfers over disjoint
// (drawer, recipient) pairs so independent accounts never contend.
func parallelTransfers(b *testing.B, m *Manager, ids []ID) {
	b.Helper()
	pairs := len(ids) / 2
	var next atomic.Uint64
	// Oversubscribe workers: GridBank's load is many concurrent
	// consumers, not one per core, and journal group commit needs
	// fan-in to show its batching.
	b.SetParallelism(8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := int(next.Add(1)-1) % pairs
		from, to := ids[2*i], ids[2*i+1]
		for pb.Next() {
			if _, err := m.Transfer(from, to, currency.FromMicro(1), TransferOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkParallelLedgerTransfer measures concurrent transfers between
// disjoint account pairs on a volatile store — the pure concurrency of
// the ledger hot path with no durability cost.
func BenchmarkParallelLedgerTransfer(b *testing.B) {
	m, ids := benchLedger(b, 64)
	parallelTransfers(b, m, ids)
}

// BenchmarkParallelLedgerTransferDurable adds a fsync-per-commit journal:
// this is the configuration where group commit pays, since N concurrent
// committers should share one fsync instead of queueing N.
func BenchmarkParallelLedgerTransferDurable(b *testing.B) {
	m, ids := benchLedgerJournal(b, 64, true)
	parallelTransfers(b, m, ids)
}

func BenchmarkStatement(b *testing.B) {
	m, ids := benchLedger(b, 2)
	for i := 0; i < 200; i++ {
		if _, err := m.Transfer(ids[0], ids[1], currency.FromMicro(1), TransferOptions{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Statement(ids[0], testEpoch.Add(-time.Hour), testEpoch.Add(time.Hour)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFindByCertificate(b *testing.B) {
	m, _ := benchLedger(b, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.FindByCertificate(fmt.Sprintf("CN=bench%d", i%64), ""); err != nil {
			b.Fatal(err)
		}
	}
}
