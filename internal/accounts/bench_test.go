package accounts

import (
	"fmt"
	"testing"
	"time"

	"gridbank/internal/currency"
	"gridbank/internal/db"
)

func benchLedger(b *testing.B, nAccounts int) (*Manager, []ID) {
	b.Helper()
	m, err := NewManager(db.MustOpenMemory(), Config{Now: func() time.Time { return testEpoch }})
	if err != nil {
		b.Fatal(err)
	}
	ids := make([]ID, nAccounts)
	for i := range ids {
		a, err := m.CreateAccount(fmt.Sprintf("CN=bench%d", i), "", "")
		if err != nil {
			b.Fatal(err)
		}
		ids[i] = a.AccountID
		if err := m.Admin().Deposit(ids[i], currency.FromG(1_000_000)); err != nil {
			b.Fatal(err)
		}
	}
	return m, ids
}

func BenchmarkLedgerTransfer(b *testing.B) {
	m, ids := benchLedger(b, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Transfer(ids[i%8], ids[(i+1)%8], currency.FromMicro(1), TransferOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLedgerTransferWithRUR(b *testing.B) {
	m, ids := benchLedger(b, 2)
	rur := []byte(`{"user":{"certificate_name":"CN=a"},"usage":[{"item":"cpu","quantity":3600}]}`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Transfer(ids[0], ids[1], currency.FromMicro(1), TransferOptions{RUR: rur}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLockUnlock(b *testing.B) {
	m, ids := benchLedger(b, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.CheckFunds(ids[0], currency.FromG(1)); err != nil {
			b.Fatal(err)
		}
		if err := m.Unlock(ids[0], currency.FromG(1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStatement(b *testing.B) {
	m, ids := benchLedger(b, 2)
	for i := 0; i < 200; i++ {
		if _, err := m.Transfer(ids[0], ids[1], currency.FromMicro(1), TransferOptions{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Statement(ids[0], testEpoch.Add(-time.Hour), testEpoch.Add(time.Hour)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFindByCertificate(b *testing.B) {
	m, _ := benchLedger(b, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.FindByCertificate(fmt.Sprintf("CN=bench%d", i%64), ""); err != nil {
			b.Fatal(err)
		}
	}
}
