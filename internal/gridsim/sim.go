// Package gridsim is the Grid substrate: a deterministic discrete-event
// simulator of Grid Service Providers, their compute resources and job
// executions. It stands in for the real clusters (and the "GridSim"
// toolkit the Gridbus project used for testing, §1): the paper's
// components — meter, charging module, trade server, broker, bank — run
// unmodified on top of it, consuming the same raw usage records a native
// OS accounting call would produce.
//
// The model follows GridSim's: a resource has some number of identical
// nodes with a MIPS-like rating; a job has a length in MI (million
// instructions) plus memory/storage/network demands; execution time on a
// node is length/rating seconds of virtual time; scheduling is
// space-shared FCFS per resource.
package gridsim

import (
	"container/heap"
	"errors"
	"fmt"
	"time"
)

// Errors.
var (
	ErrStopped     = errors.New("gridsim: simulation already stopped")
	ErrBadJob      = errors.New("gridsim: malformed job")
	ErrBadResource = errors.New("gridsim: malformed resource")
)

// Job is one unit of work submitted to a resource.
type Job struct {
	ID          string // global Grid job ID
	Owner       string // GSC certificate name
	Application string
	LengthMI    int64 // computational length, million instructions
	MemoryMB    int64 // resident memory while running
	StorageMB   int64 // scratch storage while running
	InputMB     int64 // network transfer in
	OutputMB    int64 // network transfer out
	// SoftwareFraction is the share of CPU time spent inside licensed
	// software libraries ("Software Libraries: System CPU time", §2.1),
	// in [0,1].
	SoftwareFraction float64
}

// Validate checks job sanity.
func (j *Job) Validate() error {
	switch {
	case j.ID == "":
		return fmt.Errorf("%w: missing ID", ErrBadJob)
	case j.Owner == "":
		return fmt.Errorf("%w: missing owner", ErrBadJob)
	case j.LengthMI <= 0:
		return fmt.Errorf("%w: non-positive length", ErrBadJob)
	case j.MemoryMB < 0 || j.StorageMB < 0 || j.InputMB < 0 || j.OutputMB < 0:
		return fmt.Errorf("%w: negative demand", ErrBadJob)
	case j.SoftwareFraction < 0 || j.SoftwareFraction > 1:
		return fmt.Errorf("%w: software fraction outside [0,1]", ErrBadJob)
	}
	return nil
}

// RawUsage is what the resource's native accounting produces at job
// completion — the "raw usage statistics" of Figure 2 that the Grid
// Resource Meter filters and converts. It deliberately includes fields
// no chargeable item cares about (page faults, context switches), because
// filtering them out is the GRM's job.
type RawUsage struct {
	LocalPID        string
	Host            string
	UserCPUSec      int64
	SystemCPUSec    int64
	WallClockSec    int64
	MaxRSSMB        int64
	ScratchMB       int64
	NetworkInMB     int64
	NetworkOutMB    int64
	PageFaults      int64 // noise: not chargeable
	ContextSwitches int64 // noise: not chargeable
}

// JobResult is delivered to the completion callback.
type JobResult struct {
	Job      Job
	Resource string // provider certificate name
	Start    time.Time
	End      time.Time
	Usage    RawUsage
}

// CompletionFunc receives finished jobs.
type CompletionFunc func(JobResult)

// ResourceConfig describes a GSP's compute resource.
type ResourceConfig struct {
	// Provider is the owning GSP's certificate name.
	Provider string
	// Host is the resource's contact hostname.
	Host string
	// HostType is a free-form architecture label.
	HostType string
	// Nodes is the number of identical compute nodes.
	Nodes int
	// RatingMIPS is each node's speed in MI per simulated second.
	RatingMIPS int
}

func (c *ResourceConfig) validate() error {
	switch {
	case c.Provider == "":
		return fmt.Errorf("%w: missing provider", ErrBadResource)
	case c.Nodes <= 0:
		return fmt.Errorf("%w: need at least one node", ErrBadResource)
	case c.RatingMIPS <= 0:
		return fmt.Errorf("%w: non-positive rating", ErrBadResource)
	}
	return nil
}

type pendingJob struct {
	job      Job
	complete CompletionFunc
	queued   time.Time
}

// Resource is a running simulated resource.
type Resource struct {
	cfg       ResourceConfig
	sim       *Sim
	freeNodes int
	queue     []pendingJob
	pidSeq    int

	// accounting for utilization: node-seconds busy and observed span
	busyNodeSec int64
	firstEvent  time.Time
	lastEvent   time.Time
	started     bool
	running     int
	completed   int
}

// Config returns the resource's static description.
func (r *Resource) Config() ResourceConfig { return r.cfg }

// QueueLength returns the number of jobs waiting for a node.
func (r *Resource) QueueLength() int { return len(r.queue) }

// Running returns the number of jobs currently executing.
func (r *Resource) Running() int { return r.running }

// Completed returns the number of jobs finished.
func (r *Resource) Completed() int { return r.completed }

// Utilization returns the fraction of node-time spent busy over the
// resource's observed lifetime, in [0,1]. Before any job arrives it is 0.
func (r *Resource) Utilization() float64 {
	if !r.started {
		return 0
	}
	span := r.lastEvent.Sub(r.firstEvent).Seconds()
	if span <= 0 {
		return 0
	}
	return float64(r.busyNodeSec) / (span * float64(r.cfg.Nodes))
}

// InstantLoad returns the current fraction of busy nodes (for pricing
// feeds that want the instantaneous demand signal).
func (r *Resource) InstantLoad() float64 {
	return float64(r.cfg.Nodes-r.freeNodes) / float64(r.cfg.Nodes)
}

// ExecTime returns how long a job runs on this resource.
func (r *Resource) ExecTime(j *Job) time.Duration {
	sec := float64(j.LengthMI) / float64(r.cfg.RatingMIPS)
	return time.Duration(sec * float64(time.Second))
}

// event is a scheduled simulation event.
type event struct {
	at  time.Time
	seq uint64 // tie-break: FIFO among simultaneous events
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if !q[i].at.Equal(q[j].at) {
		return q[i].at.Before(q[j].at)
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Sim is a discrete-event simulation.
type Sim struct {
	now       time.Time
	seq       uint64
	events    eventQueue
	resources map[string]*Resource
	stopped   bool
}

// New creates a simulation starting at the given virtual time.
func New(start time.Time) *Sim {
	return &Sim{now: start, resources: make(map[string]*Resource)}
}

// Now returns the current virtual time.
func (s *Sim) Now() time.Time { return s.now }

// At schedules fn at an absolute virtual time (clamped to now).
func (s *Sim) At(t time.Time, fn func()) {
	if t.Before(s.now) {
		t = s.now
	}
	s.seq++
	heap.Push(&s.events, &event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn after a virtual delay.
func (s *Sim) After(d time.Duration, fn func()) { s.At(s.now.Add(d), fn) }

// AddResource registers a resource.
func (s *Sim) AddResource(cfg ResourceConfig) (*Resource, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if _, ok := s.resources[cfg.Provider]; ok {
		return nil, fmt.Errorf("%w: provider %q already registered", ErrBadResource, cfg.Provider)
	}
	if cfg.Host == "" {
		cfg.Host = cfg.Provider
	}
	r := &Resource{cfg: cfg, sim: s, freeNodes: cfg.Nodes}
	s.resources[cfg.Provider] = r
	return r, nil
}

// Resource returns a registered resource.
func (s *Sim) Resource(provider string) (*Resource, bool) {
	r, ok := s.resources[provider]
	return r, ok
}

// Resources lists all registered resources.
func (s *Sim) Resources() []*Resource {
	out := make([]*Resource, 0, len(s.resources))
	for _, r := range s.resources {
		out = append(out, r)
	}
	return out
}

// Submit hands a job to a resource at the current virtual time. complete
// runs (in virtual time) when the job finishes. Space-shared FCFS: the
// job starts immediately if a node is free, otherwise queues.
func (r *Resource) Submit(job Job, complete CompletionFunc) error {
	if err := job.Validate(); err != nil {
		return err
	}
	r.observe(r.sim.now)
	p := pendingJob{job: job, complete: complete, queued: r.sim.now}
	if r.freeNodes > 0 {
		r.start(p)
	} else {
		r.queue = append(r.queue, p)
	}
	return nil
}

// observe extends the utilization window.
func (r *Resource) observe(t time.Time) {
	if !r.started {
		r.started = true
		r.firstEvent = t
	}
	if t.After(r.lastEvent) {
		r.lastEvent = t
	}
}

func (r *Resource) start(p pendingJob) {
	r.freeNodes--
	r.running++
	r.pidSeq++
	pid := fmt.Sprintf("pid-%d", r.pidSeq)
	startAt := r.sim.now
	dur := r.ExecTime(&p.job)
	if dur <= 0 {
		dur = time.Second
	}
	r.sim.After(dur, func() {
		endAt := r.sim.now
		r.freeNodes++
		r.running--
		r.completed++
		r.busyNodeSec += int64(dur.Seconds() + 0.5)
		r.observe(endAt)
		wall := int64(endAt.Sub(startAt).Seconds() + 0.5)
		sysCPU := int64(float64(wall) * p.job.SoftwareFraction)
		usage := RawUsage{
			LocalPID:        pid,
			Host:            r.cfg.Host,
			UserCPUSec:      wall - sysCPU,
			SystemCPUSec:    sysCPU,
			WallClockSec:    wall,
			MaxRSSMB:        p.job.MemoryMB,
			ScratchMB:       p.job.StorageMB,
			NetworkInMB:     p.job.InputMB,
			NetworkOutMB:    p.job.OutputMB,
			PageFaults:      p.job.LengthMI / 10,
			ContextSwitches: wall * 100,
		}
		if p.complete != nil {
			p.complete(JobResult{Job: p.job, Resource: r.cfg.Provider, Start: startAt, End: endAt, Usage: usage})
		}
		// Pull the next queued job onto the freed node.
		if len(r.queue) > 0 {
			next := r.queue[0]
			r.queue = r.queue[1:]
			r.start(next)
		}
	})
}

// Step executes the next event, returning false when the queue is empty.
func (s *Sim) Step() bool {
	if s.stopped || s.events.Len() == 0 {
		return false
	}
	e := heap.Pop(&s.events).(*event)
	s.now = e.at
	e.fn()
	return true
}

// Run drains the event queue.
func (s *Sim) Run() {
	for s.Step() {
	}
}

// RunUntil processes events up to and including virtual time t.
func (s *Sim) RunUntil(t time.Time) {
	for s.events.Len() > 0 && !s.events[0].at.After(t) {
		s.Step()
	}
	if s.now.Before(t) {
		s.now = t
	}
}

// Stop halts the simulation; further Step calls return false.
func (s *Sim) Stop() { s.stopped = true }
