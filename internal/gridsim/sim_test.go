package gridsim

import (
	"errors"
	"testing"
	"time"
)

var simEpoch = time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC)

func testResource(t *testing.T, s *Sim, nodes, rating int) *Resource {
	t.Helper()
	r, err := s.AddResource(ResourceConfig{
		Provider: "CN=gsp1,O=VO", Host: "gsp1.grid", Nodes: nodes, RatingMIPS: rating,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func job(id string, lengthMI int64) Job {
	return Job{ID: id, Owner: "CN=alice,O=VO", Application: "app", LengthMI: lengthMI}
}

func TestSingleJobTiming(t *testing.T) {
	s := New(simEpoch)
	r := testResource(t, s, 1, 100) // 100 MI/s
	var results []JobResult
	if err := r.Submit(job("j1", 1000), func(res JobResult) { results = append(results, res) }); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if len(results) != 1 {
		t.Fatalf("results = %d", len(results))
	}
	res := results[0]
	// 1000 MI at 100 MI/s = 10 virtual seconds.
	if got := res.End.Sub(res.Start); got != 10*time.Second {
		t.Errorf("exec time = %v", got)
	}
	if !res.Start.Equal(simEpoch) {
		t.Errorf("start = %v", res.Start)
	}
	if res.Usage.WallClockSec != 10 || res.Usage.UserCPUSec != 10 {
		t.Errorf("usage = %+v", res.Usage)
	}
	if res.Usage.LocalPID == "" || res.Usage.Host != "gsp1.grid" {
		t.Errorf("identification = %+v", res.Usage)
	}
	if r.Completed() != 1 || r.Running() != 0 {
		t.Errorf("counters: completed=%d running=%d", r.Completed(), r.Running())
	}
}

func TestFCFSQueueing(t *testing.T) {
	s := New(simEpoch)
	r := testResource(t, s, 1, 100)
	var order []string
	var ends []time.Time
	cb := func(res JobResult) { order = append(order, res.Job.ID); ends = append(ends, res.End) }
	// Three 10-second jobs on one node: serialized FCFS.
	for _, id := range []string{"a", "b", "c"} {
		if err := r.Submit(job(id, 1000), cb); err != nil {
			t.Fatal(err)
		}
	}
	if r.QueueLength() != 2 || r.Running() != 1 {
		t.Fatalf("queue=%d running=%d", r.QueueLength(), r.Running())
	}
	s.Run()
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("order = %v", order)
	}
	for i, want := range []time.Duration{10, 20, 30} {
		if got := ends[i].Sub(simEpoch); got != want*time.Second {
			t.Errorf("job %d ended at +%v, want +%vs", i, got, want)
		}
	}
}

func TestParallelNodes(t *testing.T) {
	s := New(simEpoch)
	r := testResource(t, s, 4, 100)
	var ends []time.Time
	for i := 0; i < 4; i++ {
		if err := r.Submit(job(string(rune('a'+i)), 1000), func(res JobResult) { ends = append(ends, res.End) }); err != nil {
			t.Fatal(err)
		}
	}
	s.Run()
	// All four run in parallel: all end at +10s.
	for _, e := range ends {
		if e.Sub(simEpoch) != 10*time.Second {
			t.Fatalf("ends = %v", ends)
		}
	}
}

func TestFasterResourceFinishesSooner(t *testing.T) {
	// The Figure 4 effect: same work, different hardware speed.
	s := New(simEpoch)
	fast, err := s.AddResource(ResourceConfig{Provider: "CN=fast", Nodes: 1, RatingMIPS: 1600})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := s.AddResource(ResourceConfig{Provider: "CN=slow", Nodes: 1, RatingMIPS: 400})
	if err != nil {
		t.Fatal(err)
	}
	var fastEnd, slowEnd time.Time
	if err := fast.Submit(job("jf", 1600), func(r JobResult) { fastEnd = r.End }); err != nil {
		t.Fatal(err)
	}
	if err := slow.Submit(job("js", 1600), func(r JobResult) { slowEnd = r.End }); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if fastEnd.Sub(simEpoch) != time.Second || slowEnd.Sub(simEpoch) != 4*time.Second {
		t.Fatalf("fast=%v slow=%v", fastEnd.Sub(simEpoch), slowEnd.Sub(simEpoch))
	}
}

func TestSoftwareFractionSplitsCPU(t *testing.T) {
	s := New(simEpoch)
	r := testResource(t, s, 1, 100)
	j := job("j", 1000)
	j.SoftwareFraction = 0.3
	var usage RawUsage
	if err := r.Submit(j, func(res JobResult) { usage = res.Usage }); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if usage.SystemCPUSec != 3 || usage.UserCPUSec != 7 {
		t.Fatalf("cpu split = %d/%d", usage.UserCPUSec, usage.SystemCPUSec)
	}
}

func TestResourceDemandsPropagate(t *testing.T) {
	s := New(simEpoch)
	r := testResource(t, s, 1, 100)
	j := Job{ID: "j", Owner: "CN=a", LengthMI: 500, MemoryMB: 512, StorageMB: 100, InputMB: 20, OutputMB: 30}
	var usage RawUsage
	if err := r.Submit(j, func(res JobResult) { usage = res.Usage }); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if usage.MaxRSSMB != 512 || usage.ScratchMB != 100 || usage.NetworkInMB != 20 || usage.NetworkOutMB != 30 {
		t.Fatalf("usage = %+v", usage)
	}
	// The noise fields exist (the meter must filter them).
	if usage.PageFaults == 0 || usage.ContextSwitches == 0 {
		t.Error("expected OS noise fields")
	}
}

func TestUtilizationTracking(t *testing.T) {
	s := New(simEpoch)
	r := testResource(t, s, 2, 100)
	if r.Utilization() != 0 {
		t.Error("pre-start utilization nonzero")
	}
	// One node busy 10s, the other idle: utilization 0.5 over the span.
	if err := r.Submit(job("j", 1000), nil); err != nil {
		t.Fatal(err)
	}
	if r.InstantLoad() != 0.5 {
		t.Errorf("instant load = %f", r.InstantLoad())
	}
	s.Run()
	if u := r.Utilization(); u < 0.49 || u > 0.51 {
		t.Errorf("utilization = %f", u)
	}
}

func TestValidationErrors(t *testing.T) {
	s := New(simEpoch)
	if _, err := s.AddResource(ResourceConfig{Provider: "", Nodes: 1, RatingMIPS: 1}); !errors.Is(err, ErrBadResource) {
		t.Errorf("no provider err = %v", err)
	}
	if _, err := s.AddResource(ResourceConfig{Provider: "p", Nodes: 0, RatingMIPS: 1}); !errors.Is(err, ErrBadResource) {
		t.Errorf("no nodes err = %v", err)
	}
	if _, err := s.AddResource(ResourceConfig{Provider: "p", Nodes: 1, RatingMIPS: 0}); !errors.Is(err, ErrBadResource) {
		t.Errorf("no rating err = %v", err)
	}
	r := testResource(t, s, 1, 1)
	if _, err := s.AddResource(r.Config()); !errors.Is(err, ErrBadResource) {
		t.Errorf("duplicate provider err = %v", err)
	}
	bad := []Job{
		{Owner: "o", LengthMI: 1},
		{ID: "i", LengthMI: 1},
		{ID: "i", Owner: "o", LengthMI: 0},
		{ID: "i", Owner: "o", LengthMI: 1, MemoryMB: -1},
		{ID: "i", Owner: "o", LengthMI: 1, SoftwareFraction: 1.5},
	}
	for i, j := range bad {
		if err := r.Submit(j, nil); !errors.Is(err, ErrBadJob) {
			t.Errorf("bad job %d err = %v", i, err)
		}
	}
}

func TestRunUntilAndStop(t *testing.T) {
	s := New(simEpoch)
	r := testResource(t, s, 1, 100)
	var done int
	for i := 0; i < 3; i++ {
		if err := r.Submit(job(string(rune('a'+i)), 1000), func(JobResult) { done++ }); err != nil {
			t.Fatal(err)
		}
	}
	s.RunUntil(simEpoch.Add(15 * time.Second))
	if done != 1 {
		t.Fatalf("done at +15s = %d", done)
	}
	if !s.Now().Equal(simEpoch.Add(15 * time.Second)) {
		t.Errorf("Now = %v", s.Now())
	}
	s.Stop()
	if s.Step() {
		t.Error("Step after Stop")
	}
	// Lookup API.
	if _, ok := s.Resource("CN=gsp1,O=VO"); !ok {
		t.Error("Resource lookup failed")
	}
	if len(s.Resources()) != 1 {
		t.Error("Resources listing wrong")
	}
}

func TestEventOrderingDeterministic(t *testing.T) {
	s := New(simEpoch)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		s.At(simEpoch.Add(time.Second), func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events out of FIFO order: %v", order)
		}
	}
	// Scheduling in the past clamps to now.
	s2 := New(simEpoch)
	fired := false
	s2.At(simEpoch.Add(-time.Hour), func() { fired = true })
	s2.Run()
	if !fired || s2.Now().Before(simEpoch) {
		t.Error("past event handling broken")
	}
}

func TestBagWorkloadDeterministic(t *testing.T) {
	opts := BagOptions{Owner: "CN=a", N: 20, MeanLengthMI: 1000, MemoryMB: 100, Seed: 42}
	b1 := Bag(opts)
	b2 := Bag(opts)
	if len(b1) != 20 {
		t.Fatalf("len = %d", len(b1))
	}
	for i := range b1 {
		if b1[i] != b2[i] {
			t.Fatal("same seed produced different workloads")
		}
		if err := b1[i].Validate(); err != nil {
			t.Fatalf("generated job invalid: %v", err)
		}
		if b1[i].LengthMI < 500 || b1[i].LengthMI > 1500 {
			t.Fatalf("length %d outside jitter range", b1[i].LengthMI)
		}
	}
	diff := Bag(BagOptions{Owner: "CN=a", N: 20, MeanLengthMI: 1000, Seed: 43})
	same := true
	for i := range b1 {
		if b1[i].LengthMI != diff[i].LengthMI {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical workloads")
	}
	if Bag(BagOptions{N: 0}) != nil {
		t.Error("empty bag should be nil")
	}
}

func TestHeterogeneousGrid(t *testing.T) {
	s := New(simEpoch)
	resources, err := HeterogeneousGrid(s, "O=VO-A")
	if err != nil {
		t.Fatal(err)
	}
	if len(resources) != 4 {
		t.Fatalf("resources = %d", len(resources))
	}
	ratings := map[string]int{}
	for _, r := range resources {
		ratings[r.Config().Provider] = r.Config().RatingMIPS
	}
	if ratings["CN=gsp-fast,O=VO-A"] <= ratings["CN=gsp-slow,O=VO-A"] {
		t.Error("speed ordering wrong")
	}
}
