package gridsim

import (
	"fmt"
	"math/rand"
)

// Workload generation: the synthetic equivalents of the paper's
// motivating applications — Nimrod-G parameter sweeps (bags of
// independent tasks) and mixed data/compute jobs. Generators are
// deterministic under a seed so experiments are reproducible.

// BagOptions parameterize a bag-of-tasks workload.
type BagOptions struct {
	// Owner is the submitting GSC's certificate name.
	Owner string
	// Application labels the jobs.
	Application string
	// N is the number of jobs.
	N int
	// MeanLengthMI is the mean job length; individual lengths are
	// uniform in [0.5, 1.5]×mean (Nimrod-G sweeps are near-homogeneous).
	MeanLengthMI int64
	// MemoryMB / StorageMB / InputMB / OutputMB are per-job demands,
	// each uniform in [0.5, 1.5]× the given mean (0 stays 0).
	MemoryMB  int64
	StorageMB int64
	InputMB   int64
	OutputMB  int64
	// SoftwareFraction is the licensed-software CPU share.
	SoftwareFraction float64
	// Seed makes the workload reproducible.
	Seed int64
	// IDPrefix prefixes job IDs (default "job").
	IDPrefix string
}

// Bag generates a deterministic bag-of-tasks workload.
func Bag(opts BagOptions) []Job {
	if opts.N <= 0 {
		return nil
	}
	if opts.IDPrefix == "" {
		opts.IDPrefix = "job"
	}
	if opts.Application == "" {
		opts.Application = "param-sweep"
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	jitter := func(mean int64) int64 {
		if mean <= 0 {
			return 0
		}
		f := 0.5 + rng.Float64()
		v := int64(float64(mean) * f)
		if v < 1 {
			v = 1
		}
		return v
	}
	jobs := make([]Job, opts.N)
	for i := range jobs {
		jobs[i] = Job{
			ID:               fmt.Sprintf("%s-%04d", opts.IDPrefix, i),
			Owner:            opts.Owner,
			Application:      opts.Application,
			LengthMI:         jitter(opts.MeanLengthMI),
			MemoryMB:         jitter(opts.MemoryMB),
			StorageMB:        jitter(opts.StorageMB),
			InputMB:          jitter(opts.InputMB),
			OutputMB:         jitter(opts.OutputMB),
			SoftwareFraction: opts.SoftwareFraction,
		}
	}
	return jobs
}

// HeterogeneousGrid builds a standard four-GSP testbed mirroring the
// co-operative scenario of Figure 4: providers with different hardware
// speeds ("although computations on some resources are faster because of
// better hardware, the slower resources have to compensate by running
// longer").
func HeterogeneousGrid(sim *Sim, org string) ([]*Resource, error) {
	configs := []ResourceConfig{
		{Provider: "CN=gsp-fast," + org, Host: "fast.grid", HostType: "Cray", Nodes: 8, RatingMIPS: 1600},
		{Provider: "CN=gsp-mid1," + org, Host: "mid1.grid", HostType: "Linux cluster", Nodes: 8, RatingMIPS: 800},
		{Provider: "CN=gsp-mid2," + org, Host: "mid2.grid", HostType: "Linux cluster", Nodes: 8, RatingMIPS: 600},
		{Provider: "CN=gsp-slow," + org, Host: "slow.grid", HostType: "SMP", Nodes: 8, RatingMIPS: 400},
	}
	out := make([]*Resource, 0, len(configs))
	for _, cfg := range configs {
		r, err := sim.AddResource(cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
