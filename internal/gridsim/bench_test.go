package gridsim

import (
	"fmt"
	"testing"
	"time"
)

// BenchmarkSimulateJobs measures simulator throughput: jobs completed
// per wall-clock second, at several scales.
func BenchmarkSimulateJobs(b *testing.B) {
	for _, n := range []int{100, 1000, 10_000} {
		b.Run(fmt.Sprintf("jobs=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				sim := New(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
				r, err := sim.AddResource(ResourceConfig{Provider: "CN=p", Nodes: 16, RatingMIPS: 1000})
				if err != nil {
					b.Fatal(err)
				}
				jobs := Bag(BagOptions{Owner: "CN=a", N: n, MeanLengthMI: 10_000, Seed: int64(i)})
				done := 0
				b.StartTimer()
				for _, j := range jobs {
					if err := r.Submit(j, func(JobResult) { done++ }); err != nil {
						b.Fatal(err)
					}
				}
				sim.Run()
				if done != n {
					b.Fatalf("completed %d of %d", done, n)
				}
			}
		})
	}
}

func BenchmarkBagGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Bag(BagOptions{Owner: "CN=a", N: 1000, MeanLengthMI: 10_000, MemoryMB: 128, Seed: int64(i)})
	}
}
