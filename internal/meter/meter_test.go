package meter

import (
	"errors"
	"strings"
	"testing"
	"time"

	"gridbank/internal/currency"
	"gridbank/internal/gridsim"
	"gridbank/internal/rur"
)

var epoch = time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC)

func sampleResult() gridsim.JobResult {
	return gridsim.JobResult{
		Job: gridsim.Job{
			ID: "job-1", Owner: "CN=alice,O=VO", Application: "sweep",
			MemoryMB: 512, StorageMB: 100, InputMB: 20, OutputMB: 30,
			LengthMI: 1000,
		},
		Resource: "CN=gsp1,O=VO",
		Start:    epoch,
		End:      epoch.Add(100 * time.Second),
		Usage: gridsim.RawUsage{
			LocalPID: "pid-7", Host: "gsp1.grid",
			UserCPUSec: 90, SystemCPUSec: 10, WallClockSec: 100,
			MaxRSSMB: 512, ScratchMB: 100, NetworkInMB: 20, NetworkOutMB: 30,
			PageFaults: 12345, ContextSwitches: 678,
		},
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New("", ""); err == nil {
		t.Error("empty provider accepted")
	}
	m, err := New("CN=gsp1,O=VO", "Cray")
	if err != nil || m.ProviderCert() != "CN=gsp1,O=VO" {
		t.Fatalf("New = %v, %v", m, err)
	}
}

func TestConvertFiltersAndConverts(t *testing.T) {
	m, _ := New("CN=gsp1,O=VO", "Cray")
	rec, err := m.Convert(sampleResult())
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Validate(); err != nil {
		t.Fatal(err)
	}
	// Identity plumbing.
	if rec.User.CertificateName != "CN=alice,O=VO" {
		t.Errorf("user = %+v", rec.User)
	}
	if rec.Resource.CertificateName != "CN=gsp1,O=VO" || rec.Resource.LocalJobID != "pid-7" ||
		rec.Resource.HostType != "Cray" || rec.Resource.Host != "gsp1.grid" {
		t.Errorf("resource = %+v", rec.Resource)
	}
	// Conversions: memory/storage integrate over wall clock; network sums.
	if got := rec.Quantity(rur.ItemCPU); got != 90 {
		t.Errorf("cpu = %d", got)
	}
	if got := rec.Quantity(rur.ItemWallClock); got != 100 {
		t.Errorf("wall = %d", got)
	}
	if got := rec.Quantity(rur.ItemMemory); got != 512*100 {
		t.Errorf("memory = %d", got)
	}
	if got := rec.Quantity(rur.ItemStorage); got != 100*100 {
		t.Errorf("storage = %d", got)
	}
	if got := rec.Quantity(rur.ItemNetwork); got != 50 {
		t.Errorf("network = %d", got)
	}
	if got := rec.Quantity(rur.ItemSoftware); got != 10 {
		t.Errorf("software = %d", got)
	}
	// The noise fields are filtered: only the six chargeable items
	// appear.
	if len(rec.Usage) != 6 {
		t.Errorf("usage lines = %d (%+v)", len(rec.Usage), rec.Usage)
	}
}

func TestConvertRejectsNegativeWall(t *testing.T) {
	m, _ := New("CN=gsp1", "")
	res := sampleResult()
	res.Usage.WallClockSec = -1
	if _, err := m.Convert(res); err == nil {
		t.Error("negative wall clock accepted")
	}
}

func TestAggregateMultiResourceService(t *testing.T) {
	// Figure 1's R1–R4: four internal resources serve one job; the GRM
	// presents one combined record.
	m, _ := New("CN=gsp1,O=VO", "")
	r1 := sampleResult()
	r2 := sampleResult()
	r2.Usage.UserCPUSec = 50
	r2.Usage.NetworkInMB = 5
	r2.Usage.NetworkOutMB = 0
	r2.Start = epoch.Add(-50 * time.Second) // started earlier
	rec, err := m.Aggregate([]gridsim.JobResult{r1, r2})
	if err != nil {
		t.Fatal(err)
	}
	if got := rec.Quantity(rur.ItemCPU); got != 140 {
		t.Errorf("aggregated cpu = %d", got)
	}
	if got := rec.Quantity(rur.ItemNetwork); got != 55 {
		t.Errorf("aggregated network = %d", got)
	}
	if !rec.Job.Start.Equal(r2.Start) {
		t.Error("interval did not widen")
	}
	// Mixed jobs refused.
	r3 := sampleResult()
	r3.Job.ID = "job-2"
	if _, err := m.Aggregate([]gridsim.JobResult{r1, r3}); !errors.Is(err, ErrMixedJobs) {
		t.Errorf("mixed agg err = %v", err)
	}
	if _, err := m.Aggregate(nil); !errors.Is(err, ErrNoResults) {
		t.Errorf("empty agg err = %v", err)
	}
}

func TestTranslate(t *testing.T) {
	m, _ := New("CN=gsp1,O=VO", "")
	rec, err := m.Convert(sampleResult())
	if err != nil {
		t.Fatal(err)
	}
	jsonBytes, err := rur.Encode(rec, rur.FormatJSON)
	if err != nil {
		t.Fatal(err)
	}
	xmlBytes, err := Translate(jsonBytes, rur.FormatXML)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(xmlBytes), "<CertificateName>CN=alice,O=VO</CertificateName>") {
		t.Errorf("translated XML missing fields:\n%s", xmlBytes)
	}
	// And back.
	back, err := Translate(xmlBytes, rur.FormatJSON)
	if err != nil {
		t.Fatal(err)
	}
	rec2, err := rur.Decode(back)
	if err != nil {
		t.Fatal(err)
	}
	if rec2.Quantity(rur.ItemCPU) != rec.Quantity(rur.ItemCPU) {
		t.Error("translation lost data")
	}
	if _, err := Translate([]byte("garbage"), rur.FormatXML); err == nil {
		t.Error("garbage translated")
	}
}

// TestTypedErrorClassification pins the reject-vs-retry contract the
// usage settlement pipeline depends on: every malformed-input failure
// from Convert, Aggregate and Translate must wrap ErrMalformed, so a
// queue consumer can reject it instead of retrying forever.
func TestTypedErrorClassification(t *testing.T) {
	m, _ := New("CN=gsp1,O=VO", "")
	negWall := sampleResult()
	negWall.Usage.WallClockSec = -5
	negCPU := sampleResult()
	negCPU.Usage.UserCPUSec = -1 // survives Convert's wall check, fails Validate
	otherJob := sampleResult()
	otherJob.Job.ID = "job-2"
	otherOwner := sampleResult()
	otherOwner.Job.Owner = "CN=mallory,O=VO"

	cases := []struct {
		name string
		run  func() error
		is   []error // every sentinel the error must satisfy
	}{
		{"convert negative wall", func() error {
			_, err := m.Convert(negWall)
			return err
		}, []error{ErrMalformed}},
		{"convert invalid record", func() error {
			_, err := m.Convert(negCPU)
			return err
		}, []error{ErrMalformed, rur.ErrNegativeUsage}},
		{"aggregate empty", func() error {
			_, err := m.Aggregate(nil)
			return err
		}, []error{ErrMalformed, ErrNoResults}},
		{"aggregate mixed jobs", func() error {
			_, err := m.Aggregate([]gridsim.JobResult{sampleResult(), otherJob})
			return err
		}, []error{ErrMalformed, ErrMixedJobs}},
		{"aggregate mixed owners", func() error {
			_, err := m.Aggregate([]gridsim.JobResult{sampleResult(), otherOwner})
			return err
		}, []error{ErrMalformed}},
		{"translate garbage", func() error {
			_, err := Translate([]byte("{not json"), rur.FormatXML)
			return err
		}, []error{ErrMalformed}},
		{"translate unknown format", func() error {
			rec, cerr := m.Convert(sampleResult())
			if cerr != nil {
				return cerr
			}
			b, cerr := rur.Encode(rec, rur.FormatJSON)
			if cerr != nil {
				return cerr
			}
			_, err := Translate(b, rur.Format("yaml"))
			return err
		}, []error{ErrMalformed}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.run()
			if err == nil {
				t.Fatal("expected error")
			}
			for _, sentinel := range tc.is {
				if !errors.Is(err, sentinel) {
					t.Errorf("error %v does not wrap %v", err, sentinel)
				}
			}
		})
	}
	// The happy path must stay clean of the sentinel.
	if _, err := m.Convert(sampleResult()); err != nil {
		t.Fatalf("valid convert failed: %v", err)
	}
}

// TestMeterPricingPipeline exercises the full Figure 2 flow: raw usage →
// RUR → cost statement against a rate card.
func TestMeterPricingPipeline(t *testing.T) {
	m, _ := New("CN=gsp1,O=VO", "")
	rec, err := m.Convert(sampleResult())
	if err != nil {
		t.Fatal(err)
	}
	card := &rur.RateCard{
		Provider: "CN=gsp1,O=VO",
		Currency: currency.GridDollar,
		Rates: map[rur.Item]currency.Rate{
			rur.ItemCPU:       currency.PerHour(36 * currency.Scale), // 36 G$/h => 0.01/s
			rur.ItemWallClock: currency.ZeroRate,
			rur.ItemMemory:    currency.ZeroRate,
			rur.ItemStorage:   currency.ZeroRate,
			rur.ItemNetwork:   currency.PerMB(currency.Scale / 10), // 0.1 G$/MB
			rur.ItemSoftware:  currency.ZeroRate,
		},
	}
	st, err := rur.Price(rec, card)
	if err != nil {
		t.Fatal(err)
	}
	// 90 s CPU × 0.01 + 50 MB × 0.1 = 0.9 + 5 = 5.9 G$.
	if st.Total != currency.MustParse("5.9") {
		t.Fatalf("total = %s", st.Total)
	}
}
