// Package meter implements the Grid Resource Meter (GRM) of §2.1 and
// Figure 2: the GSP-side module that interfaces with the local resource
// allocation system, extracts raw usage statistics after a user
// application finishes, filters the relevant fields, and converts them
// into the standard OS-independent Resource Usage Record.
//
// It also implements the GRM's aggregation duty: "each individual
// resource (R1–R4) used to provide computational service presents its
// usage record to the GRM. GRM might choose to aggregate individual
// records into the standard RUR to reflect the charge for the combined
// GSP's service."
package meter

import (
	"errors"
	"fmt"

	"gridbank/internal/gridsim"
	"gridbank/internal/rur"
)

// Errors. ErrMalformed is the terminal class: input that can never
// become a valid record, no matter how often it is retried. Consumers
// that queue records for asynchronous settlement (the usage pipeline)
// branch on it — errors.Is(err, ErrMalformed) means reject the record
// outright; anything else is potentially transient and safe to retry.
// ErrNoResults and ErrMixedJobs are malformed-input cases and wrap it.
var (
	ErrMalformed = errors.New("meter: malformed usage input")
	ErrNoResults = fmt.Errorf("%w: no job results to convert", ErrMalformed)
	ErrMixedJobs = fmt.Errorf("%w: results belong to different jobs", ErrMalformed)
)

// Meter converts raw usage into RURs for one GSP.
type Meter struct {
	providerCert string
	hostType     string
}

// New creates a meter for the provider with the given certificate name.
// hostType labels the hardware in resource details (optional).
func New(providerCert, hostType string) (*Meter, error) {
	if providerCert == "" {
		return nil, errors.New("meter: provider certificate name required")
	}
	return &Meter{providerCert: providerCert, hostType: hostType}, nil
}

// ProviderCert returns the certificate name records are issued under.
func (m *Meter) ProviderCert() string { return m.providerCert }

// Convert filters one raw result into a standard RUR. This is the
// Figure 2 pipeline: of the raw OS statistics, only the chargeable items
// survive (page faults, context switches and other noise are dropped);
// memory and storage integrate over wall-clock time into MB·s; network
// in/out sum into total traffic ("MB of total 'traffic'", §2.1).
func (m *Meter) Convert(res gridsim.JobResult) (*rur.Record, error) {
	u := res.Usage
	wall := u.WallClockSec
	if wall < 0 {
		return nil, fmt.Errorf("%w: negative wall clock %d", ErrMalformed, wall)
	}
	rec := &rur.Record{
		User: rur.UserDetails{
			CertificateName: res.Job.Owner,
		},
		Job: rur.JobDetails{
			JobID:       res.Job.ID,
			Application: res.Job.Application,
			Start:       res.Start,
			End:         res.End,
		},
		Resource: rur.ResourceDetails{
			Host:            u.Host,
			CertificateName: m.providerCert,
			HostType:        m.hostType,
			LocalJobID:      u.LocalPID,
		},
	}
	rec.SetQuantity(rur.ItemCPU, u.UserCPUSec)
	rec.SetQuantity(rur.ItemWallClock, wall)
	rec.SetQuantity(rur.ItemMemory, u.MaxRSSMB*wall)
	rec.SetQuantity(rur.ItemStorage, u.ScratchMB*wall)
	rec.SetQuantity(rur.ItemNetwork, u.NetworkInMB+u.NetworkOutMB)
	rec.SetQuantity(rur.ItemSoftware, u.SystemCPUSec)
	if err := rec.Validate(); err != nil {
		return nil, fmt.Errorf("%w: converted record invalid: %w", ErrMalformed, err)
	}
	return rec, nil
}

// Aggregate merges several raw results for the *same job* (a service
// spanning multiple internal resources) into one combined RUR.
func (m *Meter) Aggregate(results []gridsim.JobResult) (*rur.Record, error) {
	if len(results) == 0 {
		return nil, ErrNoResults
	}
	base, err := m.Convert(results[0])
	if err != nil {
		return nil, err
	}
	for _, res := range results[1:] {
		if res.Job.ID != results[0].Job.ID {
			return nil, fmt.Errorf("%w: %q vs %q", ErrMixedJobs, res.Job.ID, results[0].Job.ID)
		}
		next, err := m.Convert(res)
		if err != nil {
			return nil, err
		}
		if err := base.Merge(next); err != nil {
			// Merge refusals (mismatched consumer or job) are structural:
			// retrying the same inputs can never succeed.
			return nil, fmt.Errorf("%w: %w", ErrMalformed, err)
		}
	}
	return base, nil
}

// Translate re-encodes a record between site formats (§5.1 NOTE: "Grid
// Resource Meter Module can then perform translations from one record
// format into another").
func Translate(data []byte, to rur.Format) ([]byte, error) {
	rec, err := rur.Decode(data)
	if err != nil {
		// Undecodable bytes are terminally malformed, not transient.
		return nil, fmt.Errorf("%w: %w", ErrMalformed, err)
	}
	out, err := rur.Encode(rec, to)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrMalformed, err)
	}
	return out, nil
}
