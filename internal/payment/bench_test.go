package payment

import (
	"fmt"
	"testing"
	"time"

	"gridbank/internal/currency"
	"gridbank/internal/pki"
)

func benchBank(b *testing.B) (*pki.Identity, *pki.TrustStore) {
	b.Helper()
	ca, err := pki.NewCA("BenchCA", "VO", 24*time.Hour)
	if err != nil {
		b.Fatal(err)
	}
	bank, err := ca.Issue(pki.IssueOptions{CommonName: "bank"})
	if err != nil {
		b.Fatal(err)
	}
	return bank, pki.NewTrustStore(ca.Certificate())
}

func BenchmarkIssueCheque(b *testing.B) {
	bank, _ := benchBank(b)
	c := Cheque{
		Serial: "s", DrawerAccountID: "01-0001-00000001", DrawerCert: "CN=a",
		PayeeCert: "CN=g", Limit: currency.FromG(10), Currency: currency.GridDollar,
		IssuedAt: time.Now(), Expires: time.Now().Add(time.Hour),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := IssueCheque(bank, c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerifyCheque(b *testing.B) {
	bank, ts := benchBank(b)
	c := Cheque{
		Serial: "s", DrawerAccountID: "01-0001-00000001", DrawerCert: "CN=a",
		PayeeCert: "CN=g", Limit: currency.FromG(10), Currency: currency.GridDollar,
		IssuedAt: time.Now(), Expires: time.Now().Add(time.Hour),
	}
	sc, err := IssueCheque(bank, c)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := VerifyCheque(sc, ts, "CN=g", time.Now()); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation: chain-word verification costs i hashes at index i. This is
// the design pressure behind batched redemption and MaxChainLength.
func BenchmarkVerifyWordByIndex(b *testing.B) {
	ch, err := NewChain("01-0001-00000001", "CN=a", "CN=g", 100_000,
		currency.FromMicro(1000), currency.GridDollar, time.Now(), time.Hour)
	if err != nil {
		b.Fatal(err)
	}
	for _, idx := range []int{1, 100, 10_000, 100_000} {
		word, err := ch.Word(idx)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("index=%d", idx), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := VerifyWord(&ch.Commitment, idx, word); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Ablation: chain generation cost by length (issue-time work the bank
// performs per RequestChain).
func BenchmarkNewChainByLength(b *testing.B) {
	for _, n := range []int{100, 10_000, 100_000} {
		b.Run(fmt.Sprintf("len=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := NewChain("01-0001-00000001", "CN=a", "CN=g", n,
					currency.FromMicro(1000), currency.GridDollar, time.Now(), time.Hour); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
