// Package payment implements the Payment Protocol Layer of §3.1/§3.2: the
// payment instruments GridBank issues and redeems.
//
// Three charging policies, three instruments:
//
//   - Pay before use — no instrument at all: an on-line direct transfer
//     with confirmation delivered to the GSP (DirectOrder here is just the
//     validated request).
//   - Pay as you go — GridHash: a PayWord-style hash chain (Rivest &
//     Shamir). The bank signs a commitment to the chain root; each
//     successive preimage released to the GSP is worth a fixed amount.
//   - Pay after use — GridCheque: a NetCheque-style digital cheque made
//     out to a specific GSP, backed by funds locked at issue time (§3.4),
//     redeemed together with the Resource Usage Record, possibly in
//     batches.
//
// The package is pure instrument logic: creation, signing and
// verification. Ledger effects (locking, transfer, double-spend
// registries) live in the bank core, keeping this layer replaceable
// exactly as the paper's modularity claim requires.
package payment

import (
	"crypto/rand"
	"encoding/base64"
	"errors"
	"fmt"
	"time"

	"gridbank/internal/accounts"
	"gridbank/internal/currency"
	"gridbank/internal/pki"
)

// Signature context strings, domain-separating each instrument type.
const (
	ContextCheque     = "gridbank/cheque/v1"
	ContextHashChain  = "gridbank/hashchain/v1"
	ContextRedemption = "gridbank/redemption/v1"
)

// Instrument kinds.
const (
	KindDirect    = "direct"
	KindCheque    = "cheque"
	KindHashChain = "hashchain"
)

// Errors.
var (
	ErrWrongPayee   = errors.New("payment: instrument made out to a different payee")
	ErrOverLimit    = errors.New("payment: claim exceeds instrument limit")
	ErrExpired      = errors.New("payment: instrument expired")
	ErrBadWord      = errors.New("payment: hash word does not verify against commitment")
	ErrBadIndex     = errors.New("payment: hash word index out of range")
	ErrChainTooLong = errors.New("payment: chain length out of range")
)

// NewSerial returns a 128-bit random serial for an instrument.
func NewSerial() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", err
	}
	return base64.RawURLEncoding.EncodeToString(b[:]), nil
}

// Cheque is the GridCheque payload. The bank signs it (pki.Signed with
// ContextCheque) after locking Limit on the drawer's account, so the
// cheque doubles as the bank's payment guarantee (§3.4: "GridBank will
// have to lock a certain amount of funds for the cheque to be valid").
type Cheque struct {
	Serial          string          `json:"serial"`
	DrawerAccountID accounts.ID     `json:"drawer_account_id"`
	DrawerCert      string          `json:"drawer_cert"` // GSC certificate name
	PayeeCert       string          `json:"payee_cert"`  // §3.1: "made out to GSP so no one else can redeem it"
	Limit           currency.Amount `json:"limit"`       // reserved (locked) amount
	Currency        currency.Code   `json:"currency"`
	IssuedAt        time.Time       `json:"issued_at"`
	Expires         time.Time       `json:"expires"`
}

// Validate checks structural well-formedness.
func (c *Cheque) Validate() error {
	switch {
	case c.Serial == "":
		return errors.New("payment: cheque missing serial")
	case !c.DrawerAccountID.Valid():
		return fmt.Errorf("payment: bad drawer account %q", c.DrawerAccountID)
	case c.DrawerCert == "":
		return errors.New("payment: cheque missing drawer certificate name")
	case c.PayeeCert == "":
		return errors.New("payment: cheque missing payee certificate name")
	case !c.Limit.IsPositive():
		return errors.New("payment: cheque limit must be positive")
	case !c.Currency.Valid():
		return fmt.Errorf("payment: bad currency %q", c.Currency)
	case !c.Expires.After(c.IssuedAt):
		return errors.New("payment: cheque expires before issue")
	}
	return nil
}

// SignedCheque couples the cheque with the bank's signature envelope.
type SignedCheque struct {
	Cheque   Cheque      `json:"cheque"`
	Envelope *pki.Signed `json:"envelope"`
}

// IssueCheque validates, signs and wraps a cheque with the bank identity.
// The caller (bank core) must have locked c.Limit on the drawer account
// first.
func IssueCheque(bank *pki.Identity, c Cheque) (*SignedCheque, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	env, err := pki.Sign(bank, ContextCheque, c)
	if err != nil {
		return nil, err
	}
	return &SignedCheque{Cheque: c, Envelope: env}, nil
}

// VerifyCheque checks the bank signature, structural validity, expiry at
// time now, and that the presenting payee matches the cheque. It returns
// the signer (bank) subject name.
func VerifyCheque(sc *SignedCheque, ts *pki.TrustStore, payeeCert string, now time.Time) (string, error) {
	if sc == nil || sc.Envelope == nil {
		return "", errors.New("payment: missing cheque envelope")
	}
	var c Cheque
	signer, err := sc.Envelope.Verify(ts, ContextCheque, now, &c)
	if err != nil {
		return "", err
	}
	if err := c.Validate(); err != nil {
		return "", err
	}
	// Use the signed payload, not the unauthenticated wrapper copy.
	// (time.Time fields compare with Equal, not ==: JSON decoding drops
	// the monotonic clock and may change the location representation.)
	w := sc.Cheque
	if c.Serial != w.Serial || c.DrawerAccountID != w.DrawerAccountID ||
		c.DrawerCert != w.DrawerCert || c.PayeeCert != w.PayeeCert ||
		c.Limit != w.Limit || c.Currency != w.Currency ||
		!c.IssuedAt.Equal(w.IssuedAt) || !c.Expires.Equal(w.Expires) {
		return "", errors.New("payment: cheque wrapper does not match signed payload")
	}
	if now.After(c.Expires) {
		return "", fmt.Errorf("%w: at %v", ErrExpired, c.Expires)
	}
	if payeeCert != "" && c.PayeeCert != payeeCert {
		return "", fmt.Errorf("%w: cheque for %q presented by %q", ErrWrongPayee, c.PayeeCert, payeeCert)
	}
	return signer, nil
}

// ChequeClaim is what a GSP submits to redeem (part of) a cheque: the
// signed cheque, the amount actually owed (≤ limit), and the RUR
// evidence. The GSP signs the claim (ContextRedemption) for
// non-repudiation of the charge calculation (§2.1).
type ChequeClaim struct {
	Serial string          `json:"serial"`
	Amount currency.Amount `json:"amount"`
	// RUR is the encoded Resource Usage Record justifying Amount.
	RUR []byte `json:"rur"`
	// Statement is the priced cost statement (JSON rur.CostStatement),
	// included so disputes can re-derive Amount from RUR × rates.
	Statement []byte `json:"statement,omitempty"`
}

// ValidateClaim checks a claim against its cheque.
func (c *Cheque) ValidateClaim(claim *ChequeClaim) error {
	if claim.Serial != c.Serial {
		return fmt.Errorf("payment: claim serial %q does not match cheque %q", claim.Serial, c.Serial)
	}
	if !claim.Amount.IsPositive() {
		return errors.New("payment: claim amount must be positive")
	}
	if claim.Amount.Cmp(c.Limit) > 0 {
		return fmt.Errorf("%w: claim %s > limit %s", ErrOverLimit, claim.Amount, c.Limit)
	}
	return nil
}
