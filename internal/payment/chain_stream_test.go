package payment

import (
	"errors"
	"testing"
	"time"

	"gridbank/internal/currency"
)

// TestVerifyChainTamperMatrix regresses the chain-rebinding hole: the
// wrapper commitment in a SignedChain is attacker-writable, and the
// bank once trusted fields from it (drawer account, currency, expiry)
// after checking only serial/root/length/per-word. Every single wrapper
// field tampered on its own must now sink the whole chain.
func TestVerifyChainTamperMatrix(t *testing.T) {
	f := newFixture(t)
	ch := newChain(t, 10)
	sc, err := IssueChain(f.bank, ch.Commitment)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]func(*ChainCommitment){
		"Serial":          func(cc *ChainCommitment) { cc.Serial = "forged-serial" },
		"DrawerAccountID": func(cc *ChainCommitment) { cc.DrawerAccountID = "01-0001-00009999" },
		"DrawerCert":      func(cc *ChainCommitment) { cc.DrawerCert = "CN=mallory,O=VO" },
		"PayeeCert":       func(cc *ChainCommitment) { cc.PayeeCert = "CN=thief,O=VO" },
		"Root":            func(cc *ChainCommitment) { cc.Root = append([]byte(nil), make([]byte, 32)...) },
		"Length":          func(cc *ChainCommitment) { cc.Length++ },
		"PerWord":         func(cc *ChainCommitment) { cc.PerWord = currency.FromG(999) },
		"Currency":        func(cc *ChainCommitment) { cc.Currency = "USD" },
		"IssuedAt":        func(cc *ChainCommitment) { cc.IssuedAt = cc.IssuedAt.Add(time.Minute) },
		"Expires":         func(cc *ChainCommitment) { cc.Expires = cc.Expires.Add(24 * time.Hour) },
	}
	for field, mutate := range cases {
		t.Run(field, func(t *testing.T) {
			tampered := *sc
			tampered.Commitment = sc.Commitment
			mutate(&tampered.Commitment)
			if _, _, err := VerifyChain(&tampered, f.ts, "", payEpoch); err == nil {
				t.Fatalf("wrapper with tampered %s accepted", field)
			}
		})
	}
	// The verified commitment returned is the signed payload, immune to
	// whatever the wrapper said.
	tampered := *sc
	tampered.Commitment.Expires = tampered.Commitment.Expires.Add(24 * time.Hour)
	if _, _, err := VerifyChain(&tampered, f.ts, "", payEpoch.Add(90*time.Minute)); err == nil {
		t.Fatal("wrapper-extended expiry accepted past the signed expiry")
	}
}

// TestVerifyChainExpiryStrict pins the boundary semantics: redeemable
// strictly before Expires, dead at the instant itself — so redemption
// (now.Before) and release (!now.Before) can never both accept the same
// moment.
func TestVerifyChainExpiryStrict(t *testing.T) {
	f := newFixture(t)
	ch := newChain(t, 10)
	sc, err := IssueChain(f.bank, ch.Commitment)
	if err != nil {
		t.Fatal(err)
	}
	expires := ch.Commitment.Expires
	if _, _, err := VerifyChain(sc, f.ts, "", expires.Add(-time.Nanosecond)); err != nil {
		t.Errorf("one ns before expiry: %v", err)
	}
	if _, _, err := VerifyChain(sc, f.ts, "", expires); !errors.Is(err, ErrExpired) {
		t.Errorf("at the expiry instant: %v", err)
	}
}

func TestVerifyWordAfter(t *testing.T) {
	ch := newChain(t, 50)
	cc := &ch.Commitment
	w10, _ := ch.Word(10)
	w25, _ := ch.Word(25)
	w26, _ := ch.Word(26)

	// Anchored at the root (from=0) and at a mid-chain word.
	if err := VerifyWordAfter(cc, 0, nil, 10, w10); err != nil {
		t.Errorf("root anchor: %v", err)
	}
	if err := VerifyWordAfter(cc, 10, w10, 25, w25); err != nil {
		t.Errorf("mid anchor: %v", err)
	}
	if err := VerifyWordAfter(cc, 25, w25, 26, w26); err != nil {
		t.Errorf("single step: %v", err)
	}
	// Going backwards, standing still, or overshooting the chain.
	if err := VerifyWordAfter(cc, 25, w25, 25, w25); !errors.Is(err, ErrBadIndex) {
		t.Errorf("stationary: %v", err)
	}
	if err := VerifyWordAfter(cc, 25, w25, 10, w10); !errors.Is(err, ErrBadIndex) {
		t.Errorf("backwards: %v", err)
	}
	if err := VerifyWordAfter(cc, 25, w25, 51, w26); !errors.Is(err, ErrBadIndex) {
		t.Errorf("overshoot: %v", err)
	}
	// A wrong word, a wrong anchor, and a truncated anchor all fail.
	if err := VerifyWordAfter(cc, 10, w10, 25, w26); !errors.Is(err, ErrBadWord) {
		t.Errorf("wrong word: %v", err)
	}
	if err := VerifyWordAfter(cc, 10, w25, 25, w25); !errors.Is(err, ErrBadWord) {
		t.Errorf("wrong anchor: %v", err)
	}
	if err := VerifyWordAfter(cc, 10, w10[:16], 25, w25); !errors.Is(err, ErrBadWord) {
		t.Errorf("short anchor: %v", err)
	}
}

func TestReceiverStream(t *testing.T) {
	ch := newChain(t, 30)
	r := NewReceiver(ch.Commitment)
	if r.Index() != 0 || r.Claim(nil) != nil {
		t.Fatal("fresh receiver not empty")
	}
	// In order, with gaps.
	for _, i := range []int{1, 2, 7, 20} {
		w, _ := ch.Word(i)
		if err := r.Accept(i, w); err != nil {
			t.Fatalf("accept %d: %v", i, err)
		}
	}
	if r.Index() != 20 {
		t.Fatalf("index = %d", r.Index())
	}
	// Replays and regressions refused without disturbing state.
	w7, _ := ch.Word(7)
	if err := r.Accept(7, w7); !errors.Is(err, ErrBadIndex) {
		t.Fatalf("replay: %v", err)
	}
	w21, _ := ch.Word(21)
	forged := append([]byte(nil), w21...)
	forged[0] ^= 1
	if err := r.Accept(21, forged); !errors.Is(err, ErrBadWord) {
		t.Fatalf("forged: %v", err)
	}
	if r.Index() != 20 {
		t.Fatalf("index moved on refusal: %d", r.Index())
	}
	claim := r.Claim([]byte("rur"))
	if claim == nil || claim.Index != 20 || claim.Serial != ch.Commitment.Serial {
		t.Fatalf("claim = %+v", claim)
	}
	if err := ch.Commitment.ValidateClaim(claim); err != nil {
		t.Fatalf("claim does not validate: %v", err)
	}
}

// The perf fix in numbers: verifying the streamed words of a maximal
// chain one at a time costs O(n) hashes total with the incremental
// anchor versus O(n²) re-deriving from the root each tick. These
// benchmarks make the before/after visible (run with -bench ChainVerify).
func BenchmarkChainVerifyFromRoot(b *testing.B) {
	benchVerify(b, false)
}

func BenchmarkChainVerifyIncremental(b *testing.B) {
	benchVerify(b, true)
}

func benchVerify(b *testing.B, incremental bool) {
	const length = 4096
	ch, err := NewChain("01-0001-00000001", "CN=a,O=VO", "CN=b,O=VO",
		length, currency.FromMicro(1), currency.GridDollar, time.Now(), time.Hour)
	if err != nil {
		b.Fatal(err)
	}
	words := make([][]byte, length+1)
	for i := 1; i <= length; i++ {
		words[i], _ = ch.Word(i)
	}
	cc := &ch.Commitment
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		prev := 0
		for i := 1; i <= length; i++ {
			var err error
			if incremental {
				err = VerifyWordAfter(cc, prev, words[prev], i, words[i])
			} else {
				err = VerifyWord(cc, i, words[i])
			}
			if err != nil {
				b.Fatal(err)
			}
			prev = i
		}
	}
	b.ReportMetric(float64(length), "words/op")
}
