package payment

import (
	"errors"
	"testing"
	"time"

	"gridbank/internal/currency"
	"gridbank/internal/pki"
)

// payEpoch must fall inside the freshly issued certificates' validity
// window, so it is anchored to the wall clock.
var payEpoch = time.Now().Truncate(time.Second)

type fixture struct {
	ca   *pki.CA
	bank *pki.Identity
	ts   *pki.TrustStore
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	ca, err := pki.NewCA("TestCA", "VO", 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	bank, err := ca.Issue(pki.IssueOptions{CommonName: "gridbank", Organization: "VO"})
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{ca: ca, bank: bank, ts: pki.NewTrustStore(ca.Certificate())}
}

func testCheque() Cheque {
	return Cheque{
		Serial:          "serial-1",
		DrawerAccountID: "01-0001-00000001",
		DrawerCert:      "CN=alice,O=VO",
		PayeeCert:       "CN=gsp1,O=VO",
		Limit:           currency.FromG(50),
		Currency:        currency.GridDollar,
		IssuedAt:        payEpoch,
		Expires:         payEpoch.Add(time.Hour),
	}
}

func TestNewSerialUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		s, err := NewSerial()
		if err != nil || s == "" {
			t.Fatalf("NewSerial: %q, %v", s, err)
		}
		if seen[s] {
			t.Fatal("duplicate serial")
		}
		seen[s] = true
	}
}

func TestChequeValidate(t *testing.T) {
	good := testCheque()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid cheque rejected: %v", err)
	}
	cases := []func(*Cheque){
		func(c *Cheque) { c.Serial = "" },
		func(c *Cheque) { c.DrawerAccountID = "bogus" },
		func(c *Cheque) { c.DrawerCert = "" },
		func(c *Cheque) { c.PayeeCert = "" },
		func(c *Cheque) { c.Limit = 0 },
		func(c *Cheque) { c.Limit = currency.FromG(-1) },
		func(c *Cheque) { c.Currency = "" },
		func(c *Cheque) { c.Expires = c.IssuedAt },
	}
	for i, mutate := range cases {
		c := testCheque()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid cheque accepted", i)
		}
	}
}

func TestIssueVerifyCheque(t *testing.T) {
	f := newFixture(t)
	sc, err := IssueCheque(f.bank, testCheque())
	if err != nil {
		t.Fatal(err)
	}
	signer, err := VerifyCheque(sc, f.ts, "CN=gsp1,O=VO", payEpoch.Add(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if signer != "CN=gridbank,O=VO" {
		t.Errorf("signer = %q", signer)
	}
	// Empty payee filter skips the payee check (bank-side verification
	// authenticates the payee separately).
	if _, err := VerifyCheque(sc, f.ts, "", payEpoch.Add(time.Minute)); err != nil {
		t.Errorf("payee-agnostic verify failed: %v", err)
	}
}

func TestVerifyChequeRejections(t *testing.T) {
	f := newFixture(t)
	sc, err := IssueCheque(f.bank, testCheque())
	if err != nil {
		t.Fatal(err)
	}
	// Wrong payee.
	if _, err := VerifyCheque(sc, f.ts, "CN=thief,O=VO", payEpoch); !errors.Is(err, ErrWrongPayee) {
		t.Errorf("wrong payee err = %v", err)
	}
	// Expired.
	if _, err := VerifyCheque(sc, f.ts, "CN=gsp1,O=VO", payEpoch.Add(2*time.Hour)); !errors.Is(err, ErrExpired) {
		t.Errorf("expired err = %v", err)
	}
	// Wrapper/payload mismatch (tampered limit in the wrapper copy).
	tampered := *sc
	tampered.Cheque.Limit = currency.FromG(5000)
	if _, err := VerifyCheque(&tampered, f.ts, "CN=gsp1,O=VO", payEpoch); err == nil {
		t.Error("tampered wrapper accepted")
	}
	// Not signed by a trusted bank.
	otherCA, _ := pki.NewCA("EvilCA", "X", time.Hour)
	evilBank, _ := otherCA.Issue(pki.IssueOptions{CommonName: "evilbank"})
	forged, err := IssueCheque(evilBank, testCheque())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyCheque(forged, f.ts, "CN=gsp1,O=VO", payEpoch); err == nil {
		t.Error("forged cheque accepted")
	}
	// Nil envelope.
	if _, err := VerifyCheque(&SignedCheque{}, f.ts, "", payEpoch); err == nil {
		t.Error("nil envelope accepted")
	}
	// Issue refuses invalid cheques outright.
	bad := testCheque()
	bad.Limit = 0
	if _, err := IssueCheque(f.bank, bad); err == nil {
		t.Error("invalid cheque issued")
	}
}

func TestChequeClaims(t *testing.T) {
	c := testCheque()
	ok := &ChequeClaim{Serial: c.Serial, Amount: currency.FromG(30), RUR: []byte("rur")}
	if err := c.ValidateClaim(ok); err != nil {
		t.Fatalf("valid claim rejected: %v", err)
	}
	atLimit := &ChequeClaim{Serial: c.Serial, Amount: c.Limit}
	if err := c.ValidateClaim(atLimit); err != nil {
		t.Fatalf("at-limit claim rejected: %v", err)
	}
	over := &ChequeClaim{Serial: c.Serial, Amount: currency.FromG(51)}
	if err := c.ValidateClaim(over); !errors.Is(err, ErrOverLimit) {
		t.Errorf("over-limit err = %v", err)
	}
	zero := &ChequeClaim{Serial: c.Serial, Amount: 0}
	if err := c.ValidateClaim(zero); err == nil {
		t.Error("zero claim accepted")
	}
	wrongSerial := &ChequeClaim{Serial: "other", Amount: currency.FromG(1)}
	if err := c.ValidateClaim(wrongSerial); err == nil {
		t.Error("wrong-serial claim accepted")
	}
}

func newChain(t *testing.T, length int) *Chain {
	t.Helper()
	ch, err := NewChain("01-0001-00000001", "CN=alice,O=VO", "CN=gsp1,O=VO",
		length, currency.FromMicro(10_000), currency.GridDollar, payEpoch, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	return ch
}

func TestChainGenerationAndWords(t *testing.T) {
	ch := newChain(t, 100)
	cc := &ch.Commitment
	if err := cc.Validate(); err != nil {
		t.Fatal(err)
	}
	total, err := cc.Total()
	if err != nil || total != currency.FromG(1) { // 100 × 0.01
		t.Fatalf("Total = %v, %v", total, err)
	}
	// Every word verifies at its own index and fails at others.
	for _, i := range []int{1, 2, 50, 99, 100} {
		w, err := ch.Word(i)
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyWord(cc, i, w); err != nil {
			t.Fatalf("word %d does not verify: %v", i, err)
		}
		if err := VerifyWord(cc, i-1, w); i > 1 && err == nil {
			t.Fatalf("word %d verified at wrong index", i)
		}
	}
	if _, err := ch.Word(0); !errors.Is(err, ErrBadIndex) {
		t.Errorf("word 0 err = %v", err)
	}
	if _, err := ch.Word(101); !errors.Is(err, ErrBadIndex) {
		t.Errorf("word 101 err = %v", err)
	}
	if err := VerifyWord(cc, 5, []byte("short")); !errors.Is(err, ErrBadWord) {
		t.Errorf("short word err = %v", err)
	}
	if err := VerifyWord(cc, 0, ch.Commitment.Root); !errors.Is(err, ErrBadIndex) {
		t.Errorf("index 0 err = %v", err)
	}
}

func TestChainRederive(t *testing.T) {
	ch := newChain(t, 20)
	w5, err := ch.Word(5)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate serialization: drop the cache.
	restored := &Chain{Commitment: ch.Commitment, Seed: ch.Seed}
	w5b, err := restored.Word(5)
	if err != nil {
		t.Fatal(err)
	}
	if string(w5) != string(w5b) {
		t.Fatal("rederived word differs")
	}
	// Corrupted seed detected.
	bad := &Chain{Commitment: ch.Commitment, Seed: make([]byte, 32)}
	if err := bad.Rederive(); err == nil {
		t.Fatal("corrupt seed accepted")
	}
}

func TestChainLengthBounds(t *testing.T) {
	if _, err := NewChain("01-0001-00000001", "a", "b", 0, 1, "G$", payEpoch, time.Hour); !errors.Is(err, ErrChainTooLong) {
		t.Errorf("zero length err = %v", err)
	}
	if _, err := NewChain("01-0001-00000001", "a", "b", MaxChainLength+1, 1, "G$", payEpoch, time.Hour); !errors.Is(err, ErrChainTooLong) {
		t.Errorf("oversized err = %v", err)
	}
}

func TestIssueVerifyChain(t *testing.T) {
	f := newFixture(t)
	ch := newChain(t, 10)
	sc, err := IssueChain(f.bank, ch.Commitment)
	if err != nil {
		t.Fatal(err)
	}
	signer, cc, err := VerifyChain(sc, f.ts, "CN=gsp1,O=VO", payEpoch.Add(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if signer != "CN=gridbank,O=VO" {
		t.Errorf("signer = %q", signer)
	}
	if cc == nil || cc.Serial != ch.Commitment.Serial || cc.Length != ch.Commitment.Length {
		t.Fatalf("verified commitment = %+v", cc)
	}
	// Wrong payee, expiry, wrapper tamper.
	if _, _, err := VerifyChain(sc, f.ts, "CN=other,O=VO", payEpoch); !errors.Is(err, ErrWrongPayee) {
		t.Errorf("wrong payee err = %v", err)
	}
	if _, _, err := VerifyChain(sc, f.ts, "", payEpoch.Add(2*time.Hour)); !errors.Is(err, ErrExpired) {
		t.Errorf("expired err = %v", err)
	}
	tampered := *sc
	tampered.Commitment.PerWord = currency.FromG(99)
	if _, _, err := VerifyChain(&tampered, f.ts, "", payEpoch); err == nil {
		t.Error("tampered wrapper accepted")
	}
	if _, _, err := VerifyChain(&SignedChain{}, f.ts, "", payEpoch); err == nil {
		t.Error("nil envelope accepted")
	}
	bad := ch.Commitment
	bad.Length = 0
	if _, err := IssueChain(f.bank, bad); err == nil {
		t.Error("invalid commitment issued")
	}
}

func TestChainClaims(t *testing.T) {
	ch := newChain(t, 10)
	cc := &ch.Commitment
	w7, _ := ch.Word(7)
	good := &ChainClaim{Serial: cc.Serial, Index: 7, Word: w7}
	if err := cc.ValidateClaim(good); err != nil {
		t.Fatalf("valid claim rejected: %v", err)
	}
	// Inflated index with a lower word must fail: the GSP cannot claim
	// more words than the consumer released.
	inflated := &ChainClaim{Serial: cc.Serial, Index: 8, Word: w7}
	if err := cc.ValidateClaim(inflated); !errors.Is(err, ErrBadWord) {
		t.Errorf("inflated claim err = %v", err)
	}
	wrongSerial := &ChainClaim{Serial: "x", Index: 7, Word: w7}
	if err := cc.ValidateClaim(wrongSerial); err == nil {
		t.Error("wrong serial accepted")
	}
	outOfRange := &ChainClaim{Serial: cc.Serial, Index: 11, Word: w7}
	if err := cc.ValidateClaim(outOfRange); !errors.Is(err, ErrBadIndex) {
		t.Errorf("out-of-range err = %v", err)
	}
}

func TestChainCommitmentValidateRejections(t *testing.T) {
	base := newChain(t, 5).Commitment
	cases := []func(*ChainCommitment){
		func(c *ChainCommitment) { c.Serial = "" },
		func(c *ChainCommitment) { c.DrawerAccountID = "x" },
		func(c *ChainCommitment) { c.DrawerCert = "" },
		func(c *ChainCommitment) { c.PayeeCert = "" },
		func(c *ChainCommitment) { c.Root = []byte("short") },
		func(c *ChainCommitment) { c.Length = -1 },
		func(c *ChainCommitment) { c.PerWord = 0 },
		func(c *ChainCommitment) { c.Currency = "not a currency!" },
		func(c *ChainCommitment) { c.Expires = c.IssuedAt },
		func(c *ChainCommitment) { c.PerWord = currency.MaxAmount; c.Length = 3 },
	}
	for i, mutate := range cases {
		cc := base
		mutate(&cc)
		if err := cc.Validate(); err == nil {
			t.Errorf("case %d: invalid commitment accepted", i)
		}
	}
}
