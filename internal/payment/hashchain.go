package payment

import (
	"bytes"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"time"

	"gridbank/internal/accounts"
	"gridbank/internal/currency"
	"gridbank/internal/pki"
)

// MaxChainLength bounds GridHash chains. Verification of word i costs i
// hashes in the worst case; 1<<20 keeps adversarial redemption cheap for
// the bank while allowing ~10⁶ micro-payments per chain.
const MaxChainLength = 1 << 20

// ChainCommitment is the signed root of a GridHash chain (the PayWord
// "commitment"). The bank generates the chain on behalf of the consumer
// (§5.2 Request GridHash chain: Input AccountID, Amount → Output GridHash
// chain), locks Length×PerWord on the account, signs the commitment and
// hands the seed back to the consumer, who releases successive preimages
// to the GSP as pay-as-you-go payment.
type ChainCommitment struct {
	Serial          string          `json:"serial"`
	DrawerAccountID accounts.ID     `json:"drawer_account_id"`
	DrawerCert      string          `json:"drawer_cert"`
	PayeeCert       string          `json:"payee_cert"`
	Root            []byte          `json:"root"`     // w0 = H^Length(seed)
	Length          int             `json:"length"`   // number of spendable words
	PerWord         currency.Amount `json:"per_word"` // value of each word
	Currency        currency.Code   `json:"currency"`
	IssuedAt        time.Time       `json:"issued_at"`
	Expires         time.Time       `json:"expires"`
}

// Total returns the full value of the chain (Length × PerWord), i.e. the
// amount locked at issue.
func (cc *ChainCommitment) Total() (currency.Amount, error) {
	return cc.PerWord.MulInt(int64(cc.Length))
}

// Validate checks structural well-formedness.
func (cc *ChainCommitment) Validate() error {
	switch {
	case cc.Serial == "":
		return errors.New("payment: chain missing serial")
	case !cc.DrawerAccountID.Valid():
		return fmt.Errorf("payment: bad drawer account %q", cc.DrawerAccountID)
	case cc.DrawerCert == "":
		return errors.New("payment: chain missing drawer certificate name")
	case cc.PayeeCert == "":
		return errors.New("payment: chain missing payee certificate name")
	case len(cc.Root) != sha256.Size:
		return errors.New("payment: chain root must be a SHA-256 digest")
	case cc.Length <= 0 || cc.Length > MaxChainLength:
		return fmt.Errorf("%w: %d", ErrChainTooLong, cc.Length)
	case !cc.PerWord.IsPositive():
		return errors.New("payment: per-word value must be positive")
	case !cc.Currency.Valid():
		return fmt.Errorf("payment: bad currency %q", cc.Currency)
	case !cc.Expires.After(cc.IssuedAt):
		return errors.New("payment: chain expires before issue")
	}
	if _, err := cc.Total(); err != nil {
		return fmt.Errorf("payment: chain total overflows: %w", err)
	}
	return nil
}

// Chain is the consumer-side secret: the seed and derived words. Word i
// (1-based) is H^(Length-i)(seed); releasing words in increasing i pays
// the GSP one PerWord per word. The GSP needs only the commitment to
// verify.
type Chain struct {
	Commitment ChainCommitment `json:"commitment"`
	Seed       []byte          `json:"seed"`
	words      [][]byte        // words[i] = H^(Length-i)(seed); words[0] == root
}

// SignedChain couples a commitment with the bank's signature.
type SignedChain struct {
	Commitment ChainCommitment `json:"commitment"`
	Envelope   *pki.Signed     `json:"envelope"`
}

func hashOnce(b []byte) []byte {
	h := sha256.Sum256(b)
	return h[:]
}

// NewChain generates a fresh chain with the given parameters, computing
// root = H^length(seed).
func NewChain(drawer accounts.ID, drawerCert, payeeCert string, length int, perWord currency.Amount, cur currency.Code, issued time.Time, ttl time.Duration) (*Chain, error) {
	if length <= 0 || length > MaxChainLength {
		return nil, fmt.Errorf("%w: %d", ErrChainTooLong, length)
	}
	seed := make([]byte, 32)
	if _, err := rand.Read(seed); err != nil {
		return nil, err
	}
	serial, err := NewSerial()
	if err != nil {
		return nil, err
	}
	// words[length] = H(seed); words[i] = H(words[i+1]); root = words[0].
	words := make([][]byte, length+1)
	cur_ := hashOnce(seed)
	words[length] = cur_
	for i := length - 1; i >= 0; i-- {
		cur_ = hashOnce(cur_)
		words[i] = cur_
	}
	cc := ChainCommitment{
		Serial:          serial,
		DrawerAccountID: drawer,
		DrawerCert:      drawerCert,
		PayeeCert:       payeeCert,
		Root:            words[0],
		Length:          length,
		PerWord:         perWord,
		Currency:        cur,
		IssuedAt:        issued,
		Expires:         issued.Add(ttl),
	}
	ch := &Chain{Commitment: cc, Seed: seed, words: words}
	if err := cc.Validate(); err != nil {
		return nil, err
	}
	return ch, nil
}

// Rederive recomputes the word table from the seed (after the chain was
// serialized/deserialized, the unexported cache is empty).
func (ch *Chain) Rederive() error {
	n := ch.Commitment.Length
	if n <= 0 || n > MaxChainLength {
		return ErrChainTooLong
	}
	words := make([][]byte, n+1)
	cur := hashOnce(ch.Seed)
	words[n] = cur
	for i := n - 1; i >= 0; i-- {
		cur = hashOnce(cur)
		words[i] = cur
	}
	if !bytes.Equal(words[0], ch.Commitment.Root) {
		return errors.New("payment: seed does not derive commitment root")
	}
	ch.words = words
	return nil
}

// Word returns the i-th payment word (1-based; i ≤ Length). Releasing
// Word(i) to the payee transfers cumulative value i × PerWord.
func (ch *Chain) Word(i int) ([]byte, error) {
	if ch.words == nil {
		if err := ch.Rederive(); err != nil {
			return nil, err
		}
	}
	if i < 1 || i > ch.Commitment.Length {
		return nil, fmt.Errorf("%w: %d of %d", ErrBadIndex, i, ch.Commitment.Length)
	}
	return ch.words[i], nil
}

// VerifyWord checks that word is the i-th preimage of the commitment
// root: H^i(word) == root. This is the from-scratch check — i hashes,
// up to MaxChainLength of them. Verifiers that have already accepted an
// earlier word should use VerifyWordAfter instead, which costs only the
// delta.
func VerifyWord(cc *ChainCommitment, i int, word []byte) error {
	return VerifyWordAfter(cc, 0, nil, i, word)
}

// VerifyWordAfter checks that word is the i-th chain word given an
// already-verified anchor at index from: H^(i-from)(word) == anchor.
// from = 0 (anchor nil) anchors at the commitment root. This is the
// incremental verification both the GSP's receiver and the bank's
// redemption use: each new word costs hashes proportional to how far it
// advances, O(delta), not O(i) back to the root — so an adversary
// cannot make the verifier burn ~2^20 hashes per claim by probing the
// tail of a long chain.
func VerifyWordAfter(cc *ChainCommitment, from int, anchor []byte, i int, word []byte) error {
	if from < 0 || i <= from || i > cc.Length {
		return fmt.Errorf("%w: %d after %d of %d", ErrBadIndex, i, from, cc.Length)
	}
	if len(word) != sha256.Size {
		return ErrBadWord
	}
	target := cc.Root
	if from > 0 {
		if len(anchor) != sha256.Size {
			return fmt.Errorf("%w: anchor at %d is not a SHA-256 digest", ErrBadWord, from)
		}
		target = anchor
	}
	h := word
	for k := 0; k < i-from; k++ {
		h = hashOnce(h)
	}
	if !bytes.Equal(h, target) {
		return ErrBadWord
	}
	return nil
}

// Receiver is the GSP-side accumulator for a stream of chain words: it
// verifies each incoming word incrementally against the last accepted
// one (O(delta) hashes) and remembers the highest, which is all the GSP
// needs to claim the cumulative value at the bank. The zero anchor is
// the commitment root, so a fresh Receiver accepts word 1 upward.
// Receiver is not safe for concurrent use.
type Receiver struct {
	cc    ChainCommitment
	index int
	word  []byte
}

// NewReceiver builds a receiver over a verified commitment. The caller
// is responsible for having checked the bank signature (VerifyChain)
// first — the receiver only does chain-word math.
func NewReceiver(cc ChainCommitment) *Receiver {
	return &Receiver{cc: cc}
}

// Accept verifies and records one received word. Words must arrive with
// strictly increasing indices; gaps are fine (the hash walk covers
// them).
func (r *Receiver) Accept(i int, word []byte) error {
	if err := VerifyWordAfter(&r.cc, r.index, r.word, i, word); err != nil {
		return err
	}
	r.index = i
	r.word = append(r.word[:0], word...)
	return nil
}

// Index reports the highest accepted word index (0 before any).
func (r *Receiver) Index() int { return r.index }

// Claim packages the highest accepted word as a redemption claim with
// the given usage evidence, or nil if nothing was accepted yet.
func (r *Receiver) Claim(rur []byte) *ChainClaim {
	if r.index == 0 {
		return nil
	}
	return &ChainClaim{
		Serial: r.cc.Serial,
		Index:  r.index,
		Word:   append([]byte(nil), r.word...),
		RUR:    rur,
	}
}

// IssueChain signs a chain commitment with the bank identity. The bank
// core locks the chain total first.
func IssueChain(bank *pki.Identity, cc ChainCommitment) (*SignedChain, error) {
	if err := cc.Validate(); err != nil {
		return nil, err
	}
	env, err := pki.Sign(bank, ContextHashChain, cc)
	if err != nil {
		return nil, err
	}
	return &SignedChain{Commitment: cc, Envelope: env}, nil
}

// VerifyChain checks the bank signature on a commitment, expiry, and
// payee binding, returning the bank subject name and the commitment the
// bank actually signed. Callers must act on the returned commitment
// only — the wrapper copy in SignedChain is unauthenticated attacker
// input, and trusting any field of it (drawer account, currency,
// expiry) would let a holder of one validly signed chain rebind it. As
// defence in depth the wrapper is also required to match the payload
// field-for-field, so a mismatched chain is rejected loudly instead of
// silently reinterpreted.
//
// Expiry is strict: a chain is redeemable only strictly before Expires.
// At the expiry instant redemption fails and release (which requires
// !now.Before(Expires)) succeeds, so the two paths can never both
// accept the same moment.
func VerifyChain(sc *SignedChain, ts *pki.TrustStore, payeeCert string, now time.Time) (string, *ChainCommitment, error) {
	if sc == nil || sc.Envelope == nil {
		return "", nil, errors.New("payment: missing chain envelope")
	}
	var cc ChainCommitment
	signer, err := sc.Envelope.Verify(ts, ContextHashChain, now, &cc)
	if err != nil {
		return "", nil, err
	}
	if err := cc.Validate(); err != nil {
		return "", nil, err
	}
	w := &sc.Commitment
	if w.Serial != cc.Serial ||
		w.DrawerAccountID != cc.DrawerAccountID ||
		w.DrawerCert != cc.DrawerCert ||
		w.PayeeCert != cc.PayeeCert ||
		!bytes.Equal(w.Root, cc.Root) ||
		w.Length != cc.Length ||
		w.PerWord != cc.PerWord ||
		w.Currency != cc.Currency ||
		!w.IssuedAt.Equal(cc.IssuedAt) ||
		!w.Expires.Equal(cc.Expires) {
		return "", nil, errors.New("payment: chain wrapper does not match signed payload")
	}
	if !now.Before(cc.Expires) {
		return "", nil, fmt.Errorf("%w: at %v", ErrExpired, cc.Expires)
	}
	if payeeCert != "" && cc.PayeeCert != payeeCert {
		return "", nil, fmt.Errorf("%w: chain for %q presented by %q", ErrWrongPayee, cc.PayeeCert, payeeCert)
	}
	return signer, &cc, nil
}

// ChainClaim is the GSP's redemption request: the highest word received
// plus its index, with usage evidence. Cumulative value = Index × PerWord;
// the bank pays the delta above any previously redeemed index for the same
// serial (incremental batch redemption).
type ChainClaim struct {
	Serial string `json:"serial"`
	Index  int    `json:"index"`
	Word   []byte `json:"word"`
	RUR    []byte `json:"rur,omitempty"`
}

// ValidateClaim verifies the claim cryptographically against the
// commitment.
func (cc *ChainCommitment) ValidateClaim(claim *ChainClaim) error {
	if claim.Serial != cc.Serial {
		return fmt.Errorf("payment: claim serial %q does not match chain %q", claim.Serial, cc.Serial)
	}
	return VerifyWord(cc, claim.Index, claim.Word)
}
