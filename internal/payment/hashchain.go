package payment

import (
	"bytes"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"time"

	"gridbank/internal/accounts"
	"gridbank/internal/currency"
	"gridbank/internal/pki"
)

// MaxChainLength bounds GridHash chains. Verification of word i costs i
// hashes in the worst case; 1<<20 keeps adversarial redemption cheap for
// the bank while allowing ~10⁶ micro-payments per chain.
const MaxChainLength = 1 << 20

// ChainCommitment is the signed root of a GridHash chain (the PayWord
// "commitment"). The bank generates the chain on behalf of the consumer
// (§5.2 Request GridHash chain: Input AccountID, Amount → Output GridHash
// chain), locks Length×PerWord on the account, signs the commitment and
// hands the seed back to the consumer, who releases successive preimages
// to the GSP as pay-as-you-go payment.
type ChainCommitment struct {
	Serial          string          `json:"serial"`
	DrawerAccountID accounts.ID     `json:"drawer_account_id"`
	DrawerCert      string          `json:"drawer_cert"`
	PayeeCert       string          `json:"payee_cert"`
	Root            []byte          `json:"root"`     // w0 = H^Length(seed)
	Length          int             `json:"length"`   // number of spendable words
	PerWord         currency.Amount `json:"per_word"` // value of each word
	Currency        currency.Code   `json:"currency"`
	IssuedAt        time.Time       `json:"issued_at"`
	Expires         time.Time       `json:"expires"`
}

// Total returns the full value of the chain (Length × PerWord), i.e. the
// amount locked at issue.
func (cc *ChainCommitment) Total() (currency.Amount, error) {
	return cc.PerWord.MulInt(int64(cc.Length))
}

// Validate checks structural well-formedness.
func (cc *ChainCommitment) Validate() error {
	switch {
	case cc.Serial == "":
		return errors.New("payment: chain missing serial")
	case !cc.DrawerAccountID.Valid():
		return fmt.Errorf("payment: bad drawer account %q", cc.DrawerAccountID)
	case cc.DrawerCert == "":
		return errors.New("payment: chain missing drawer certificate name")
	case cc.PayeeCert == "":
		return errors.New("payment: chain missing payee certificate name")
	case len(cc.Root) != sha256.Size:
		return errors.New("payment: chain root must be a SHA-256 digest")
	case cc.Length <= 0 || cc.Length > MaxChainLength:
		return fmt.Errorf("%w: %d", ErrChainTooLong, cc.Length)
	case !cc.PerWord.IsPositive():
		return errors.New("payment: per-word value must be positive")
	case !cc.Currency.Valid():
		return fmt.Errorf("payment: bad currency %q", cc.Currency)
	case !cc.Expires.After(cc.IssuedAt):
		return errors.New("payment: chain expires before issue")
	}
	if _, err := cc.Total(); err != nil {
		return fmt.Errorf("payment: chain total overflows: %w", err)
	}
	return nil
}

// Chain is the consumer-side secret: the seed and derived words. Word i
// (1-based) is H^(Length-i)(seed); releasing words in increasing i pays
// the GSP one PerWord per word. The GSP needs only the commitment to
// verify.
type Chain struct {
	Commitment ChainCommitment `json:"commitment"`
	Seed       []byte          `json:"seed"`
	words      [][]byte        // words[i] = H^(Length-i)(seed); words[0] == root
}

// SignedChain couples a commitment with the bank's signature.
type SignedChain struct {
	Commitment ChainCommitment `json:"commitment"`
	Envelope   *pki.Signed     `json:"envelope"`
}

func hashOnce(b []byte) []byte {
	h := sha256.Sum256(b)
	return h[:]
}

// NewChain generates a fresh chain with the given parameters, computing
// root = H^length(seed).
func NewChain(drawer accounts.ID, drawerCert, payeeCert string, length int, perWord currency.Amount, cur currency.Code, issued time.Time, ttl time.Duration) (*Chain, error) {
	if length <= 0 || length > MaxChainLength {
		return nil, fmt.Errorf("%w: %d", ErrChainTooLong, length)
	}
	seed := make([]byte, 32)
	if _, err := rand.Read(seed); err != nil {
		return nil, err
	}
	serial, err := NewSerial()
	if err != nil {
		return nil, err
	}
	// words[length] = H(seed); words[i] = H(words[i+1]); root = words[0].
	words := make([][]byte, length+1)
	cur_ := hashOnce(seed)
	words[length] = cur_
	for i := length - 1; i >= 0; i-- {
		cur_ = hashOnce(cur_)
		words[i] = cur_
	}
	cc := ChainCommitment{
		Serial:          serial,
		DrawerAccountID: drawer,
		DrawerCert:      drawerCert,
		PayeeCert:       payeeCert,
		Root:            words[0],
		Length:          length,
		PerWord:         perWord,
		Currency:        cur,
		IssuedAt:        issued,
		Expires:         issued.Add(ttl),
	}
	ch := &Chain{Commitment: cc, Seed: seed, words: words}
	if err := cc.Validate(); err != nil {
		return nil, err
	}
	return ch, nil
}

// Rederive recomputes the word table from the seed (after the chain was
// serialized/deserialized, the unexported cache is empty).
func (ch *Chain) Rederive() error {
	n := ch.Commitment.Length
	if n <= 0 || n > MaxChainLength {
		return ErrChainTooLong
	}
	words := make([][]byte, n+1)
	cur := hashOnce(ch.Seed)
	words[n] = cur
	for i := n - 1; i >= 0; i-- {
		cur = hashOnce(cur)
		words[i] = cur
	}
	if !bytes.Equal(words[0], ch.Commitment.Root) {
		return errors.New("payment: seed does not derive commitment root")
	}
	ch.words = words
	return nil
}

// Word returns the i-th payment word (1-based; i ≤ Length). Releasing
// Word(i) to the payee transfers cumulative value i × PerWord.
func (ch *Chain) Word(i int) ([]byte, error) {
	if ch.words == nil {
		if err := ch.Rederive(); err != nil {
			return nil, err
		}
	}
	if i < 1 || i > ch.Commitment.Length {
		return nil, fmt.Errorf("%w: %d of %d", ErrBadIndex, i, ch.Commitment.Length)
	}
	return ch.words[i], nil
}

// VerifyWord checks that word is the i-th preimage of the commitment
// root: H^i(word) == root. This is what the GSP does on every received
// micro-payment, and what the bank does at redemption.
func VerifyWord(cc *ChainCommitment, i int, word []byte) error {
	if i < 1 || i > cc.Length {
		return fmt.Errorf("%w: %d of %d", ErrBadIndex, i, cc.Length)
	}
	if len(word) != sha256.Size {
		return ErrBadWord
	}
	h := word
	for k := 0; k < i; k++ {
		h = hashOnce(h)
	}
	if !bytes.Equal(h, cc.Root) {
		return ErrBadWord
	}
	return nil
}

// IssueChain signs a chain commitment with the bank identity. The bank
// core locks the chain total first.
func IssueChain(bank *pki.Identity, cc ChainCommitment) (*SignedChain, error) {
	if err := cc.Validate(); err != nil {
		return nil, err
	}
	env, err := pki.Sign(bank, ContextHashChain, cc)
	if err != nil {
		return nil, err
	}
	return &SignedChain{Commitment: cc, Envelope: env}, nil
}

// VerifyChain checks the bank signature on a commitment, expiry, and
// payee binding, returning the bank subject name.
func VerifyChain(sc *SignedChain, ts *pki.TrustStore, payeeCert string, now time.Time) (string, error) {
	if sc == nil || sc.Envelope == nil {
		return "", errors.New("payment: missing chain envelope")
	}
	var cc ChainCommitment
	signer, err := sc.Envelope.Verify(ts, ContextHashChain, now, &cc)
	if err != nil {
		return "", err
	}
	if err := cc.Validate(); err != nil {
		return "", err
	}
	if cc.Serial != sc.Commitment.Serial || !bytes.Equal(cc.Root, sc.Commitment.Root) ||
		cc.Length != sc.Commitment.Length || cc.PerWord != sc.Commitment.PerWord {
		return "", errors.New("payment: chain wrapper does not match signed payload")
	}
	if now.After(cc.Expires) {
		return "", fmt.Errorf("%w: at %v", ErrExpired, cc.Expires)
	}
	if payeeCert != "" && cc.PayeeCert != payeeCert {
		return "", fmt.Errorf("%w: chain for %q presented by %q", ErrWrongPayee, cc.PayeeCert, payeeCert)
	}
	return signer, nil
}

// ChainClaim is the GSP's redemption request: the highest word received
// plus its index, with usage evidence. Cumulative value = Index × PerWord;
// the bank pays the delta above any previously redeemed index for the same
// serial (incremental batch redemption).
type ChainClaim struct {
	Serial string `json:"serial"`
	Index  int    `json:"index"`
	Word   []byte `json:"word"`
	RUR    []byte `json:"rur,omitempty"`
}

// ValidateClaim verifies the claim cryptographically against the
// commitment.
func (cc *ChainCommitment) ValidateClaim(claim *ChainClaim) error {
	if claim.Serial != cc.Serial {
		return fmt.Errorf("payment: claim serial %q does not match chain %q", claim.Serial, cc.Serial)
	}
	return VerifyWord(cc, claim.Index, claim.Word)
}
