package branch

import (
	"errors"
	"testing"
	"time"

	"gridbank/internal/accounts"
	"gridbank/internal/core"
	"gridbank/internal/currency"
	"gridbank/internal/db"
	"gridbank/internal/payment"
	"gridbank/internal/pki"
)

// branchWorld: two VOs, each with its own CA-issued bank, joined in a
// network; alice banks at VO-A, gsp at VO-B.
type branchWorld struct {
	net       *Network
	brA, brB  *Branch
	alice     *pki.Identity
	gsp       *pki.Identity
	aliceAcct string
	gspAcct   string
	ts        *pki.TrustStore
}

func newBranchWorld(t *testing.T) *branchWorld {
	t.Helper()
	ca, err := pki.NewCA("Grid Federation CA", "Fed", 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	ts := pki.NewTrustStore(ca.Certificate())
	mkBank := func(cn, branchNum string) *core.Bank {
		id, err := ca.Issue(pki.IssueOptions{CommonName: cn, Organization: "Fed"})
		if err != nil {
			t.Fatal(err)
		}
		b, err := core.NewBank(db.MustOpenMemory(), core.BankConfig{
			Identity: id, Trust: ts, Branch: branchNum, Admins: []string{"CN=root"},
		})
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	bankA := mkBank("gridbank-vo-a", "0001")
	bankB := mkBank("gridbank-vo-b", "0002")
	net := NewNetwork()
	brA, err := net.AddBranch(bankA)
	if err != nil {
		t.Fatal(err)
	}
	brB, err := net.AddBranch(bankB)
	if err != nil {
		t.Fatal(err)
	}
	alice, _ := ca.Issue(pki.IssueOptions{CommonName: "alice", Organization: "VO-A"})
	gsp, _ := ca.Issue(pki.IssueOptions{CommonName: "gsp-b", Organization: "VO-B"})
	aAcct, err := bankA.CreateAccount(alice.SubjectName(), &core.CreateAccountRequest{})
	if err != nil {
		t.Fatal(err)
	}
	gAcct, err := bankB.CreateAccount(gsp.SubjectName(), &core.CreateAccountRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bankA.AdminDeposit("CN=root", &core.AdminAmountRequest{AccountID: aAcct.Account.AccountID, Amount: currency.FromG(500)}); err != nil {
		t.Fatal(err)
	}
	return &branchWorld{
		net: net, brA: brA, brB: brB, alice: alice, gsp: gsp,
		aliceAcct: string(aAcct.Account.AccountID), gspAcct: string(gAcct.Account.AccountID), ts: ts,
	}
}

func (w *branchWorld) issueForeignCheque(t *testing.T, amount currency.Amount) *payment.SignedCheque {
	t.Helper()
	resp, err := w.brA.Bank.RequestCheque(w.alice.SubjectName(), &core.RequestChequeRequest{
		AccountID: accountsIDOf(w.aliceAcct), Amount: amount, PayeeCert: w.gsp.SubjectName(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return &resp.Cheque
}

func TestAddBranchCreatesVostros(t *testing.T) {
	w := newBranchWorld(t)
	vBatA, ok := w.brA.VostroFor("0002")
	if !ok || vBatA.Branch() != "0001" {
		t.Fatalf("vostro B@A = %v, %v", vBatA, ok)
	}
	vAatB, ok := w.brB.VostroFor("0001")
	if !ok || vAatB.Branch() != "0002" {
		t.Fatalf("vostro A@B = %v, %v", vAatB, ok)
	}
	// Duplicate branch numbers refused.
	if _, err := w.net.AddBranch(w.brA.Bank); !errors.Is(err, ErrDupBranch) {
		t.Errorf("dup branch err = %v", err)
	}
	if _, ok := w.net.Branch("0001"); !ok {
		t.Error("branch lookup failed")
	}
}

func TestCrossBranchChequeRedemption(t *testing.T) {
	w := newBranchWorld(t)
	cheque := w.issueForeignCheque(t, currency.FromG(100))
	claim := &payment.ChequeClaim{Serial: cheque.Cheque.Serial, Amount: currency.FromG(70), RUR: []byte(`{"job":"x"}`)}
	red, err := w.net.RedeemForeignCheque("0002", w.gsp.SubjectName(), cheque, claim)
	if err != nil {
		t.Fatal(err)
	}
	if red.Paid != currency.FromG(70) || red.IssuingBranch != "0001" || red.PayeeBranch != "0002" {
		t.Fatalf("redemption = %+v", red)
	}
	// Alice paid 70, got 30 back unlocked.
	a, _ := w.brA.Bank.Manager().Details(accountsIDOf(w.aliceAcct))
	if a.AvailableBalance != currency.FromG(430) || !a.LockedBalance.IsZero() {
		t.Fatalf("alice: %s/%s", a.AvailableBalance, a.LockedBalance)
	}
	// GSP credited at home branch.
	g, _ := w.brB.Bank.Manager().Details(accountsIDOf(w.gspAcct))
	if g.AvailableBalance != currency.FromG(70) {
		t.Fatalf("gsp: %s", g.AvailableBalance)
	}
	// B's vostro at A holds the interbank obligation.
	vBatA, _ := w.brA.VostroFor("0002")
	v, _ := w.brA.Bank.Manager().Details(vBatA)
	if v.AvailableBalance != currency.FromG(70) {
		t.Fatalf("vostro = %s", v.AvailableBalance)
	}
	// Double redemption across branches refused.
	if _, err := w.net.RedeemForeignCheque("0002", w.gsp.SubjectName(), cheque, claim); err == nil {
		t.Fatal("foreign double redemption allowed")
	}
}

func TestRedeemForeignValidation(t *testing.T) {
	w := newBranchWorld(t)
	cheque := w.issueForeignCheque(t, currency.FromG(10))
	claim := &payment.ChequeClaim{Serial: cheque.Cheque.Serial, Amount: currency.FromG(5)}
	// Unknown home branch.
	if _, err := w.net.RedeemForeignCheque("9999", w.gsp.SubjectName(), cheque, claim); !errors.Is(err, ErrUnknownBranch) {
		t.Errorf("unknown home err = %v", err)
	}
	// Not foreign: presented at the issuing branch.
	if _, err := w.net.RedeemForeignCheque("0001", w.gsp.SubjectName(), cheque, claim); !errors.Is(err, ErrNotForeign) {
		t.Errorf("not-foreign err = %v", err)
	}
	// Wrong payee.
	if _, err := w.net.RedeemForeignCheque("0002", "CN=thief,O=VO-B", cheque, claim); err == nil {
		t.Error("wrong payee accepted")
	}
	// Payee with no account at home branch.
	orphanCheque := w.issueForeignCheque(t, currency.FromG(10))
	// re-make cheque for an identity without an account: use alice as payee at branch B
	resp, err := w.brA.Bank.RequestCheque(w.alice.SubjectName(), &core.RequestChequeRequest{
		AccountID: accountsIDOf(w.aliceAcct), Amount: currency.FromG(5), PayeeCert: "CN=nobody,O=VO-B",
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = orphanCheque
	if _, err := w.net.RedeemForeignCheque("0002", "CN=nobody,O=VO-B", &resp.Cheque,
		&payment.ChequeClaim{Serial: resp.Cheque.Cheque.Serial, Amount: currency.FromG(1)}); err == nil {
		t.Error("accountless payee accepted")
	}
}

func TestSettlePairNettingFull(t *testing.T) {
	w := newBranchWorld(t)
	// A→B flow: alice's cheque to gsp (70).
	cheque := w.issueForeignCheque(t, currency.FromG(70))
	if _, err := w.net.RedeemForeignCheque("0002", w.gsp.SubjectName(), cheque,
		&payment.ChequeClaim{Serial: cheque.Cheque.Serial, Amount: currency.FromG(70)}); err != nil {
		t.Fatal(err)
	}
	// B→A flow: fund gsp's account and have it pay alice (30) with a
	// cheque drawn on B.
	resp, err := w.brB.Bank.RequestCheque(w.gsp.SubjectName(), &core.RequestChequeRequest{
		AccountID: accountsIDOf(w.gspAcct), Amount: currency.FromG(30), PayeeCert: w.alice.SubjectName(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.net.RedeemForeignCheque("0001", w.alice.SubjectName(), &resp.Cheque,
		&payment.ChequeClaim{Serial: resp.Cheque.Cheque.Serial, Amount: currency.FromG(30)}); err != nil {
		t.Fatal(err)
	}
	// Net: A owes B 70, B owes A 30 → offset 30, residual 40 paid by A.
	st, err := w.net.SettlePair("0001", "0002")
	if err != nil {
		t.Fatal(err)
	}
	if st.GrossAtoB != currency.FromG(70) || st.GrossBtoA != currency.FromG(30) {
		t.Fatalf("gross = %s / %s", st.GrossAtoB, st.GrossBtoA)
	}
	if st.Netted != currency.FromG(30) || st.NetPayer != "0001" || st.NetAmount != currency.FromG(40) {
		t.Fatalf("settlement = %+v", st)
	}
	// Vostros zeroed after settlement.
	vBatA, _ := w.brA.VostroFor("0002")
	v1, _ := w.brA.Bank.Manager().Details(vBatA)
	vAatB, _ := w.brB.VostroFor("0001")
	v2, _ := w.brB.Bank.Manager().Details(vAatB)
	if !v1.AvailableBalance.IsZero() || !v2.AvailableBalance.IsZero() {
		t.Fatalf("vostros not cleared: %s / %s", v1.AvailableBalance, v2.AvailableBalance)
	}
	// Settling again is a no-op.
	st2, err := w.net.SettlePair("0001", "0002")
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Netted.IsZero() || !st2.NetAmount.IsZero() {
		t.Fatalf("idle settlement = %+v", st2)
	}
	if _, err := w.net.SettlePair("0001", "9999"); !errors.Is(err, ErrUnknownBranch) {
		t.Errorf("unknown pair err = %v", err)
	}
}

func accountsIDOf(s string) accounts.ID { return accounts.ID(s) }
