// Package branch implements the multi-branch GridBank of §6: "GridBank
// system will be expanded to provide multiple servers/branches across the
// Grid... Each Virtual Organization associates a GridBank server that all
// participants of the organization use. If a GSC is from one VO and GSP
// is from another, then their respective servers will need to define
// protocols for settling accounts between the branches."
//
// The model is correspondent banking: every pair of branches holds vostro
// accounts at each other (this is what the account ID's branch number is
// for — "it is precisely for this purpose that GridBank accounts have
// branch numbers"). A foreign cheque is settled by the issuing branch
// into the payee branch's vostro there; the payee branch credits the
// payee on its own books; end-of-day netting offsets mutual obligations.
package branch

import (
	"errors"
	"fmt"
	"sync"

	"gridbank/internal/accounts"
	"gridbank/internal/core"
	"gridbank/internal/currency"
	"gridbank/internal/payment"
)

// Errors.
var (
	ErrUnknownBranch = errors.New("branch: unknown branch number")
	ErrDupBranch     = errors.New("branch: branch number already registered")
	ErrNotForeign    = errors.New("branch: cheque is not drawn on a foreign branch")
)

// Branch is one VO's GridBank in the network.
type Branch struct {
	// Number is the four-digit branch number this bank issues accounts
	// under.
	Number string
	// Bank is the branch's GridBank server core.
	Bank *core.Bank
	// vostro maps a peer branch number to the peer's account *at this
	// bank*.
	vostro map[string]accounts.ID
}

// VostroFor returns the account the peer branch holds at this branch.
func (b *Branch) VostroFor(peer string) (accounts.ID, bool) {
	id, ok := b.vostro[peer]
	return id, ok
}

// Network is a set of branches with pairwise correspondent accounts.
type Network struct {
	mu       sync.Mutex
	branches map[string]*Branch
}

// NewNetwork creates an empty branch network.
func NewNetwork() *Network {
	return &Network{branches: make(map[string]*Branch)}
}

// AddBranch registers a branch and opens vostro accounts pairwise with
// every existing branch: the new branch's bank identity gets an account
// at each peer, and vice versa.
func (n *Network) AddBranch(bank *core.Bank) (*Branch, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	num := bank.Manager().BranchNumber()
	if _, ok := n.branches[num]; ok {
		return nil, fmt.Errorf("%w: %s", ErrDupBranch, num)
	}
	br := &Branch{Number: num, Bank: bank, vostro: make(map[string]accounts.ID)}
	for peerNum, peer := range n.branches {
		// Peer's vostro at the new branch.
		pv, err := bank.Manager().CreateAccount(peer.Bank.Identity().SubjectName(), "interbank", currency.GridDollar)
		if err != nil {
			return nil, fmt.Errorf("branch: vostro for %s at %s: %w", peerNum, num, err)
		}
		br.vostro[peerNum] = pv.AccountID
		// New branch's vostro at the peer.
		nv, err := peer.Bank.Manager().CreateAccount(bank.Identity().SubjectName(), "interbank", currency.GridDollar)
		if err != nil {
			return nil, fmt.Errorf("branch: vostro for %s at %s: %w", num, peerNum, err)
		}
		peer.vostro[num] = nv.AccountID
	}
	n.branches[num] = br
	return br, nil
}

// Branch returns a registered branch.
func (n *Network) Branch(num string) (*Branch, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	b, ok := n.branches[num]
	return b, ok
}

// CrossRedemption reports a settled foreign cheque.
type CrossRedemption struct {
	Serial        string
	IssuingBranch string
	PayeeBranch   string
	Paid          currency.Amount
	// IssuingTx is the transfer at the issuing branch (drawer → vostro).
	IssuingTx uint64
}

// RedeemForeignCheque settles a cheque drawn on another branch for a
// payee banked at homeBranch. Flow: verify at home (payee identity, bank
// signature); forward to the issuing branch, which pays the claim from
// the drawer's locked funds into homeBranch's vostro there; credit the
// payee at home against that asset.
func (n *Network) RedeemForeignCheque(homeBranch, payeeCert string, cheque *payment.SignedCheque, claim *payment.ChequeClaim) (*CrossRedemption, error) {
	n.mu.Lock()
	home, ok := n.branches[homeBranch]
	if !ok {
		n.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrUnknownBranch, homeBranch)
	}
	issuingNum := cheque.Cheque.DrawerAccountID.Branch()
	issuing, ok := n.branches[issuingNum]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s (drawn on)", ErrUnknownBranch, issuingNum)
	}
	if issuingNum == homeBranch {
		return nil, fmt.Errorf("%w: drawn on %s, presented at %s", ErrNotForeign, issuingNum, homeBranch)
	}
	// Home-side verification: signature, expiry, payee binding.
	if _, err := payment.VerifyCheque(cheque, home.Bank.Trust(), payeeCert, home.Bank.Now()); err != nil {
		return nil, fmt.Errorf("branch: home verification: %w", err)
	}
	// The payee must bank at home.
	payeeAcct, err := home.Bank.Manager().FindByCertificate(payeeCert, cheque.Cheque.Currency)
	if err != nil {
		return nil, fmt.Errorf("branch: payee has no account at %s: %w", homeBranch, err)
	}
	// Issuing-side settlement into home's vostro.
	vostro, ok := issuing.vostro[homeBranch]
	if !ok {
		return nil, fmt.Errorf("branch: no vostro for %s at %s", homeBranch, issuingNum)
	}
	resp, err := issuing.Bank.RedeemChequeInterbank(home.Bank.Identity().SubjectName(), vostro,
		&core.RedeemChequeRequest{Cheque: *cheque, Claim: *claim})
	if err != nil {
		return nil, fmt.Errorf("branch: issuing-side settlement: %w", err)
	}
	// Home-side credit, backed by the vostro asset.
	if err := home.Bank.Manager().Admin().Deposit(payeeAcct.AccountID, resp.Paid); err != nil {
		return nil, fmt.Errorf("branch: home-side credit: %w", err)
	}
	return &CrossRedemption{
		Serial:        cheque.Cheque.Serial,
		IssuingBranch: issuingNum,
		PayeeBranch:   homeBranch,
		Paid:          resp.Paid,
		IssuingTx:     resp.TransactionID,
	}, nil
}

// Settlement is the result of end-of-day netting between two branches.
type Settlement struct {
	BranchA, BranchB string
	// GrossAtoB is what A's books owed B (B's vostro balance at A), and
	// vice versa, before netting.
	GrossAtoB, GrossBtoA currency.Amount
	// Netted is the offset amount cleared without money movement.
	Netted currency.Amount
	// NetPayer / NetAmount describe the residual one-way obligation
	// settled externally (empty payer when perfectly balanced).
	NetPayer  string
	NetAmount currency.Amount
}

// SettlePair nets the mutual vostro balances of two branches: offsetting
// amounts cancel; the residual is withdrawn from the debtor's books as an
// external settlement (NetCash/NetCheque-style inter-server clearing).
func (n *Network) SettlePair(numA, numB string) (*Settlement, error) {
	n.mu.Lock()
	a, okA := n.branches[numA]
	b, okB := n.branches[numB]
	n.mu.Unlock()
	if !okA {
		return nil, fmt.Errorf("%w: %s", ErrUnknownBranch, numA)
	}
	if !okB {
		return nil, fmt.Errorf("%w: %s", ErrUnknownBranch, numB)
	}
	vbAtA, ok := a.vostro[numB]
	if !ok {
		return nil, fmt.Errorf("branch: no vostro for %s at %s", numB, numA)
	}
	vaAtB, ok := b.vostro[numA]
	if !ok {
		return nil, fmt.Errorf("branch: no vostro for %s at %s", numA, numB)
	}
	acctBatA, err := a.Bank.Manager().Details(vbAtA)
	if err != nil {
		return nil, err
	}
	acctAatB, err := b.Bank.Manager().Details(vaAtB)
	if err != nil {
		return nil, err
	}
	grossAtoB := acctBatA.AvailableBalance
	grossBtoA := acctAatB.AvailableBalance
	netted := grossAtoB
	if grossBtoA.Cmp(netted) < 0 {
		netted = grossBtoA
	}
	st := &Settlement{BranchA: numA, BranchB: numB, GrossAtoB: grossAtoB, GrossBtoA: grossBtoA, Netted: netted}
	// Offset: withdraw the netted amount from both vostros.
	if netted.IsPositive() {
		if err := a.Bank.Manager().Admin().Withdraw(vbAtA, netted); err != nil {
			return nil, err
		}
		if err := b.Bank.Manager().Admin().Withdraw(vaAtB, netted); err != nil {
			return nil, err
		}
	}
	// Residual one-way obligation: cleared externally (real-money
	// transfer between the VOs' treasuries), recorded by withdrawing it
	// from the creditor's vostro on the debtor's books.
	switch {
	case grossAtoB.Cmp(grossBtoA) > 0:
		residual := grossAtoB.MustSub(netted)
		if residual.IsPositive() {
			if err := a.Bank.Manager().Admin().Withdraw(vbAtA, residual); err != nil {
				return nil, err
			}
		}
		st.NetPayer = numA
		st.NetAmount = residual
	case grossBtoA.Cmp(grossAtoB) > 0:
		residual := grossBtoA.MustSub(netted)
		if residual.IsPositive() {
			if err := b.Bank.Manager().Admin().Withdraw(vaAtB, residual); err != nil {
				return nil, err
			}
		}
		st.NetPayer = numB
		st.NetAmount = residual
	}
	return st, nil
}
