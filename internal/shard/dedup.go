package shard

import (
	"errors"
	"fmt"
	"time"

	"gridbank/internal/accounts"
	"gridbank/internal/currency"
	"gridbank/internal/db"
)

// Keyed (idempotent) cross-shard transfers.
//
// A same-shard keyed transfer is easy: the accounts manager checks and
// spends the op_dedup marker inside the one transaction that moves the
// money. A cross-shard transfer has no single transaction, so this file
// applies the usage pipeline's write-ahead discipline instead: allocate
// the transaction ID, durably pin it in the drawer shard's op_dedup
// marker, then drive the ordinary 2PC transfer under that pinned ID. A
// retry of the same key finds the marker, resolves the pinned GID's
// in-doubt 2PC state, and either returns the recorded transfer or
// re-drives the identical protocol — the money moves at most once.

// keyedCrossTransfer runs one cross-shard transfer idempotently under
// opts.DedupKey. fs is the drawer's shard (where the marker and the 2PC
// coordinator log live).
func (l *Ledger) keyedCrossTransfer(fs int, drawer, recipient accounts.ID, amount currency.Amount, opts accounts.TransferOptions) (*accounts.Transfer, error) {
	l.dedupMu.Lock()
	defer l.dedupMu.Unlock()
	mgr := l.mgrs[fs]
	mk, err := mgr.GetDedup(opts.DedupKey)
	if err != nil {
		return nil, err
	}
	if mk == nil {
		// First attempt: pin the allocated ID before any 2PC row
		// exists, so a crash at any later point leaves a marker a retry
		// (or startup seeding) can see.
		mk = &accounts.DedupMarker{Key: opts.DedupKey, TxID: l.txSeq.Add(1), Date: l.now()}
		err := l.stores[fs].Update(func(tx *db.Tx) error {
			return mgr.PutDedupTx(tx, mk)
		})
		if err != nil {
			return nil, err
		}
		return l.crossTransferWithID(mk.TxID, drawer, recipient, amount, opts, false)
	}
	// Retry: settle the pinned ID's fate first. Recovery presume-aborts
	// a prepared-only attempt and completes a committed one; either way
	// the transfer record is then the single source of truth.
	if err := l.recoverOne(fs, gidFor(mk.TxID)); err != nil {
		return nil, fmt.Errorf("shard: resolve keyed transfer %d: %w", mk.TxID, err)
	}
	tr, err := l.GetTransfer(mk.TxID)
	if err == nil {
		return tr, nil
	}
	if !errors.Is(err, accounts.ErrNoSuchTransfer) {
		return nil, err
	}
	// Pinned but never (or not completely) executed: re-drive the same
	// transfer under the same ID.
	return l.crossTransferWithID(mk.TxID, drawer, recipient, amount, opts, false)
}

// SweepDedup removes op_dedup markers older than cutoff on every shard,
// reporting the total removed. Markers still pinning an unresolved
// cross-shard transfer are settled by recovery before the sweep so the
// pin is never yanked out from under an in-doubt GID.
func (l *Ledger) SweepDedup(cutoff time.Time) (int, error) {
	l.dedupMu.Lock()
	defer l.dedupMu.Unlock()
	if len(l.stores) > 1 {
		if err := l.Recover(); err != nil {
			return 0, err
		}
	}
	total := 0
	for _, mgr := range l.mgrs {
		n, err := mgr.SweepDedup(cutoff)
		if err != nil {
			return total, err
		}
		total += n
	}
	return total, nil
}
