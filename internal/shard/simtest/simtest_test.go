package simtest

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"gridbank/internal/accounts"
	"gridbank/internal/currency"
	"gridbank/internal/shard"
)

// TestEveryCrashPointConverges enumerates every 2PC step boundary ×
// every victim, kills exactly there, reboots the deployment from its
// journals, and asserts recovery converges: the transfer is atomically
// applied or rolled back, no escrow survives, and total funds across
// all shards equal the pre-crash total.
func TestEveryCrashPointConverges(t *testing.T) {
	steps := []shard.Step{shard.StepPrepared, shard.StepDecided, shard.StepCreditApplied, shard.StepFinalized}
	victims := []Victim{KillCoordinator, KillDebitShard, KillCreditShard}
	const fund = 100
	amount := currency.FromG(30)

	for _, step := range steps {
		for _, victim := range victims {
			t.Run(fmt.Sprintf("%s/%s", step, victim), func(t *testing.T) {
				h, err := New(4)
				if err != nil {
					t.Fatal(err)
				}
				from, to, err := h.CrossShardPair("crash", currency.FromG(fund))
				if err != nil {
					t.Fatal(err)
				}

				err = h.TransferWithCrash(from, to, amount, &Crash{Step: step, Victim: victim})

				// A commit decision that never became durable must abort;
				// everything after the decision must apply. The only
				// pre-decision schedule that still commits is killing the
				// credit shard, which cannot stop the debit-side decision.
				wantApplied := !(step == shard.StepPrepared && victim != KillCreditShard)
				if !wantApplied && err == nil {
					t.Fatalf("transfer reported success on a schedule that must abort")
				}

				// Reboot everything from the journals; shard.New replays
				// recovery. Twice, to prove recovery is idempotent.
				for i := 0; i < 2; i++ {
					if err := h.Restart(); err != nil {
						t.Fatalf("restart %d: %v", i, err)
					}
				}
				if err := h.AssertConverged(currency.FromG(fund)); err != nil {
					t.Fatal(err)
				}

				fa, err := h.Ledger().Details(from)
				if err != nil {
					t.Fatal(err)
				}
				ta, err := h.Ledger().Details(to)
				if err != nil {
					t.Fatal(err)
				}
				if wantApplied {
					if fa.AvailableBalance != currency.FromG(fund-30) || ta.AvailableBalance != amount {
						t.Fatalf("want applied; balances from=%v to=%v", fa.AvailableBalance, ta.AvailableBalance)
					}
					// Both sides hold their copy of the §5.1 record.
					for _, id := range []accounts.ID{from, to} {
						st, err := h.Ledger().Statement(id, h.now.Add(-1e9), h.now.Add(1e9))
						if err != nil {
							t.Fatal(err)
						}
						if len(st.Transfers) != 1 || st.Transfers[0].Amount != amount {
							t.Fatalf("statement of %s after recovery: %+v", id, st.Transfers)
						}
					}
				} else {
					if fa.AvailableBalance != currency.FromG(fund) || !ta.AvailableBalance.IsZero() {
						t.Fatalf("want aborted; balances from=%v to=%v", fa.AvailableBalance, ta.AvailableBalance)
					}
				}
				if !fa.LockedBalance.IsZero() || !ta.LockedBalance.IsZero() {
					t.Fatalf("locked residue after recovery: from=%v to=%v", fa.LockedBalance, ta.LockedBalance)
				}
			})
		}
	}
}

// TestCrashPointsFromLocked runs the cheque-redemption-shaped path
// (transfer out of locked funds) through the abort and commit schedules
// and checks the lock is restored or consumed, never leaked.
func TestCrashPointsFromLocked(t *testing.T) {
	for _, tc := range []struct {
		step    shard.Step
		victim  Victim
		applied bool
	}{
		{shard.StepPrepared, KillCoordinator, false},
		{shard.StepPrepared, KillDebitShard, false},
		{shard.StepDecided, KillCreditShard, true},
		{shard.StepCreditApplied, KillDebitShard, true},
	} {
		t.Run(fmt.Sprintf("%s/%s", tc.step, tc.victim), func(t *testing.T) {
			h, err := New(3)
			if err != nil {
				t.Fatal(err)
			}
			from, to, err := h.CrossShardPair("locked", currency.FromG(50))
			if err != nil {
				t.Fatal(err)
			}
			if err := h.Ledger().CheckFunds(from, currency.FromG(20)); err != nil {
				t.Fatal(err)
			}

			l := h.Ledger()
			fs, ts := l.ShardFor(from), l.ShardFor(to)
			l.CrashHook = func(gid string, step shard.Step) error {
				if step != tc.step {
					return nil
				}
				switch tc.victim {
				case KillCoordinator:
					return ErrCrash
				case KillDebitShard:
					h.journals[fs].Kill()
				case KillCreditShard:
					h.journals[ts].Kill()
				}
				return nil
			}
			_, _ = l.Transfer(from, to, currency.FromG(20), accounts.TransferOptions{FromLocked: true})
			l.CrashHook = nil

			if err := h.Restart(); err != nil {
				t.Fatal(err)
			}
			if err := h.AssertConverged(currency.FromG(50)); err != nil {
				t.Fatal(err)
			}
			fa, _ := h.Ledger().Details(from)
			ta, _ := h.Ledger().Details(to)
			if tc.applied {
				if !fa.LockedBalance.IsZero() || ta.AvailableBalance != currency.FromG(20) {
					t.Fatalf("want applied: from locked=%v, to=%v", fa.LockedBalance, ta.AvailableBalance)
				}
			} else {
				if fa.LockedBalance != currency.FromG(20) || !ta.AvailableBalance.IsZero() {
					t.Fatalf("want aborted with lock restored: from locked=%v, to=%v", fa.LockedBalance, ta.AvailableBalance)
				}
			}
		})
	}
}

// TestSeededCrashSchedule is the randomized soak: a fixed-seed PRNG
// drives a mixed same-shard/cross-shard transfer workload and keeps
// injecting random (step, victim) crashes, rebooting and recovering
// after each. Conservation must hold at every recovery point and at the
// end; the fixed seed makes any failure exactly reproducible.
func TestSeededCrashSchedule(t *testing.T) {
	const (
		seed     = 0x9dB4_2026
		nShards  = 3
		nAccts   = 8
		perAcct  = 100
		rounds   = 40
		maxWhole = 5
	)
	rng := rand.New(rand.NewSource(seed))
	h, err := New(nShards)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]accounts.ID, nAccts)
	for i := range ids {
		id, err := h.CreateFunded(fmt.Sprintf("CN=soak-%d", i), currency.FromG(perAcct))
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	want := currency.FromG(nAccts * perAcct)

	steps := []shard.Step{shard.StepPrepared, shard.StepDecided, shard.StepCreditApplied, shard.StepFinalized}
	victims := []Victim{KillCoordinator, KillDebitShard, KillCreditShard}
	crashes := 0
	for round := 0; round < rounds; round++ {
		from := ids[rng.Intn(nAccts)]
		to := ids[rng.Intn(nAccts)]
		if from == to {
			continue
		}
		amount := currency.FromG(int64(1 + rng.Intn(maxWhole)))
		var crash *Crash
		if rng.Intn(2) == 0 {
			crash = &Crash{Step: steps[rng.Intn(len(steps))], Victim: victims[rng.Intn(len(victims))]}
		}
		_ = h.TransferWithCrash(from, to, amount, crash)
		if crash != nil {
			crashes++
			if err := h.Restart(); err != nil {
				t.Fatalf("round %d (%s/%s): restart: %v", round, crash.Step, crash.Victim, err)
			}
			if err := h.AssertConverged(want); err != nil {
				t.Fatalf("round %d (%s/%s): %v", round, crash.Step, crash.Victim, err)
			}
		}
	}
	if crashes == 0 {
		t.Fatal("seed produced no crash schedules; raise rounds")
	}
	// Final sweep: recovery already ran after each crash; one more
	// restart must be a no-op, balances non-negative, totals conserved.
	if err := h.Restart(); err != nil {
		t.Fatal(err)
	}
	if err := h.AssertConverged(want); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		a, err := h.Ledger().Details(id)
		if err != nil {
			t.Fatal(err)
		}
		if a.AvailableBalance.IsNegative() || a.LockedBalance.IsNegative() {
			t.Fatalf("account %s negative after soak: %v/%v", id, a.AvailableBalance, a.LockedBalance)
		}
	}
}

// TestPinnedReversalIDSurvivesRestartSeeding covers the cancellation
// write-ahead across reboots: a cancel that crashed right after its
// reversal's prepare leaves the pinned ReversalID durable (eventually
// only inside the original transfer record's JSON, once recovery
// aborts the prepared row). The transaction-ID allocator must reseed
// above that pin on every restart — a fresh transfer colliding with it
// would make a retried cancel adopt the wrong transfer as "reversal
// already done".
func TestPinnedReversalIDSurvivesRestartSeeding(t *testing.T) {
	h, err := New(3)
	if err != nil {
		t.Fatal(err)
	}
	from, to, err := h.CrossShardPair("pin", currency.FromG(50))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := h.Ledger().Transfer(from, to, currency.FromG(20), accounts.TransferOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Cancel dies at the reversal's first durable step.
	h.Ledger().CrashHook = func(string, shard.Step) error { return ErrCrash }
	_ = h.Ledger().CancelTransfer(tr.TransactionID)
	h.Ledger().CrashHook = nil

	// Two reboots: the first aborts the prepared reversal row, the
	// second sees the pin only inside the transfer record's value.
	for i := 0; i < 2; i++ {
		if err := h.Restart(); err != nil {
			t.Fatal(err)
		}
	}
	// The pin lives on the drawer-shard (authoritative) copy.
	drawerMgr := h.Ledger().Managers()[h.Ledger().ShardFor(from)]
	pinned, err := drawerMgr.GetTransfer(tr.TransactionID)
	if err != nil {
		t.Fatal(err)
	}
	if pinned.ReversalID == 0 {
		t.Fatal("reversal ID pin did not survive the crash")
	}
	// A fresh transfer must allocate past the pin.
	from2, to2, err := h.CrossShardPair("pin2", currency.FromG(10))
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := h.Ledger().Transfer(from2, to2, currency.FromG(1), accounts.TransferOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if fresh.TransactionID <= pinned.ReversalID {
		t.Fatalf("fresh transfer got txid %d, colliding with pinned reversal %d", fresh.TransactionID, pinned.ReversalID)
	}
	// The retried cancel re-drives the pinned reversal exactly once.
	if err := h.Ledger().CancelTransfer(tr.TransactionID); err != nil {
		t.Fatal(err)
	}
	fa, _ := h.Ledger().Details(from)
	ta, _ := h.Ledger().Details(to)
	if fa.AvailableBalance != currency.FromG(50) || !ta.AvailableBalance.IsZero() {
		t.Fatalf("after restart+retry cancel: from=%v to=%v", fa.AvailableBalance, ta.AvailableBalance)
	}
	if err := h.AssertConverged(currency.FromG(60)); err != nil {
		t.Fatal(err)
	}
}

// TestRecoveryDoesNotDoubleCredit reboots mid-commit several times in a
// row and checks the credit lands exactly once (the pc_applied marker's
// whole job).
func TestRecoveryDoesNotDoubleCredit(t *testing.T) {
	h, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	from, to, err := h.CrossShardPair("double", currency.FromG(10))
	if err != nil {
		t.Fatal(err)
	}
	// Die right after the credit applied but before the debit finalized.
	err = h.TransferWithCrash(from, to, currency.FromG(4), &Crash{Step: shard.StepCreditApplied, Victim: KillCoordinator})
	if !errors.Is(err, shard.ErrInDoubt) {
		t.Fatalf("coordinator error = %v, want ErrInDoubt", err)
	}
	for i := 0; i < 3; i++ {
		if err := h.Restart(); err != nil {
			t.Fatal(err)
		}
	}
	ta, err := h.Ledger().Details(to)
	if err != nil {
		t.Fatal(err)
	}
	if ta.AvailableBalance != currency.FromG(4) {
		t.Fatalf("recipient = %v after repeated recovery, want exactly 4 G$", ta.AvailableBalance)
	}
	if err := h.AssertConverged(currency.FromG(10)); err != nil {
		t.Fatal(err)
	}
}
