// Package simtest is the deterministic fault-injection harness for the
// sharded ledger's two-phase commit. It stands up N shards on
// crash-survivable in-memory journals, drives cross-shard transfers to
// an exact 2PC step boundary, kills the coordinator or a participant
// shard there, "reboots" every store by replaying its journal, runs
// recovery, and asserts that the ledger converged: every in-doubt
// transfer fully applied or fully rolled back, no escrow left behind,
// and not a micro-G$ of money created or destroyed.
//
// Everything is deterministic: crash points are enumerated exhaustively
// (every step boundary × every victim) and the randomized soak runs on
// a fixed-seed PRNG, so a failure reproduces byte-for-byte.
package simtest

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"gridbank/internal/accounts"
	"gridbank/internal/currency"
	"gridbank/internal/db"
	"gridbank/internal/shard"
)

// Victim selects which process dies at the chosen step boundary.
type Victim int

// The processes the harness can kill.
const (
	// KillCoordinator abandons the in-flight protocol at the boundary:
	// everything durable stays, nothing further runs until recovery.
	KillCoordinator Victim = iota
	// KillDebitShard makes the debit shard's journal refuse every write
	// from the boundary on: the coordinator's next debit-shard step
	// fails and it must leave a recoverable picture.
	KillDebitShard
	// KillCreditShard does the same to the credit shard.
	KillCreditShard
)

// String names a victim for test output.
func (v Victim) String() string {
	switch v {
	case KillCoordinator:
		return "coordinator"
	case KillDebitShard:
		return "debit-shard"
	case KillCreditShard:
		return "credit-shard"
	default:
		return fmt.Sprintf("victim(%d)", int(v))
	}
}

// ErrCrash is the injected coordinator-death error.
var ErrCrash = errors.New("simtest: injected crash")

// Journal is a crash-survivable in-memory journal: batches accumulate
// across store generations (a "reboot" replays them into a fresh
// store), and Kill makes every subsequent append fail the way a dead
// disk would — atomically, before the store applies anything, which is
// exactly the contract the db layer's write-ahead ordering guarantees.
type Journal struct {
	mu      sync.Mutex
	batches [][]db.Entry
	dead    bool
}

// NewJournal returns an empty crash-survivable journal.
func NewJournal() *Journal { return &Journal{} }

// Kill makes every subsequent append fail until Revive.
func (j *Journal) Kill() {
	j.mu.Lock()
	j.dead = true
	j.mu.Unlock()
}

// Revive clears the failure, modelling the shard process restarting
// with its durable log intact.
func (j *Journal) Revive() {
	j.mu.Lock()
	j.dead = false
	j.mu.Unlock()
}

// Append implements db.Journal.
func (j *Journal) Append(e db.Entry) error { return j.AppendBatch([]db.Entry{e}) }

// AppendBatch implements db.Journal: atomic, all-or-nothing.
func (j *Journal) AppendBatch(entries []db.Entry) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.dead {
		return fmt.Errorf("simtest: journal dead (injected shard crash)")
	}
	cp := make([]db.Entry, len(entries))
	copy(cp, entries)
	j.batches = append(j.batches, cp)
	return nil
}

// Replay implements db.Journal.
func (j *Journal) Replay(apply func(db.Entry) error) error {
	j.mu.Lock()
	batches := j.batches
	j.mu.Unlock()
	for _, b := range batches {
		for _, e := range b {
			if err := apply(e); err != nil {
				return err
			}
		}
	}
	return nil
}

// Close implements db.Journal. It is a no-op: the harness reopens the
// same journal for the next store generation.
func (j *Journal) Close() error { return nil }

// Harness is one simulated sharded deployment under fault injection.
type Harness struct {
	Shards   int
	journals []*Journal
	ledger   *shard.Ledger
	now      time.Time
}

// New builds a harness with n shards, empty and recovered.
func New(n int) (*Harness, error) {
	h := &Harness{Shards: n, now: time.Date(2026, 2, 3, 4, 5, 6, 0, time.UTC)}
	h.journals = make([]*Journal, n)
	for i := range h.journals {
		h.journals[i] = NewJournal()
	}
	if err := h.boot(); err != nil {
		return nil, err
	}
	return h, nil
}

// boot (re)builds every store from its journal and a fresh ledger over
// them; shard.New runs 2PC recovery as part of construction.
func (h *Harness) boot() error {
	stores := make([]*db.Store, h.Shards)
	for i, j := range h.journals {
		j.Revive()
		st, err := db.Open(j)
		if err != nil {
			return fmt.Errorf("simtest: reboot shard %d: %w", i, err)
		}
		stores[i] = st
	}
	l, err := shard.New(stores, shard.Config{Now: func() time.Time { return h.now }})
	if err != nil {
		return err
	}
	h.ledger = l
	return nil
}

// Restart models the whole deployment crashing and rebooting: every
// in-memory store is discarded and rebuilt from its journal, and
// recovery resolves whatever 2PC state survived.
func (h *Harness) Restart() error { return h.boot() }

// Ledger returns the current ledger generation.
func (h *Harness) Ledger() *shard.Ledger { return h.ledger }

// CreateFunded creates an account with the given balance.
func (h *Harness) CreateFunded(name string, funds currency.Amount) (accounts.ID, error) {
	a, err := h.ledger.CreateAccount(name, "", "")
	if err != nil {
		return "", err
	}
	if funds.IsPositive() {
		if err := h.ledger.Deposit(a.AccountID, funds); err != nil {
			return "", err
		}
	}
	return a.AccountID, nil
}

// CrossShardPair creates and funds two accounts guaranteed to live on
// different shards.
func (h *Harness) CrossShardPair(tag string, funds currency.Amount) (from, to accounts.ID, err error) {
	from, err = h.CreateFunded("CN=from-"+tag, funds)
	if err != nil {
		return "", "", err
	}
	for i := 0; i < 10000; i++ {
		id, err := h.CreateFunded(fmt.Sprintf("CN=to-%s-%d", tag, i), 0)
		if err != nil {
			return "", "", err
		}
		if h.ledger.ShardFor(id) != h.ledger.ShardFor(from) {
			return from, id, nil
		}
	}
	return "", "", fmt.Errorf("simtest: no cross-shard partner found for %s", from)
}

// Crash describes one injected failure: kill victim at the boundary
// immediately after step becomes durable.
type Crash struct {
	Step   shard.Step
	Victim Victim
}

// TransferWithCrash drives one cross-shard transfer with the given
// crash injected (nil = run clean). It returns the coordinator's error,
// which callers assert against the expected outcome; the harness is
// left un-restarted so tests can inspect the mid-crash durable state.
func (h *Harness) TransferWithCrash(from, to accounts.ID, amount currency.Amount, crash *Crash) error {
	l := h.ledger
	if crash != nil {
		fs, ts := l.ShardFor(from), l.ShardFor(to)
		l.CrashHook = func(gid string, step shard.Step) error {
			if step != crash.Step {
				return nil
			}
			switch crash.Victim {
			case KillCoordinator:
				return ErrCrash
			case KillDebitShard:
				h.journals[fs].Kill()
			case KillCreditShard:
				h.journals[ts].Kill()
			}
			return nil
		}
		defer func() { l.CrashHook = nil }()
	}
	_, err := l.Transfer(from, to, amount, accounts.TransferOptions{})
	return err
}

// TotalBalance returns the conservation quantity: all account balances
// plus in-flight escrow.
func (h *Harness) TotalBalance() (currency.Amount, error) {
	return h.ledger.TotalBalance()
}

// AssertConverged checks the post-recovery invariants: no pending
// escrow, no pc rows on any shard, and the conservation total equal to
// want. It returns a descriptive error rather than failing a *testing.T
// so the soak test can wrap it with schedule context.
func (h *Harness) AssertConverged(want currency.Amount) error {
	esc, err := h.ledger.PendingEscrow()
	if err != nil {
		return err
	}
	if !esc.IsZero() {
		return fmt.Errorf("simtest: escrow %v left after recovery", esc)
	}
	total, err := h.ledger.TotalBalance()
	if err != nil {
		return err
	}
	if total != want {
		return fmt.Errorf("simtest: total %v after recovery, want %v (money %s)", total, want,
			direction(total, want))
	}
	return nil
}

func direction(got, want currency.Amount) string {
	if got.Cmp(want) > 0 {
		return "created"
	}
	return "destroyed"
}
