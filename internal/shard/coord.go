package shard

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"gridbank/internal/accounts"
	"gridbank/internal/currency"
	"gridbank/internal/db"
)

// Two-phase commit for cross-shard transfers.
//
// The coordinator keeps no state of its own: every protocol step is a
// single db transaction on one shard's store, riding that shard's
// existing write-ahead journal, so a crash at any point leaves a
// durable, recoverable picture. The coordinator log is co-located with
// the debit participant (the classic "transfer of commit point"
// optimization): the prepare record and the decision record are both
// rows on the debit shard, so the only remote participant is the
// credit shard and the protocol needs exactly one durable write per
// store per phase.
//
// Record format (documented alongside the journal format in README):
//
//	table "pc_transfers" (debit shard), key = GID:
//	  {"gid":"00000000000000000042","txid":42,
//	   "from":"01-0001-00000001","to":"01-0001-00000007",
//	   "amount":1250000,"state":"prepared","date":"..."}
//	  (from_locked, cancelled and rur are omitempty — present only
//	  when true/non-empty)
//	table "pc_applied" (credit shard), key = GID:
//	  {"gid":"00000000000000000042","txid":42}
//
// Protocol, in durable steps (crash boundaries for the fault harness):
//
//	1. prepare   (debit):  escrow the funds out of the drawer's balance
//	                       and insert the pc_transfers row, state
//	                       "prepared", in one transaction. The escrowed
//	                       amount now lives in the record itself.
//	2. decide    (debit):  flip state to "committed" (or "aborted").
//	                       This single-row update is the commit point.
//	3. credit    (credit): add the amount to the recipient, write the
//	                       recipient-side §5.1 TRANSACTION row and
//	                       TRANSFER record, and insert the pc_applied
//	                       marker — all one transaction, idempotent via
//	                       the marker.
//	4. finalize  (debit):  write the drawer-side TRANSACTION row and
//	                       TRANSFER record and delete the pc_transfers
//	                       row. Row deletion is the completion marker.
//	5. cleanup   (credit): best-effort delete of the pc_applied marker
//	                       (safe because the GID's transaction ID is
//	                       never reused).
//
// Recovery (Ledger.Recover, run at startup) scans pc_transfers on
// every shard: "prepared" rows are presumed-abort (decide abort, then
// return the escrow); "committed" rows re-drive steps 3–5 (idempotent);
// "aborted" rows re-drive the undo. Money is therefore never created
// or destroyed across a crash: at every boundary the total of account
// balances plus escrowed prepare records is constant.

// Shard-local table names for 2PC bookkeeping.
const (
	tablePC        = "pc_transfers"
	tablePCApplied = "pc_applied"
)

// pc record states.
const (
	pcPrepared  = "prepared"
	pcCommitted = "committed"
	pcAborted   = "aborted"
)

// Step identifies a durable 2PC step boundary, for fault injection.
type Step int

// The coordinator's durable steps, in protocol order. These are the
// hookable crash boundaries of the live protocol; the abort-undo step
// has no hook because a live abort only follows an already-injected
// decision failure — its crash recovery is exercised instead by the
// presumed-abort schedules (a prepared row left behind, resolved by
// Recover, which the fault harness drives through double restarts).
const (
	StepPrepared Step = iota + 1
	StepDecided
	StepCreditApplied
	StepFinalized
)

// String names a step for test output.
func (s Step) String() string {
	switch s {
	case StepPrepared:
		return "prepared"
	case StepDecided:
		return "decided"
	case StepCreditApplied:
		return "credit-applied"
	case StepFinalized:
		return "finalized"
	default:
		return fmt.Sprintf("step(%d)", int(s))
	}
}

// ErrInDoubt marks a cross-shard transfer interrupted after its prepare
// became durable: the outcome is decided by the durable records, and
// Recover resolves it on the next startup. Callers must not retry
// blindly — the funds are escrowed (or already moving) under the
// original transaction ID.
var ErrInDoubt = errors.New("shard: cross-shard transfer interrupted; recovery will resolve it")

// pcRecord is the durable 2PC row. Amount is escrowed here between
// prepare and finalize/abort: it has left the drawer's balance and not
// yet reached the recipient's, and conservation counts it via
// PendingEscrow.
type pcRecord struct {
	GID        string          `json:"gid"`
	TxID       uint64          `json:"txid"`
	From       accounts.ID     `json:"from"`
	To         accounts.ID     `json:"to"`
	Amount     currency.Amount `json:"amount"`
	FromLocked bool            `json:"from_locked,omitempty"`
	Cancelled  bool            `json:"cancelled,omitempty"` // reversal pair of a cancelled transfer
	RUR        []byte          `json:"rur,omitempty"`
	State      string          `json:"state"`
	Date       time.Time       `json:"date"`
}

type pcAppliedMarker struct {
	GID  string `json:"gid"`
	TxID uint64 `json:"txid"`
}

func gidFor(txID uint64) string { return fmt.Sprintf("%020d", txID) }

// hook invokes the fault-injection hook, if any.
func (l *Ledger) hook(gid string, step Step) error {
	if l.CrashHook == nil {
		return nil
	}
	return l.CrashHook(gid, step)
}

// inDoubtf raises the in-doubt gauge and builds the error that reports
// an abandoned mid-protocol transfer.
func (l *Ledger) inDoubtf(format string, args ...any) error {
	l.markInDoubt()
	return fmt.Errorf(format, args...)
}

// crossTransfer drives the full 2PC protocol for a transfer whose two
// accounts live on different shards. cancelled marks the written §5.1
// records as a cancellation reversal.
func (l *Ledger) crossTransfer(from, to accounts.ID, amount currency.Amount, opts accounts.TransferOptions, cancelled bool) (*accounts.Transfer, error) {
	return l.crossTransferWithID(0, from, to, amount, opts, cancelled)
}

// crossTransferWithID is crossTransfer with a caller-pinned transaction
// ID (0 = allocate). Cancellation retries pin the ID so a reversal that
// may already have run — fully or partially — is re-driven under the
// same GID instead of duplicated.
func (l *Ledger) crossTransferWithID(txID uint64, from, to accounts.ID, amount currency.Amount, opts accounts.TransferOptions, cancelled bool) (*accounts.Transfer, error) {
	fs, ts := l.ring.ShardFor(string(from)), l.ring.ShardFor(string(to))

	// Pre-validate the credit side outside the protocol: existence,
	// open, currency. A recipient that closes between this check and
	// the credit apply is still credited (money must not vanish once
	// the commit point passes); the check just front-loads the common
	// failures before any durable write.
	toAcct, err := l.mgrs[ts].Details(to)
	if err != nil {
		return nil, err
	}
	if toAcct.Closed {
		return nil, fmt.Errorf("%w: %s", accounts.ErrClosed, to)
	}

	if txID == 0 {
		txID = l.txSeq.Add(1)
	}
	rec := &pcRecord{
		TxID:       txID,
		From:       from,
		To:         to,
		Amount:     amount,
		FromLocked: opts.FromLocked,
		Cancelled:  cancelled,
		RUR:        opts.RUR,
		State:      pcPrepared,
		Date:       l.now(),
	}
	rec.GID = gidFor(rec.TxID)

	// Step 1: prepare. A failure here is a clean business error —
	// nothing durable happened.
	if err := l.prepare(fs, rec, toAcct.Currency); err != nil {
		return nil, err
	}
	if err := l.hook(rec.GID, StepPrepared); err != nil {
		return nil, l.inDoubtf("%w (after prepare): %w", ErrInDoubt, err)
	}

	// Step 2: decide commit. If the decision cannot be made durable the
	// transfer is presumed aborted; try to undo now, and recovery picks
	// it up if even that fails.
	if err := l.decide(fs, rec.GID, pcCommitted); err != nil {
		l.tryAbort(fs, rec.GID)
		return nil, fmt.Errorf("shard: commit decision failed, transfer aborted: %w", err)
	}
	if err := l.hook(rec.GID, StepDecided); err != nil {
		return nil, l.inDoubtf("%w (after commit decision): %w", ErrInDoubt, err)
	}

	// Steps 3-5: the transfer is committed; completion is inevitable.
	// Any failure past this point leaves durable state Recover finishes.
	if err := l.applyCredit(ts, rec); err != nil {
		return nil, l.inDoubtf("%w (credit pending): %w", ErrInDoubt, err)
	}
	if err := l.hook(rec.GID, StepCreditApplied); err != nil {
		return nil, l.inDoubtf("%w (after credit): %w", ErrInDoubt, err)
	}
	if err := l.finalizeDebit(fs, rec); err != nil {
		return nil, l.inDoubtf("%w (finalize pending): %w", ErrInDoubt, err)
	}
	if err := l.hook(rec.GID, StepFinalized); err != nil {
		return nil, l.inDoubtf("%w (after finalize): %w", ErrInDoubt, err)
	}
	l.clearApplied(ts, rec.GID) // best effort; orphan markers are harmless

	return &accounts.Transfer{
		TransactionID:       rec.TxID,
		Date:                rec.Date,
		DrawerAccountID:     from,
		Amount:              amount,
		RecipientAccountID:  to,
		ResourceUsageRecord: opts.RUR,
		Cancelled:           cancelled,
	}, nil
}

// prepare escrows the funds on the debit shard and inserts the pc row,
// in one transaction. The drawer's balance drops here; the amount lives
// in the record until finalize (committed) or undo (aborted).
func (l *Ledger) prepare(shardIdx int, rec *pcRecord, toCurrency currency.Code) error {
	defer l.m2pcPrepare.ObserveSince(time.Now())
	raw, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	return l.stores[shardIdx].Update(func(tx *db.Tx) error {
		drawer, err := accounts.GetAccountTx(tx, rec.From)
		if err != nil {
			return err
		}
		if drawer.Closed {
			return fmt.Errorf("%w: %s", accounts.ErrClosed, rec.From)
		}
		if drawer.Currency != toCurrency {
			return fmt.Errorf("%w: %s is %s, %s is %s", accounts.ErrCurrencyMismatch,
				rec.From, drawer.Currency, rec.To, toCurrency)
		}
		if rec.FromLocked {
			if drawer.LockedBalance.Cmp(rec.Amount) < 0 {
				return fmt.Errorf("%w: locked %s < %s", accounts.ErrInsufficientLock, drawer.LockedBalance, rec.Amount)
			}
			drawer.LockedBalance = drawer.LockedBalance.MustSub(rec.Amount)
		} else {
			if drawer.Spendable().Cmp(rec.Amount) < 0 {
				return fmt.Errorf("%w: spendable %s < %s", accounts.ErrInsufficient, drawer.Spendable(), rec.Amount)
			}
			drawer.AvailableBalance = drawer.AvailableBalance.MustSub(rec.Amount)
		}
		if err := accounts.PutAccountTx(tx, drawer); err != nil {
			return err
		}
		return tx.Insert(tablePC, rec.GID, raw)
	})
}

// decide makes the commit/abort decision durable by flipping the pc
// row's state — the 2PC commit point.
func (l *Ledger) decide(shardIdx int, gid, state string) error {
	defer l.m2pcDecide.ObserveSince(time.Now())
	return l.stores[shardIdx].Update(func(tx *db.Tx) error {
		rec, err := getPC(tx, gid)
		if err != nil {
			return err
		}
		if rec.State == state {
			return nil // idempotent (recovery re-drive)
		}
		if rec.State != pcPrepared {
			return fmt.Errorf("shard: decision %s on %s transfer %s", state, rec.State, gid)
		}
		rec.State = state
		raw, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		return tx.Put(tablePC, gid, raw)
	})
}

// applyCredit lands the money on the credit shard: recipient balance,
// recipient-side TRANSACTION row, the TRANSFER record's credit-shard
// copy, and the idempotency marker — one transaction.
func (l *Ledger) applyCredit(shardIdx int, rec *pcRecord) error {
	defer l.m2pcCredit.ObserveSince(time.Now())
	mgr := l.mgrs[shardIdx]
	return l.stores[shardIdx].Update(func(tx *db.Tx) error {
		if ok, err := tx.Exists(tablePCApplied, rec.GID); err != nil {
			return err
		} else if ok {
			return nil // already applied before a crash
		}
		recipient, err := accounts.GetAccountTx(tx, rec.To)
		if err != nil {
			return err
		}
		// A recipient closed after the commit point is still credited:
		// the alternative destroys money. (Closure requires a zero
		// balance, so the credit just reopens a sweep-out obligation.)
		recipient.AvailableBalance = recipient.AvailableBalance.MustAdd(rec.Amount)
		if err := accounts.PutAccountTx(tx, recipient); err != nil {
			return err
		}
		if _, err := mgr.AppendTransactionTx(tx, &accounts.Transaction{
			TransactionID: rec.TxID, AccountID: rec.To, Type: accounts.TxTransfer, Date: rec.Date, Amount: rec.Amount,
		}); err != nil {
			return err
		}
		if err := mgr.InsertTransferTx(tx, transferOf(rec)); err != nil {
			return err
		}
		marker, err := json.Marshal(pcAppliedMarker{GID: rec.GID, TxID: rec.TxID})
		if err != nil {
			return err
		}
		return tx.Insert(tablePCApplied, rec.GID, marker)
	})
}

// finalizeDebit writes the drawer-side §5.1 records and deletes the pc
// row; the deletion is the durable completion marker.
func (l *Ledger) finalizeDebit(shardIdx int, rec *pcRecord) error {
	defer l.m2pcFinal.ObserveSince(time.Now())
	mgr := l.mgrs[shardIdx]
	neg, err := rec.Amount.Neg()
	if err != nil {
		return err
	}
	return l.stores[shardIdx].Update(func(tx *db.Tx) error {
		cur, err := getPC(tx, rec.GID)
		if errors.Is(err, db.ErrNoRecord) {
			return nil // already finalized before a crash
		}
		if err != nil {
			return err
		}
		if cur.State != pcCommitted {
			return fmt.Errorf("shard: finalize of %s transfer %s", cur.State, rec.GID)
		}
		if _, err := mgr.AppendTransactionTx(tx, &accounts.Transaction{
			TransactionID: rec.TxID, AccountID: rec.From, Type: accounts.TxTransfer, Date: rec.Date, Amount: neg,
		}); err != nil {
			return err
		}
		if err := mgr.InsertTransferTx(tx, transferOf(rec)); err != nil {
			return err
		}
		return tx.Delete(tablePC, rec.GID)
	})
}

// abortUndo returns the escrowed funds to the drawer and deletes the pc
// row.
func (l *Ledger) abortUndo(shardIdx int, gid string) error {
	return l.stores[shardIdx].Update(func(tx *db.Tx) error {
		rec, err := getPC(tx, gid)
		if errors.Is(err, db.ErrNoRecord) {
			return nil // already undone
		}
		if err != nil {
			return err
		}
		drawer, err := accounts.GetAccountTx(tx, rec.From)
		if err != nil {
			return err
		}
		if rec.FromLocked {
			drawer.LockedBalance = drawer.LockedBalance.MustAdd(rec.Amount)
		} else {
			drawer.AvailableBalance = drawer.AvailableBalance.MustAdd(rec.Amount)
		}
		if err := accounts.PutAccountTx(tx, drawer); err != nil {
			return err
		}
		return tx.Delete(tablePC, gid)
	})
}

// tryAbort makes a best-effort durable abort (decision + undo); if any
// part fails the prepared row stays for Recover to presume-abort.
func (l *Ledger) tryAbort(shardIdx int, gid string) {
	if err := l.decide(shardIdx, gid, pcAborted); err != nil {
		return
	}
	_ = l.abortUndo(shardIdx, gid)
}

// clearApplied removes the credit-side idempotency marker after a
// completed transfer. Best-effort: the marker only guards re-application
// of a still-live pc row, and the GID is never reused.
func (l *Ledger) clearApplied(shardIdx int, gid string) {
	_ = l.stores[shardIdx].Update(func(tx *db.Tx) error {
		if ok, err := tx.Exists(tablePCApplied, gid); err != nil || !ok {
			return err
		}
		return tx.Delete(tablePCApplied, gid)
	})
}

// transferOf builds the §5.1 TRANSFER record for a pc record. The same
// content is written on both shards (debit copy at finalize, credit
// copy at apply) so each side's statements see the movement.
func transferOf(rec *pcRecord) *accounts.Transfer {
	return &accounts.Transfer{
		TransactionID:       rec.TxID,
		Date:                rec.Date,
		DrawerAccountID:     rec.From,
		Amount:              rec.Amount,
		RecipientAccountID:  rec.To,
		ResourceUsageRecord: rec.RUR,
		Cancelled:           rec.Cancelled,
	}
}

func getPC(tx *db.Tx, gid string) (*pcRecord, error) {
	raw, err := tx.Get(tablePC, gid)
	if err != nil {
		return nil, err
	}
	var rec pcRecord
	if err := json.Unmarshal(raw, &rec); err != nil {
		return nil, fmt.Errorf("shard: corrupt pc record %s: %w", gid, err)
	}
	return &rec, nil
}

// Recover resolves every in-doubt cross-shard transfer left by a crash:
// prepared rows are presumed-abort, committed rows are re-driven to
// completion, aborted rows are undone. It runs at Ledger construction
// and is safe to call again at any quiescent point; all steps are
// idempotent.
func (l *Ledger) Recover() error {
	if len(l.stores) == 1 {
		return nil // cross-shard transfers cannot exist
	}
	for i := range l.stores {
		var gids []string
		err := l.stores[i].Scan(tablePC, func(key string, _ []byte) bool {
			gids = append(gids, key)
			return true
		})
		if err != nil {
			if errors.Is(err, db.ErrNoTable) {
				continue
			}
			return err
		}
		for _, gid := range gids {
			if err := l.recoverOne(i, gid); err != nil {
				return fmt.Errorf("shard: recovering transfer %s on shard %d: %w", gid, i, err)
			}
		}
		// Orphaned credit markers: their pc row is gone (transfer fully
		// finalized) so they will never be consulted again.
		var orphans []string
		err = l.stores[i].Scan(tablePCApplied, func(key string, _ []byte) bool {
			orphans = append(orphans, key)
			return true
		})
		if err != nil && !errors.Is(err, db.ErrNoTable) {
			return err
		}
		for _, gid := range orphans {
			if l.pcRowExists(gid) {
				continue // still in flight; marker still guards idempotency
			}
			l.clearApplied(i, gid)
		}
	}
	return nil
}

// pcRowExists reports whether any shard still holds a live pc row for
// gid.
func (l *Ledger) pcRowExists(gid string) bool {
	for i := range l.stores {
		if _, err := l.stores[i].Get(tablePC, gid); err == nil {
			return true
		}
	}
	return false
}

// recoverOne resolves a single pc row found on debit shard i.
func (l *Ledger) recoverOne(i int, gid string) error {
	raw, err := l.stores[i].Get(tablePC, gid)
	if errors.Is(err, db.ErrNoRecord) {
		return nil
	}
	if err != nil {
		return err
	}
	var rec pcRecord
	if err := json.Unmarshal(raw, &rec); err != nil {
		return fmt.Errorf("shard: corrupt pc record %s: %w", gid, err)
	}
	switch rec.State {
	case pcPrepared:
		// No durable commit decision: presume abort.
		if err := l.decide(i, gid, pcAborted); err != nil {
			return err
		}
		if err := l.abortUndo(i, gid); err != nil {
			return err
		}
		l.resolveInDoubtMark()
		return nil
	case pcAborted:
		if err := l.abortUndo(i, gid); err != nil {
			return err
		}
		l.resolveInDoubtMark()
		return nil
	case pcCommitted:
		ts := l.ring.ShardFor(string(rec.To))
		if err := l.applyCredit(ts, &rec); err != nil {
			return err
		}
		if err := l.finalizeDebit(i, &rec); err != nil {
			return err
		}
		l.clearApplied(ts, gid)
		l.resolveInDoubtMark()
		return nil
	default:
		return fmt.Errorf("shard: pc record %s in unknown state %q", gid, rec.State)
	}
}
