package shard

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"gridbank/internal/accounts"
	"gridbank/internal/currency"
	"gridbank/internal/db"
)

// opcode drives the property machine, mirroring the ledger-invariant
// machine in internal/accounts/property_test.go.
type opcode struct {
	Kind   uint8 // transfer / lock / unlock / lockedTransfer / deposit / withdraw
	From   uint8
	To     uint8
	Amount uint16
}

// applyOp runs one op against a ledger; errors are outcomes, not
// failures (an insufficient-funds transfer must simply fail the same
// way on both ledgers).
func applyOp(l *Ledger, ids []accounts.ID, op opcode) {
	from := ids[int(op.From)%len(ids)]
	to := ids[int(op.To)%len(ids)]
	amt := currency.FromMicro(int64(op.Amount)*1000 + 1)
	switch op.Kind % 6 {
	case 0:
		_, _ = l.Transfer(from, to, amt, accounts.TransferOptions{})
	case 1:
		_ = l.CheckFunds(from, amt)
	case 2:
		_ = l.Unlock(from, amt)
	case 3:
		_, _ = l.Transfer(from, to, amt, accounts.TransferOptions{FromLocked: true})
	case 4:
		_ = l.Deposit(from, amt)
	case 5:
		_ = l.Withdraw(from, amt)
	}
}

// TestShardingIsBehaviorInvisible drives identical random workloads —
// mixed same-shard and cross-shard transfers, locks, deposits,
// withdrawals — against a 1-shard and an N-shard ledger created with
// identical account sequences, and requires bit-identical final
// balances on every account. Partitioning the ledger must never be
// observable through the accounting API.
func TestShardingIsBehaviorInvisible(t *testing.T) {
	const nAcct = 6
	epoch := time.Date(2026, 3, 4, 5, 6, 7, 0, time.UTC)
	now := func() time.Time { return epoch }

	build := func(shards int) (*Ledger, []accounts.ID, error) {
		stores := make([]*db.Store, shards)
		for i := range stores {
			stores[i] = db.MustOpenMemory()
		}
		l, err := New(stores, Config{Now: now})
		if err != nil {
			return nil, nil, err
		}
		ids := make([]accounts.ID, nAcct)
		for i := range ids {
			a, err := l.CreateAccount(fmt.Sprintf("CN=prop-%d", i), "", "")
			if err != nil {
				return nil, nil, err
			}
			ids[i] = a.AccountID
			if err := l.Deposit(ids[i], currency.FromG(50)); err != nil {
				return nil, nil, err
			}
			if err := l.ChangeCreditLimit(ids[i], currency.FromG(10)); err != nil {
				return nil, nil, err
			}
		}
		return l, ids, nil
	}

	run := func(ops []opcode) bool {
		single, sids, err := build(1)
		if err != nil {
			t.Logf("build single: %v", err)
			return false
		}
		sharded, hids, err := build(4)
		if err != nil {
			t.Logf("build sharded: %v", err)
			return false
		}
		// Identical ID sequences are what make the workloads identical.
		for i := range sids {
			if sids[i] != hids[i] {
				t.Logf("account ID divergence: %s vs %s", sids[i], hids[i])
				return false
			}
		}
		crossSeen := false
		for _, op := range ops {
			if sharded.ShardFor(hids[int(op.From)%nAcct]) != sharded.ShardFor(hids[int(op.To)%nAcct]) {
				crossSeen = true
			}
			applyOp(single, sids, op)
			applyOp(sharded, hids, op)
		}
		_ = crossSeen // with 4 shards and 6 accounts nearly every workload crosses

		for i := range sids {
			a, err := single.Details(sids[i])
			if err != nil {
				return false
			}
			b, err := sharded.Details(hids[i])
			if err != nil {
				return false
			}
			if a.AvailableBalance != b.AvailableBalance || a.LockedBalance != b.LockedBalance {
				t.Logf("account %s diverged: single %v/%v vs sharded %v/%v",
					sids[i], a.AvailableBalance, a.LockedBalance, b.AvailableBalance, b.LockedBalance)
				return false
			}
		}
		st, err := single.TotalBalance()
		if err != nil {
			return false
		}
		ht, err := sharded.TotalBalance()
		if err != nil {
			return false
		}
		if st != ht {
			t.Logf("totals diverged: %v vs %v", st, ht)
			return false
		}
		esc, err := sharded.PendingEscrow()
		if err != nil || !esc.IsZero() {
			t.Logf("escrow after quiesced workload: %v, %v", esc, err)
			return false
		}
		return true
	}
	if err := quick.Check(run, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
