package shard

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"gridbank/internal/accounts"
	"gridbank/internal/currency"
	"gridbank/internal/db"
)

var testEpoch = time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)

func newTestLedger(t *testing.T, n int) *Ledger {
	t.Helper()
	stores := make([]*db.Store, n)
	for i := range stores {
		stores[i] = db.MustOpenMemory()
	}
	l, err := New(stores, Config{Now: func() time.Time { return testEpoch }})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestRingDeterministicAndComplete(t *testing.T) {
	a := MustNewRing(4, 0)
	b := MustNewRing(4, 0)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("01-0001-%08d", i)
		sa, sb := a.ShardFor(key), b.ShardFor(key)
		if sa != sb {
			t.Fatalf("rings disagree on %s: %d vs %d", key, sa, sb)
		}
		if sa < 0 || sa >= 4 {
			t.Fatalf("shard out of range: %d", sa)
		}
		seen[sa] = true
	}
	if len(seen) != 4 {
		t.Fatalf("1000 keys used only %d of 4 shards", len(seen))
	}
}

func TestRingGrowthMovesBoundedFraction(t *testing.T) {
	small := MustNewRing(4, 0)
	big := MustNewRing(5, 0)
	moved := 0
	const keys = 5000
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("01-0001-%08d", i)
		if small.ShardFor(key) != big.ShardFor(key) {
			moved++
		}
	}
	// Ideal is 1/5 of keys; allow generous slack for hash variance but
	// fail on anything near a full reshuffle.
	if frac := float64(moved) / keys; frac > 0.40 {
		t.Fatalf("adding a 5th shard moved %.0f%% of keys; consistent hashing should move ~20%%", frac*100)
	}
}

// fundPair creates two accounts guaranteed to live on different shards
// (or the same shard, per want) and funds the first.
func fundPair(t *testing.T, l *Ledger, wantSame bool, funds currency.Amount) (from, to accounts.ID) {
	t.Helper()
	var ids []accounts.ID
	for i := 0; len(ids) < 2 && i < 10000; i++ {
		a, err := l.CreateAccount(fmt.Sprintf("CN=pair-%d-%d", len(ids), i), "", "")
		if err != nil {
			t.Fatal(err)
		}
		if len(ids) == 0 {
			ids = append(ids, a.AccountID)
			continue
		}
		same := l.ShardFor(ids[0]) == l.ShardFor(a.AccountID)
		if same == wantSame {
			ids = append(ids, a.AccountID)
		}
	}
	if len(ids) < 2 {
		t.Fatalf("could not find account pair with same=%v", wantSame)
	}
	if err := l.Deposit(ids[0], funds); err != nil {
		t.Fatal(err)
	}
	return ids[0], ids[1]
}

func TestCrossShardTransferMovesFundsAndWritesRecords(t *testing.T) {
	l := newTestLedger(t, 4)
	from, to := fundPair(t, l, false, currency.FromG(100))

	tr, err := l.Transfer(from, to, currency.FromG(30), accounts.TransferOptions{RUR: []byte("evidence")})
	if err != nil {
		t.Fatal(err)
	}
	fa, _ := l.Details(from)
	ta, _ := l.Details(to)
	if fa.AvailableBalance != currency.FromG(70) || ta.AvailableBalance != currency.FromG(30) {
		t.Fatalf("balances after cross transfer: %v / %v", fa.AvailableBalance, ta.AvailableBalance)
	}
	// Both sides see the transfer in their statements.
	for _, id := range []accounts.ID{from, to} {
		st, err := l.Statement(id, testEpoch.Add(-time.Hour), testEpoch.Add(time.Hour))
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, rec := range st.Transfers {
			if rec.TransactionID == tr.TransactionID {
				found = true
				if string(rec.ResourceUsageRecord) != "evidence" {
					t.Fatalf("RUR lost on %s copy", id)
				}
			}
		}
		if !found {
			t.Fatalf("statement of %s missing transfer %d", id, tr.TransactionID)
		}
	}
	if got, err := l.GetTransfer(tr.TransactionID); err != nil || got.Amount != currency.FromG(30) {
		t.Fatalf("GetTransfer = %v, %v", got, err)
	}
	// No 2PC residue.
	esc, err := l.PendingEscrow()
	if err != nil || !esc.IsZero() {
		t.Fatalf("pending escrow after completion = %v, %v", esc, err)
	}
	total, err := l.TotalBalance()
	if err != nil || total != currency.FromG(100) {
		t.Fatalf("total = %v, %v", total, err)
	}
}

func TestCrossShardInsufficientFundsIsClean(t *testing.T) {
	l := newTestLedger(t, 3)
	from, to := fundPair(t, l, false, currency.FromG(5))
	if _, err := l.Transfer(from, to, currency.FromG(10), accounts.TransferOptions{}); !errors.Is(err, accounts.ErrInsufficient) {
		t.Fatalf("err = %v, want ErrInsufficient", err)
	}
	esc, _ := l.PendingEscrow()
	if !esc.IsZero() {
		t.Fatalf("failed transfer left escrow %v", esc)
	}
	fa, _ := l.Details(from)
	if fa.AvailableBalance != currency.FromG(5) {
		t.Fatalf("drawer balance disturbed: %v", fa.AvailableBalance)
	}
}

func TestCrossShardFromLockedRedemptionPath(t *testing.T) {
	l := newTestLedger(t, 4)
	from, to := fundPair(t, l, false, currency.FromG(50))
	if err := l.CheckFunds(from, currency.FromG(20)); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Transfer(from, to, currency.FromG(20), accounts.TransferOptions{FromLocked: true}); err != nil {
		t.Fatal(err)
	}
	fa, _ := l.Details(from)
	ta, _ := l.Details(to)
	if !fa.LockedBalance.IsZero() || fa.AvailableBalance != currency.FromG(30) || ta.AvailableBalance != currency.FromG(20) {
		t.Fatalf("after locked redemption: from=%v/%v to=%v", fa.AvailableBalance, fa.LockedBalance, ta.AvailableBalance)
	}
}

func TestCrossShardCancelTransfer(t *testing.T) {
	l := newTestLedger(t, 4)
	from, to := fundPair(t, l, false, currency.FromG(100))
	tr, err := l.Transfer(from, to, currency.FromG(40), accounts.TransferOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.CancelTransfer(tr.TransactionID); err != nil {
		t.Fatal(err)
	}
	fa, _ := l.Details(from)
	ta, _ := l.Details(to)
	if fa.AvailableBalance != currency.FromG(100) || !ta.AvailableBalance.IsZero() {
		t.Fatalf("after cancel: from=%v to=%v", fa.AvailableBalance, ta.AvailableBalance)
	}
	if err := l.CancelTransfer(tr.TransactionID); !errors.Is(err, accounts.ErrAlreadyCancelled) {
		t.Fatalf("double cancel = %v, want ErrAlreadyCancelled", err)
	}
}

// TestCancelTransferRetryAfterCrashDoesNotDoubleReverse pins the
// write-ahead reversal-ID protocol: a cancel that dies at any 2PC
// boundary of its compensating transfer — including after the reversal
// fully completed but before the cancelled marks landed — must, on
// retry, re-drive the same reversal exactly once.
func TestCancelTransferRetryAfterCrashDoesNotDoubleReverse(t *testing.T) {
	for _, step := range []Step{StepPrepared, StepDecided, StepCreditApplied, StepFinalized} {
		t.Run(step.String(), func(t *testing.T) {
			l := newTestLedger(t, 4)
			from, to := fundPair(t, l, false, currency.FromG(100))
			tr, err := l.Transfer(from, to, currency.FromG(40), accounts.TransferOptions{})
			if err != nil {
				t.Fatal(err)
			}
			// First cancel attempt dies at the chosen boundary of the
			// compensating transfer.
			l.CrashHook = func(gid string, s Step) error {
				if s == step {
					return errors.New("injected coordinator crash")
				}
				return nil
			}
			if err := l.CancelTransfer(tr.TransactionID); err == nil && step != StepFinalized {
				t.Fatalf("cancel survived an injected crash at %s", step)
			}
			l.CrashHook = nil
			// Simulate the restart recovery a real reboot performs.
			if err := l.Recover(); err != nil {
				t.Fatal(err)
			}
			// Retry completes without paying the drawer twice.
			if err := l.CancelTransfer(tr.TransactionID); err != nil && !errors.Is(err, accounts.ErrAlreadyCancelled) {
				t.Fatal(err)
			}
			fa, _ := l.Details(from)
			ta, _ := l.Details(to)
			if fa.AvailableBalance != currency.FromG(100) || !ta.AvailableBalance.IsZero() {
				t.Fatalf("after crash+retry cancel at %s: from=%v to=%v (double reversal?)", step, fa.AvailableBalance, ta.AvailableBalance)
			}
			got, err := l.GetTransfer(tr.TransactionID)
			if err != nil || !got.Cancelled {
				t.Fatalf("original not marked cancelled: %+v, %v", got, err)
			}
			if err := l.CancelTransfer(tr.TransactionID); !errors.Is(err, accounts.ErrAlreadyCancelled) {
				t.Fatalf("third cancel = %v, want ErrAlreadyCancelled", err)
			}
			total, err := l.TotalBalance()
			if err != nil || total != currency.FromG(100) {
				t.Fatalf("conservation after cancel retries: %v, %v", total, err)
			}
		})
	}
}

func TestCrossShardCloseAccountSweep(t *testing.T) {
	l := newTestLedger(t, 4)
	from, to := fundPair(t, l, false, currency.FromG(25))
	if err := l.CloseAccount(from, to); err != nil {
		t.Fatal(err)
	}
	fa, _ := l.Details(from)
	ta, _ := l.Details(to)
	if !fa.Closed || !fa.AvailableBalance.IsZero() || ta.AvailableBalance != currency.FromG(25) {
		t.Fatalf("after sweep close: from closed=%v bal=%v, to=%v", fa.Closed, fa.AvailableBalance, ta.AvailableBalance)
	}
}

func TestDuplicateCertificateAcrossShards(t *testing.T) {
	l := newTestLedger(t, 4)
	if _, err := l.CreateAccount("CN=dup", "", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := l.CreateAccount("CN=dup", "", ""); !errors.Is(err, accounts.ErrDuplicateIdentity) {
		t.Fatalf("duplicate create = %v, want ErrDuplicateIdentity", err)
	}
	// Different currency is allowed, wherever it lands.
	if _, err := l.CreateAccount("CN=dup", "", "USD"); err != nil {
		t.Fatalf("different-currency create = %v", err)
	}
}

func TestSingleShardDelegatesWithoutPCTables(t *testing.T) {
	st := db.MustOpenMemory()
	l, err := New([]*db.Store{st}, Config{Now: func() time.Time { return testEpoch }})
	if err != nil {
		t.Fatal(err)
	}
	a, err := l.CreateAccount("CN=solo", "", "")
	if err != nil {
		t.Fatal(err)
	}
	b, err := l.CreateAccount("CN=solo2", "", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Deposit(a.AccountID, currency.FromG(10)); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Transfer(a.AccountID, b.AccountID, currency.FromG(4), accounts.TransferOptions{}); err != nil {
		t.Fatal(err)
	}
	// A 1-shard ledger must not grow 2PC tables: its store stays
	// byte-compatible with an unsharded deployment's.
	for _, table := range st.Tables() {
		if table == tablePC || table == tablePCApplied {
			t.Fatalf("1-shard ledger created 2PC table %q", table)
		}
	}
}
