// Package shard partitions the GridBank ledger horizontally: accounts
// are spread across N independent db.Store shards by consistent hash of
// the account ID, so write throughput scales with shard count instead
// of being capped by one store's commit path. Same-shard operations
// (balance, statement, single-account charge, transfers whose two
// accounts hash to the same shard) route straight to the owning shard
// and keep single-store latency; cross-shard transfers run a two-phase
// commit driven by Coordinator, journaled in the shards' existing
// write-ahead logs so recovery after a crash never creates or destroys
// money (see coord.go for the protocol and record format).
package shard

import (
	"fmt"
	"sort"

	"gridbank/internal/strhash"
)

// DefaultVnodes is the virtual-node count per shard. Virtual nodes
// smooth the key distribution and — because each shard owns many small
// arcs of the ring instead of one big one — adding shard N+1 steals
// roughly 1/(N+1) of the keys evenly from every existing shard rather
// than splitting a single neighbor.
const DefaultVnodes = 64

// Ring is a consistent-hash ring mapping keys (account IDs) to shard
// indexes. It is deterministic: any two Rings built with the same
// (shards, vnodes) agree on every key, which is what lets clients
// compute placement locally from just the two numbers.
type Ring struct {
	shards int
	vnodes int
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash  uint32
	shard int
}

// mix32 is a 32-bit avalanche finalizer (Mueller's lowbias32). FNV-1a
// over short, low-entropy strings ("shard-0#12", sequential account
// numbers) leaves its low bits correlated, which makes ring arcs lumpy
// enough to skew shard 0 to 3× its fair share; one round of mixing
// restores a near-uniform spread.
func mix32(h uint32) uint32 {
	h ^= h >> 16
	h *= 0x7feb352d
	h ^= h >> 15
	h *= 0x846ca68b
	h ^= h >> 16
	return h
}

// ringHash positions a label or key on the ring.
func ringHash(s string) uint32 { return mix32(strhash.FNV32a(s)) }

// NewRing builds a ring over `shards` shards with `vnodes` virtual
// nodes each (0 means DefaultVnodes).
func NewRing(shards, vnodes int) (*Ring, error) {
	if shards < 1 {
		return nil, fmt.Errorf("shard: ring needs at least 1 shard, got %d", shards)
	}
	if vnodes == 0 {
		vnodes = DefaultVnodes
	}
	if vnodes < 1 {
		return nil, fmt.Errorf("shard: ring needs at least 1 vnode per shard, got %d", vnodes)
	}
	r := &Ring{shards: shards, vnodes: vnodes, points: make([]ringPoint, 0, shards*vnodes)}
	for s := 0; s < shards; s++ {
		for v := 0; v < vnodes; v++ {
			h := ringHash(fmt.Sprintf("shard-%d#%d", s, v))
			r.points = append(r.points, ringPoint{hash: h, shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties broken by shard index so the ring is total-ordered
		// and deterministic regardless of construction order.
		return r.points[i].shard < r.points[j].shard
	})
	return r, nil
}

// MustNewRing builds a ring or panics (literal configs in tests).
func MustNewRing(shards, vnodes int) *Ring {
	r, err := NewRing(shards, vnodes)
	if err != nil {
		panic(err)
	}
	return r
}

// ShardFor maps a key to its owning shard: the first virtual node at or
// clockwise after the key's hash.
func (r *Ring) ShardFor(key string) int {
	if r.shards == 1 {
		return 0
	}
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap
	}
	return r.points[i].shard
}

// Shards returns the shard count.
func (r *Ring) Shards() int { return r.shards }

// Vnodes returns the virtual-node count per shard.
func (r *Ring) Vnodes() int { return r.vnodes }
