package shard

import (
	"errors"
	"testing"
	"time"

	"gridbank/internal/accounts"
	"gridbank/internal/currency"
	"gridbank/internal/db"
)

// TestKeyedCrossTransferReplay pins the cross-shard idempotency
// contract: replaying a key returns the recorded transfer, moves no
// further money and conserves the total; a fresh key moves money again.
func TestKeyedCrossTransferReplay(t *testing.T) {
	l := newTestLedger(t, 4)
	from, to := fundPair(t, l, false, currency.FromG(100))

	tr1, err := l.Transfer(from, to, currency.FromG(40), accounts.TransferOptions{DedupKey: "x-1"})
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := l.Transfer(from, to, currency.FromG(40), accounts.TransferOptions{DedupKey: "x-1"})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if tr2.TransactionID != tr1.TransactionID {
		t.Fatalf("replay minted transaction %d, want recorded %d", tr2.TransactionID, tr1.TransactionID)
	}
	fa, _ := l.Details(from)
	ta, _ := l.Details(to)
	if fa.AvailableBalance != currency.FromG(60) || ta.AvailableBalance != currency.FromG(40) {
		t.Fatalf("after replay: from=%v to=%v, want single 40 G$ move", fa.AvailableBalance, ta.AvailableBalance)
	}
	if total, err := l.TotalBalance(); err != nil || total != currency.FromG(100) {
		t.Fatalf("conservation after replay: %v, %v", total, err)
	}
	if esc, err := l.PendingEscrow(); err != nil || !esc.IsZero() {
		t.Fatalf("escrow leaked: %v, %v", esc, err)
	}

	tr3, err := l.Transfer(from, to, currency.FromG(10), accounts.TransferOptions{DedupKey: "x-2"})
	if err != nil {
		t.Fatal(err)
	}
	if tr3.TransactionID == tr1.TransactionID {
		t.Fatal("fresh key replayed the old transaction")
	}
}

// TestKeyedSameShardReplay covers the routing boundary: when both
// accounts land on one shard the manager's in-transaction dedup path
// serves the same contract.
func TestKeyedSameShardReplay(t *testing.T) {
	l := newTestLedger(t, 4)
	from, to := fundPair(t, l, true, currency.FromG(100))
	tr1, err := l.Transfer(from, to, currency.FromG(25), accounts.TransferOptions{DedupKey: "s-1"})
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := l.Transfer(from, to, currency.FromG(25), accounts.TransferOptions{DedupKey: "s-1"})
	if err != nil || tr2.TransactionID != tr1.TransactionID {
		t.Fatalf("same-shard replay: %+v, %v (want transaction %d)", tr2, err, tr1.TransactionID)
	}
	fa, _ := l.Details(from)
	if fa.AvailableBalance != currency.FromG(75) {
		t.Fatalf("drawer balance %v after replay, want single debit", fa.AvailableBalance)
	}
}

// TestKeyedCrossTransferCrashRetry crashes the coordinator at every
// durable 2PC boundary of a keyed transfer: the retry under the same
// key must resolve the pinned transaction's fate and complete the move
// exactly once, even across a full restart (fresh Ledger over the same
// stores, which re-seeds the transaction-ID allocator from the pinned
// markers).
func TestKeyedCrossTransferCrashRetry(t *testing.T) {
	for _, step := range []Step{StepPrepared, StepDecided, StepCreditApplied, StepFinalized} {
		t.Run(step.String(), func(t *testing.T) {
			stores := make([]*db.Store, 4)
			for i := range stores {
				stores[i] = db.MustOpenMemory()
			}
			now := func() time.Time { return testEpoch }
			l, err := New(stores, Config{Now: now})
			if err != nil {
				t.Fatal(err)
			}
			from, to := fundPair(t, l, false, currency.FromG(100))

			l.CrashHook = func(gid string, s Step) error {
				if s == step {
					return errors.New("injected coordinator crash")
				}
				return nil
			}
			tr1, err := l.Transfer(from, to, currency.FromG(40), accounts.TransferOptions{DedupKey: "crash-1"})
			if err == nil && step != StepFinalized {
				t.Fatalf("keyed transfer survived an injected crash at %s", step)
			}

			// Restart: a fresh ledger over the same stores, as a reboot
			// would build.
			l2, err := New(stores, Config{Now: now})
			if err != nil {
				t.Fatal(err)
			}
			if err := l2.Recover(); err != nil {
				t.Fatal(err)
			}
			tr2, err := l2.Transfer(from, to, currency.FromG(40), accounts.TransferOptions{DedupKey: "crash-1"})
			if err != nil {
				t.Fatalf("retry after crash at %s: %v", step, err)
			}
			if tr1 != nil && tr2.TransactionID != tr1.TransactionID {
				t.Fatalf("retry minted transaction %d, want recorded %d", tr2.TransactionID, tr1.TransactionID)
			}
			fa, _ := l2.Details(from)
			ta, _ := l2.Details(to)
			if fa.AvailableBalance != currency.FromG(60) || ta.AvailableBalance != currency.FromG(40) {
				t.Fatalf("after crash at %s + retry: from=%v to=%v (double apply?)", step, fa.AvailableBalance, ta.AvailableBalance)
			}
			if total, err := l2.TotalBalance(); err != nil || total != currency.FromG(100) {
				t.Fatalf("conservation: %v, %v", total, err)
			}
			if esc, err := l2.PendingEscrow(); err != nil || !esc.IsZero() {
				t.Fatalf("escrow leaked: %v, %v", esc, err)
			}
			// The replay contract holds after the recovery too.
			tr3, err := l2.Transfer(from, to, currency.FromG(40), accounts.TransferOptions{DedupKey: "crash-1"})
			if err != nil || tr3.TransactionID != tr2.TransactionID {
				t.Fatalf("post-recovery replay: %+v, %v", tr3, err)
			}
		})
	}
}

// TestKeyedTransferPinnedButNeverDriven covers the narrowest window: a
// marker durably pinned an allocated ID but the process died before any
// 2PC row was written. The retry must drive the transfer under that
// pinned ID.
func TestKeyedTransferPinnedButNeverDriven(t *testing.T) {
	l := newTestLedger(t, 4)
	from, to := fundPair(t, l, false, currency.FromG(50))

	fs := l.ShardFor(from)
	pinned := l.txSeq.Add(1)
	mk := &accounts.DedupMarker{Key: "pin-1", TxID: pinned, Date: testEpoch}
	if err := l.stores[fs].Update(func(tx *db.Tx) error {
		return l.mgrs[fs].PutDedupTx(tx, mk)
	}); err != nil {
		t.Fatal(err)
	}

	tr, err := l.Transfer(from, to, currency.FromG(20), accounts.TransferOptions{DedupKey: "pin-1"})
	if err != nil {
		t.Fatal(err)
	}
	if tr.TransactionID != pinned {
		t.Fatalf("re-drive used transaction %d, want the pinned %d", tr.TransactionID, pinned)
	}
	ta, _ := l.Details(to)
	if ta.AvailableBalance != currency.FromG(20) {
		t.Fatalf("recipient balance %v, want 20 G$", ta.AvailableBalance)
	}
}

// TestLedgerSweepDedup pins the sharded sweep: it settles in-doubt
// state first, removes expired markers on every shard, and a swept key
// then executes fresh.
func TestLedgerSweepDedup(t *testing.T) {
	l := newTestLedger(t, 4)
	from, to := fundPair(t, l, false, currency.FromG(100))
	tr1, err := l.Transfer(from, to, currency.FromG(10), accounts.TransferOptions{DedupKey: "ttl-1"})
	if err != nil {
		t.Fatal(err)
	}
	if n, err := l.SweepDedup(testEpoch.Add(-time.Hour)); err != nil || n != 0 {
		t.Fatalf("early sweep removed %d (%v), want 0", n, err)
	}
	if n, err := l.SweepDedup(testEpoch.Add(time.Hour)); err != nil || n != 1 {
		t.Fatalf("sweep removed %d (%v), want 1", n, err)
	}
	tr2, err := l.Transfer(from, to, currency.FromG(10), accounts.TransferOptions{DedupKey: "ttl-1"})
	if err != nil {
		t.Fatal(err)
	}
	if tr2.TransactionID == tr1.TransactionID {
		t.Fatal("swept key still replayed the old transaction")
	}
	fa, _ := l.Details(from)
	if fa.AvailableBalance != currency.FromG(80) {
		t.Fatalf("drawer balance %v, want two 10 G$ debits", fa.AvailableBalance)
	}
}
