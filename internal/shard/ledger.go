package shard

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"gridbank/internal/accounts"
	"gridbank/internal/currency"
	"gridbank/internal/db"
	"gridbank/internal/obs"
)

// Config configures a sharded Ledger.
type Config struct {
	// Bank and Branch number issued account IDs carry (defaults "01" /
	// "0001", matching accounts.Config).
	Bank   string
	Branch string
	// Now supplies timestamps; defaults to time.Now.
	Now func() time.Time
	// Vnodes is the virtual-node count per shard (0 = DefaultVnodes).
	// Every party computing placement — ledger, replicas, routed
	// clients — must agree on it.
	Vnodes int
}

// Ledger is the sharded accounts layer: the same operation surface as
// one accounts.Manager, spread over N independent stores. Each account
// lives entirely on the shard its ID hashes to (account row,
// transaction rows, its side of every transfer record), so single-
// account operations and same-shard transfers are exactly as cheap as
// on an unsharded ledger. Cross-shard transfers go through the 2PC
// coordinator in coord.go.
//
// Shard 0 doubles as the metadata shard: Store() hands it to the bank
// core for the instrument and administrator tables, which are bank-
// global rather than account-partitioned.
type Ledger struct {
	ring   *Ring
	stores []*db.Store
	mgrs   []*accounts.Manager
	now    func() time.Time

	txSeq   atomic.Uint64 // deployment-wide TransactionID allocator
	acctSeq atomic.Uint64 // deployment-wide account-number allocator

	// createMu serializes account creation and certificate renames:
	// the one-open-account-per-certificate-and-currency invariant spans
	// shards, and checking it needs a stable cross-shard view.
	createMu sync.Mutex

	// cancelMu serializes cross-shard cancellations: a cancel spans
	// several stores (pin reversal ID, run compensating 2PC, mark both
	// copies), and two concurrent cancels of the same transfer racing
	// through those steps could each run their own reversal.
	cancelMu sync.Mutex

	// dedupMu serializes keyed cross-shard transfers. A keyed transfer
	// pins its transaction ID in an op_dedup marker before driving 2PC,
	// and a retry of the same key resolves the pinned GID's in-doubt
	// state; without the mutex a retry racing the original could
	// presume-abort a prepare the original is still driving.
	dedupMu sync.Mutex

	// CrashHook, when set, is called after every durable 2PC step with
	// the transfer's GID; returning an error abandons the in-flight
	// protocol at that boundary (simulating a coordinator crash). Test
	// instrumentation only — set it before the ledger serves traffic.
	CrashHook func(gid string, step Step) error

	// Telemetry handles (nil no-ops until SetObs; see internal/obs).
	mLocal      *obs.Counter   // same-shard transfers
	mCross      *obs.Counter   // cross-shard (2PC) transfers
	mInDoubt    *obs.Gauge     // transfers this process abandoned in-doubt
	m2pcPrepare *obs.Histogram // 2PC phase latencies
	m2pcDecide  *obs.Histogram
	m2pcCredit  *obs.Histogram
	m2pcFinal   *obs.Histogram

	// inDoubtLocal shadows mInDoubt so recovery never drives the gauge
	// negative: a fresh process's recoveries resolve in-doubt rows a
	// previous process left, which this gauge never counted.
	inDoubtLocal atomic.Int64
}

// SetObs attaches a telemetry registry: same/cross-shard transfer
// counters, per-phase 2PC latency histograms, and the in-doubt gauge.
// It also forwards to every shard store (OCC and journal instruments
// share the registry). Wiring-time only — call before the ledger
// serves traffic.
func (l *Ledger) SetObs(reg *obs.Registry) {
	l.mLocal = reg.Counter("shard.transfers.local")
	l.mCross = reg.Counter("shard.transfers.cross")
	l.mInDoubt = reg.Gauge("shard.2pc.in_doubt")
	l.m2pcPrepare = reg.Histogram("shard.2pc.prepare")
	l.m2pcDecide = reg.Histogram("shard.2pc.decide")
	l.m2pcCredit = reg.Histogram("shard.2pc.credit")
	l.m2pcFinal = reg.Histogram("shard.2pc.finalize")
	for _, st := range l.stores {
		st.SetObs(reg)
	}
}

// markInDoubt records a transfer this process abandoned mid-protocol.
func (l *Ledger) markInDoubt() {
	l.inDoubtLocal.Add(1)
	l.mInDoubt.Inc()
}

// resolveInDoubtMark drops the in-doubt gauge for a resolved transfer,
// but only down to what this process itself marked — startup recovery
// resolves rows a previous process left, which were never counted here.
func (l *Ledger) resolveInDoubtMark() {
	for {
		n := l.inDoubtLocal.Load()
		if n <= 0 {
			return
		}
		if l.inDoubtLocal.CompareAndSwap(n, n-1) {
			l.mInDoubt.Dec()
			return
		}
	}
}

// New builds a sharded ledger over the given stores (one per shard, at
// least one). Each store gets its own accounts.Manager sharing one
// transaction-ID allocator; 2PC bookkeeping tables are created when
// sharding is real (N > 1), and any in-doubt cross-shard transfers left
// by a crash are resolved before New returns.
//
// The shard count is fixed by the stores slice and must match the data:
// reopening existing shards under a different count would strand
// accounts on shards their IDs no longer hash to (resharding requires a
// migration, which this layer does not perform).
func New(stores []*db.Store, cfg Config) (*Ledger, error) {
	if len(stores) == 0 {
		return nil, errors.New("shard: ledger needs at least one store")
	}
	ring, err := NewRing(len(stores), cfg.Vnodes)
	if err != nil {
		return nil, err
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	l := &Ledger{ring: ring, stores: stores, now: cfg.Now}
	alloc := func() uint64 { return l.txSeq.Add(1) }
	for _, st := range stores {
		mgr, err := accounts.NewManager(st, accounts.Config{
			Bank: cfg.Bank, Branch: cfg.Branch, Now: cfg.Now, TxIDAlloc: alloc,
		})
		if err != nil {
			return nil, err
		}
		l.mgrs = append(l.mgrs, mgr)
	}
	// Seed the deployment-wide counters above every shard's history.
	var txMax, acctMax uint64
	for _, mgr := range l.mgrs {
		if n := mgr.LastTransactionID(); n > txMax {
			txMax = n
		}
		if n := mgr.LastAccountNumber(); n > acctMax {
			acctMax = n
		}
	}
	if len(stores) > 1 {
		for _, st := range stores {
			if err := st.EnsureTable(tablePC); err != nil {
				return nil, err
			}
			if err := st.EnsureTable(tablePCApplied); err != nil {
				return nil, err
			}
		}
		// In-doubt 2PC rows may carry transaction IDs newer than any
		// §5.1 record (prepare is durable before the transaction rows
		// are written); the allocator must clear them too, or a fresh
		// transfer could collide with an in-doubt GID.
		for _, st := range stores {
			for _, table := range []string{tablePC, tablePCApplied} {
				err := st.Scan(table, func(key string, _ []byte) bool {
					if n, err := strconv.ParseUint(key, 10, 64); err == nil && n > txMax {
						txMax = n
					}
					return true
				})
				if err != nil {
					return nil, err
				}
			}
		}
		// Likewise reversal IDs pinned by a cancellation that crashed
		// before its compensating transfer wrote anything: the pin
		// lives only inside the original transfer record's value.
		for _, mgr := range l.mgrs {
			n, err := mgr.MaxReversalID()
			if err != nil {
				return nil, err
			}
			if n > txMax {
				txMax = n
			}
		}
		// And transaction IDs pinned in op_dedup markers: a keyed
		// cross-shard transfer pins its ID before driving 2PC, so a
		// crash in between leaves the ID recorded only in the marker.
		for _, mgr := range l.mgrs {
			n, err := mgr.MaxDedupTxID()
			if err != nil {
				return nil, err
			}
			if n > txMax {
				txMax = n
			}
		}
	}
	l.txSeq.Store(txMax)
	l.acctSeq.Store(acctMax)
	if err := l.Recover(); err != nil {
		return nil, err
	}
	return l, nil
}

// Ring returns the ledger's placement ring.
func (l *Ledger) Ring() *Ring { return l.ring }

// AllocTxID allocates one deployment-wide transaction ID. Callers that
// pin an ID before driving a transfer (write-ahead idempotency, like
// the usage settlement pipeline) must also record the pin durably and
// re-seed the allocator above it at startup via SeedTxIDsAbove —
// otherwise a reboot could hand the same ID to an unrelated transfer.
func (l *Ledger) AllocTxID() uint64 { return l.txSeq.Add(1) }

// SeedTxIDsAbove raises the transaction-ID allocator to at least n.
// Subsystems that pin allocated IDs in stores the ledger does not scan
// at startup (e.g. the usage pipeline's intake spool) call this with
// their highest pinned ID before the ledger serves traffic, so a fresh
// transfer can never collide with a pinned-but-unfinished one.
func (l *Ledger) SeedTxIDsAbove(n uint64) {
	for {
		cur := l.txSeq.Load()
		if cur >= n || l.txSeq.CompareAndSwap(cur, n) {
			return
		}
	}
}

// TransferWithID runs a transfer under a caller-pinned transaction ID.
// The pin makes retries idempotent at the caller's layer: a driver that
// durably records the ID before calling can, after a crash, check
// GetTransfer(txID) to learn whether the money already moved and
// re-drive this exact transfer (same GID) if not. Same-shard pairs
// cannot pin (the single-store path allocates inside the manager), so
// they are refused — pinning callers route same-shard work through the
// ordinary Transfer path, whose single atomic transaction needs no pin.
func (l *Ledger) TransferWithID(txID uint64, drawer, recipient accounts.ID, amount currency.Amount, opts accounts.TransferOptions) (*accounts.Transfer, error) {
	if txID == 0 {
		return nil, errors.New("shard: TransferWithID requires a pinned transaction ID")
	}
	if !amount.IsPositive() {
		return nil, accounts.ErrBadAmount
	}
	if drawer == recipient {
		return nil, errors.New("accounts: cannot transfer to self")
	}
	fs, ts := l.ring.ShardFor(string(drawer)), l.ring.ShardFor(string(recipient))
	if fs == ts {
		return nil, errors.New("shard: TransferWithID is cross-shard only")
	}
	return l.crossTransferWithID(txID, drawer, recipient, amount, opts, false)
}

// ResolveInDoubt resolves the 2PC state of one pinned transfer exactly
// as startup recovery would: a prepared row is presumed-abort, a
// committed row is re-driven to completion, nothing is a no-op. Safe to
// call when no pc row exists for the ID. debitShard is the shard the
// transfer debits (where its coordinator log lives).
func (l *Ledger) ResolveInDoubt(debitShard int, txID uint64) error {
	if debitShard < 0 || debitShard >= len(l.stores) {
		return fmt.Errorf("shard: debit shard %d out of range [0,%d)", debitShard, len(l.stores))
	}
	return l.recoverOne(debitShard, gidFor(txID))
}

// Shards returns the shard count.
func (l *Ledger) Shards() int { return len(l.stores) }

// ShardFor returns the shard index owning an account ID.
func (l *Ledger) ShardFor(id accounts.ID) int { return l.ring.ShardFor(string(id)) }

// Stores returns the per-shard stores, in shard order.
func (l *Ledger) Stores() []*db.Store { return l.stores }

// Managers returns the per-shard account managers, in shard order.
func (l *Ledger) Managers() []*accounts.Manager { return l.mgrs }

// ShardStore returns shard i's store (the usage/micropay settlement
// interface shape; equivalent to Stores()[i]).
func (l *Ledger) ShardStore(i int) *db.Store { return l.stores[i] }

// ShardManager returns shard i's accounts manager.
func (l *Ledger) ShardManager(i int) *accounts.Manager { return l.mgrs[i] }

// Store returns the metadata shard's store (shard 0), where the bank
// core keeps its instrument and administrator tables.
func (l *Ledger) Store() *db.Store { return l.stores[0] }

// MetaManager returns the metadata shard's accounts manager.
func (l *Ledger) MetaManager() *accounts.Manager { return l.mgrs[0] }

// ShardTopology reports the placement parameters — shard count and
// virtual nodes per shard — that let any party recompute account
// placement locally.
func (l *Ledger) ShardTopology() (shards, vnodes int) { return len(l.stores), l.ring.Vnodes() }

// mgrFor routes an account ID to its owning manager.
func (l *Ledger) mgrFor(id accounts.ID) *accounts.Manager {
	return l.mgrs[l.ring.ShardFor(string(id))]
}

// CreateAccount allocates a deployment-wide account number, places the
// ID on its ring shard, and creates the record there. The one-open-
// account-per-certificate-and-currency invariant is enforced across all
// shards under createMu.
func (l *Ledger) CreateAccount(certName, orgName string, cur currency.Code) (*accounts.Account, error) {
	if certName == "" {
		return nil, errors.New("accounts: empty certificate name")
	}
	if cur == "" {
		cur = currency.GridDollar
	}
	if !cur.Valid() {
		return nil, fmt.Errorf("accounts: invalid currency %q", cur)
	}
	l.createMu.Lock()
	defer l.createMu.Unlock()
	for _, mgr := range l.mgrs {
		_, err := mgr.FindByCertificate(certName, cur)
		if err == nil {
			return nil, fmt.Errorf("%w: %s (%s)", accounts.ErrDuplicateIdentity, certName, cur)
		}
		if !errors.Is(err, accounts.ErrNotFound) {
			// A failing shard must not silently disable the uniqueness
			// invariant — refuse the create rather than guess.
			return nil, err
		}
	}
	id := accounts.ID(fmt.Sprintf("%s-%s-%08d", l.mgrs[0].BankNumber(), l.mgrs[0].BranchNumber(), l.acctSeq.Add(1)))
	return l.mgrFor(id).CreateAccountWithID(id, certName, orgName, cur)
}

// Details routes §5.2 Request Account Details to the owning shard.
func (l *Ledger) Details(id accounts.ID) (*accounts.Account, error) {
	return l.mgrFor(id).Details(id)
}

// FindByCertificate searches every shard, returning the open account
// with the lowest ID (matching the unsharded ordering guarantee). A
// shard that fails to answer surfaces its error — a store fault must
// not masquerade as "no account".
func (l *Ledger) FindByCertificate(certName string, cur currency.Code) (*accounts.Account, error) {
	var best *accounts.Account
	for _, mgr := range l.mgrs {
		a, err := mgr.FindByCertificate(certName, cur)
		if err != nil {
			if errors.Is(err, accounts.ErrNotFound) {
				continue
			}
			return nil, err
		}
		if best == nil || a.AccountID < best.AccountID {
			best = a
		}
	}
	if best == nil {
		return nil, fmt.Errorf("%w: certificate %s", accounts.ErrNotFound, certName)
	}
	return best, nil
}

// UpdateDetails routes to the owning shard, enforcing the certificate-
// name uniqueness check across all shards first.
func (l *Ledger) UpdateDetails(id accounts.ID, certName, orgName string) (*accounts.Account, error) {
	if certName == "" {
		return nil, errors.New("accounts: empty certificate name")
	}
	l.createMu.Lock()
	defer l.createMu.Unlock()
	owner := l.mgrFor(id)
	cur, err := owner.Details(id)
	if err != nil {
		return nil, err
	}
	for _, mgr := range l.mgrs {
		if mgr == owner {
			continue // the owner's own check runs inside UpdateDetails
		}
		other, err := mgr.FindByCertificate(certName, cur.Currency)
		if err != nil {
			if errors.Is(err, accounts.ErrNotFound) {
				continue
			}
			return nil, err
		}
		if other.AccountID != id {
			return nil, fmt.Errorf("%w: %s", accounts.ErrDuplicateIdentity, certName)
		}
	}
	return owner.UpdateDetails(id, certName, orgName)
}

// CheckFunds routes the §3.4 fund lock to the owning shard.
func (l *Ledger) CheckFunds(id accounts.ID, amount currency.Amount) error {
	return l.mgrFor(id).CheckFunds(id, amount)
}

// Unlock routes a lock release to the owning shard.
func (l *Ledger) Unlock(id accounts.ID, amount currency.Amount) error {
	return l.mgrFor(id).Unlock(id, amount)
}

// Transfer moves funds between any two accounts: a single-store ledger
// transaction when both hash to the same shard, the 2PC protocol when
// they do not.
func (l *Ledger) Transfer(drawer, recipient accounts.ID, amount currency.Amount, opts accounts.TransferOptions) (*accounts.Transfer, error) {
	if !amount.IsPositive() {
		return nil, accounts.ErrBadAmount
	}
	if drawer == recipient {
		return nil, errors.New("accounts: cannot transfer to self")
	}
	fs, ts := l.ring.ShardFor(string(drawer)), l.ring.ShardFor(string(recipient))
	if fs == ts {
		// Single-store path: the manager handles DedupKey inside its
		// one atomic transaction.
		l.mLocal.Inc()
		return l.mgrs[fs].Transfer(drawer, recipient, amount, opts)
	}
	l.mCross.Inc()
	if opts.DedupKey != "" {
		return l.keyedCrossTransfer(fs, drawer, recipient, amount, opts)
	}
	return l.crossTransfer(drawer, recipient, amount, opts, false)
}

// Statement routes to the owning shard. Both sides of a cross-shard
// transfer carry their own copy of the TRANSFER record, so each
// account's statement is complete on its own shard.
func (l *Ledger) Statement(id accounts.ID, start, end time.Time) (*accounts.Statement, error) {
	return l.mgrFor(id).Statement(id, start, end)
}

// GetTransfer finds a transfer by transaction ID, searching shards in
// order (a cross-shard transfer is recorded on both of its shards). A
// shard that fails to answer surfaces its error rather than reading as
// "no such transfer".
func (l *Ledger) GetTransfer(txID uint64) (*accounts.Transfer, error) {
	for _, mgr := range l.mgrs {
		tr, err := mgr.GetTransfer(txID)
		if err == nil {
			return tr, nil
		}
		if !errors.Is(err, accounts.ErrNoSuchTransfer) {
			return nil, err
		}
	}
	return nil, fmt.Errorf("%w: %d", accounts.ErrNoSuchTransfer, txID)
}

// TotalBalance sums every shard's account balances plus the funds
// currently escrowed in in-flight cross-shard transfers — the
// deployment-wide conservation quantity (only deposits and withdrawals
// change it).
func (l *Ledger) TotalBalance() (currency.Amount, error) {
	var total currency.Amount
	for _, mgr := range l.mgrs {
		t, err := mgr.TotalBalance()
		if err != nil {
			return 0, err
		}
		total = total.MustAdd(t)
	}
	escrow, err := l.PendingEscrow()
	if err != nil {
		return 0, err
	}
	return total.MustAdd(escrow), nil
}

// PendingEscrow sums the amounts held in pc records whose credit has
// not yet landed: money that has left a drawer and not yet reached a
// recipient. Zero on a quiesced, recovered ledger.
func (l *Ledger) PendingEscrow() (currency.Amount, error) {
	var total currency.Amount
	if len(l.stores) == 1 {
		return 0, nil
	}
	for i := range l.stores {
		var scanErr error
		err := l.stores[i].Scan(tablePC, func(key string, value []byte) bool {
			var rec pcRecord
			if err := json.Unmarshal(value, &rec); err != nil {
				scanErr = fmt.Errorf("shard: corrupt pc record %s: %w", key, err)
				return false
			}
			ts := l.ring.ShardFor(string(rec.To))
			if _, err := l.stores[ts].Get(tablePCApplied, rec.GID); err == nil {
				return true // credit already applied; escrow has landed
			}
			total = total.MustAdd(rec.Amount)
			return true
		})
		if err != nil && !errors.Is(err, db.ErrNoTable) {
			return 0, err
		}
		if scanErr != nil {
			return 0, scanErr
		}
	}
	return total, nil
}

// Accounts lists every account across all shards, in ID order.
func (l *Ledger) Accounts() ([]accounts.Account, error) {
	var out []accounts.Account
	for _, mgr := range l.mgrs {
		as, err := mgr.Accounts()
		if err != nil {
			return nil, err
		}
		out = append(out, as...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].AccountID < out[j].AccountID })
	return out, nil
}

// Deposit credits an account on its shard (§5.2.1).
func (l *Ledger) Deposit(id accounts.ID, amount currency.Amount) error {
	return l.mgrFor(id).Admin().Deposit(id, amount)
}

// Withdraw debits an account on its shard (§5.2.1).
func (l *Ledger) Withdraw(id accounts.ID, amount currency.Amount) error {
	return l.mgrFor(id).Admin().Withdraw(id, amount)
}

// ChangeCreditLimit sets an account's credit limit on its shard.
func (l *Ledger) ChangeCreditLimit(id accounts.ID, limit currency.Amount) error {
	return l.mgrFor(id).Admin().ChangeCreditLimit(id, limit)
}

// CancelTransfer reverses a transfer (§5.2.1). Same-shard transfers
// delegate to the shard's admin module. Cross-shard transfers run a
// compensating 2PC transfer in the opposite direction under a
// write-ahead reversal ID: the ID is durably pinned on the original
// record's authoritative (drawer-shard) copy before any money moves,
// so a cancel that crashes anywhere — even after the reversal fully
// completed but before the cancelled marks landed — is re-driven
// idempotently on retry instead of paying the drawer twice.
func (l *Ledger) CancelTransfer(txID uint64) error {
	tr, err := l.GetTransfer(txID)
	if err != nil {
		return err
	}
	fs, ts := l.ring.ShardFor(string(tr.DrawerAccountID)), l.ring.ShardFor(string(tr.RecipientAccountID))
	if fs == ts {
		return l.mgrs[fs].Admin().CancelTransfer(txID)
	}
	l.cancelMu.Lock()
	defer l.cancelMu.Unlock()
	// The drawer-shard copy is authoritative for the cancelled flag and
	// the reversal ID.
	auth, err := l.mgrs[fs].GetTransfer(txID)
	if err != nil {
		return err
	}
	if auth.Cancelled {
		return fmt.Errorf("%w: %d", accounts.ErrAlreadyCancelled, txID)
	}
	reversalID := auth.ReversalID
	if reversalID == 0 {
		// Write-ahead: pin the reversal's transaction ID before running
		// it, so any retry finds and re-drives this exact reversal. The
		// closure re-checks and adopts a pin that landed since the read
		// above — a pin, once written, is never replaced.
		fresh := l.txSeq.Add(1)
		err := l.stores[fs].Update(func(tx *db.Tx) error {
			rec, err := l.mgrs[fs].GetTransferTx(tx, txID)
			if err != nil {
				return err
			}
			if rec.Cancelled {
				return fmt.Errorf("%w: %d", accounts.ErrAlreadyCancelled, txID)
			}
			if rec.ReversalID != 0 {
				reversalID = rec.ReversalID
				return nil
			}
			reversalID = fresh
			rec.ReversalID = fresh
			return l.mgrs[fs].PutTransferTx(tx, rec)
		})
		if err != nil {
			return err
		}
	}
	// A previous attempt may have left the reversal in-doubt; resolve
	// it exactly as startup recovery would (idempotent, no-op when
	// there is nothing to resolve). The reversal's debit shard is ts
	// (the recipient pays back).
	if err := l.recoverOne(ts, gidFor(reversalID)); err != nil {
		return err
	}
	// Completed reversals finalize on their debit shard last, so a
	// transfer record for reversalID there means the money already
	// moved back — skip straight to marking.
	if _, err := l.mgrs[ts].GetTransfer(reversalID); err != nil {
		if !errors.Is(err, accounts.ErrNoSuchTransfer) {
			return err
		}
		if _, err := l.crossTransferWithID(reversalID, tr.RecipientAccountID, tr.DrawerAccountID, tr.Amount, accounts.TransferOptions{}, true); err != nil {
			return err
		}
	}
	// Mark both copies; the authoritative drawer copy last, so a crash
	// mid-marking leaves a retry that re-enters above, finds the
	// completed reversal, and only finishes the marks.
	for _, idx := range []int{ts, fs} {
		mgr := l.mgrs[idx]
		err := l.stores[idx].Update(func(tx *db.Tx) error {
			rec, err := mgr.GetTransferTx(tx, txID)
			if err != nil {
				return err
			}
			rec.Cancelled = true
			return mgr.PutTransferTx(tx, rec)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// CloseAccount closes an account (§5.2.1), sweeping any balance to
// transferTo first — via 2PC when the sweep crosses shards.
func (l *Ledger) CloseAccount(id, transferTo accounts.ID) error {
	owner := l.mgrFor(id)
	if transferTo == "" || l.ring.ShardFor(string(id)) == l.ring.ShardFor(string(transferTo)) {
		return owner.Admin().CloseAccount(id, transferTo)
	}
	a, err := owner.Details(id)
	if err != nil {
		return err
	}
	if !a.LockedBalance.IsZero() {
		return fmt.Errorf("%w: %s has %s locked", accounts.ErrNotEmpty, id, a.LockedBalance)
	}
	if a.AvailableBalance.IsPositive() {
		if _, err := l.crossTransfer(id, transferTo, a.AvailableBalance, accounts.TransferOptions{}, false); err != nil {
			return err
		}
	}
	return owner.Admin().CloseAccount(id, "")
}
