package usage_test

// Crash-at-every-boundary coverage for the usage spool, in the style of
// internal/shard/simtest: every durable protocol step (spool-append,
// pin, settle, marker-write, cleanup) is interrupted by a simulated
// process death, every store is rebooted from its crash-survivable
// journal, and the recovered pipeline must converge to exactly-once
// settlement with exact conservation — the same charge is never applied
// twice and never lost, no matter where the crash landed.

import (
	"fmt"
	"testing"
	"time"

	"gridbank/internal/accounts"
	"gridbank/internal/currency"
	"gridbank/internal/db"
	"gridbank/internal/shard"
	"gridbank/internal/shard/simtest"
	"gridbank/internal/usage"
)

// crashWorld is a sharded deployment plus spool, all on
// crash-survivable journals so a "reboot" rebuilds every store.
type crashWorld struct {
	t         *testing.T
	journals  []*simtest.Journal // one per shard
	spoolJ    *simtest.Journal
	led       *shard.Ledger
	spool     *db.Store
	pipe      *usage.Pipeline
	drawer    accounts.ID
	sameRecip accounts.ID // same shard as drawer
	crossRec  accounts.ID // different shard
	total     currency.Amount
}

func newCrashWorld(t *testing.T, shards int) *crashWorld {
	t.Helper()
	w := &crashWorld{t: t, spoolJ: simtest.NewJournal()}
	w.journals = make([]*simtest.Journal, shards)
	for i := range w.journals {
		w.journals[i] = simtest.NewJournal()
	}
	w.boot()

	drawer, err := w.led.CreateAccount("CN=crash-consumer", "VO-X", "")
	if err != nil {
		t.Fatal(err)
	}
	w.drawer = drawer.AccountID
	ds := w.led.ShardFor(w.drawer)
	for i := 0; w.sameRecip == "" || w.crossRec == ""; i++ {
		if i > 10000 {
			t.Fatal("could not place recipients on both shard sides")
		}
		a, err := w.led.CreateAccount(fmt.Sprintf("CN=crash-provider-%d", i), "VO-X", "")
		if err != nil {
			t.Fatal(err)
		}
		if w.led.ShardFor(a.AccountID) == ds {
			if w.sameRecip == "" {
				w.sameRecip = a.AccountID
			}
		} else if w.crossRec == "" {
			w.crossRec = a.AccountID
		}
	}
	if err := w.led.Deposit(w.drawer, currency.FromG(100)); err != nil {
		t.Fatal(err)
	}
	w.total, err = w.led.TotalBalance()
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// boot (re)builds every store from its journal: shard recovery runs in
// shard.New, pipeline recovery (requeue + pin reseeding) in usage.New.
func (w *crashWorld) boot() {
	w.t.Helper()
	stores := make([]*db.Store, len(w.journals))
	for i, j := range w.journals {
		j.Revive()
		st, err := db.Open(j)
		if err != nil {
			w.t.Fatalf("reboot shard %d: %v", i, err)
		}
		stores[i] = st
	}
	led, err := shard.New(stores, shard.Config{Now: func() time.Time { return testEpoch }})
	if err != nil {
		w.t.Fatal(err)
	}
	w.led = led
	w.spoolJ.Revive()
	spool, err := db.Open(w.spoolJ)
	if err != nil {
		w.t.Fatalf("reboot spool: %v", err)
	}
	w.spool = spool
	pipe, err := usage.New(usage.Config{
		Ledger:  usage.WrapSharded(led),
		Spool:   spool,
		Workers: -1, // deterministic: settlement only via SettleOnce/Drain
		Now:     func() time.Time { return testEpoch },
		Log:     testLogger(w.t),
	})
	if err != nil {
		w.t.Fatal(err)
	}
	w.pipe = pipe
}

// reboot models the whole node dying and restarting.
func (w *crashWorld) reboot() {
	w.t.Helper()
	w.pipe.Close()
	w.boot()
}

func (w *crashWorld) submission(id string, recip accounts.ID) usage.Submission {
	return usage.Submission{
		ID:        id,
		Drawer:    w.drawer,
		Recipient: recip,
		RUR:       encodedRUR(w.t, "CN=crash-consumer", "CN=crash-provider", id, 3600), // 1 G$
		Rates:     flatRates("CN=crash-provider"),
	}
}

// assertConverged checks the post-recovery invariants: the charge
// settled exactly once (recipient credited exactly want), no pending or
// escrowed residue, and global conservation.
func (w *crashWorld) assertConverged(recip accounts.ID, want currency.Amount) {
	w.t.Helper()
	a, err := w.led.Details(recip)
	if err != nil {
		w.t.Fatal(err)
	}
	if a.AvailableBalance != want {
		w.t.Errorf("recipient = %s, want %s (exactly-once violated)", a.AvailableBalance, want)
	}
	st := w.pipe.Status()
	if st.Pending != 0 || st.Failed != 0 {
		w.t.Errorf("residue after recovery: %+v", st)
	}
	total, err := w.led.TotalBalance()
	if err != nil {
		w.t.Fatal(err)
	}
	if total != w.total {
		w.t.Errorf("conservation violated: %s -> %s", w.total, total)
	}
	esc, err := w.led.PendingEscrow()
	if err != nil || !esc.IsZero() {
		w.t.Errorf("escrow after recovery = %v, %v", esc, err)
	}
}

// runCrash drives one charge to the given boundary, dies there, reboots
// and drains — the core schedule every case shares.
func (w *crashWorld) runCrash(id string, recip accounts.ID, at usage.Boundary) {
	w.t.Helper()
	died := false
	w.pipe.CrashHook = func(b usage.Boundary, chargeID string) error {
		if b == at && !died {
			died = true
			return fmt.Errorf("injected death at %s", b)
		}
		return nil
	}
	_, err := w.pipe.Submit([]usage.Submission{w.submission(id, recip)})
	if at == usage.BoundarySpooled {
		if err == nil {
			w.t.Fatal("expected injected death during Submit")
		}
	} else {
		if err != nil {
			w.t.Fatalf("submit: %v", err)
		}
		if _, err := w.pipe.SettleOnce(); !died {
			w.t.Fatalf("boundary %s never reached (settle err %v)", at, err)
		}
	}
	w.reboot()
	if _, err := w.pipe.Drain(10 * time.Second); err != nil {
		w.t.Fatalf("drain after reboot: %v", err)
	}
}

func TestCrashAtEveryBoundarySameShard(t *testing.T) {
	// Same-shard charges settle atomically (markers ride the ledger
	// transaction), so only three boundaries exist on this path.
	for _, b := range []usage.Boundary{usage.BoundarySpooled, usage.BoundarySettled, usage.BoundaryCleaned} {
		t.Run(b.String(), func(t *testing.T) {
			w := newCrashWorld(t, 2)
			w.runCrash("same-"+b.String(), w.sameRecip, b)
			w.assertConverged(w.sameRecip, currency.FromG(1))
		})
	}
}

func TestCrashAtEveryBoundaryCrossShard(t *testing.T) {
	for _, b := range []usage.Boundary{
		usage.BoundarySpooled, usage.BoundaryPinned, usage.BoundarySettled,
		usage.BoundaryMarked, usage.BoundaryCleaned,
	} {
		t.Run(b.String(), func(t *testing.T) {
			w := newCrashWorld(t, 2)
			w.runCrash("cross-"+b.String(), w.crossRec, b)
			w.assertConverged(w.crossRec, currency.FromG(1))
		})
	}
}

// TestDoubleCrashCrossShard dies once mid-settlement and again during
// the recovery drain, at every ordered boundary pair.
func TestDoubleCrashCrossShard(t *testing.T) {
	boundaries := []usage.Boundary{
		usage.BoundaryPinned, usage.BoundarySettled, usage.BoundaryMarked, usage.BoundaryCleaned,
	}
	for i, first := range boundaries {
		for _, second := range boundaries[i:] {
			t.Run(fmt.Sprintf("%s-then-%s", first, second), func(t *testing.T) {
				w := newCrashWorld(t, 2)
				w.runCrash(fmt.Sprintf("dbl-%s-%s", first, second), w.crossRec, first)
				// The charge settled during the first recovery; a second
				// crash-and-recover cycle must change nothing.
				died := false
				w.pipe.CrashHook = func(b usage.Boundary, _ string) error {
					if b == second && !died {
						died = true
						return fmt.Errorf("second injected death at %s", b)
					}
					return nil
				}
				if _, err := w.pipe.Submit([]usage.Submission{w.submission("dup-probe", w.crossRec)}); err == nil {
					// The duplicate probe settles zero new money; drain it.
					w.pipe.SettleOnce()
				}
				w.reboot()
				if _, err := w.pipe.Drain(10 * time.Second); err != nil {
					t.Fatalf("drain after second reboot: %v", err)
				}
				w.assertConverged(w.crossRec, currency.FromG(2)) // dbl charge + dup-probe charge
			})
		}
	}
}

// TestShardJournalDeathDuringSettle kills the drawer shard's journal at
// the settle step (the store refuses the write, like a dead disk); the
// charge must stay pending and settle exactly once after reboot.
func TestShardJournalDeathDuringSettle(t *testing.T) {
	w := newCrashWorld(t, 2)
	if _, err := w.pipe.Submit([]usage.Submission{w.submission("disk-death", w.sameRecip)}); err != nil {
		t.Fatal(err)
	}
	w.journals[w.led.ShardFor(w.drawer)].Kill()
	if n, err := w.pipe.SettleOnce(); err == nil || n != 0 {
		t.Fatalf("settle with dead journal = %d, %v; want failure", n, err)
	}
	w.reboot()
	if _, err := w.pipe.Drain(10 * time.Second); err != nil {
		t.Fatalf("drain after reboot: %v", err)
	}
	w.assertConverged(w.sameRecip, currency.FromG(1))
}

// TestTransientFaultKeepsSiblingsQueued regresses the mixed-group
// requeue path: a group holding both a same-shard and a cross-shard
// charge hits a transient store fault on the same-shard batch; the
// untouched cross-shard sibling must return to the queue (not vanish
// until restart), so a later pass — after the fault clears, with no
// reboot — settles both.
func TestTransientFaultKeepsSiblingsQueued(t *testing.T) {
	w := newCrashWorld(t, 2)
	if _, err := w.pipe.Submit([]usage.Submission{
		w.submission("sib-same", w.sameRecip),
		w.submission("sib-cross", w.crossRec),
	}); err != nil {
		t.Fatal(err)
	}
	ds := w.led.ShardFor(w.drawer)
	w.journals[ds].Kill()
	if _, err := w.pipe.SettleOnce(); err == nil {
		t.Fatal("settle with dead journal succeeded")
	}
	w.journals[ds].Revive()
	if st, err := w.pipe.Drain(10 * time.Second); err != nil || st.Pending != 0 {
		t.Fatalf("drain after fault cleared = %+v, %v", st, err)
	}
	w.assertConverged(w.sameRecip, currency.FromG(1))
	w.assertConverged(w.crossRec, currency.FromG(1))
}

// TestSpoolJournalDeathDuringSubmit kills the spool journal mid-intake:
// Submit must fail (nothing acknowledged), and after reboot nothing
// phantom-settles.
func TestSpoolJournalDeathDuringSubmit(t *testing.T) {
	w := newCrashWorld(t, 2)
	w.spoolJ.Kill()
	if _, err := w.pipe.Submit([]usage.Submission{w.submission("lost-intake", w.sameRecip)}); err == nil {
		t.Fatal("submit with dead spool journal succeeded")
	}
	w.reboot()
	if st, err := w.pipe.Drain(5 * time.Second); err != nil || st.Settled != 0 {
		t.Fatalf("drain = %+v, %v", st, err)
	}
	w.assertConverged(w.sameRecip, 0)
}
