package usage

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gridbank/internal/accounts"
	"gridbank/internal/db"
	"gridbank/internal/obs"
	"gridbank/internal/rur"
	"gridbank/internal/shard"
)

// Spool-side and shard-side table names.
const (
	tableSpool   = "usage_spool"
	tableSettled = "usage_settled"
)

// Config configures a Pipeline.
type Config struct {
	// Ledger is the settlement target. Required. Must implement
	// CrossShardLedger when it spans more than one shard.
	Ledger Ledger
	// Spool is the intake store. Required. Give it a WAL-backed journal
	// for durable intake; the pipeline recovers pending charges from it
	// at construction.
	Spool *db.Store
	// BatchSize caps how many charges coalesce into one ledger
	// transaction (default 64).
	BatchSize int
	// Workers is the number of background settlement goroutines
	// (default 2). Workers < 0 starts none: settlement then runs only
	// through SettleOnce/Drain — the deterministic mode crash tests use.
	Workers int
	// MaxPending bounds the intake queue: a Submit that would push the
	// pending count past it fails with ErrOverloaded (default 4096).
	MaxPending int
	// RetryInterval is how often idle workers re-check for work missed
	// by kicks, and the pace of transient-failure retries (default 25ms).
	RetryInterval time.Duration
	// Now supplies timestamps; defaults to time.Now.
	Now func() time.Time
	// Log records transient settlement faults; nil discards them.
	// Configured here (not assigned after New) because recovery can
	// hand workers settleable rows before New even returns.
	Log *obs.Logger
	// Obs names the pipeline's instruments (usage.queue_depth,
	// usage.inflight, usage.batch_size, usage.settled, usage.parked,
	// usage.overloaded). Nil leaves telemetry off. Configured here, not
	// after New, for the same reason as Log: workers may be settling
	// before New returns.
	Obs *obs.Registry
	// CrashHook installs fault injection before the workers start; see
	// Pipeline.CrashHook.
	CrashHook func(b Boundary, chargeID string) error
}

// groupKey buckets pending charges for batching: all charges drawn from
// one account settle on one shard, so one ledger transaction can apply
// many of them.
type groupKey struct {
	shard  int
	drawer accounts.ID
}

// Pipeline is the batched asynchronous settlement engine. Construct
// with New — which also runs crash recovery — and Close when done.
// Constructing the pipeline must happen before the ledger serves
// traffic, so recovered transaction-ID pins reseed the allocator ahead
// of any fresh allocation.
type Pipeline struct {
	led   Ledger
	cross CrossShardLedger // nil when the ledger cannot cross shards
	spool *db.Store
	cfg   Config
	now   func() time.Time

	// Log records transient settlement faults. Prefer Config.Log: with
	// background workers this field may only be reassigned while the
	// pipeline is provably idle (e.g. Workers < 0), since workers read
	// it when a settlement fails.
	Log *obs.Logger
	// CrashHook fires after every durable settlement step with the
	// boundary and a representative charge ID; returning an error
	// abandons processing at that point (simulated process death).
	// Test instrumentation only. Prefer Config.CrashHook; direct
	// reassignment is safe only in synchronous mode (Workers < 0).
	CrashHook func(b Boundary, chargeID string) error

	mu       sync.Mutex
	queue    map[groupKey][]string
	reserved int // Submit capacity holds not yet spooled/enqueued
	inflight int
	failed   int
	lastErr  string
	closed   bool

	settled    atomic.Uint64
	duplicates atomic.Uint64
	rejected   atomic.Uint64
	batches    atomic.Uint64
	crossShard atomic.Uint64

	// Telemetry handles (nil no-ops when Config.Obs is nil). The queue
	// and inflight gauges mirror the mu-guarded state incrementally so
	// scrapes never take the pipeline lock.
	mQueue      *obs.Gauge
	mInflight   *obs.Gauge
	mBatchSize  *obs.Histogram
	mSettled    *obs.Counter
	mParked     *obs.Counter
	mOverloaded *obs.Counter

	kick chan struct{}
	stop chan struct{}
	wg   sync.WaitGroup
}

// New builds a pipeline over the ledger and spool store, recovers any
// charges a crash left pending (re-queueing them and reseeding the
// ledger's transaction-ID allocator above every pinned ID), and starts
// the settlement workers.
func New(cfg Config) (*Pipeline, error) {
	if cfg.Ledger == nil {
		return nil, errors.New("usage: pipeline requires a ledger")
	}
	if cfg.Spool == nil {
		return nil, errors.New("usage: pipeline requires a spool store")
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 64
	}
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	if cfg.Workers < 0 {
		cfg.Workers = 0 // synchronous mode: SettleOnce/Drain only
	}
	if cfg.MaxPending <= 0 {
		cfg.MaxPending = 4096
	}
	if cfg.RetryInterval <= 0 {
		cfg.RetryInterval = 25 * time.Millisecond
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	cross, _ := cfg.Ledger.(CrossShardLedger)
	if cfg.Ledger.Shards() > 1 && cross == nil {
		return nil, errors.New("usage: a multi-shard ledger must implement CrossShardLedger")
	}
	p := &Pipeline{
		led:       cfg.Ledger,
		cross:     cross,
		spool:     cfg.Spool,
		cfg:       cfg,
		now:       cfg.Now,
		Log:       cfg.Log,
		CrashHook: cfg.CrashHook,
		queue:     make(map[groupKey][]string),
		kick:      make(chan struct{}, cfg.Workers+1),
		stop:      make(chan struct{}),

		mQueue:      cfg.Obs.Gauge("usage.queue_depth"),
		mInflight:   cfg.Obs.Gauge("usage.inflight"),
		mBatchSize:  cfg.Obs.Histogram("usage.batch_size"),
		mSettled:    cfg.Obs.Counter("usage.settled"),
		mParked:     cfg.Obs.Counter("usage.parked"),
		mOverloaded: cfg.Obs.Counter("usage.overloaded"),
	}
	if err := p.spool.EnsureTable(tableSpool); err != nil {
		return nil, err
	}
	for i := 0; i < p.led.Shards(); i++ {
		if err := p.led.ShardStore(i).EnsureTable(tableSettled); err != nil {
			return nil, err
		}
	}
	if err := p.recover(); err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p, nil
}

// recover re-queues every pending spool row and reseeds the ledger's
// transaction-ID allocator above the highest pinned ID, so a fresh
// transfer can never collide with a pinned-but-unfinished settlement.
func (p *Pipeline) recover() error {
	var maxPin uint64
	var scanErr error
	err := p.spool.Scan(tableSpool, func(key string, value []byte) bool {
		var row spoolRow
		if err := json.Unmarshal(value, &row); err != nil {
			scanErr = fmt.Errorf("usage: corrupt spool row %s: %w", key, err)
			return false
		}
		if row.PinTxID > maxPin {
			maxPin = row.PinTxID
		}
		switch row.State {
		case statePending:
			k := groupKey{shard: p.led.ShardFor(row.Drawer), drawer: row.Drawer}
			p.queue[k] = append(p.queue[k], row.ID)
			p.mQueue.Inc()
		case stateFailed:
			p.failed++
		}
		return true
	})
	if err != nil {
		return err
	}
	if scanErr != nil {
		return scanErr
	}
	if maxPin > 0 {
		if p.cross == nil {
			return fmt.Errorf("usage: spool holds pinned transaction IDs (max %d) but the ledger cannot cross shards", maxPin)
		}
		p.cross.SeedTxIDsAbove(maxPin)
	}
	return nil
}

// Close stops the workers. Pending charges stay durably spooled and
// settle when a new pipeline is constructed over the same stores.
func (p *Pipeline) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	close(p.stop)
	p.wg.Wait()
	return nil
}

// pendingLocked counts charges not yet fully settled. Caller holds mu.
func (p *Pipeline) pendingLocked() int {
	n := p.reserved + p.inflight
	for _, ids := range p.queue {
		n += len(ids)
	}
	return n
}

// Status reports the pipeline's observable state.
func (p *Pipeline) Status() *Stats {
	p.mu.Lock()
	pending := p.pendingLocked()
	queued := 0
	for _, ids := range p.queue {
		queued += len(ids)
	}
	inflight := p.inflight
	failed := p.failed
	lastErr := p.lastErr
	p.mu.Unlock()
	return &Stats{
		Pending:    pending,
		QueueDepth: queued,
		InFlight:   inflight,
		Failed:     failed,
		Settled:    p.settled.Load(),
		Duplicates: p.duplicates.Load(),
		Rejected:   p.rejected.Load(),
		Batches:    p.batches.Load(),
		CrossShard: p.crossShard.Load(),
		Workers:    p.cfg.Workers,
		BatchSize:  p.cfg.BatchSize,
		LastError:  lastErr,
	}
}

// Submit prices and durably spools a batch of usage records for
// asynchronous settlement. Malformed submissions come back in
// SubmitResult.Rejected (terminal — resubmitting the same bytes cannot
// succeed); duplicates of spooled or already-settled IDs are counted
// and skipped; ErrOverloaded refuses the whole batch when settlement
// lags intake past the configured bound. A nil error means every
// non-rejected submission is journaled and will settle exactly once.
func (p *Pipeline) Submit(batch []Submission) (*SubmitResult, error) {
	res := &SubmitResult{}
	if len(batch) == 0 {
		return res, nil
	}
	rows := make([]spoolRow, 0, len(batch))
	for _, sub := range batch {
		row, reason := p.intakeRow(sub)
		if reason != "" {
			p.rejected.Add(1)
			res.Rejected = append(res.Rejected, Rejection{ID: sub.ID, Reason: reason})
			continue
		}
		rows = append(rows, row)
	}
	if len(rows) == 0 {
		return res, nil
	}

	// Backpressure: reserve capacity before any durable write, so
	// concurrent submitters cannot jointly overshoot the bound.
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrClosed
	}
	if p.pendingLocked()+len(rows) > p.cfg.MaxPending {
		pending := p.pendingLocked()
		p.mu.Unlock()
		p.mOverloaded.Inc()
		return nil, fmt.Errorf("%w: %d pending + %d offered exceeds bound %d",
			ErrOverloaded, pending, len(rows), p.cfg.MaxPending)
	}
	p.reserved += len(rows)
	p.mu.Unlock()
	release := len(rows)
	defer func() {
		p.mu.Lock()
		p.reserved -= release
		p.mu.Unlock()
	}()

	// Durable intake: one spool transaction for the whole batch (one
	// group-committed journal flush), deduplicating against rows already
	// spooled and markers already settled. A row parked failed never
	// settled (no marker), so a fresh submission of the same ID
	// resurrects it for another attempt — the retry path after an
	// operator fixes the underlying condition (e.g. funds the drawer).
	var accepted []spoolRow
	var dups, revived int
	err := p.spool.Update(func(tx *db.Tx) error {
		accepted, dups, revived = accepted[:0], 0, 0 // Update may retry fn
		for i := range rows {
			raw, err := tx.Get(tableSpool, rows[i].ID)
			switch {
			case err == nil:
				var cur spoolRow
				if err := json.Unmarshal(raw, &cur); err != nil {
					return fmt.Errorf("usage: corrupt spool row %s: %w", rows[i].ID, err)
				}
				if cur.State != stateFailed {
					dups++
					continue
				}
				// Preserve an allocated pin: the failed attempt never
				// moved money, and re-driving under the same ID keeps
				// the exactly-once bookkeeping intact.
				rows[i].PinTxID = cur.PinTxID
				revived++
			case !errors.Is(err, db.ErrNoRecord):
				return err
			}
			if p.alreadySettled(&rows[i]) {
				dups++
				continue
			}
			out, err := json.Marshal(&rows[i])
			if err != nil {
				return err
			}
			if err := tx.Put(tableSpool, rows[i].ID, out); err != nil {
				return err
			}
			accepted = append(accepted, rows[i])
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("usage: spooling intake batch: %w", err)
	}
	if revived > 0 {
		p.mu.Lock()
		p.failed -= revived
		p.mu.Unlock()
	}
	res.Accepted = len(accepted)
	res.Duplicates = dups
	p.duplicates.Add(uint64(dups))
	if len(accepted) == 0 {
		return res, nil
	}
	if err := p.hook(BoundarySpooled, accepted[0].ID); err != nil {
		// Simulated death after the durable append: the rows are in the
		// spool and recovery will settle them; nothing is enqueued here.
		return res, err
	}

	p.mu.Lock()
	for i := range accepted {
		k := groupKey{shard: p.led.ShardFor(accepted[i].Drawer), drawer: accepted[i].Drawer}
		p.queue[k] = append(p.queue[k], accepted[i].ID)
	}
	p.mu.Unlock()
	p.mQueue.Add(int64(len(accepted)))
	p.kickWorkers()
	return res, nil
}

// intakeRow prices and validates one submission. A non-empty reason
// rejects it terminally.
func (p *Pipeline) intakeRow(sub Submission) (spoolRow, string) {
	switch {
	case sub.ID == "":
		return spoolRow{}, "empty submission ID"
	case sub.Drawer == "":
		return spoolRow{}, "missing drawer account"
	case sub.Recipient == "":
		return spoolRow{}, "missing recipient account"
	case sub.Drawer == sub.Recipient:
		return spoolRow{}, "drawer and recipient are the same account"
	case sub.Rates == nil:
		return spoolRow{}, "missing rate card"
	}
	rec := sub.Record
	if rec == nil {
		var err error
		if rec, err = rur.Decode(sub.RUR); err != nil {
			return spoolRow{}, fmt.Sprintf("malformed RUR: %v", err)
		}
	}
	st, err := rur.Price(rec, sub.Rates)
	if err != nil {
		return spoolRow{}, fmt.Sprintf("pricing failed: %v", err)
	}
	return spoolRow{
		ID:        sub.ID,
		Drawer:    sub.Drawer,
		Recipient: sub.Recipient,
		Amount:    st.Total,
		RUR:       sub.RUR,
		State:     statePending,
		Enqueued:  p.now(),
	}, ""
}

// alreadySettled reports whether a settled marker exists for the row.
func (p *Pipeline) alreadySettled(row *spoolRow) bool {
	st := p.led.ShardStore(p.led.ShardFor(row.Drawer))
	_, err := st.Get(tableSettled, row.ID)
	return err == nil
}

// hook fires the crash hook, if any.
func (p *Pipeline) hook(b Boundary, chargeID string) error {
	if p.CrashHook == nil {
		return nil
	}
	return p.CrashHook(b, chargeID)
}

func (p *Pipeline) kickWorkers() {
	select {
	case p.kick <- struct{}{}:
	default:
	}
}

func (p *Pipeline) worker() {
	defer p.wg.Done()
	t := time.NewTicker(p.cfg.RetryInterval)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-p.kick:
		case <-t.C:
		}
		if _, err := p.drainPass(); err != nil {
			p.noteErr(err)
		}
	}
}

func (p *Pipeline) noteErr(err error) {
	p.mu.Lock()
	p.lastErr = err.Error()
	p.mu.Unlock()
	p.Log.Warn("usage settlement fault", "err", err)
}

// SettleOnce runs one synchronous settlement pass over every group that
// had pending work when the pass started, and reports how many charges
// it settled (duplicates cleaned count as settled work for progress
// accounting). Groups a transient fault leaves pending are retried on
// the next pass, not within this one.
func (p *Pipeline) SettleOnce() (int, error) {
	return p.drainPass()
}

func (p *Pipeline) drainPass() (int, error) {
	p.mu.Lock()
	keys := make([]groupKey, 0, len(p.queue))
	for k := range p.queue {
		keys = append(keys, k)
	}
	p.mu.Unlock()
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].shard != keys[j].shard {
			return keys[i].shard < keys[j].shard
		}
		return keys[i].drawer < keys[j].drawer
	})
	var done int
	var firstErr error
	for _, k := range keys {
		for {
			ids := p.takeGroup(k)
			if len(ids) == 0 {
				break
			}
			n, err := p.settleGroup(k, ids)
			done += n
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				break // leave this group for the next pass
			}
		}
		if firstErr != nil && errors.Is(firstErr, errAbandoned) {
			break // simulated death: stop the whole pass
		}
	}
	return done, firstErr
}

// errAbandoned wraps a crash-hook abandon so drainPass stops cold.
var errAbandoned = errors.New("usage: processing abandoned by crash hook")

// takeGroup pops up to BatchSize charge IDs from one group, moving them
// into the in-flight count.
func (p *Pipeline) takeGroup(k groupKey) []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	ids := p.queue[k]
	if len(ids) == 0 {
		delete(p.queue, k)
		return nil
	}
	n := len(ids)
	if n > p.cfg.BatchSize {
		n = p.cfg.BatchSize
	}
	taken := ids[:n:n]
	rest := ids[n:]
	if len(rest) == 0 {
		delete(p.queue, k)
	} else {
		p.queue[k] = rest
	}
	p.inflight += n
	p.mQueue.Add(int64(-n))
	p.mInflight.Add(int64(n))
	p.mBatchSize.Observe(int64(n))
	return taken
}

// requeue returns unfinished charges to the queue (transient faults).
func (p *Pipeline) requeue(k groupKey, ids []string) {
	if len(ids) == 0 {
		return
	}
	p.mu.Lock()
	p.queue[k] = append(p.queue[k], ids...)
	p.mu.Unlock()
	p.mQueue.Add(int64(len(ids)))
}

// settleGroup settles one batch of charges drawn from a single account.
// It returns how many charges reached a terminal outcome (settled,
// deduplicated or parked failed).
func (p *Pipeline) settleGroup(k groupKey, ids []string) (int, error) {
	defer func() {
		p.mu.Lock()
		p.inflight -= len(ids)
		p.mu.Unlock()
		p.mInflight.Add(int64(-len(ids)))
	}()

	// Load the durable rows; IDs whose row vanished were finished by an
	// earlier generation's cleanup.
	rows := make([]spoolRow, 0, len(ids))
	for _, id := range ids {
		raw, err := p.spool.Get(tableSpool, id)
		if errors.Is(err, db.ErrNoRecord) {
			continue
		}
		if err != nil {
			p.requeue(k, ids)
			return 0, err
		}
		var row spoolRow
		if err := json.Unmarshal(raw, &row); err != nil {
			p.requeue(k, ids)
			return 0, fmt.Errorf("usage: corrupt spool row %s: %w", id, err)
		}
		if row.State != statePending {
			continue // parked failed by an earlier pass
		}
		rows = append(rows, row)
	}
	var same, cross []spoolRow
	for _, row := range rows {
		if p.led.ShardFor(row.Recipient) == k.shard {
			same = append(same, row)
		} else {
			cross = append(cross, row)
		}
	}
	// On a transient fault the failing path requeues its own rows; the
	// untouched siblings must go back too, or they would sit pending in
	// the spool but invisible to Status/Drain until a restart. A
	// crash-hook abandon deliberately requeues nothing — simulated
	// process death loses the in-memory queue by design, and recovery
	// rebuilds it from the spool.
	done, err := p.settleSameShard(k, same)
	if err != nil {
		if !errors.Is(err, errAbandoned) {
			p.requeueRows(k, cross)
		}
		return done, err
	}
	for i := range cross {
		n, err := p.settleCross(k, cross[i])
		done += n
		if err != nil {
			if !errors.Is(err, errAbandoned) {
				p.requeueRows(k, cross[i+1:])
			}
			return done, err
		}
	}
	return done, nil
}

// failure is a charge parked by a terminal business outcome.
type failure struct {
	row    spoolRow
	reason string
}

// terminalLedgerErr classifies settlement errors that retrying cannot
// fix: the charge is parked failed rather than retried forever.
func terminalLedgerErr(err error) bool {
	if errors.Is(err, db.ErrStorageFailed) {
		// Fail-stopped storage is an instance outage, not a verdict on
		// the charge: the row must stay queued and settle after restart,
		// even if the failure surfaced wrapped in a business error.
		return false
	}
	return errors.Is(err, accounts.ErrNotFound) ||
		errors.Is(err, accounts.ErrClosed) ||
		errors.Is(err, accounts.ErrCurrencyMismatch) ||
		errors.Is(err, accounts.ErrInsufficient) ||
		errors.Is(err, accounts.ErrInsufficientLock) ||
		errors.Is(err, accounts.ErrBadAmount)
}

// settleSameShard applies a batch of same-shard charges in ONE ledger
// transaction: for every charge the drawer debit, recipient credit,
// both §5.1 TRANSACTION rows, the TRANSFER record carrying the RUR, and
// the exactly-once marker — all atomic, riding one group-committed
// journal flush. This is where per-RUR fsyncs amortize away.
func (p *Pipeline) settleSameShard(k groupKey, rows []spoolRow) (int, error) {
	if len(rows) == 0 {
		return 0, nil
	}
	mgr := p.led.ShardManager(k.shard)
	st := p.led.ShardStore(k.shard)
	now := p.now()
	var settledRows, dupRows []spoolRow
	var failures []failure
	err := st.Update(func(tx *db.Tx) error {
		// The closure may rerun on conflict: reset per-attempt state.
		settledRows, dupRows, failures = settledRows[:0], dupRows[:0], failures[:0]
		var drawer *accounts.Account
		var drawerErr string
		recips := make(map[accounts.ID]*accounts.Account)
		for i := range rows {
			row := rows[i]
			ok, err := tx.Exists(tableSettled, row.ID)
			if err != nil {
				return err
			}
			if ok {
				dupRows = append(dupRows, row)
				continue
			}
			if row.Amount.IsZero() {
				// Nothing to move; the marker alone settles it.
				if err := insertMarker(tx, row.ID, 0); err != nil {
					return err
				}
				settledRows = append(settledRows, row)
				continue
			}
			if drawer == nil && drawerErr == "" {
				a, err := accounts.GetAccountTx(tx, k.drawer)
				switch {
				case errors.Is(err, db.ErrNoRecord):
					drawerErr = fmt.Sprintf("drawer %s not found", k.drawer)
				case err != nil:
					return err
				case a.Closed:
					drawerErr = fmt.Sprintf("drawer %s is closed", k.drawer)
				default:
					drawer = a
				}
			}
			if drawerErr != "" {
				failures = append(failures, failure{row: row, reason: drawerErr})
				continue
			}
			rec, seen := recips[row.Recipient]
			if !seen {
				a, err := accounts.GetAccountTx(tx, row.Recipient)
				if errors.Is(err, db.ErrNoRecord) {
					failures = append(failures, failure{row: row, reason: fmt.Sprintf("recipient %s not found", row.Recipient)})
					continue
				}
				if err != nil {
					return err
				}
				rec = a
				recips[row.Recipient] = a
			}
			switch {
			case rec.Closed:
				failures = append(failures, failure{row: row, reason: fmt.Sprintf("recipient %s is closed", row.Recipient)})
				continue
			case rec.Currency != drawer.Currency:
				failures = append(failures, failure{row: row, reason: fmt.Sprintf("currency mismatch: drawer %s, recipient %s", drawer.Currency, rec.Currency)})
				continue
			case drawer.Spendable().Cmp(row.Amount) < 0:
				failures = append(failures, failure{row: row, reason: fmt.Sprintf("insufficient funds: spendable %s < %s", drawer.Spendable(), row.Amount)})
				continue
			}
			drawer.AvailableBalance = drawer.AvailableBalance.MustSub(row.Amount)
			rec.AvailableBalance = rec.AvailableBalance.MustAdd(row.Amount)
			neg, err := row.Amount.Neg()
			if err != nil {
				return err
			}
			txID, err := mgr.AppendTransactionTx(tx, &accounts.Transaction{
				AccountID: k.drawer, Type: accounts.TxTransfer, Date: now, Amount: neg,
			})
			if err != nil {
				return err
			}
			if _, err := mgr.AppendTransactionTx(tx, &accounts.Transaction{
				TransactionID: txID, AccountID: row.Recipient, Type: accounts.TxTransfer, Date: now, Amount: row.Amount,
			}); err != nil {
				return err
			}
			if err := mgr.InsertTransferTx(tx, &accounts.Transfer{
				TransactionID:       txID,
				Date:                now,
				DrawerAccountID:     k.drawer,
				Amount:              row.Amount,
				RecipientAccountID:  row.Recipient,
				ResourceUsageRecord: row.RUR,
			}); err != nil {
				return err
			}
			if err := insertMarker(tx, row.ID, txID); err != nil {
				return err
			}
			settledRows = append(settledRows, row)
		}
		if drawer != nil {
			if err := accounts.PutAccountTx(tx, drawer); err != nil {
				return err
			}
		}
		for _, rec := range recips {
			if err := accounts.PutAccountTx(tx, rec); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		p.requeueRows(k, rows)
		return 0, fmt.Errorf("usage: settling batch on shard %d: %w", k.shard, err)
	}
	moved := 0
	for i := range settledRows {
		if !settledRows[i].Amount.IsZero() {
			moved++
		}
	}
	if moved > 0 {
		p.batches.Add(1)
	}
	p.settled.Add(uint64(len(settledRows)))
	p.mSettled.Add(int64(len(settledRows)))
	p.duplicates.Add(uint64(len(dupRows)))
	if err := p.hook(BoundarySettled, rows[0].ID); err != nil {
		return 0, fmt.Errorf("%w: %v", errAbandoned, err)
	}
	finished := make([]spoolRow, 0, len(settledRows)+len(dupRows))
	finished = append(append(finished, settledRows...), dupRows...)
	if err := p.cleanup(finished, failures); err != nil {
		p.requeueRows(k, rows)
		return 0, err
	}
	if err := p.hook(BoundaryCleaned, rows[0].ID); err != nil {
		return len(settledRows) + len(dupRows) + len(failures), fmt.Errorf("%w: %v", errAbandoned, err)
	}
	return len(settledRows) + len(dupRows) + len(failures), nil
}

func insertMarker(tx *db.Tx, id string, txID uint64) error {
	raw, err := json.Marshal(settledMarker{ID: id, TxID: txID})
	if err != nil {
		return err
	}
	return tx.Insert(tableSettled, id, raw)
}

// settleCross settles one cross-shard charge through the 2PC ledger
// under a write-ahead pinned transaction ID. Marker and money movement
// cannot share a transaction across stores, so exactly-once comes from
// the pin: the ID is durable in the spool row before the transfer runs,
// and a retry first resolves the pinned transfer's 2PC state and checks
// whether it already landed before re-driving it.
func (p *Pipeline) settleCross(k groupKey, row spoolRow) (int, error) {
	// Already marked settled (crash between marker and cleanup)?
	if p.alreadySettled(&row) {
		p.duplicates.Add(1)
		return 1, p.cleanup([]spoolRow{row}, nil)
	}
	if row.Amount.IsZero() {
		// Marker only, one transaction on the drawer's shard. The charge
		// counts as settled only when this attempt inserted the marker —
		// a retry that finds it already present is a duplicate, so the
		// counters stay exact across transient-failure retries.
		inserted := false
		err := p.led.ShardStore(k.shard).Update(func(tx *db.Tx) error {
			inserted = false
			if ok, err := tx.Exists(tableSettled, row.ID); err != nil || ok {
				return err
			}
			if err := insertMarker(tx, row.ID, 0); err != nil {
				return err
			}
			inserted = true
			return nil
		})
		if err != nil {
			p.requeueRows(k, []spoolRow{row})
			return 0, err
		}
		if inserted {
			p.settled.Add(1)
			p.mSettled.Inc()
		} else {
			p.duplicates.Add(1)
		}
		if err := p.hook(BoundarySettled, row.ID); err != nil {
			return 0, fmt.Errorf("%w: %v", errAbandoned, err)
		}
		return 1, p.cleanup([]spoolRow{row}, nil)
	}

	// Pin the transaction ID write-ahead (idempotent across retries:
	// once pinned, the same ID is always reused).
	if row.PinTxID == 0 {
		pin := p.cross.AllocTxID()
		err := p.spool.Update(func(tx *db.Tx) error {
			raw, err := tx.Get(tableSpool, row.ID)
			if err != nil {
				return err
			}
			var cur spoolRow
			if err := json.Unmarshal(raw, &cur); err != nil {
				return err
			}
			if cur.PinTxID != 0 {
				pin = cur.PinTxID // adopt an existing pin, never replace
				return nil
			}
			cur.PinTxID = pin
			out, err := json.Marshal(&cur)
			if err != nil {
				return err
			}
			return tx.Put(tableSpool, row.ID, out)
		})
		if err != nil {
			p.requeueRows(k, []spoolRow{row})
			return 0, fmt.Errorf("usage: pinning charge %s: %w", row.ID, err)
		}
		row.PinTxID = pin
		if err := p.hook(BoundaryPinned, row.ID); err != nil {
			return 0, fmt.Errorf("%w: %v", errAbandoned, err)
		}
	}

	// Resolve any 2PC state a previous attempt left in doubt, then
	// check whether the pinned transfer already completed.
	if err := p.cross.ResolveInDoubt(k.shard, row.PinTxID); err != nil {
		p.requeueRows(k, []spoolRow{row})
		return 0, fmt.Errorf("usage: resolving pinned transfer %d: %w", row.PinTxID, err)
	}
	if _, err := p.cross.GetTransfer(row.PinTxID); err != nil {
		if !errors.Is(err, accounts.ErrNoSuchTransfer) {
			p.requeueRows(k, []spoolRow{row})
			return 0, err
		}
		_, terr := p.cross.TransferWithID(row.PinTxID, row.Drawer, row.Recipient, row.Amount,
			accounts.TransferOptions{RUR: row.RUR})
		if terr != nil {
			if errors.Is(terr, shard.ErrInDoubt) {
				// Durable but unfinished: the next pass resolves it.
				p.requeueRows(k, []spoolRow{row})
				return 0, fmt.Errorf("usage: charge %s in doubt: %w", row.ID, terr)
			}
			if terminalLedgerErr(terr) {
				return 1, p.cleanup(nil, []failure{{row: row, reason: terr.Error()}})
			}
			p.requeueRows(k, []spoolRow{row})
			return 0, fmt.Errorf("usage: settling charge %s: %w", row.ID, terr)
		}
	}
	if err := p.hook(BoundarySettled, row.ID); err != nil {
		return 0, fmt.Errorf("%w: %v", errAbandoned, err)
	}

	// Marker on the drawer's shard, then cleanup. The counters move
	// with the marker insert, not the transfer: a retry after a
	// transient marker or cleanup failure must not count the same
	// charge as a second settlement.
	inserted := false
	err := p.led.ShardStore(k.shard).Update(func(tx *db.Tx) error {
		inserted = false
		if ok, err := tx.Exists(tableSettled, row.ID); err != nil || ok {
			return err
		}
		if err := insertMarker(tx, row.ID, row.PinTxID); err != nil {
			return err
		}
		inserted = true
		return nil
	})
	if err != nil {
		p.requeueRows(k, []spoolRow{row})
		return 0, fmt.Errorf("usage: marking charge %s: %w", row.ID, err)
	}
	if inserted {
		p.settled.Add(1)
		p.crossShard.Add(1)
		p.mSettled.Inc()
	} else {
		p.duplicates.Add(1)
	}
	if err := p.hook(BoundaryMarked, row.ID); err != nil {
		return 0, fmt.Errorf("%w: %v", errAbandoned, err)
	}
	if err := p.cleanup([]spoolRow{row}, nil); err != nil {
		p.requeueRows(k, []spoolRow{row})
		return 0, err
	}
	if err := p.hook(BoundaryCleaned, row.ID); err != nil {
		return 1, fmt.Errorf("%w: %v", errAbandoned, err)
	}
	return 1, nil
}

// requeueRows puts rows back on the in-memory queue after a transient
// fault (their spool rows are untouched).
func (p *Pipeline) requeueRows(k groupKey, rows []spoolRow) {
	ids := make([]string, len(rows))
	for i := range rows {
		ids[i] = rows[i].ID
	}
	p.requeue(k, ids)
}

// cleanup finishes charges durably: settled/duplicate rows leave the
// spool; failed rows are parked with their reason for the operator.
func (p *Pipeline) cleanup(finished []spoolRow, failures []failure) error {
	if len(finished) == 0 && len(failures) == 0 {
		return nil
	}
	err := p.spool.Update(func(tx *db.Tx) error {
		for i := range finished {
			ok, err := tx.Exists(tableSpool, finished[i].ID)
			if err != nil {
				return err
			}
			if ok {
				if err := tx.Delete(tableSpool, finished[i].ID); err != nil {
					return err
				}
			}
		}
		for i := range failures {
			row := failures[i].row
			row.State = stateFailed
			row.Reason = failures[i].reason
			raw, err := json.Marshal(&row)
			if err != nil {
				return err
			}
			if err := tx.Put(tableSpool, row.ID, raw); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("usage: spool cleanup: %w", err)
	}
	if len(failures) > 0 {
		p.mu.Lock()
		p.failed += len(failures)
		p.mu.Unlock()
		p.mParked.Add(int64(len(failures)))
	}
	return nil
}

// Drain blocks until every pending charge reaches a terminal outcome,
// or the timeout elapses. With background workers it kicks and waits;
// in synchronous mode (Workers < 0) it runs settlement passes itself
// and reports ErrDrainStalled if a full pass makes no progress.
func (p *Pipeline) Drain(timeout time.Duration) (*Stats, error) {
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	deadline := time.Now().Add(timeout)
	for {
		p.mu.Lock()
		pending := p.pendingLocked()
		closed := p.closed
		p.mu.Unlock()
		if closed {
			return p.Status(), ErrClosed
		}
		if pending == 0 {
			return p.Status(), nil
		}
		if time.Now().After(deadline) {
			return p.Status(), fmt.Errorf("%w: %d still pending", ErrDrainTimeout, pending)
		}
		if p.cfg.Workers == 0 {
			n, err := p.drainPass()
			if err != nil {
				return p.Status(), err
			}
			if n == 0 {
				// Only settleable work counts toward a stall verdict: a
				// concurrent Submit's reservation is progress another
				// goroutine is making, not work this loop failed on.
				p.mu.Lock()
				settleable := p.inflight
				for _, ids := range p.queue {
					settleable += len(ids)
				}
				p.mu.Unlock()
				if settleable > 0 {
					return p.Status(), fmt.Errorf("%w: %d pending", ErrDrainStalled, settleable)
				}
				time.Sleep(time.Millisecond) // reservations only: wait them out
			}
			continue
		}
		p.kickWorkers()
		time.Sleep(2 * time.Millisecond)
	}
}
