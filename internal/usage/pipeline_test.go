package usage_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"gridbank/internal/accounts"
	"gridbank/internal/currency"
	"gridbank/internal/db"
	"gridbank/internal/obs"
	"gridbank/internal/rur"
	"gridbank/internal/shard"
	"gridbank/internal/usage"
)

var testEpoch = time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)

// tlogWriter adapts testing.T to io.Writer so pipeline fault logs land
// in test output.
type tlogWriter struct{ t *testing.T }

func (w tlogWriter) Write(p []byte) (int, error) {
	w.t.Log(strings.TrimSuffix(string(p), "\n"))
	return len(p), nil
}

func testLogger(t *testing.T) *obs.Logger {
	return obs.NewLogger(tlogWriter{t}, obs.LevelDebug)
}

// flatRates prices every chargeable item at zero except CPU, at
// 1 G$/3600 s — so a record with N CPU-seconds costs N/3600 G$.
func flatRates(provider string) *rur.RateCard {
	rates := map[rur.Item]currency.Rate{
		rur.ItemCPU: currency.PerHour(currency.Scale),
	}
	for _, item := range rur.AllItems {
		if _, ok := rates[item]; !ok {
			rates[item] = currency.ZeroRate
		}
	}
	return &rur.RateCard{Provider: provider, Currency: currency.GridDollar, Rates: rates}
}

// encodedRUR builds a valid record worth cpuSec CPU-seconds.
func encodedRUR(t *testing.T, consumer, provider, jobID string, cpuSec int64) []byte {
	t.Helper()
	rec := &rur.Record{
		User:     rur.UserDetails{CertificateName: consumer},
		Job:      rur.JobDetails{JobID: jobID, Application: "test", Start: testEpoch, End: testEpoch.Add(time.Hour)},
		Resource: rur.ResourceDetails{Host: "h", CertificateName: provider, LocalJobID: "pid"},
	}
	rec.SetQuantity(rur.ItemCPU, cpuSec)
	raw, err := rur.Encode(rec, rur.FormatJSON)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// singleWorld is an unsharded ledger with a volatile spool.
type singleWorld struct {
	mgr    *accounts.Manager
	spool  *db.Store
	drawer accounts.ID
	recip  accounts.ID
}

func newSingleWorld(t *testing.T, funds currency.Amount) *singleWorld {
	t.Helper()
	mgr, err := accounts.NewManager(db.MustOpenMemory(), accounts.Config{
		Now: func() time.Time { return testEpoch },
	})
	if err != nil {
		t.Fatal(err)
	}
	drawer, err := mgr.CreateAccount("CN=consumer", "VO-X", "")
	if err != nil {
		t.Fatal(err)
	}
	recip, err := mgr.CreateAccount("CN=provider", "VO-X", "")
	if err != nil {
		t.Fatal(err)
	}
	if funds.IsPositive() {
		if err := mgr.Admin().Deposit(drawer.AccountID, funds); err != nil {
			t.Fatal(err)
		}
	}
	return &singleWorld{mgr: mgr, spool: db.MustOpenMemory(), drawer: drawer.AccountID, recip: recip.AccountID}
}

func (w *singleWorld) pipeline(t *testing.T, cfg usage.Config) *usage.Pipeline {
	t.Helper()
	cfg.Ledger = usage.WrapManager(w.mgr)
	cfg.Spool = w.spool
	cfg.Now = func() time.Time { return testEpoch }
	cfg.Log = testLogger(t)
	p, err := usage.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func (w *singleWorld) submission(t *testing.T, id string, cpuSec int64) usage.Submission {
	return usage.Submission{
		ID:        id,
		Drawer:    w.drawer,
		Recipient: w.recip,
		RUR:       encodedRUR(t, "CN=consumer", "CN=provider", id, cpuSec),
		Rates:     flatRates("CN=provider"),
	}
}

func balance(t *testing.T, mgr *accounts.Manager, id accounts.ID) currency.Amount {
	t.Helper()
	a, err := mgr.Details(id)
	if err != nil {
		t.Fatal(err)
	}
	return a.AvailableBalance
}

func TestBatchSettlementAmortizesAndConserves(t *testing.T) {
	w := newSingleWorld(t, currency.FromG(1000))
	p := w.pipeline(t, usage.Config{Workers: -1, BatchSize: 64})
	before, err := w.mgr.TotalBalance()
	if err != nil {
		t.Fatal(err)
	}

	const n = 100
	subs := make([]usage.Submission, 0, n)
	for i := 0; i < n; i++ {
		subs = append(subs, w.submission(t, fmt.Sprintf("job-%03d", i), 3600)) // 1 G$ each
	}
	res, err := p.Submit(subs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted != n || res.Duplicates != 0 || len(res.Rejected) != 0 {
		t.Fatalf("submit = %+v", res)
	}
	st, err := p.Drain(10 * time.Second)
	if err != nil {
		t.Fatalf("drain: %v (stats %+v)", err, st)
	}
	if st.Settled != n || st.Pending != 0 || st.Failed != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// Batching: 100 charges from one drawer at batch size 64 must use
	// at most 2 ledger transactions, not 100.
	if st.Batches > 2 {
		t.Errorf("batches = %d, want <= 2", st.Batches)
	}
	if got, want := balance(t, w.mgr, w.recip), currency.FromG(n); got != want {
		t.Errorf("recipient = %s, want %s", got, want)
	}
	if got, want := balance(t, w.mgr, w.drawer), currency.FromG(1000-n); got != want {
		t.Errorf("drawer = %s, want %s", got, want)
	}
	after, err := w.mgr.TotalBalance()
	if err != nil {
		t.Fatal(err)
	}
	if before != after {
		t.Errorf("conservation violated: %s -> %s", before, after)
	}
	// Evidence: the TRANSFER records carry the RURs.
	stmt, err := w.mgr.Statement(w.recip, testEpoch.Add(-time.Hour), testEpoch.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if len(stmt.Transfers) != n {
		t.Fatalf("transfers = %d, want %d", len(stmt.Transfers), n)
	}
	if len(stmt.Transfers[0].ResourceUsageRecord) == 0 {
		t.Error("transfer record lost the RUR evidence")
	}
}

func TestExactlyOnceOnDuplicateSubmission(t *testing.T) {
	w := newSingleWorld(t, currency.FromG(100))
	p := w.pipeline(t, usage.Config{Workers: -1})

	sub := w.submission(t, "job-dup", 3600)
	// Duplicate inside one batch and across batches, pre-settlement.
	res, err := p.Submit([]usage.Submission{sub, sub})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted != 1 || res.Duplicates != 1 {
		t.Fatalf("submit = %+v", res)
	}
	if res, err = p.Submit([]usage.Submission{sub}); err != nil || res.Duplicates != 1 {
		t.Fatalf("resubmit = %+v, %v", res, err)
	}
	if _, err := p.Drain(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Duplicate after settlement: the marker dedupes it.
	res, err = p.Submit([]usage.Submission{sub})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted != 0 || res.Duplicates != 1 {
		t.Fatalf("post-settle resubmit = %+v", res)
	}
	if _, err := p.Drain(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got, want := balance(t, w.mgr, w.recip), currency.FromG(1); got != want {
		t.Errorf("recipient = %s, want %s (settled more than once?)", got, want)
	}
}

func TestMalformedSubmissionsRejectedTyped(t *testing.T) {
	w := newSingleWorld(t, currency.FromG(100))
	p := w.pipeline(t, usage.Config{Workers: -1})

	good := w.submission(t, "job-ok", 3600)
	badRUR := good
	badRUR.ID = "job-bad-rur"
	badRUR.RUR = []byte("{corrupt")
	noRates := good
	noRates.ID = "job-no-rates"
	noRates.Rates = nil
	selfPay := good
	selfPay.ID = "job-self"
	selfPay.Recipient = good.Drawer
	noID := good
	noID.ID = ""
	// Non-conforming: usage line with no corresponding rate (§2.1).
	unrated := good
	unrated.ID = "job-unrated"
	unrated.Rates = &rur.RateCard{Provider: "CN=provider", Currency: currency.GridDollar,
		Rates: map[rur.Item]currency.Rate{}}

	res, err := p.Submit([]usage.Submission{good, badRUR, noRates, selfPay, noID, unrated})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted != 1 || len(res.Rejected) != 5 {
		t.Fatalf("submit = %+v", res)
	}
	for _, rej := range res.Rejected {
		if rej.Reason == "" {
			t.Errorf("rejection %q has no reason", rej.ID)
		}
	}
	if st, err := p.Drain(5 * time.Second); err != nil || st.Settled != 1 || st.Rejected != 5 {
		t.Fatalf("drain = %+v, %v", st, err)
	}
}

func TestBackpressureOverloaded(t *testing.T) {
	w := newSingleWorld(t, currency.FromG(100))
	p := w.pipeline(t, usage.Config{Workers: -1, MaxPending: 3})

	var subs []usage.Submission
	for i := 0; i < 3; i++ {
		subs = append(subs, w.submission(t, fmt.Sprintf("bp-%d", i), 36))
	}
	if _, err := p.Submit(subs); err != nil {
		t.Fatal(err)
	}
	_, err := p.Submit([]usage.Submission{w.submission(t, "bp-overflow", 36)})
	if !errors.Is(err, usage.ErrOverloaded) {
		t.Fatalf("overflow err = %v, want ErrOverloaded", err)
	}
	// Settling frees capacity.
	if _, err := p.Drain(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Submit([]usage.Submission{w.submission(t, "bp-overflow", 36)}); err != nil {
		t.Fatalf("submit after drain: %v", err)
	}
}

func TestInsufficientFundsParksFailed(t *testing.T) {
	w := newSingleWorld(t, currency.FromG(1)) // can afford one of the two
	p := w.pipeline(t, usage.Config{Workers: -1})

	if _, err := p.Submit([]usage.Submission{
		w.submission(t, "afford", 3600),
		w.submission(t, "broke", 3600),
	}); err != nil {
		t.Fatal(err)
	}
	st, err := p.Drain(5 * time.Second)
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	if st.Settled != 1 || st.Failed != 1 || st.Pending != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if got := balance(t, w.mgr, w.drawer); !got.IsZero() {
		t.Errorf("drawer = %s, want 0", got)
	}
	// The parked row is not retried by draining alone.
	if st, err = p.Drain(time.Second); err != nil || st.Failed != 1 {
		t.Fatalf("re-drain = %+v, %v", st, err)
	}
	// But once the operator funds the drawer, re-submitting the same ID
	// resurrects the charge — the retry path — and it settles exactly
	// once.
	if err := w.mgr.Admin().Deposit(w.drawer, currency.FromG(5)); err != nil {
		t.Fatal(err)
	}
	res, err := p.Submit([]usage.Submission{w.submission(t, "broke", 3600)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted != 1 || res.Duplicates != 0 {
		t.Fatalf("resurrect submit = %+v", res)
	}
	if st, err = p.Drain(5 * time.Second); err != nil || st.Failed != 0 || st.Pending != 0 {
		t.Fatalf("post-resurrect drain = %+v, %v", st, err)
	}
	if got, want := balance(t, w.mgr, w.recip), currency.FromG(2); got != want {
		t.Errorf("recipient = %s, want %s", got, want)
	}
}

func TestBackgroundWorkersSettle(t *testing.T) {
	w := newSingleWorld(t, currency.FromG(100))
	p := w.pipeline(t, usage.Config{Workers: 2, RetryInterval: time.Millisecond})

	var subs []usage.Submission
	for i := 0; i < 40; i++ {
		subs = append(subs, w.submission(t, fmt.Sprintf("bg-%02d", i), 3600))
	}
	if _, err := p.Submit(subs); err != nil {
		t.Fatal(err)
	}
	st, err := p.Drain(10 * time.Second)
	if err != nil {
		t.Fatalf("drain: %v (stats %+v)", err, st)
	}
	if got, want := balance(t, w.mgr, w.recip), currency.FromG(40); got != want {
		t.Errorf("recipient = %s, want %s", got, want)
	}
}

// shardedWorld is an N-shard ledger with a cross-shard account pair.
type shardedWorld struct {
	led    *shard.Ledger
	spool  *db.Store
	drawer accounts.ID // shard A
	recip  accounts.ID // shard B != A
	total  currency.Amount
}

func newShardedWorld(t *testing.T, shards int, funds currency.Amount) *shardedWorld {
	t.Helper()
	stores := make([]*db.Store, shards)
	for i := range stores {
		stores[i] = db.MustOpenMemory()
	}
	led, err := shard.New(stores, shard.Config{Now: func() time.Time { return testEpoch }})
	if err != nil {
		t.Fatal(err)
	}
	w := &shardedWorld{led: led, spool: db.MustOpenMemory()}
	drawer, err := led.CreateAccount("CN=consumer", "VO-X", "")
	if err != nil {
		t.Fatal(err)
	}
	w.drawer = drawer.AccountID
	for i := 0; ; i++ {
		if i > 10000 {
			t.Fatal("no cross-shard partner found")
		}
		a, err := led.CreateAccount(fmt.Sprintf("CN=provider-%d", i), "VO-X", "")
		if err != nil {
			t.Fatal(err)
		}
		if led.ShardFor(a.AccountID) != led.ShardFor(w.drawer) {
			w.recip = a.AccountID
			break
		}
	}
	if err := led.Deposit(w.drawer, funds); err != nil {
		t.Fatal(err)
	}
	w.total, err = led.TotalBalance()
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func (w *shardedWorld) pipeline(t *testing.T, cfg usage.Config) *usage.Pipeline {
	t.Helper()
	cfg.Ledger = usage.WrapSharded(w.led)
	cfg.Spool = w.spool
	cfg.Now = func() time.Time { return testEpoch }
	cfg.Log = testLogger(t)
	p, err := usage.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func (w *shardedWorld) submission(t *testing.T, id string, cpuSec int64) usage.Submission {
	return usage.Submission{
		ID:        id,
		Drawer:    w.drawer,
		Recipient: w.recip,
		RUR:       encodedRUR(t, "CN=consumer", "CN=provider", id, cpuSec),
		Rates:     flatRates("CN=provider"),
	}
}

func TestCrossShardSettlementConserves(t *testing.T) {
	w := newShardedWorld(t, 3, currency.FromG(100))
	p := w.pipeline(t, usage.Config{Workers: -1})

	var subs []usage.Submission
	for i := 0; i < 20; i++ {
		subs = append(subs, w.submission(t, fmt.Sprintf("x-%02d", i), 3600))
	}
	if _, err := p.Submit(subs); err != nil {
		t.Fatal(err)
	}
	st, err := p.Drain(10 * time.Second)
	if err != nil {
		t.Fatalf("drain: %v (stats %+v)", err, st)
	}
	if st.Settled != 20 || st.CrossShard != 20 {
		t.Fatalf("stats = %+v", st)
	}
	got, err := w.led.Details(w.recip)
	if err != nil {
		t.Fatal(err)
	}
	if want := currency.FromG(20); got.AvailableBalance != want {
		t.Errorf("recipient = %s, want %s", got.AvailableBalance, want)
	}
	total, err := w.led.TotalBalance()
	if err != nil {
		t.Fatal(err)
	}
	if total != w.total {
		t.Errorf("conservation violated: %s -> %s", w.total, total)
	}
	if esc, err := w.led.PendingEscrow(); err != nil || !esc.IsZero() {
		t.Errorf("escrow after drain = %v, %v", esc, err)
	}
}

// TestCrossShard2PCCrashRetriesExactlyOnce injects a coordinator death
// inside the 2PC protocol and checks the pipeline's pinned-ID retry
// re-drives the same transfer instead of duplicating it.
func TestCrossShard2PCCrashRetriesExactlyOnce(t *testing.T) {
	for _, step := range []shard.Step{shard.StepPrepared, shard.StepDecided, shard.StepCreditApplied, shard.StepFinalized} {
		t.Run(step.String(), func(t *testing.T) {
			w := newShardedWorld(t, 2, currency.FromG(10))
			p := w.pipeline(t, usage.Config{Workers: -1})

			if _, err := p.Submit([]usage.Submission{w.submission(t, "crash-2pc", 3600)}); err != nil {
				t.Fatal(err)
			}
			died := false
			w.led.CrashHook = func(gid string, s shard.Step) error {
				if s == step && !died {
					died = true
					return errors.New("injected coordinator death")
				}
				return nil
			}
			if _, err := p.SettleOnce(); err == nil {
				t.Fatal("expected in-doubt error from first pass")
			}
			w.led.CrashHook = nil
			st, err := p.Drain(10 * time.Second)
			if err != nil {
				t.Fatalf("drain after crash: %v (stats %+v)", err, st)
			}
			if st.Settled != 1 {
				t.Fatalf("stats = %+v", st)
			}
			rec, err := w.led.Details(w.recip)
			if err != nil {
				t.Fatal(err)
			}
			if want := currency.FromG(1); rec.AvailableBalance != want {
				t.Errorf("recipient = %s, want %s", rec.AvailableBalance, want)
			}
			total, err := w.led.TotalBalance()
			if err != nil {
				t.Fatal(err)
			}
			if total != w.total {
				t.Errorf("conservation violated: %s -> %s", w.total, total)
			}
		})
	}
}

func TestZeroAmountChargeSettlesWithoutTransfer(t *testing.T) {
	w := newSingleWorld(t, currency.FromG(1))
	p := w.pipeline(t, usage.Config{Workers: -1})
	sub := w.submission(t, "free", 0) // zero CPU => zero charge
	if _, err := p.Submit([]usage.Submission{sub}); err != nil {
		t.Fatal(err)
	}
	st, err := p.Drain(5 * time.Second)
	if err != nil || st.Settled != 1 {
		t.Fatalf("drain = %+v, %v", st, err)
	}
	if got := balance(t, w.mgr, w.recip); !got.IsZero() {
		t.Errorf("recipient = %s, want 0", got)
	}
	// Idempotent even with no money moved.
	if res, err := p.Submit([]usage.Submission{sub}); err != nil || res.Duplicates != 1 {
		t.Fatalf("resubmit = %+v, %v", res, err)
	}
}

func TestSubmitRequiresPositiveConfig(t *testing.T) {
	if _, err := usage.New(usage.Config{}); err == nil {
		t.Error("nil ledger accepted")
	}
	if _, err := usage.New(usage.Config{Ledger: usage.WrapManager(mustManager(t))}); err == nil {
		t.Error("nil spool accepted")
	}
}

func mustManager(t *testing.T) *accounts.Manager {
	t.Helper()
	mgr, err := accounts.NewManager(db.MustOpenMemory(), accounts.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return mgr
}

// TestRecoveryRequeuesPending rebuilds a pipeline over the same stores
// and checks spooled-but-unsettled charges settle after the "reboot".
func TestRecoveryRequeuesPending(t *testing.T) {
	w := newSingleWorld(t, currency.FromG(10))
	p := w.pipeline(t, usage.Config{Workers: -1})
	if _, err := p.Submit([]usage.Submission{w.submission(t, "reboot-1", 3600)}); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	p2 := w.pipeline(t, usage.Config{Workers: -1})
	st, err := p2.Drain(5 * time.Second)
	if err != nil || st.Settled != 1 {
		t.Fatalf("drain after reboot = %+v, %v", st, err)
	}
	if got, want := balance(t, w.mgr, w.recip), currency.FromG(1); got != want {
		t.Errorf("recipient = %s, want %s", got, want)
	}
}

func TestRejectionReasonsAreDescriptive(t *testing.T) {
	w := newSingleWorld(t, currency.FromG(1))
	p := w.pipeline(t, usage.Config{Workers: -1})
	bad := w.submission(t, "bad", 36)
	bad.RUR = []byte("<not-xml")
	res, err := p.Submit([]usage.Submission{bad})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rejected) != 1 || !strings.Contains(res.Rejected[0].Reason, "malformed RUR") {
		t.Fatalf("rejected = %+v", res.Rejected)
	}
}
