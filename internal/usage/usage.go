// Package usage is the batched asynchronous usage-settlement pipeline:
// the missing middle of the paper's core loop. The Grid Resource Meter
// (§2.1) emits Resource Usage Records, the Charging Module prices them,
// and GridBank settles them against accounts — but settling one RUR at
// a time costs one durable ledger transaction (one fsync) per job,
// which caps the whole deployment at the disk's sync rate. This
// package accepts *streams* of priced usage records, spools them to a
// WAL-backed intake queue, and settles them asynchronously against the
// ledger in per-(shard, account) batches, so thousands of small
// charges amortize into a few group-committed transactions.
//
// Contract:
//
//   - Durable intake: a submission acknowledged by Submit has been
//     journaled to the spool store and survives a crash.
//   - Exactly-once settlement, keyed by submission ID: settling a
//     charge writes a settled-marker row in the *same shard store* (and
//     for same-shard charges, the same transaction) as the ledger
//     effect, so a replay after a crash — or a duplicate submission —
//     is deduplicated, never double-charged.
//   - Backpressure: when settlement lags intake past the configured
//     bound, Submit refuses the batch with ErrOverloaded instead of
//     growing the queue without bound.
//   - Malformed-vs-transient: a record that can never become valid
//     (undecodable RUR, validation failure, non-conforming rates) is
//     rejected at intake — classified via meter.ErrMalformed — while
//     transient faults surface as Submit errors the caller retries.
//
// Spool format (table "usage_spool" on the spool store, key = ID):
//
//	{"id":"job-42","drawer":"01-0001-00000003",
//	 "recipient":"01-0001-00000007","amount":1250000,
//	 "rur":"...","state":"pending","pin_txid":17,
//	 "enqueued":"..."}
//
// Settled markers (table "usage_settled" on the drawer's shard store,
// key = ID):
//
//	{"id":"job-42","txid":17}
//
// Cross-shard charges cannot make marker and money movement one
// transaction, so they pin a transaction ID in the spool row first
// (write-ahead, like the sharded ledger's cancellation reversals): a
// crashed-and-retried settlement re-drives the same pinned 2PC
// transfer, checks whether it already landed, and only then writes the
// marker. Startup recovery reseeds the ledger's transaction-ID
// allocator above every pinned ID so fresh transfers never collide
// with a pinned-but-unfinished one.
package usage

import (
	"errors"
	"fmt"
	"time"

	"gridbank/internal/accounts"
	"gridbank/internal/currency"
	"gridbank/internal/db"
	"gridbank/internal/rur"
	"gridbank/internal/shard"
)

// Pipeline errors.
var (
	// ErrOverloaded refuses an intake batch because settlement lags:
	// accepting it would grow the pending queue past the configured
	// bound. Callers back off and retry; the wire layer maps it to a
	// stable "overloaded" code.
	ErrOverloaded = errors.New("usage: settlement pipeline overloaded, retry later")
	// ErrClosed rejects operations on a closed pipeline.
	ErrClosed = errors.New("usage: pipeline closed")
	// ErrDrainStalled reports a Drain that stopped making progress:
	// pending charges remain but a full settlement pass settled none
	// (e.g. the ledger is refusing writes).
	ErrDrainStalled = errors.New("usage: drain stalled, pending charges not settling")
	// ErrDrainTimeout reports a Drain that ran out of time.
	ErrDrainTimeout = errors.New("usage: drain timed out")
)

// Submission is one usage record offered for asynchronous settlement:
// the RUR plus everything needed to price and route it.
type Submission struct {
	// ID is the idempotency key — globally unique per metered job
	// (RUR/job ID). Submitting the same ID twice, or replaying a batch
	// after a crash, settles it once.
	ID string `json:"id"`
	// Drawer is the consumer account to charge.
	Drawer accounts.ID `json:"drawer"`
	// Recipient is the provider account to credit.
	Recipient accounts.ID `json:"recipient"`
	// RUR is the encoded Resource Usage Record (JSON or XML; rur.Decode
	// sniffs). It is priced at intake and stored in the TRANSFER record
	// as §5.1 evidence.
	RUR []byte `json:"rur"`
	// Rates prices the record (§2.1: rates and RUR must conform).
	Rates *rur.RateCard `json:"rates"`

	// Record is the decoded form of RUR, fillable by a caller that
	// already decoded the bytes (the bank's evidence-binding check does)
	// so intake does not decode twice. Never trusted off the wire
	// (json:"-"); when nil, intake decodes RUR itself.
	Record *rur.Record `json:"-"`
}

// Rejection reports one submission refused at intake, with the reason.
// Rejections are terminal: the same bytes will be rejected again.
type Rejection struct {
	ID     string `json:"id"`
	Reason string `json:"reason"`
}

// SubmitResult summarizes one intake batch.
type SubmitResult struct {
	// Accepted counts submissions durably spooled by this call.
	Accepted int `json:"accepted"`
	// Duplicates counts submissions already spooled or already settled
	// (idempotent re-submission; not an error).
	Duplicates int `json:"duplicates"`
	// Rejected lists malformed submissions, with reasons.
	Rejected []Rejection `json:"rejected,omitempty"`
}

// Stats is the pipeline's observable state (Usage.Status).
type Stats struct {
	// Pending counts charges spooled but not yet settled (including
	// in-flight batches).
	Pending int `json:"pending"`
	// QueueDepth counts charges sitting in the batcher's in-memory
	// queue, waiting for a worker (a subset of Pending).
	QueueDepth int `json:"queue_depth"`
	// InFlight counts charges currently inside a settlement batch
	// (taken off the queue, not yet terminal).
	InFlight int `json:"in_flight"`
	// Failed counts charges parked by business failures (insufficient
	// funds, closed account); they stay in the spool with their reason,
	// and re-submitting the same ID retries them (they never settled,
	// so exactly-once is preserved).
	Failed int `json:"failed"`
	// Settled, Duplicates and Rejected count outcomes since this
	// pipeline instance started.
	Settled    uint64 `json:"settled"`
	Duplicates uint64 `json:"duplicates"`
	Rejected   uint64 `json:"rejected"`
	// Batches counts ledger transactions used for same-shard batch
	// settlement; Settled/Batches is the amortization factor.
	Batches uint64 `json:"batches"`
	// CrossShard counts charges settled through the 2PC pinned path.
	CrossShard uint64 `json:"cross_shard"`
	// Workers and BatchSize echo the pipeline's configuration.
	Workers   int `json:"workers"`
	BatchSize int `json:"batch_size"`
	// LastError is the most recent transient settlement error, for
	// operators ("" when none).
	LastError string `json:"last_error,omitempty"`
}

// Boundary identifies a durable step of the settlement protocol, for
// fault injection: a crash hook fires immediately after the named step
// became durable.
type Boundary int

// The pipeline's durable step boundaries, in protocol order.
const (
	// BoundarySpooled: intake rows journaled, settlement not started.
	BoundarySpooled Boundary = iota + 1
	// BoundaryPinned: a cross-shard charge's transaction ID pinned in
	// its spool row, transfer not yet driven.
	BoundaryPinned
	// BoundarySettled: the ledger effect is durable — for same-shard
	// batches this includes the markers (one atomic transaction); for
	// cross-shard charges the 2PC transfer completed, marker not yet
	// written.
	BoundarySettled
	// BoundaryMarked: a cross-shard charge's settled marker written,
	// spool row not yet cleaned.
	BoundaryMarked
	// BoundaryCleaned: spool rows deleted/parked; the charge is fully
	// finished.
	BoundaryCleaned
)

// String names a boundary for test output.
func (b Boundary) String() string {
	switch b {
	case BoundarySpooled:
		return "spooled"
	case BoundaryPinned:
		return "pinned"
	case BoundarySettled:
		return "settled"
	case BoundaryMarked:
		return "marked"
	case BoundaryCleaned:
		return "cleaned"
	default:
		return fmt.Sprintf("boundary(%d)", int(b))
	}
}

// Ledger is the settlement target: the accounts surface spread over one
// or more shards. The pipeline composes its batched transactions from
// the accounts tx API against ShardStore/ShardManager directly, so each
// batch rides the shard's existing group-commit journal.
type Ledger interface {
	// Shards returns the shard count (1 = unsharded).
	Shards() int
	// ShardFor maps an account ID to its owning shard.
	ShardFor(id accounts.ID) int
	// ShardManager returns shard i's accounts manager.
	ShardManager(i int) *accounts.Manager
	// ShardStore returns shard i's store.
	ShardStore(i int) *db.Store
}

// CrossShardLedger adds the pinned-transfer surface a sharded ledger
// exposes for exactly-once cross-shard settlement. A Ledger that does
// not implement it (the single-store wrapper) never sees cross-shard
// charges, so the pipeline only requires it when Shards() > 1.
type CrossShardLedger interface {
	Ledger
	// AllocTxID allocates a deployment-wide transaction ID to pin.
	AllocTxID() uint64
	// SeedTxIDsAbove raises the allocator above recovered pins.
	SeedTxIDsAbove(n uint64)
	// TransferWithID drives a cross-shard transfer under a pinned ID.
	TransferWithID(txID uint64, drawer, recipient accounts.ID, amount currency.Amount, opts accounts.TransferOptions) (*accounts.Transfer, error)
	// ResolveInDoubt finishes or aborts a pinned transfer's 2PC state.
	ResolveInDoubt(debitShard int, txID uint64) error
	// GetTransfer reports whether (and what) a pinned ID settled.
	GetTransfer(txID uint64) (*accounts.Transfer, error)
}

// shardedLedger adapts *shard.Ledger to the pipeline's interfaces.
type shardedLedger struct {
	*shard.Ledger
}

func (s shardedLedger) ShardManager(i int) *accounts.Manager { return s.Managers()[i] }
func (s shardedLedger) ShardStore(i int) *db.Store           { return s.Stores()[i] }

// WrapSharded adapts a sharded ledger for settlement.
func WrapSharded(l *shard.Ledger) CrossShardLedger { return shardedLedger{l} }

// singleLedger adapts one accounts.Manager (the classic unsharded
// bank) — every charge is same-shard, so the atomic batch path covers
// everything.
type singleLedger struct {
	mgr *accounts.Manager
}

func (s singleLedger) Shards() int                        { return 1 }
func (s singleLedger) ShardFor(accounts.ID) int           { return 0 }
func (s singleLedger) ShardManager(int) *accounts.Manager { return s.mgr }
func (s singleLedger) ShardStore(int) *db.Store           { return s.mgr.Store() }

// WrapManager adapts a single-store accounts manager for settlement.
func WrapManager(m *accounts.Manager) Ledger { return singleLedger{mgr: m} }

// settledMarker is the exactly-once marker row.
type settledMarker struct {
	ID   string `json:"id"`
	TxID uint64 `json:"txid,omitempty"` // 0 for zero-amount settlements
}

// spool row states.
const (
	statePending = "pending"
	stateFailed  = "failed"
)

// spoolRow is one durable intake record.
type spoolRow struct {
	ID        string          `json:"id"`
	Drawer    accounts.ID     `json:"drawer"`
	Recipient accounts.ID     `json:"recipient"`
	Amount    currency.Amount `json:"amount"`
	RUR       []byte          `json:"rur,omitempty"`
	State     string          `json:"state"`
	// PinTxID is the write-ahead transaction ID of a cross-shard
	// settlement (0 until pinned; same-shard charges never pin).
	PinTxID uint64 `json:"pin_txid,omitempty"`
	// Reason records why a failed row was parked.
	Reason   string    `json:"reason,omitempty"`
	Enqueued time.Time `json:"enqueued"`
}
